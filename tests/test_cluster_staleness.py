"""Tests for the staleness oracle (Figure-1 semantics, both definitions)."""

import pytest

from repro.cluster.staleness import StalenessOracle
from repro.cluster.versions import NONE_VERSION, Version


def v(ts, wid, size=100):
    return Version(ts, wid, size)


class TestOracleWriteTracking:
    def test_expected_version_before_any_write(self):
        o = StalenessOracle()
        committed, strict = o.expected_version("k")
        assert committed is NONE_VERSION and strict is NONE_VERSION

    def test_started_write_raises_strict_bar_only(self):
        o = StalenessOracle()
        w = v(1.0, 1)
        o.note_write_start("k", w, n_replicas=3)
        committed, strict = o.expected_version("k")
        assert committed is NONE_VERSION
        assert strict is w

    def test_ack_raises_committed_bar(self):
        o = StalenessOracle()
        w = v(1.0, 1)
        o.note_write_start("k", w, n_replicas=3)
        o.note_write_acked("k", w)
        committed, strict = o.expected_version("k")
        assert committed is w and strict is w

    def test_out_of_order_acks_keep_newest(self):
        o = StalenessOracle()
        first, second = v(1.0, 1), v(2.0, 2)
        o.note_write_start("k", first, 3)
        o.note_write_start("k", second, 3)
        o.note_write_acked("k", second)
        o.note_write_acked("k", first)  # late ack of older write
        committed, _ = o.expected_version("k")
        assert committed is second

    def test_preload_sets_both_bars(self):
        o = StalenessOracle()
        w = v(0.0, 1)
        o.note_preload("k", w)
        committed, strict = o.expected_version("k")
        assert committed is w and strict is w


class TestOraclePropagation:
    def test_full_propagation_recorded(self):
        o = StalenessOracle()
        w = v(1.0, 1)
        o.note_write_start("k", w, n_replicas=3)
        o.note_replica_applied(w, 1.01)
        o.note_replica_applied(w, 1.02)
        assert o.full_propagation.n == 0  # one replica outstanding
        o.note_replica_applied(w, 1.05)
        assert o.full_propagation.n == 1
        assert o.mean_propagation_time() == pytest.approx(0.05)
        assert o.replica_apply_delay.n == 3

    def test_unknown_write_apply_ignored(self):
        o = StalenessOracle()
        o.note_replica_applied(v(1.0, 99), 1.5)  # never started (e.g. repair)
        assert o.full_propagation.n == 0
        assert o.replica_apply_delay.n == 1


class TestOracleReads:
    def test_fresh_read(self):
        o = StalenessOracle()
        w = v(1.0, 1)
        o.note_write_start("k", w, 3)
        o.note_write_acked("k", w)
        expected = o.expected_version("k")
        assert o.note_read(expected, w) is False
        assert o.reads == 1 and o.stale_reads == 0

    def test_stale_read_committed(self):
        o = StalenessOracle()
        old, new = v(1.0, 1), v(2.0, 2)
        for w in (old, new):
            o.note_write_start("k", w, 3)
            o.note_write_acked("k", w)
        expected = o.expected_version("k")
        assert o.note_read(expected, old) is True
        assert o.stale_reads == 1
        assert o.staleness_age.mean == pytest.approx(1.0)

    def test_inflight_write_stale_only_strict(self):
        o = StalenessOracle()
        acked, inflight = v(1.0, 1), v(2.0, 2)
        o.note_write_start("k", acked, 3)
        o.note_write_acked("k", acked)
        o.note_write_start("k", inflight, 3)  # started, not acked
        expected = o.expected_version("k")
        stale = o.note_read(expected, acked)
        assert stale is False  # fine under committed definition
        assert o.stale_reads == 0
        assert o.stale_reads_strict == 1  # Figure-1 counts it

    def test_newer_than_bar_is_fresh(self):
        # A read can legally return a version *newer* than the committed bar.
        o = StalenessOracle()
        acked, inflight = v(1.0, 1), v(2.0, 2)
        o.note_write_start("k", acked, 3)
        o.note_write_acked("k", acked)
        o.note_write_start("k", inflight, 3)
        expected = o.expected_version("k")
        assert o.note_read(expected, inflight) is False
        assert o.stale_reads_strict == 0

    def test_none_return_with_no_writes_is_fresh(self):
        o = StalenessOracle()
        expected = o.expected_version("k")
        assert o.note_read(expected, None) is False

    def test_none_return_after_write_is_stale(self):
        o = StalenessOracle()
        w = v(1.0, 1)
        o.note_write_start("k", w, 3)
        o.note_write_acked("k", w)
        assert o.note_read(o.expected_version("k"), None) is True

    def test_rates(self):
        o = StalenessOracle()
        w = v(1.0, 1)
        o.note_write_start("k", w, 1)
        o.note_write_acked("k", w)
        o.note_read(o.expected_version("k"), w)
        o.note_read(o.expected_version("k"), None)
        assert o.stale_rate == pytest.approx(0.5)
        assert o.fresh_rate == pytest.approx(0.5)

    def test_reset_counters_keeps_bars(self):
        o = StalenessOracle()
        w = v(1.0, 1)
        o.note_write_start("k", w, 1)
        o.note_write_acked("k", w)
        o.note_read(o.expected_version("k"), None)
        o.reset_counters()
        assert o.reads == 0 and o.stale_reads == 0
        committed, _ = o.expected_version("k")
        assert committed is w  # bar survived

    def test_empty_rates(self):
        o = StalenessOracle()
        assert o.stale_rate == 0.0
        assert o.fresh_rate == 1.0
        assert o.stale_rate_strict == 0.0
