"""Tests for the cohort workload engine: pooling, pacing, RNG bit-identity.

The fidelity evidence (cohort mode reproduces per-client metrics on real
scenarios) lives in ``tests/test_cohort_fidelity.py``; this module covers
the mechanism: the pooled closed loop, the vectorized paced arrival
machinery and its batch-independence guarantee, trace replay, and the
runner/elastic wiring.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.policy import StaticPolicy
from repro.workload.client import ClosedLoopClient, WorkloadRunner
from repro.workload.cohort import CohortPopulation
from repro.workload.traces import TraceRecord
from repro.workload.workloads import WorkloadSpec, heavy_read_update


def _cohort(store, **kw):
    kw.setdefault("spec", heavy_read_update(record_count=20))
    kw.setdefault("policy", StaticPolicy(1, 1))
    kw.setdefault("members", 4)
    kw.setdefault("ops", 40)
    kw.setdefault("rng", np.random.default_rng(0))
    return CohortPopulation(store, **kw)


def _track_peak_in_flight(cohort):
    """Wrap the issue paths to record the high-water mark of in-flight ops."""
    state = {"peak": 0}
    orig_issue, orig_scripted = cohort._issue, cohort._issue_scripted

    def spy_issue():
        orig_issue()
        state["peak"] = max(state["peak"], cohort.in_flight)

    def spy_scripted(kind, key):
        orig_scripted(kind, key)
        state["peak"] = max(state["peak"], cohort.in_flight)

    cohort._issue, cohort._issue_scripted = spy_issue, spy_scripted
    return state


class TestValidation:
    def test_members_positive(self, simple_store):
        with pytest.raises(ConfigError):
            _cohort(simple_store, members=0)

    def test_ops_non_negative(self, simple_store):
        with pytest.raises(ConfigError):
            _cohort(simple_store, ops=-1)

    def test_rate_positive(self, simple_store):
        with pytest.raises(ConfigError):
            _cohort(simple_store, target_rate=0.0)
        cohort = _cohort(simple_store)
        with pytest.raises(ConfigError):
            cohort.set_rate(-1.0)

    def test_batch_positive(self, simple_store):
        with pytest.raises(ConfigError):
            _cohort(simple_store, batch=0)

    def test_from_trace_time_scale(self, simple_store):
        trace = [TraceRecord(t=0.0, kind="read", key="a")]
        with pytest.raises(ConfigError):
            CohortPopulation.from_trace(
                simple_store, trace, StaticPolicy(1, 1), time_scale=0.0
            )


class TestPooledClosedLoop:
    def test_issues_exact_op_count(self, simple_store):
        finished = []
        cohort = _cohort(
            simple_store, members=4, ops=40, on_finished=finished.append
        )
        cohort.start()
        simple_store.sim.run()
        assert cohort.issued == 40
        assert cohort.completed == 40
        assert finished == [cohort]
        assert simple_store.ops_completed() == 40

    def test_window_capped_at_members(self, simple_store):
        cohort = _cohort(simple_store, members=3, ops=30)
        state = _track_peak_in_flight(cohort)
        cohort.start()
        simple_store.sim.run()
        assert cohort.completed == 30
        assert state["peak"] == 3  # never more outstanding ops than members

    def test_zero_ops_finishes_immediately(self, simple_store):
        finished = []
        cohort = _cohort(simple_store, ops=0, on_finished=finished.append)
        cohort.start()
        simple_store.sim.run()
        assert finished == [cohort]

    def test_dc_pinning(self, store):
        cohort = _cohort(store, dc=1)
        assert set(store.coordinator_pool(1)) == {3, 4}
        for _ in range(20):
            assert cohort._coordinator() in {3, 4}

    def test_rmw_issues_read_then_write(self, simple_store):
        spec = WorkloadSpec(
            read_proportion=0.0,
            update_proportion=0.0,
            read_modify_write_proportion=1.0,
            record_count=5,
        )
        cohort = _cohort(simple_store, spec=spec, members=2, ops=10)
        cohort.start()
        simple_store.sim.run()
        assert simple_store.reads_ok == 10
        assert simple_store.writes_ok == 10

    def test_insert_grows_population(self, simple_store):
        spec = WorkloadSpec(
            read_proportion=0.0,
            update_proportion=0.0,
            insert_proportion=1.0,
            record_count=5,
            distribution="uniform",
        )
        cohort = _cohort(simple_store, spec=spec, members=2, ops=10)
        cohort.start()
        simple_store.sim.run()
        assert cohort.inserted == 10
        assert cohort.chooser.item_count == 15

    def test_summary_accounts_every_op(self, simple_store):
        cohort = _cohort(simple_store, members=4, ops=60, dc=0)
        cohort.start()
        simple_store.sim.run()
        s = cohort.summary()
        assert s["members"] == 4
        assert s["ops"] == 60
        assert s["reads"] + s["writes"] + s["failed"] == 60
        assert 0.0 <= s["stale_rate"] <= 1.0
        assert s["read_latency_mean_ms"] > 0

    def test_weight_is_member_count(self, simple_store):
        assert _cohort(simple_store, members=7).weight == 7
        assert ClosedLoopClient.weight == 1


class TestPacedArrivals:
    def test_rate_paces_the_run(self, simple_store):
        cohort = _cohort(
            simple_store,
            members=1000,
            ops=200,
            target_rate=400.0,
            arrival_rng=np.random.default_rng(1),
        )
        cohort.start()
        simple_store.sim.run()
        assert cohort.completed == 200
        # 200 Poisson arrivals at 400/s span roughly half a second
        assert 0.25 < simple_store.sim.now < 1.0

    def test_backlog_preserves_member_cap(self, simple_store):
        # A flood of arrivals against a 2-member window must queue, not
        # overshoot the closed-loop cap.
        cohort = _cohort(
            simple_store,
            members=2,
            ops=50,
            target_rate=1e6,
            arrival_rng=np.random.default_rng(1),
        )
        state = _track_peak_in_flight(cohort)
        cohort.start()
        simple_store.sim.run()
        assert cohort.completed == 50
        assert state["peak"] == 2

    def test_set_rate_applies_mid_run(self, simple_store):
        # At 10/s, 100 ops would take ~10 simulated seconds; re-pacing to
        # 10000/s shortly after start must finish the run well before that.
        cohort = _cohort(
            simple_store,
            members=1000,
            ops=100,
            target_rate=10.0,
            arrival_rng=np.random.default_rng(1),
        )
        cohort.start()
        simple_store.sim.schedule_at(0.1, cohort.set_rate, 10000.0)
        simple_store.sim.run()
        assert cohort.completed == 100
        assert simple_store.sim.now < 2.0

    def test_set_rate_none_switches_to_closed_loop(self, simple_store):
        finished = []
        cohort = _cohort(
            simple_store,
            members=4,
            ops=100,
            target_rate=10.0,
            arrival_rng=np.random.default_rng(1),
            on_finished=finished.append,
        )
        cohort.start()
        simple_store.sim.schedule_at(0.05, cohort.set_rate, None)
        simple_store.sim.run()
        assert cohort.completed == 100
        assert finished == [cohort]
        assert simple_store.sim.now < 5.0  # completion-driven, not 10s of pacing


class TestRngBitIdentity:
    """The property the vectorized draw rests on: batching never changes
    the stream."""

    def test_numpy_batched_equals_sequential(self):
        batched = np.random.default_rng(5).standard_exponential(size=256)
        rng = np.random.default_rng(5)
        sequential = np.array([rng.standard_exponential() for _ in range(256)])
        assert np.array_equal(batched, sequential)  # bit-identical, not approx

    def test_gap_stream_independent_of_batch(self, simple_store):
        def gaps(batch, n=300):
            cohort = _cohort(
                simple_store,
                ops=n,
                target_rate=100.0,
                arrival_rng=np.random.default_rng(9),
                batch=batch,
            )
            cohort._arrivals_left = n
            return [cohort._next_gap() for _ in range(n)]

        reference = gaps(batch=1)
        for batch in (7, 64, 4096):
            assert gaps(batch) == reference

    def test_arrival_times_independent_of_batch(self):
        def arrival_times(batch):
            from tests.conftest import Simulator
            from repro.cluster.store import ReplicatedStore, StoreConfig
            from repro.net.latency import FixedLatency
            from repro.net.topology import Datacenter, LinkClass, Topology

            topo = Topology(
                [Datacenter("dc", "r")], [4],
                latency={LinkClass.INTRA_DC: FixedLatency(0.0003)},
            )
            store = ReplicatedStore(
                Simulator(), topo, config=StoreConfig(seed=3)
            )
            cohort = CohortPopulation(
                store,
                heavy_read_update(record_count=20),
                StaticPolicy(1, 1),
                members=50,
                ops=200,
                rng=np.random.default_rng(0),
                arrival_rng=np.random.default_rng(9),
                target_rate=500.0,
                batch=batch,
            )
            times = []
            orig = cohort._arrival

            def spy():
                times.append(store.sim.now)
                orig()

            cohort._arrival = spy
            cohort.start()
            store.sim.run()
            return times

        reference = arrival_times(batch=1)
        assert len(reference) == 200
        assert arrival_times(batch=4096) == reference  # exact, not approx


class TestFromTrace:
    def test_replays_kinds_and_schedule(self, simple_store):
        trace = [
            TraceRecord(t=0.0, kind="write", key="a"),
            TraceRecord(t=0.1, kind="read", key="a"),
            TraceRecord(t=0.2, kind="read", key="b"),
        ]
        cohort = CohortPopulation.from_trace(
            simple_store, trace, StaticPolicy(1, 1)
        )
        cohort.start()
        simple_store.sim.run()
        assert cohort.completed == 3
        assert simple_store.reads_ok == 2
        assert simple_store.writes_ok == 1
        assert simple_store.sim.now >= 0.2

    def test_member_window_keeps_scripted_kinds(self, simple_store):
        # Five simultaneous writes through a 1-member window: the backlog
        # must replay the recorded kinds, not resample from a mix.
        trace = [TraceRecord(t=0.0, kind="write", key=f"k{i}") for i in range(5)]
        cohort = CohortPopulation.from_trace(
            simple_store, trace, StaticPolicy(1, 1), members=1
        )
        state = _track_peak_in_flight(cohort)
        cohort.start()
        simple_store.sim.run()
        assert simple_store.writes_ok == 5
        assert simple_store.reads_ok == 0
        assert state["peak"] == 1

    def test_time_scale_compresses(self, simple_store):
        trace = [TraceRecord(t=10.0, kind="write", key="a")]
        cohort = CohortPopulation.from_trace(
            simple_store, trace, StaticPolicy(1, 1), time_scale=0.1
        )
        cohort.start()
        simple_store.sim.run()
        assert cohort.completed == 1
        assert simple_store.sim.now < 2.0


class TestRunnerCohortMode:
    def _store(self):
        from tests.conftest import Simulator
        from repro.cluster.store import ReplicatedStore, StoreConfig
        from repro.net.latency import FixedLatency
        from repro.net.topology import Datacenter, LinkClass, Topology

        topo = Topology(
            [Datacenter("east", "r"), Datacenter("west", "r")], [3, 3],
            latency={
                LinkClass.INTRA_DC: FixedLatency(0.0003),
                LinkClass.INTER_AZ: FixedLatency(0.001),
            },
        )
        return ReplicatedStore(
            Simulator(), topo, config=StoreConfig(seed=3, read_repair_chance=0.0)
        )

    def test_report_carries_cohort_block(self):
        rep = WorkloadRunner(
            self._store(), heavy_read_update(record_count=50),
            policy=StaticPolicy(1, 1, name="one"),
            n_clients=1000, ops_total=800, seed=1, client_mode="cohort",
        ).run()
        assert rep.client_mode == "cohort"
        assert rep.n_clients == 1000
        assert rep.ops_completed == 800
        assert rep.cohorts is not None and len(rep.cohorts) == 2  # one per DC
        assert sum(c["members"] for c in rep.cohorts) == 1000
        assert sum(c["ops"] for c in rep.cohorts) == 800

    def test_per_client_report_has_no_cohorts(self):
        rep = WorkloadRunner(
            self._store(), heavy_read_update(record_count=50),
            policy=StaticPolicy(1, 1),
            n_clients=4, ops_total=200, seed=1,
        ).run()
        assert rep.client_mode == "per_client"
        assert rep.cohorts is None

    def test_cohort_allows_more_clients_than_ops(self):
        rep = WorkloadRunner(
            self._store(), heavy_read_update(record_count=50),
            policy=StaticPolicy(1, 1),
            n_clients=1_000_000, ops_total=500, seed=1,
            target_throughput=5000.0, client_mode="cohort",
        ).run()
        assert rep.ops_completed == 500
        assert rep.n_clients == 1_000_000

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadRunner(
                self._store(), heavy_read_update(record_count=50),
                n_clients=4, ops_total=100, client_mode="hybrid",
            )

    def test_deterministic(self):
        kw = dict(
            policy=StaticPolicy(1, 1), n_clients=500, ops_total=600, seed=9,
            target_throughput=2000.0, client_mode="cohort",
        )
        rep1 = WorkloadRunner(
            self._store(), heavy_read_update(record_count=50), **kw
        ).run()
        rep2 = WorkloadRunner(
            self._store(), heavy_read_update(record_count=50), **kw
        ).run()
        assert rep1.throughput == pytest.approx(rep2.throughput)
        assert rep1.stale_rate == rep2.stale_rate
        assert rep1.cohorts == rep2.cohorts


class TestElasticRepace:
    def test_split_is_weight_proportional(self):
        from repro.elastic.runner import _repace

        class Unit:
            def __init__(self, weight):
                self.weight = weight
                self.remaining = 10
                self.rates = []

            def set_rate(self, rate):
                self.rates.append(rate)

        class Runner:
            pass

        runner = Runner()
        small, big = Unit(1), Unit(3)
        runner.clients = [small, big]
        _repace(runner, 400.0)
        assert small.rates == [100.0]
        assert big.rates == [300.0]
        _repace(runner, 0.0)  # zero rate unpaces everyone
        assert small.rates[-1] is None and big.rates[-1] is None
