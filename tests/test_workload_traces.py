"""Tests for trace persistence: JSONL round-trip, malformed-input rejection,
and feeding a persisted trace through a cohort population."""

from __future__ import annotations

import io

import pytest

from repro.common.errors import ConfigError
from repro.policy import StaticPolicy
from repro.workload.cohort import CohortPopulation
from repro.workload.traces import (
    PhasedTraceGenerator,
    TracePhase,
    TraceRecord,
    load_trace,
    save_trace,
)


SAMPLE = [
    TraceRecord(t=0.0, kind="write", key="user1"),
    TraceRecord(t=0.25, kind="read", key="user1", latency=0.002, stale=False),
    TraceRecord(t=1.5, kind="read", key="user2", stale=True, phase="rush"),
]


class TestRoundTrip:
    def test_path_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert save_trace(SAMPLE, path) == 3
        assert load_trace(path) == SAMPLE

    def test_file_object_round_trip(self):
        buf = io.StringIO()
        save_trace(SAMPLE, buf)
        assert load_trace(io.StringIO(buf.getvalue())) == SAMPLE

    def test_optional_fields_preserved(self):
        buf = io.StringIO()
        save_trace(SAMPLE, buf)
        back = load_trace(io.StringIO(buf.getvalue()))
        assert back[0].stale is None and back[0].phase is None
        assert back[1].latency == 0.002
        assert back[2].phase == "rush"

    def test_blank_lines_skipped(self):
        buf = io.StringIO()
        save_trace(SAMPLE, buf)
        padded = "\n" + buf.getvalue().replace("\n", "\n\n")
        assert load_trace(io.StringIO(padded)) == SAMPLE

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        assert save_trace([], path) == 0
        assert load_trace(path) == []

    def test_generated_trace_round_trips(self, tmp_path):
        gen = PhasedTraceGenerator([
            TracePhase("a", 5.0, rate=100.0, read_fraction=0.8),
            TracePhase("b", 5.0, rate=50.0, read_fraction=0.2),
        ])
        trace = gen.generate(cycles=1, seed=3)
        path = str(tmp_path / "phased.jsonl")
        save_trace(trace, path)
        assert load_trace(path) == trace


class TestMalformedInput:
    def _load(self, text):
        return load_trace(io.StringIO(text))

    def test_invalid_json(self):
        with pytest.raises(ConfigError, match="line 1.*invalid JSON"):
            self._load("{not json\n")

    def test_non_object_line(self):
        with pytest.raises(ConfigError, match="line 2.*expected an object"):
            self._load('{"t": 0, "kind": "read", "key": "a"}\n[1, 2]\n')

    def test_missing_fields(self):
        with pytest.raises(ConfigError, match="missing fields.*key"):
            self._load('{"t": 0, "kind": "read"}\n')

    def test_unknown_kind(self):
        with pytest.raises(ConfigError, match="kind must be one of"):
            self._load('{"t": 0, "kind": "scan", "key": "a"}\n')

    def test_non_numeric_time(self):
        with pytest.raises(ConfigError, match="t is not a number"):
            self._load('{"t": "soon", "kind": "read", "key": "a"}\n')

    def test_negative_time(self):
        with pytest.raises(ConfigError, match="t must be >= 0"):
            self._load('{"t": -1, "kind": "read", "key": "a"}\n')

    def test_nan_time(self):
        with pytest.raises(ConfigError, match="t must be >= 0"):
            self._load('{"t": NaN, "kind": "read", "key": "a"}\n')

    def test_error_names_the_offending_line(self):
        good = '{"t": 0, "kind": "read", "key": "a"}\n'
        with pytest.raises(ConfigError, match="line 3"):
            self._load(good + good + '{"t": 0}\n')


class TestTraceThroughCohort:
    def test_persisted_trace_drives_a_cohort(self, simple_store, tmp_path):
        gen = PhasedTraceGenerator([
            TracePhase("burst", 0.5, rate=200.0, read_fraction=0.6, key_count=20),
        ])
        path = str(tmp_path / "cohort.jsonl")
        save_trace(gen.generate(cycles=1, seed=3), path)
        trace = load_trace(path)
        assert trace
        cohort = CohortPopulation.from_trace(
            simple_store, trace, StaticPolicy(1, 1), members=8
        )
        cohort.start()
        simple_store.sim.run()
        assert cohort.completed == len(trace)
        reads = sum(1 for r in trace if r.kind == "read")
        assert simple_store.reads_ok == reads
        assert simple_store.writes_ok == len(trace) - reads
