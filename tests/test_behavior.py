"""Tests for the behavior-modeling pipeline (features through manager)."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.behavior.classifier import features_from_monitor
from repro.behavior.clustering import KMeans, choose_k, silhouette_score
from repro.behavior.features import FEATURE_NAMES, WindowFeatures, extract_features
from repro.behavior.manager import BehaviorModel, BehaviorPolicy
from repro.behavior.rules import PolicyAssignment, Rule, RuleBook, default_rulebook
from repro.behavior.states import StateModel
from repro.behavior.timeline import build_timeline
from repro.monitor.collector import ClusterMonitor
from repro.workload.traces import PhasedTraceGenerator, TracePhase, TraceRecord


def make_trace():
    return PhasedTraceGenerator([
        TracePhase("read-heavy", 60.0, rate=100.0, read_fraction=0.95,
                   hot_weight=0.3),
        TracePhase("write-heavy", 60.0, rate=100.0, read_fraction=0.10,
                   hot_weight=0.9, hot_fraction=0.05),
    ]).generate(cycles=2, seed=1)


class TestFeatures:
    def test_window_slicing(self):
        trace = [
            TraceRecord(t=0.5, kind="read", key="a"),
            TraceRecord(t=1.5, kind="write", key="a"),
            TraceRecord(t=1.7, kind="read", key="b"),
        ]
        feats = extract_features(trace, window=1.0)
        assert len(feats) == 2
        assert feats[0].op_rate == pytest.approx(1.0)
        assert feats[0].read_fraction == 1.0
        assert feats[1].op_rate == pytest.approx(2.0)
        assert feats[1].write_rate == pytest.approx(1.0)

    def test_empty_trace(self):
        assert extract_features([], 1.0) == []

    def test_empty_window_kept(self):
        trace = [
            TraceRecord(t=0.1, kind="read", key="a"),
            TraceRecord(t=2.5, kind="read", key="a"),
        ]
        feats = extract_features(trace, window=1.0)
        assert len(feats) == 3
        assert feats[1].op_rate == 0.0

    def test_skew_feature(self):
        hot = [TraceRecord(t=i * 0.01, kind="write", key="hot") for i in range(90)]
        cold = [TraceRecord(t=i * 0.01, kind="write", key=f"c{i}") for i in range(10)]
        trace = sorted(hot + cold, key=lambda r: r.t)
        f = extract_features(trace, window=1.0)[0]
        assert f.key_skew > 0.5  # highly concentrated
        assert f.hot_write_rate == pytest.approx(90.0, rel=0.05)

    def test_overlap_feature(self):
        trace = [
            TraceRecord(t=0.1, kind="read", key="a"),
            TraceRecord(t=0.2, kind="write", key="a"),
            TraceRecord(t=0.3, kind="read", key="b"),
        ]
        f = extract_features(trace, window=1.0)[0]
        assert f.rw_overlap == pytest.approx(0.5)  # {a} over {a, b}

    def test_vector_order(self):
        f = WindowFeatures(0, 1, 10.0, 0.5, 5.0, 0.2, 3.0, 0.4)
        assert list(f.vector()) == [10.0, 0.5, 5.0, 0.2, 3.0, 0.4]
        assert len(FEATURE_NAMES) == 6

    def test_validation(self):
        with pytest.raises(ConfigError):
            extract_features([TraceRecord(0.0, "read", "a")], window=0.0)


class TestTimeline:
    def test_standardization_roundtrip(self):
        tl = build_timeline(make_trace(), window=10.0)
        raw = tl.raw_matrix()
        again = tl.standardize(raw)
        assert np.allclose(again, tl.matrix)
        assert tl.n_windows == tl.matrix.shape[0]
        assert tl.matrix.shape[1] == len(FEATURE_NAMES)

    def test_standardized_moments(self):
        tl = build_timeline(make_trace(), window=10.0)
        assert np.allclose(tl.matrix.mean(axis=0), 0.0, atol=1e-9)
        stds = tl.matrix.std(axis=0)
        assert np.all((np.isclose(stds, 1.0)) | (np.isclose(stds, 0.0)))

    def test_window_times_monotone(self):
        tl = build_timeline(make_trace(), window=10.0)
        times = tl.window_times()
        assert np.all(np.diff(times) > 0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            build_timeline([], window=1.0)


class TestKMeans:
    def _blobs(self, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.normal(0.0, 0.3, size=(40, 2))
        b = rng.normal(5.0, 0.3, size=(40, 2))
        c = rng.normal((0.0, 8.0), 0.3, size=(40, 2))
        return np.vstack([a, b, c])

    def test_validation(self):
        with pytest.raises(ConfigError):
            KMeans(0)
        with pytest.raises(ConfigError):
            KMeans(2).fit(np.zeros((1, 2)))
        with pytest.raises(ConfigError):
            KMeans(2).fit(np.zeros(5))

    def test_recovers_blobs(self):
        pts = self._blobs()
        result = KMeans(3, rng=0).fit(pts)
        assert result.k == 3
        # each true blob maps to exactly one cluster
        labels = result.labels
        assert len(set(labels[:40])) == 1
        assert len(set(labels[40:80])) == 1
        assert len(set(labels[80:])) == 1
        assert len({labels[0], labels[40], labels[80]}) == 3

    def test_inertia_decreases_with_k(self):
        pts = self._blobs()
        inertias = [KMeans(k, rng=0).fit(pts).inertia for k in (1, 2, 3)]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_predict_assigns_nearest(self):
        pts = self._blobs()
        result = KMeans(3, rng=0).fit(pts)
        lab = result.predict(np.array([[5.0, 5.0]]))
        assert lab[0] == result.labels[40]  # the (5, 5) blob's cluster

    def test_deterministic(self):
        pts = self._blobs()
        a = KMeans(3, rng=7).fit(pts)
        b = KMeans(3, rng=7).fit(pts)
        assert np.array_equal(a.labels, b.labels)

    def test_identical_points(self):
        pts = np.ones((10, 2))
        result = KMeans(2, rng=0).fit(pts)
        assert result.inertia == pytest.approx(0.0)

    def test_silhouette_separated_vs_mixed(self):
        pts = self._blobs()
        good = KMeans(3, rng=0).fit(pts)
        s_good = silhouette_score(pts, good.labels)
        rng = np.random.default_rng(0)
        s_bad = silhouette_score(pts, rng.integers(0, 3, size=len(pts)))
        assert s_good > 0.7
        assert s_good > s_bad

    def test_silhouette_degenerate(self):
        pts = self._blobs()
        assert silhouette_score(pts, np.zeros(len(pts), dtype=int)) == 0.0

    def test_choose_k_finds_three(self):
        pts = self._blobs()
        result = choose_k(pts, k_range=(2, 3, 4, 5), rng=0)
        assert result.k == 3

    def test_choose_k_validation(self):
        with pytest.raises(ConfigError):
            choose_k(np.zeros((5, 2)), k_range=())
        with pytest.raises(ConfigError):
            choose_k(np.zeros((2, 2)), k_range=(5,))


class TestStatesAndRules:
    def _model(self):
        tl = build_timeline(make_trace(), window=10.0)
        clustering = KMeans(2, rng=0).fit(tl.matrix)
        return StateModel(tl, clustering)

    def test_summaries(self):
        model = self._model()
        assert len(model.summaries) == 2
        assert sum(s.time_fraction for s in model.summaries) == pytest.approx(1.0)
        # the two planted regimes differ strongly in read fraction
        fracs = sorted(s["read_fraction"] for s in model.summaries)
        assert fracs[0] < 0.3 and fracs[1] > 0.8

    def test_transition_matrix_stochastic(self):
        model = self._model()
        sums = model.transition_matrix.sum(axis=1)
        for s in sums:
            assert s == pytest.approx(1.0) or s == 0.0

    def test_dwell_expectation(self):
        model = self._model()
        for sid in range(model.k):
            assert model.dwell_expectation(sid) >= 1.0

    def test_rulebook_priority(self):
        book = RuleBook(default=PolicyAssignment("eventual"))
        book.add(Rule("low", lambda s: True, PolicyAssignment("strong"), priority=10))
        book.add(Rule("high", lambda s: True, PolicyAssignment("quorum"), priority=1))
        model = self._model()
        got = book.assign(model.summaries[0])
        assert got.kind == "quorum"
        assert got.rule_name == "high"

    def test_custom_rules_outrank_generic(self):
        book = default_rulebook()
        book.add_custom(
            "admin-override", lambda s: True, PolicyAssignment("strong")
        )
        model = self._model()
        for s in model.summaries:
            assert book.assign(s).kind == "strong"

    def test_default_when_nothing_matches(self):
        book = RuleBook(default=PolicyAssignment("harmony", {"tolerance": 0.2}))
        model = self._model()
        got = book.assign(model.summaries[0])
        assert got.kind == "harmony"
        assert got.rule_name == "default"

    def test_default_rulebook_assigns_sensibly(self):
        model = self._model()
        assignments = default_rulebook().assign_all(model)
        by_read_frac = {
            s.state_id: s["read_fraction"] for s in model.summaries
        }
        for sid, assignment in assignments.items():
            if by_read_frac[sid] < 0.4:
                assert assignment.kind == "quorum"  # write-heavy rule

    def test_unknown_recipe_rejected(self):
        with pytest.raises(ConfigError):
            PolicyAssignment("turbo")

    def test_assignment_label(self):
        a = PolicyAssignment("harmony", {"tolerance": 0.05})
        assert a.label() == "harmony(tolerance=0.05)"
        assert PolicyAssignment("quorum").label() == "quorum"


class TestBehaviorModelAndPolicy:
    def test_fit_pipeline(self):
        model = BehaviorModel.fit(make_trace(), window=10.0, k_range=(2, 3, 4))
        assert model.k >= 2
        assert set(model.assignments) == set(range(model.k))
        assert "states" in model.describe() or "state" in model.describe()

    def test_fit_fixed_k(self):
        model = BehaviorModel.fit(make_trace(), window=10.0, k=2)
        assert model.k == 2

    def test_classifier_roundtrip(self):
        model = BehaviorModel.fit(make_trace(), window=10.0, k=2)
        clf = model.classifier()
        raw = model.timeline.raw_matrix()
        labels = clf.classify_matrix(raw)
        assert np.array_equal(labels, model.clustering.labels)

    def test_features_from_monitor(self):
        m = ClusterMonitor(window=5.0)
        from tests.test_harmony import feed_monitor

        feed_monitor(m, write_rate=45.0, acks=[0.001, 0.002, 0.003], key="hot")
        for i in range(20):
            feed_monitor(
                m, write_rate=0.4, acks=[0.001, 0.002, 0.003], key=f"cold{i}"
            )
        f = features_from_monitor(m, now=5.0)
        assert f.op_rate > 0
        assert 0.0 <= f.read_fraction <= 1.0
        assert f.key_skew > 0.5  # one hot key among many cold ones
        assert f.rw_overlap == 1.0

    def test_policy_switches_states(self, store):
        from repro.workload.traces import replay_trace

        trace = make_trace()
        model = BehaviorModel.fit(trace, window=10.0, k=2)
        monitor = ClusterMonitor(window=5.0)
        store.add_listener(monitor)
        policy = BehaviorPolicy(model, monitor, rf=3, update_interval=2.0)
        store.preload([f"user{i}" for i in range(1000)], 100)
        replay_trace(store, trace, policy, time_scale=0.2)
        store.sim.run()
        assert policy.current_state in range(model.k)
        states_seen = {s for _, s in policy.state_history}
        assert len(states_seen) == 2  # both planted regimes classified
        assert store.ops_completed() > 0

    def test_policy_validation(self):
        model = BehaviorModel.fit(make_trace(), window=10.0, k=2)
        with pytest.raises(ConfigError):
            BehaviorPolicy(model, ClusterMonitor(), rf=0)

    def test_policy_instantiates_each_recipe_once(self):
        model = BehaviorModel.fit(make_trace(), window=10.0, k=2)
        policy = BehaviorPolicy(model, ClusterMonitor(), rf=3)
        p1 = policy._policy_for(0)
        assert policy._policy_for(0) is p1

    def test_recipe_instantiation_kinds(self):
        model = BehaviorModel.fit(make_trace(), window=10.0, k=2)
        policy = BehaviorPolicy(model, ClusterMonitor(), rf=3)
        for kind, params in (
            ("eventual", {}),
            ("quorum", {}),
            ("strong", {}),
            ("geographic", {}),
            ("harmony", {"tolerance": 0.1}),
        ):
            built = policy._instantiate(PolicyAssignment(kind, params))
            assert hasattr(built, "read_level")
