"""Tests for the scenario registry and the parallel sweep runner."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.experiments import scenarios
from repro.experiments.sweep import (
    SweepRunner,
    derive_seed,
    expand_grid,
    parse_grid,
    plan_sweep,
)

# Scale knob for the tests: enough ops to exercise warmup + measurement,
# small enough that the whole module stays in the seconds range.
TINY_OPS = 400


class TestRegistry:
    def test_at_least_eight_scenarios(self):
        assert len(scenarios.names()) >= 8

    def test_names_sorted_and_described(self):
        got = scenarios.names()
        assert got == sorted(got)
        for name in got:
            spec = scenarios.get(name)
            assert spec.name == name
            assert spec.description
            assert isinstance(dict(spec.defaults), dict)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError, match="choose from"):
            scenarios.get("nope")

    def test_duplicate_registration_rejected(self):
        spec = scenarios.get("geo-replication")
        with pytest.raises(ConfigError, match="already registered"):
            scenarios.register(spec)

    def test_resolve_params_ignores_undeclared_axes(self):
        spec = scenarios.get("bismar-cost-capped")
        params = spec.resolve_params({"tolerance": 0.4, "stale_cap": 0.2})
        assert params == {"stale_cap": 0.2}

    def test_scenario_run_produces_metrics(self):
        run = scenarios.get("single-dc-ycsb-a").run(seed=3, ops=TINY_OPS)
        m = run.metrics()
        assert m["ops_completed"] > 0
        assert m["throughput_ops_s"] > 0
        assert m["policy"].startswith("harmony")
        # Harmony exposes its decision timeline as level fractions.
        assert abs(sum(m["level_fractions"].values()) - 1.0) < 1e-9

    def test_failure_storm_scenario_runs(self):
        run = scenarios.get("node-failure-storm").run(seed=3, ops=TINY_OPS)
        assert run.report.ops_completed > 0


class TestGrid:
    def test_expand_grid_cartesian_canonical(self):
        points = expand_grid({"b": [1, 2], "a": ["x", "y"]})
        assert points == [
            {"a": "x", "b": 1},
            {"a": "x", "b": 2},
            {"a": "y", "b": 1},
            {"a": "y", "b": 2},
        ]

    def test_expand_grid_empty(self):
        assert expand_grid({}) == [{}]

    def test_expand_grid_rejects_empty_axis(self):
        with pytest.raises(ConfigError, match="non-empty"):
            expand_grid({"a": []})

    def test_parse_grid_coerces_types(self):
        grid = parse_grid(["tolerance=0.2,0.4", "crash_count=2,4", "policy=strong"])
        assert grid == {
            "tolerance": [0.2, 0.4],
            "crash_count": [2, 4],
            "policy": ["strong"],
        }

    def test_parse_grid_rejects_malformed(self):
        with pytest.raises(ConfigError, match="key=v1,v2"):
            parse_grid(["tolerance"])

    def test_parse_grid_rejects_duplicate_axis(self):
        with pytest.raises(ConfigError, match="given twice"):
            parse_grid(["tolerance=0.2", "tolerance=0.4"])


class TestPlan:
    def test_seed_depends_only_on_identity(self):
        a = derive_seed(11, "s", {"x": 1})
        assert a == derive_seed(11, "s", {"x": 1})
        assert a != derive_seed(12, "s", {"x": 1})
        assert a != derive_seed(11, "t", {"x": 1})
        assert a != derive_seed(11, "s", {"x": 2})

    def test_plan_filters_axes_per_scenario(self):
        plan = plan_sweep(
            scenario_names=["geo-replication", "bismar-cost-capped"],
            grid={"tolerance": [0.2, 0.4]},
        )
        by_scenario = {}
        for job in plan:
            by_scenario.setdefault(job.scenario, []).append(job)
        # geo-replication declares tolerance -> 2 runs; bismar does not -> 1.
        assert len(by_scenario["geo-replication"]) == 2
        assert len(by_scenario["bismar-cost-capped"]) == 1

    def test_plan_covers_all_scenarios_by_default(self):
        plan = plan_sweep(grid={"tolerance": [0.2, 0.4]})
        assert {job.scenario for job in plan} == set(scenarios.names())

    def test_plan_rejects_axis_no_scenario_declares(self):
        with pytest.raises(ConfigError, match="tolerence"):
            plan_sweep(grid={"tolerence": [0.2]})  # typo must not sweep nothing

    def test_plan_order_is_canonical(self):
        grid = {"tolerance": [0.4, 0.2]}
        a = plan_sweep(scenario_names=["geo-replication", "flash-crowd"], grid=grid)
        b = plan_sweep(scenario_names=["flash-crowd", "geo-replication"], grid=grid)
        assert a == b


class TestSweepDeterminism:
    PLAN_KW = dict(
        scenario_names=["single-dc-ycsb-a", "geo-replication"],
        grid={"tolerance": [0.2, 0.4]},
        root_seed=7,
        ops=TINY_OPS,
    )

    def test_repeat_runs_byte_identical(self):
        plan = plan_sweep(**self.PLAN_KW)
        first = SweepRunner(jobs=1).run(plan)
        second = SweepRunner(jobs=1).run(plan)
        assert first.to_json() == second.to_json()
        assert first.to_csv() == second.to_csv()

    def test_parallel_matches_serial_byte_identical(self):
        plan = plan_sweep(**self.PLAN_KW)
        serial = SweepRunner(jobs=1).run(plan)
        parallel = SweepRunner(jobs=4).run(plan)
        assert serial.to_json() == parallel.to_json()
        assert serial.to_csv() == parallel.to_csv()

    def test_write_outputs(self, tmp_path):
        plan = plan_sweep(
            scenario_names=["single-dc-ycsb-a"], root_seed=7, ops=TINY_OPS
        )
        result = SweepRunner(jobs=1).run(plan)
        paths = result.write(str(tmp_path / "results"))
        assert (tmp_path / "results" / "results.json").read_text() == result.to_json()
        csv_text = (tmp_path / "results" / "results.csv").read_text()
        assert csv_text.splitlines()[0].startswith("scenario,params,policy")
        assert paths["json"].endswith("results.json")

    def test_jobs_validated(self):
        with pytest.raises(ConfigError):
            SweepRunner(jobs=0)


class TestCohortSweep:
    PLAN_KW = dict(
        scenario_names=["harmony-geo-cohort", "elastic-diurnal-cohort"],
        root_seed=7,
        ops=TINY_OPS,
    )

    def test_parallel_matches_serial_byte_identical(self):
        plan = plan_sweep(**self.PLAN_KW)
        serial = SweepRunner(jobs=1).run(plan)
        parallel = SweepRunner(jobs=4).run(plan)
        assert serial.to_json() == parallel.to_json()
        assert serial.to_csv() == parallel.to_csv()

    def test_rows_surface_mode_and_scale(self):
        plan = plan_sweep(
            scenario_names=["harmony-geo-cohort"], root_seed=7, ops=TINY_OPS
        )
        row = SweepRunner(jobs=1).run(plan).rows[0]
        assert row["client_mode"] == "cohort"
        assert row["clients"] == 1_000_000
        assert row["cohorts"]
        assert sum(c["members"] for c in row["cohorts"]) == 1_000_000

    def test_forced_mode_reuses_default_seeds(self):
        # client_mode is not part of the run identity: a forced-mode sweep
        # must be comparable run-for-run with the default sweep.
        default = plan_sweep(scenario_names=["geo-replication"], root_seed=7)
        forced = plan_sweep(
            scenario_names=["geo-replication"], root_seed=7, client_mode="cohort"
        )
        assert [j.seed for j in forced] == [j.seed for j in default]
        assert all(j.client_mode == "cohort" for j in forced)
        assert all(j.client_mode is None for j in default)

    def test_forced_mode_changes_execution_not_identity(self):
        plan = plan_sweep(
            scenario_names=["single-dc-ycsb-a"],
            root_seed=7,
            ops=TINY_OPS,
            client_mode="cohort",
        )
        row = SweepRunner(jobs=1).run(plan).rows[0]
        assert row["client_mode"] == "cohort"

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError, match="client_mode"):
            plan_sweep(scenario_names=["geo-replication"], client_mode="pooled")
