"""End-to-end integration tests: full stacks, failure injection, adaptation."""

import pytest

from repro.cluster.consistency import ConsistencyLevel
from repro.cluster.failures import FailureInjector
from repro.cluster.repair import AntiEntropyRepair
from repro.cost.billing import Biller
from repro.cost.pricing import EC2_US_EAST_2013
from repro.experiments.platforms import ec2_harmony_platform, grid5000_bismar_platform
from repro.experiments.runner import (
    bismar_factory,
    run_one,
    static_factory,
)
from repro.harmony.engine import HarmonyEngine
from repro.monitor.collector import ClusterMonitor
from repro.policy import StaticPolicy
from repro.stale.dcmodel import DeploymentInfo
from repro.workload.client import WorkloadRunner
from repro.workload.workloads import heavy_read_update


class TestConsistencySpectrum:
    """The core trade-off: weaker levels are faster and staler."""

    def test_latency_ordering_across_levels(self):
        plat = grid5000_bismar_platform()
        lat = {}
        for lv in (1, 3, 5):
            rep, _ = run_one(
                plat, static_factory(lv, lv, name=str(lv)),
                ops=3000, clients=8, seed=2,
            )
            lat[lv] = rep.read_latency_mean
        assert lat[1] < lat[3] < lat[5]

    def test_staleness_ordering_across_levels(self):
        plat = grid5000_bismar_platform()
        stale = {}
        for lv in (1, 2, 5):
            rep, _ = run_one(
                plat, static_factory(lv, 1, name=str(lv)),
                ops=4000, clients=16, seed=2,
            )
            stale[lv] = rep.stale_rate_strict
        assert stale[1] >= stale[2] >= stale[5]
        assert stale[1] > 0.0

    def test_quorum_read_write_never_stale_committed(self):
        plat = grid5000_bismar_platform()
        rep, _ = run_one(
            plat,
            static_factory(ConsistencyLevel.QUORUM, ConsistencyLevel.QUORUM),
            ops=4000, clients=16, seed=2,
        )
        assert rep.stale_rate == 0.0

    def test_cost_ordering_across_levels(self):
        plat = grid5000_bismar_platform()
        bills = {}
        for lv in (1, 5):
            _, bill = run_one(
                plat, static_factory(lv, lv, name=str(lv)),
                ops=3000, clients=8, seed=2,
            )
            bills[lv] = bill.total
        assert bills[1] < bills[5]


class TestAdaptiveUnderShift:
    """Harmony must escalate when the workload heats up and relax after."""

    def test_harmony_tracks_workload_shift(self):
        plat = ec2_harmony_platform()
        sim, store = plat.build(seed=4)
        monitor = ClusterMonitor(window=1.0)
        store.add_listener(monitor)
        engine = HarmonyEngine(
            monitor, tolerance=0.05, rf=3, update_interval=0.2,
            deployment=DeploymentInfo.from_store(store),
        )
        store.preload([f"user{i}" for i in range(200)], 1000)

        import numpy as np

        rng = np.random.default_rng(0)
        # phase 1 (cold): 1 op/ms over 200 keys; phase 2 (hot): one key hammered
        t = 0.0
        for _ in range(2000):
            t += float(rng.exponential(0.001))
            key = f"user{int(rng.integers(0, 200))}"
            if rng.random() < 0.5:
                sim.schedule_at(t, store.write, key, engine.write_level(t))
            else:
                sim.schedule_at(
                    t, _adaptive_read, store, key, engine
                )
        t_hot = t + 0.5
        for _ in range(4000):
            t_hot += float(rng.exponential(0.0004))
            if rng.random() < 0.5:
                sim.schedule_at(t_hot, store.write, "user0", 1)
            else:
                sim.schedule_at(t_hot, _adaptive_read, store, "user0", engine)
        sim.run()

        cold = [d.read_level for d in engine.decisions if d.t < t]
        hot = [d.read_level for d in engine.decisions if d.t > t + 0.5]
        assert cold and hot
        assert max(hot) > min(cold)  # escalated under contention


def _adaptive_read(store, key, engine):
    store.read(key, engine.read_level(store.sim.now))


class TestFailureScenarios:
    def test_workload_survives_node_crashes(self):
        plat = ec2_harmony_platform()
        sim, store = plat.build(seed=5)
        FailureInjector(store).crash_node(0, at=0.05, duration=0.5)
        FailureInjector(store).crash_node(7, at=0.10, duration=0.5)
        rep = WorkloadRunner(
            store, heavy_read_update(record_count=100),
            policy=StaticPolicy(1, 1), n_clients=8, ops_total=4000, seed=5,
        ).run()
        # availability: almost everything still completes at ONE
        assert rep.ops_completed >= 3900
        assert rep.failures.get("read_unavailable", 0) == 0

    def test_strong_reads_fail_when_replicas_down(self):
        plat = ec2_harmony_platform()
        sim, store = plat.build(seed=6)
        # crash 5 nodes permanently: some keys lose a replica
        for n in range(5):
            store.nodes[n].crash()
        rep = WorkloadRunner(
            store, heavy_read_update(record_count=100),
            policy=StaticPolicy(ConsistencyLevel.ALL, 1),
            n_clients=4, ops_total=1000, seed=6, max_time=30.0,
        ).run()
        assert rep.failures.get("read_unavailable", 0) > 0

    def test_partition_heals_and_repair_converges(self):
        plat = ec2_harmony_platform()
        sim, store = plat.build(seed=7)
        store.preload(["k"], 1000)
        inj = FailureInjector(store)
        inj.partition(0, 1, at=0.0, duration=1.0)
        # writes land only in dc0 during the partition
        for i in range(50):
            sim.schedule_at(0.01 * i, store.write, "k", 1, None, None, 0)
        repair = AntiEntropyRepair(store, interval=0.5, sample_fraction=1.0)
        repair.start()
        sim.run(until=4.0)
        repair.stop()
        sim.run(until=6.0)
        replicas = store.strategy.replicas("k", store.ring, store.topology)
        versions = {store.nodes[r].data["k"].write_id for r in replicas}
        assert len(versions) == 1

    def test_staleness_spikes_during_partition_window(self):
        plat = ec2_harmony_platform()
        sim, store = plat.build(seed=8)
        store.preload([f"user{i}" for i in range(50)], 1000)
        inj = FailureInjector(store)
        inj.partition(0, 1, at=0.2, duration=0.4)

        import numpy as np

        rng = np.random.default_rng(1)
        t = 0.0
        for _ in range(6000):
            t += float(rng.exponential(0.0002))
            key = f"user{int(rng.integers(0, 50))}"
            dc0_coord = int(rng.integers(0, 10))
            dc1_coord = int(rng.integers(10, 20))
            if rng.random() < 0.5:
                sim.schedule_at(t, store.write, key, 1, None, None, dc0_coord)
            else:
                sim.schedule_at(t, store.read, key, 1, None, dc1_coord)
        sim.run()
        # reads from dc1 during the cut must have seen stale data
        assert store.oracle.stale_rate > 0.01


class TestBillingIntegration:
    def test_bill_matches_measured_activity(self):
        plat = grid5000_bismar_platform()
        sim, store = plat.build(seed=9)
        spec = heavy_read_update(record_count=100)
        biller = Biller(store, EC2_US_EAST_2013, spec.data_size_bytes())
        rep = WorkloadRunner(
            store, spec, policy=StaticPolicy(1, 1),
            n_clients=8, ops_total=3000, seed=9,
        ).run()
        bill = biller.bill()
        assert bill.ops == rep.ops_completed
        assert bill.duration == pytest.approx(rep.duration, rel=0.2)
        # network part prices exactly the billable traffic
        gb = store.network.traffic.billable_bytes() / 1e9
        assert bill.network_cost == pytest.approx(
            gb * EC2_US_EAST_2013.transfer_inter_region_gb, rel=1e-6
        )

    def test_bismar_cheaper_than_quorum_fresher_than_one(self):
        plat = grid5000_bismar_platform()
        results = {}
        for name, factory in (
            ("one", static_factory(1, 1)),
            ("quorum", static_factory(ConsistencyLevel.QUORUM, ConsistencyLevel.QUORUM)),
            ("bismar", bismar_factory(plat.prices, stale_cap=0.05)),
        ):
            rep, bill = run_one(
                plat, factory, ops=6000, clients=16, seed=10,
                target_throughput=4000.0,
            )
            results[name] = (rep, bill)
        bismar_rep, bismar_bill = results["bismar"]
        one_rep, _ = results["one"]
        _, quorum_bill = results["quorum"]
        assert bismar_bill.cost_per_kop < quorum_bill.cost_per_kop
        assert bismar_rep.stale_rate_strict < one_rep.stale_rate_strict


class TestEstimatorAccuracy:
    def test_model_tracks_simulator_at_one(self):
        """The strict estimator and the oracle must agree on the order of
        magnitude for level ONE (the Harmony premise)."""
        plat = grid5000_bismar_platform()
        sim, store = plat.build(seed=11)
        monitor = ClusterMonitor(window=2.0)
        store.add_listener(monitor)
        rep = WorkloadRunner(
            store, heavy_read_update(record_count=100),
            policy=StaticPolicy(1, 1), n_clients=16, ops_total=8000, seed=11,
            target_throughput=5000.0, warmup_fraction=0.25,
        ).run()
        from repro.stale.dcmodel import system_stale_rate_dc

        info = DeploymentInfo.from_store(store)
        snap = monitor.snapshot()
        est = system_stale_rate_dc(info, snap.write_rate, snap.key_profile, 1)
        measured = rep.stale_rate_strict
        assert measured > 0
        # same order of magnitude, estimator conservative-ish
        assert est == pytest.approx(measured, rel=1.0)
