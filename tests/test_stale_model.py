"""Tests for the closed-form, strict, DC-aware and Monte-Carlo stale models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.stale.dcmodel import DeploymentInfo, per_key_stale_dc, system_stale_rate_dc
from repro.stale.model import (
    StaleModelParams,
    closed_form_exponential,
    params_from_snapshot,
    per_key_stale_probability,
    per_key_stale_probability_strict,
    system_stale_rate,
)
from repro.stale.montecarlo import MonteCarloStaleEstimator

WINDOWS5 = [0.0, 0.002, 0.004, 0.010, 0.015]


class TestCommittedModel:
    def test_zero_write_rate(self):
        assert per_key_stale_probability(0.0, 1, 1, WINDOWS5) == 0.0

    def test_quorum_intersection_zero(self):
        for r in range(1, 6):
            for w in range(1, 6):
                p = per_key_stale_probability(10.0, r, w, WINDOWS5)
                if r + w > 5:
                    assert p == 0.0
                else:
                    assert p >= 0.0

    def test_monotone_decreasing_in_read_level(self):
        probs = [per_key_stale_probability(20.0, r, 1, WINDOWS5) for r in range(1, 6)]
        for a, b in zip(probs, probs[1:]):
            assert a >= b - 1e-12

    def test_monotone_increasing_in_write_rate(self):
        probs = [
            per_key_stale_probability(lam, 1, 1, WINDOWS5)
            for lam in (0.1, 1.0, 10.0, 100.0)
        ]
        for a, b in zip(probs, probs[1:]):
            assert b >= a

    def test_monotone_in_windows(self):
        small = per_key_stale_probability(10.0, 1, 1, [0.0, 0.001, 0.001])
        large = per_key_stale_probability(10.0, 1, 1, [0.0, 0.1, 0.1])
        assert large > small

    def test_single_replica_always_fresh(self):
        # RF=1: the only replica is the synchronous one
        assert per_key_stale_probability(100.0, 1, 1, [0.0]) == 0.0

    def test_exact_two_replica_case(self):
        # RF=2, w=1, r=1: avoid=1/2; contacted laggard window W with prob 1
        lam, w2 = 5.0, 0.01
        expected = 0.5 * (1 - math.exp(-lam * w2))
        got = per_key_stale_probability(lam, 1, 1, [0.0, w2])
        assert got == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ConfigError):
            per_key_stale_probability(-1.0, 1, 1, WINDOWS5)
        with pytest.raises(ConfigError):
            per_key_stale_probability(1.0, 0, 1, WINDOWS5)
        with pytest.raises(ConfigError):
            per_key_stale_probability(1.0, 1, 9, WINDOWS5)

    @given(
        st.floats(0.0, 1000.0),
        st.integers(1, 5),
        st.integers(1, 5),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_valid_probability(self, lam, r, w):
        p = per_key_stale_probability(lam, r, w, WINDOWS5)
        assert 0.0 <= p <= 1.0


class TestStrictModel:
    def test_no_quorum_shortcut(self):
        # strict staleness is positive even for r+w > N (in-flight races)
        p = per_key_stale_probability_strict(50.0, 5, [0.001] * 5)
        assert p > 0.0

    def test_strict_geq_committed(self):
        # full apply windows always dominate post-commit residuals
        lam = 20.0
        full = [0.001, 0.003, 0.005, 0.012, 0.018]
        residual = [max(x - full[0], 0.0) for x in full]
        for r in range(1, 6):
            s = per_key_stale_probability_strict(lam, r, full)
            c = per_key_stale_probability(lam, r, 1, residual)
            assert s >= c - 1e-12

    def test_monotone_decreasing_in_read_level(self):
        probs = [
            per_key_stale_probability_strict(20.0, r, WINDOWS5) for r in range(1, 6)
        ]
        for a, b in zip(probs, probs[1:]):
            assert a >= b - 1e-12

    def test_validation(self):
        with pytest.raises(ConfigError):
            per_key_stale_probability_strict(1.0, 0, WINDOWS5)
        with pytest.raises(ConfigError):
            per_key_stale_probability_strict(1.0, 1, [])


class TestExponentialClosedForm:
    def test_formula(self):
        lam, theta, rf = 10.0, 0.01, 5
        for r in (1, 2):
            avoid = math.comb(rf - 1, r) / math.comb(rf, r)
            expected = avoid * lam * theta / (lam * theta + r)
            assert closed_form_exponential(lam, r, 1, rf, theta) == pytest.approx(
                expected
            )

    def test_quorum_zero(self):
        assert closed_form_exponential(10.0, 3, 3, 5, 0.01) == 0.0

    def test_degenerate(self):
        assert closed_form_exponential(0.0, 1, 1, 3, 0.01) == 0.0
        assert closed_form_exponential(10.0, 1, 1, 3, 0.0) == 0.0


class TestSystemAggregation:
    def test_uniform_profile(self):
        params = StaleModelParams(
            write_rate=100.0,
            windows=WINDOWS5,
            key_profile=[(0.01, 0.01, 100)],  # 100 uniform keys
            strict=False,
        )
        per_key = per_key_stale_probability(1.0, 1, 1, WINDOWS5)
        assert system_stale_rate(params, 1, 1) == pytest.approx(per_key)

    def test_skew_increases_staleness(self):
        uniform = StaleModelParams(
            write_rate=100.0, windows=WINDOWS5,
            key_profile=[(0.01, 0.01, 100)], strict=True,
        )
        skewed = StaleModelParams(
            write_rate=100.0, windows=WINDOWS5,
            key_profile=[(0.5, 0.5, 1), (0.005, 0.005, 100)], strict=True,
        )
        assert system_stale_rate(skewed, 1, 1) > system_stale_rate(uniform, 1, 1)

    def test_empty_profile(self):
        params = StaleModelParams(
            write_rate=10.0, windows=WINDOWS5, key_profile=[]
        )
        assert system_stale_rate(params, 1, 1) == 0.0

    def test_rf_window_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            StaleModelParams(
                write_rate=1.0, windows=[0.0, 0.1], key_profile=[(1, 1, 1)], rf=5
            )


class TestParamsFromSnapshot:
    def _snap(self, acks, write_rate=10.0):
        from repro.monitor.collector import MonitorSnapshot

        return MonitorSnapshot(
            t=1.0,
            read_rate=20.0,
            write_rate=write_rate,
            ack_rank_means=acks,
            key_profile=[(1.0, 1.0, 1)],
            read_latency=0.001,
            write_latency=0.001,
        )

    def test_strict_uses_full_ack_delays(self):
        p = params_from_snapshot(self._snap([0.001, 0.01]), 1, fallback_rf=2)
        assert list(p.windows) == [0.001, 0.01]
        assert p.strict

    def test_committed_uses_residuals(self):
        p = params_from_snapshot(
            self._snap([0.001, 0.01]), 1, fallback_rf=2, strict=False
        )
        assert list(p.windows) == pytest.approx([0.0, 0.009])

    def test_cold_start_fallback(self):
        p = params_from_snapshot(self._snap([]), 1, fallback_rf=3, fallback_window=0.05)
        assert p.rf == 3
        assert list(p.windows) == [0.05] * 3


class TestDeploymentInfo:
    def _info(self):
        return DeploymentInfo(
            coordinator_share=[0.6, 0.4],
            rf_per_dc=[3, 2],
            delay=[[0.0002, 0.010], [0.010, 0.0002]],
            write_service=0.0005,
            read_service=0.0007,
        )

    def test_shares_normalized(self):
        info = DeploymentInfo(
            coordinator_share=[3, 2],
            rf_per_dc=[1, 1],
            delay=[[0.0, 0.01], [0.01, 0.0]],
            write_service=0.0,
            read_service=0.0,
        )
        assert sum(info.coordinator_share) == pytest.approx(1.0)

    def test_alignment_checked(self):
        with pytest.raises(ConfigError):
            DeploymentInfo([1.0], [1, 1], [[0.0]], 0.0, 0.0)

    def test_dc_model_properties(self):
        info = self._info()
        # level 5 contacts both DCs: one of them always has the write locally
        assert per_key_stale_dc(info, 100.0, 5) == pytest.approx(0.0, abs=1e-6)
        # level 1 is exposed to the WAN window
        p1 = per_key_stale_dc(info, 100.0, 1)
        assert p1 > 0.1
        # monotone in read level
        probs = [per_key_stale_dc(info, 100.0, r) for r in range(1, 6)]
        for a, b in zip(probs, probs[1:]):
            assert a >= b - 1e-9

    def test_local_reads_blind_to_remote_commits(self):
        # r=3 keeps a dc0 reader fully local: dc1-coordinated writes are
        # invisible for the WAN delay, so staleness stays high (the effect
        # the uniform-subset model misses).
        info = self._info()
        p3 = per_key_stale_dc(info, 100.0, 3)
        p4 = per_key_stale_dc(info, 100.0, 4)
        assert p3 > 0.05
        assert p4 == pytest.approx(0.0, abs=1e-6)

    def test_from_store(self, store):
        info = DeploymentInfo.from_store(store)
        assert info.rf_per_dc == [2, 1]
        assert info.n_dcs == 2
        assert info.rf_total == 3
        assert info.delay[0][1] == pytest.approx(0.010)
        assert info.delay[0][0] == pytest.approx(0.0002)

    def test_system_aggregation(self):
        info = self._info()
        profile = [(0.5, 0.5, 1), (0.005, 0.005, 100)]
        p = system_stale_rate_dc(info, 100.0, profile, 1)
        assert 0.0 < p <= 1.0
        assert system_stale_rate_dc(info, 100.0, [], 1) == 0.0

    def test_validation(self):
        info = self._info()
        with pytest.raises(ConfigError):
            per_key_stale_dc(info, -1.0, 1)
        with pytest.raises(ConfigError):
            per_key_stale_dc(info, 1.0, 9)


class TestMonteCarloAgreement:
    def test_deterministic_windows_match_closed_form(self):
        base = np.array([0.001, 0.01, 0.02, 0.05, 0.08])

        def sampler(rng, n):
            return np.tile(base, (n, 1))

        lam = 4.0
        mc = MonteCarloStaleEstimator(
            write_rate=lam, read_rate=80.0, rf=5, delay_sampler=sampler, rng=1
        )
        for w in (1, 2):
            windows = np.maximum(base - np.sort(base)[w - 1], 0.0)
            for r in (1, 2, 3):
                cf = per_key_stale_probability(lam, r, w, windows)
                est = mc.estimate(r, w, horizon=300.0)
                assert est == pytest.approx(cf, abs=0.02)

    def test_quorum_zero_exact(self):
        mc = MonteCarloStaleEstimator(write_rate=10.0, read_rate=50.0, rf=3, rng=0)
        assert mc.estimate(2, 2, horizon=100.0) == 0.0

    def test_matrix_shape_and_monotonicity(self):
        mc = MonteCarloStaleEstimator(write_rate=10.0, read_rate=100.0, rf=4, rng=2)
        mat = mc.estimate_matrix(1, horizon=150.0)
        assert mat.shape == (4,)
        assert mat[0] >= mat[-1]

    def test_validation(self):
        with pytest.raises(ConfigError):
            MonteCarloStaleEstimator(write_rate=0.0, read_rate=1.0, rf=3)
        mc = MonteCarloStaleEstimator(write_rate=1.0, read_rate=1.0, rf=3)
        with pytest.raises(ConfigError):
            mc.estimate(0, 1)
