"""Tests for failure injection, hinted handoff and anti-entropy repair."""

import pytest

from repro.common.errors import ConfigError
from repro.cluster.consistency import ConsistencyLevel
from repro.cluster.failures import FailureInjector
from repro.cluster.hints import HintStore
from repro.cluster.repair import AntiEntropyRepair
from repro.cluster.versions import Version


class TestHintStore:
    def test_add_and_drain(self):
        h = HintStore()
        v = Version(1.0, 1, 10)
        h.add(3, "k", v)
        assert h.pending_for(3) == 1
        drained = h.drain(3)
        assert drained == [("k", v)]
        assert h.pending_for(3) == 0
        assert h.replayed == 1

    def test_cap_evicts_oldest_and_counts_drops(self):
        h = HintStore(max_hints_per_node=2)
        versions = [Version(float(i), i, 10) for i in range(5)]
        for i, v in enumerate(versions):
            h.add(1, f"k{i}", v)
        # The cap holds: only the 2 newest hints survive, oldest went first.
        assert h.pending_for(1) == 2
        assert h.dropped == 3
        assert h.stored == 5
        drained = h.drain(1)
        assert drained == [("k3", versions[3]), ("k4", versions[4])]

    def test_cap_never_exceeded_interleaved_with_drains(self):
        h = HintStore(max_hints_per_node=3)
        for i in range(10):
            h.add(2, f"k{i}", Version(float(i), i, 10))
            assert h.pending_for(2) <= 3
        assert len(h.drain(2)) == 3
        h.add(2, "fresh", Version(11.0, 11, 10))
        assert h.pending_for(2) == 1
        assert h.dropped == 7

    def test_drain_unknown_node(self):
        assert HintStore().drain(9) == []


class TestFailureInjector:
    def test_crash_storm_rolls_through_nodes(self, store):
        inj = FailureInjector(store)
        inj.crash_storm([0, 2, 4], start=1.0, interval=2.0, downtime=1.0)
        store.sim.run(until=10.0)
        crashes = [e for e in inj.events if e.kind == "node-crash"]
        recoveries = [e for e in inj.events if e.kind == "node-recover"]
        assert [e.t for e in crashes] == [1.0, 3.0, 5.0]
        assert [e.t for e in recoveries] == [2.0, 4.0, 6.0]
        assert all(store.nodes[n].up for n in (0, 2, 4))

    def test_crash_storm_validates_timing(self, store):
        inj = FailureInjector(store)
        with pytest.raises(ConfigError):
            inj.crash_storm([0], start=0.0, interval=0.0, downtime=1.0)
        with pytest.raises(ConfigError):
            inj.crash_storm([0], start=0.0, interval=1.0, downtime=-1.0)

    def test_crash_and_recover(self, store):
        inj = FailureInjector(store)
        inj.crash_node(0, at=1.0, duration=2.0)
        store.sim.run(until=1.5)
        assert not store.nodes[0].up
        store.sim.run(until=4.0)
        assert store.nodes[0].up
        assert [e.kind for e in inj.events] == ["node-crash", "node-recover"]

    def test_crash_validation(self, store):
        inj = FailureInjector(store)
        store.sim.schedule(5.0, lambda: None)
        store.sim.run()
        with pytest.raises(ConfigError):
            inj.crash_node(0, at=1.0)  # in the past
        with pytest.raises(ConfigError):
            inj.crash_node(0, at=10.0, duration=0.0)

    def test_partition_window(self, store):
        inj = FailureInjector(store)
        inj.partition(0, 1, at=1.0, duration=1.0)
        store.sim.run(until=1.5)
        assert store.network.is_partitioned(0, 3)
        store.sim.run(until=3.0)
        assert not store.network.is_partitioned(0, 3)

    def test_partition_validation(self, store):
        inj = FailureInjector(store)
        with pytest.raises(ConfigError):
            inj.partition(0, 1, at=0.0, duration=-1.0)

    def test_recovery_hint_replay_notifies_propagation_listeners(self, store):
        # A write whose replica was down propagates for real only when the
        # hint replays at recovery; monitors must see that completion
        # through the same on_write_propagated path normal writes use.
        class Probe:
            def __init__(self):
                self.propagated = []

            def on_op_complete(self, result):
                pass

            def on_write_propagated(self, result):
                self.propagated.append(result)

        probe = Probe()
        store.add_listener(probe)
        replicas = store.strategy.replicas("k", store.ring, store.topology)
        target = replicas[0]
        store.nodes[target].crash()
        store.sim.schedule_at(0.1, store.write, "k", 1, None)
        store.sim.run()
        before = len(probe.propagated)
        store.sim.schedule_at(store.sim.now + 0.5, store.on_node_recover, target)
        store.sim.run()
        replays = probe.propagated[before:]
        assert len(replays) == 1
        assert replays[0].level_label == "hint-replay"
        assert replays[0].key == "k"
        # The observed delay spans the downtime (write start -> replay apply).
        assert replays[0].ack_delays[0] > 0.5

    def test_node_listeners_see_crash_and_recovery(self, store):
        events = []

        class Listener:
            def on_node_crash(self, node_id):
                events.append(("crash", node_id))

            def on_node_recover(self, node_id):
                events.append(("recover", node_id))

        store.add_node_listener(Listener())
        inj = FailureInjector(store)
        inj.crash_node(2, at=1.0, duration=2.0)
        store.sim.run(until=5.0)
        assert events == [("crash", 2), ("recover", 2)]

    def test_hints_replayed_after_recovery(self, store):
        # crash a replica of "k", write, recover: hint should patch it
        replicas = store.strategy.replicas("k", store.ring, store.topology)
        target = replicas[0]
        store.nodes[target].crash()
        results = []
        store.sim.schedule_at(0.1, store.write, "k", 1, results.append)
        store.sim.run()
        assert results[0].ok
        assert store.hints.pending_for(target) == 1
        assert "k" not in store.nodes[target].data

        store.sim.schedule_at(store.sim.now + 0.1, store.on_node_recover, target)
        store.sim.run()
        assert "k" in store.nodes[target].data
        assert store.hints.pending_for(target) == 0

    def test_writes_during_partition_miss_remote_dc(self, store):
        store.network.partition_dcs(0, 1)
        results = []
        # pin coordinator in dc0; the dc1 replica never hears about the write
        store.sim.schedule_at(0.0, store.write, "k", 1, results.append, None, 0)
        store.sim.run()
        assert results[0].ok  # level ONE met locally
        replicas = store.strategy.replicas("k", store.ring, store.topology)
        remote = [r for r in replicas if store.topology.dc_of(r) == 1]
        for r in remote:
            assert "k" not in store.nodes[r].data

    def test_each_quorum_fails_under_partition(self, store):
        store.network.partition_dcs(0, 1)
        results = []
        store.sim.schedule_at(
            0.0, store.write, "k", ConsistencyLevel.EACH_QUORUM, results.append, None, 0
        )
        store.sim.run(until=10.0)
        assert not results[0].ok
        assert results[0].error == "timeout"


class TestAntiEntropyRepair:
    def test_validation(self, store):
        with pytest.raises(ConfigError):
            AntiEntropyRepair(store, interval=0.0)
        with pytest.raises(ConfigError):
            AntiEntropyRepair(store, sample_fraction=0.0)
        with pytest.raises(ConfigError):
            AntiEntropyRepair(store, sample_fraction=1.5)

    def test_repairs_partition_divergence(self, store):
        # write during a partition, heal, then repair must reconverge replicas
        store.network.partition_dcs(0, 1)
        store.sim.schedule_at(0.0, store.write, "k", 1, None, None, 0)
        store.sim.run()
        store.network.heal_all()

        repair = AntiEntropyRepair(store, interval=1.0, sample_fraction=1.0, rng=0)
        repair.start()
        store.sim.run(until=3.0)
        repair.stop()
        store.sim.run(until=4.0)

        replicas = store.strategy.replicas("k", store.ring, store.topology)
        versions = {store.nodes[r].data.get("k") for r in replicas}
        assert len(versions) == 1  # converged
        assert repair.repairs_streamed >= 1
        assert repair.sweeps >= 2

    def test_no_keys_no_crash(self, store):
        repair = AntiEntropyRepair(store, interval=0.5, sample_fraction=0.5)
        repair.start()
        store.sim.run(until=2.0)
        assert repair.sweeps >= 3
        assert repair.keys_examined == 0

    def test_all_replicas_down_mid_sweep_is_a_no_op(self, store):
        # The crash-window path: every replica of the sampled key is down
        # when the sweep fires. Nothing may stream and nothing may crash.
        store.sim.schedule_at(0.0, store.write, "k", 1, None, None, 0)
        store.sim.run()
        replicas = store.strategy.replicas("k", store.ring, store.topology)
        for r in replicas:
            store.nodes[r].crash()
        repair = AntiEntropyRepair(store, interval=0.5, sample_fraction=1.0, rng=0)
        repair.start()
        store.sim.run(until=1.2)
        repair.stop()
        store.sim.run(until=2.0)
        assert repair.sweeps >= 2
        assert repair.keys_examined >= 1  # the key was sampled...
        assert repair.repairs_streamed == 0  # ...but nothing was streamed
        # Replica data is untouched (no half-repair while down).
        before = {r: store.nodes[r].data.get("k") for r in replicas}
        for r in replicas:
            store.on_node_recover(r)
        assert {r: store.nodes[r].data.get("k") for r in replicas} == before

    def test_key_vanished_from_all_replicas_mid_sweep(self, store):
        # Even harder crash-window shape: the key is in the written-key
        # population but no replica holds any version (e.g. the write was
        # dropped everywhere). _repair_key must bail out cleanly.
        store._written_set.add("ghost")
        store._written_keys.append("ghost")
        repair = AntiEntropyRepair(store, interval=0.5, sample_fraction=1.0, rng=0)
        repair.start()
        store.sim.run(until=1.2)
        repair.stop()
        assert repair.keys_examined >= 1
        assert repair.repairs_streamed == 0

    def test_skips_down_replicas(self, store):
        store.network.partition_dcs(0, 1)
        store.sim.schedule_at(0.0, store.write, "k", 1, None, None, 0)
        store.sim.run()
        store.network.heal_all()
        # crash the lagging replica: repair must not stream to it
        replicas = store.strategy.replicas("k", store.ring, store.topology)
        lagging = [r for r in replicas if "k" not in store.nodes[r].data]
        for r in lagging:
            store.nodes[r].crash()
        repair = AntiEntropyRepair(store, interval=0.5, sample_fraction=1.0)
        repair.start()
        store.sim.run(until=1.2)
        repair.stop()
        for r in lagging:
            assert "k" not in store.nodes[r].data
