"""Tests for failure injection, hinted handoff and anti-entropy repair."""

import pytest

from repro.common.errors import ConfigError
from repro.cluster.consistency import ConsistencyLevel
from repro.cluster.failures import FailureInjector
from repro.cluster.hints import HintStore
from repro.cluster.repair import AntiEntropyRepair
from repro.cluster.versions import Version


class TestHintStore:
    def test_add_and_drain(self):
        h = HintStore()
        v = Version(1.0, 1, 10)
        h.add(3, "k", v)
        assert h.pending_for(3) == 1
        drained = h.drain(3)
        assert drained == [("k", v)]
        assert h.pending_for(3) == 0
        assert h.replayed == 1

    def test_overflow(self):
        h = HintStore(max_hints_per_node=2)
        v = Version(1.0, 1, 10)
        for _ in range(5):
            h.add(1, "k", v)
        assert h.pending_for(1) == 2
        assert h.overflowed == 3

    def test_drain_unknown_node(self):
        assert HintStore().drain(9) == []


class TestFailureInjector:
    def test_crash_storm_rolls_through_nodes(self, store):
        inj = FailureInjector(store)
        inj.crash_storm([0, 2, 4], start=1.0, interval=2.0, downtime=1.0)
        store.sim.run(until=10.0)
        crashes = [(t, e) for t, e in inj.log if e.startswith("crash")]
        recoveries = [(t, e) for t, e in inj.log if e.startswith("recover")]
        assert [t for t, _ in crashes] == [1.0, 3.0, 5.0]
        assert [t for t, _ in recoveries] == [2.0, 4.0, 6.0]
        assert all(store.nodes[n].up for n in (0, 2, 4))

    def test_crash_storm_validates_timing(self, store):
        inj = FailureInjector(store)
        with pytest.raises(ConfigError):
            inj.crash_storm([0], start=0.0, interval=0.0, downtime=1.0)
        with pytest.raises(ConfigError):
            inj.crash_storm([0], start=0.0, interval=1.0, downtime=-1.0)

    def test_crash_and_recover(self, store):
        inj = FailureInjector(store)
        inj.crash_node(0, at=1.0, duration=2.0)
        store.sim.run(until=1.5)
        assert not store.nodes[0].up
        store.sim.run(until=4.0)
        assert store.nodes[0].up
        assert len(inj.log) == 2

    def test_crash_validation(self, store):
        inj = FailureInjector(store)
        store.sim.schedule(5.0, lambda: None)
        store.sim.run()
        with pytest.raises(ConfigError):
            inj.crash_node(0, at=1.0)  # in the past
        with pytest.raises(ConfigError):
            inj.crash_node(0, at=10.0, duration=0.0)

    def test_partition_window(self, store):
        inj = FailureInjector(store)
        inj.partition(0, 1, at=1.0, duration=1.0)
        store.sim.run(until=1.5)
        assert store.network.is_partitioned(0, 3)
        store.sim.run(until=3.0)
        assert not store.network.is_partitioned(0, 3)

    def test_partition_validation(self, store):
        inj = FailureInjector(store)
        with pytest.raises(ConfigError):
            inj.partition(0, 1, at=0.0, duration=-1.0)

    def test_hints_replayed_after_recovery(self, store):
        # crash a replica of "k", write, recover: hint should patch it
        replicas = store.strategy.replicas("k", store.ring, store.topology)
        target = replicas[0]
        store.nodes[target].crash()
        results = []
        store.sim.schedule_at(0.1, store.write, "k", 1, results.append)
        store.sim.run()
        assert results[0].ok
        assert store.hints.pending_for(target) == 1
        assert "k" not in store.nodes[target].data

        store.sim.schedule_at(store.sim.now + 0.1, store.on_node_recover, target)
        store.sim.run()
        assert "k" in store.nodes[target].data
        assert store.hints.pending_for(target) == 0

    def test_writes_during_partition_miss_remote_dc(self, store):
        store.network.partition_dcs(0, 1)
        results = []
        # pin coordinator in dc0; the dc1 replica never hears about the write
        store.sim.schedule_at(0.0, store.write, "k", 1, results.append, None, 0)
        store.sim.run()
        assert results[0].ok  # level ONE met locally
        replicas = store.strategy.replicas("k", store.ring, store.topology)
        remote = [r for r in replicas if store.topology.dc_of(r) == 1]
        for r in remote:
            assert "k" not in store.nodes[r].data

    def test_each_quorum_fails_under_partition(self, store):
        store.network.partition_dcs(0, 1)
        results = []
        store.sim.schedule_at(
            0.0, store.write, "k", ConsistencyLevel.EACH_QUORUM, results.append, None, 0
        )
        store.sim.run(until=10.0)
        assert not results[0].ok
        assert results[0].error == "timeout"


class TestAntiEntropyRepair:
    def test_validation(self, store):
        with pytest.raises(ConfigError):
            AntiEntropyRepair(store, interval=0.0)
        with pytest.raises(ConfigError):
            AntiEntropyRepair(store, sample_fraction=0.0)
        with pytest.raises(ConfigError):
            AntiEntropyRepair(store, sample_fraction=1.5)

    def test_repairs_partition_divergence(self, store):
        # write during a partition, heal, then repair must reconverge replicas
        store.network.partition_dcs(0, 1)
        store.sim.schedule_at(0.0, store.write, "k", 1, None, None, 0)
        store.sim.run()
        store.network.heal_all()

        repair = AntiEntropyRepair(store, interval=1.0, sample_fraction=1.0, rng=0)
        repair.start()
        store.sim.run(until=3.0)
        repair.stop()
        store.sim.run(until=4.0)

        replicas = store.strategy.replicas("k", store.ring, store.topology)
        versions = {store.nodes[r].data.get("k") for r in replicas}
        assert len(versions) == 1  # converged
        assert repair.repairs_streamed >= 1
        assert repair.sweeps >= 2

    def test_no_keys_no_crash(self, store):
        repair = AntiEntropyRepair(store, interval=0.5, sample_fraction=0.5)
        repair.start()
        store.sim.run(until=2.0)
        assert repair.sweeps >= 3
        assert repair.keys_examined == 0

    def test_skips_down_replicas(self, store):
        store.network.partition_dcs(0, 1)
        store.sim.schedule_at(0.0, store.write, "k", 1, None, None, 0)
        store.sim.run()
        store.network.heal_all()
        # crash the lagging replica: repair must not stream to it
        replicas = store.strategy.replicas("k", store.ring, store.topology)
        lagging = [r for r in replicas if "k" not in store.nodes[r].data]
        for r in lagging:
            store.nodes[r].crash()
        repair = AntiEntropyRepair(store, interval=0.5, sample_fraction=1.0)
        repair.start()
        store.sim.run(until=1.2)
        repair.stop()
        for r in lagging:
            assert "k" not in store.nodes[r].data
