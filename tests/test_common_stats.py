"""Unit + property tests for repro.common.stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.common.stats import (
    Ewma,
    Histogram,
    OnlineStats,
    RateEstimator,
    ReservoirSample,
    SlidingWindow,
)


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.n == 0
        assert s.mean == 0.0
        assert s.variance == 0.0
        assert s.std == 0.0

    def test_single_value(self):
        s = OnlineStats()
        s.add(5.0)
        assert s.n == 1
        assert s.mean == 5.0
        assert s.variance == 0.0
        assert s.min == 5.0
        assert s.max == 5.0

    def test_matches_numpy(self):
        xs = [1.5, 2.7, -3.2, 8.8, 0.0, 4.1]
        s = OnlineStats()
        for x in xs:
            s.add(x)
        assert s.mean == pytest.approx(np.mean(xs))
        assert s.variance == pytest.approx(np.var(xs, ddof=1))
        assert s.min == min(xs)
        assert s.max == max(xs)
        assert s.sum == pytest.approx(sum(xs))

    def test_add_many_ndarray_fast_path(self):
        xs = np.linspace(-3, 7, 101)
        s = OnlineStats()
        s.add_many(xs)
        assert s.n == 101
        assert s.mean == pytest.approx(xs.mean())
        assert s.variance == pytest.approx(xs.var(ddof=1))

    def test_add_many_iterable(self):
        s = OnlineStats()
        s.add_many(iter([1.0, 2.0, 3.0]))
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)

    def test_merge_empty_into_full(self):
        a = OnlineStats()
        a.add(1.0)
        a.merge(OnlineStats())
        assert a.n == 1 and a.mean == 1.0

    def test_merge_full_into_empty(self):
        a = OnlineStats()
        b = OnlineStats()
        b.add(3.0)
        b.add(5.0)
        a.merge(b)
        assert a.n == 2 and a.mean == pytest.approx(4.0)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_concatenation(self, xs, ys):
        merged = OnlineStats()
        for x in xs:
            merged.add(x)
        other = OnlineStats()
        for y in ys:
            other.add(y)
        merged.merge(other)
        direct = OnlineStats()
        for v in xs + ys:
            direct.add(v)
        assert merged.n == direct.n
        assert merged.mean == pytest.approx(direct.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(direct.variance, rel=1e-6, abs=1e-4)
        assert merged.min == direct.min
        assert merged.max == direct.max


class TestEwma:
    def test_requires_exactly_one_mode(self):
        with pytest.raises(ConfigError):
            Ewma()
        with pytest.raises(ConfigError):
            Ewma(alpha=0.5, halflife=1.0)

    def test_alpha_bounds(self):
        with pytest.raises(ConfigError):
            Ewma(alpha=0.0)
        with pytest.raises(ConfigError):
            Ewma(alpha=1.5)
        with pytest.raises(ConfigError):
            Ewma(halflife=-1.0)

    def test_first_update_sets_value(self):
        e = Ewma(alpha=0.3)
        assert not e.initialized
        assert e.value == 0.0
        e.update(10.0)
        assert e.initialized
        assert e.value == 10.0

    def test_alpha_blend(self):
        e = Ewma(alpha=0.5)
        e.update(0.0)
        e.update(10.0)
        assert e.value == pytest.approx(5.0)

    def test_halflife_decay(self):
        e = Ewma(halflife=1.0)
        e.update(0.0, t=0.0)
        e.update(10.0, t=1.0)  # exactly one halflife: weight 0.5
        assert e.value == pytest.approx(5.0)

    def test_halflife_requires_timestamp(self):
        e = Ewma(halflife=1.0)
        e.update(1.0, t=0.0)
        with pytest.raises(ConfigError):
            e.update(2.0)

    def test_converges_to_constant(self):
        e = Ewma(alpha=0.2)
        for _ in range(200):
            e.update(7.0)
        assert e.value == pytest.approx(7.0)


class TestHistogram:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Histogram(lo=0.0, hi=1.0)
        with pytest.raises(ConfigError):
            Histogram(lo=2.0, hi=1.0)
        with pytest.raises(ConfigError):
            Histogram(nbuckets=1)

    def test_mean_is_exact(self):
        h = Histogram(lo=1e-4, hi=10.0)
        for x in (0.001, 0.01, 0.1):
            h.add(x)
        assert h.mean == pytest.approx((0.001 + 0.01 + 0.1) / 3)

    def test_quantile_empty(self):
        h = Histogram()
        assert h.quantile(0.5) == 0.0

    def test_quantile_bounds_check(self):
        h = Histogram()
        with pytest.raises(ConfigError):
            h.quantile(1.5)

    def test_quantile_accuracy(self):
        h = Histogram(lo=1e-4, hi=10.0, nbuckets=512)
        rng = np.random.default_rng(0)
        xs = rng.lognormal(-3.0, 0.5, size=20_000)
        h.add_many(xs)
        for q in (0.5, 0.9, 0.99):
            approx = h.quantile(q)
            exact = float(np.quantile(xs, q))
            assert approx == pytest.approx(exact, rel=0.05)

    def test_below_and_above_range(self):
        h = Histogram(lo=0.01, hi=1.0)
        h.add(0.001)  # below
        h.add(5.0)  # above
        assert h.n == 2
        assert h.quantile(0.0) <= 0.01
        assert h.quantile(1.0) == 1.0

    def test_add_many_matches_add(self):
        xs = np.array([0.002, 0.02, 0.2, 2.0])
        h1 = Histogram(lo=1e-3, hi=1.0)
        h2 = Histogram(lo=1e-3, hi=1.0)
        for x in xs:
            h1.add(float(x))
        h2.add_many(xs)
        assert h1.n == h2.n
        assert np.array_equal(h1._counts, h2._counts)
        assert h1._below == h2._below and h1._above == h2._above

    def test_percentile_alias(self):
        h = Histogram()
        h.add(0.5)
        assert h.percentile(50) == h.quantile(0.5)


class TestSlidingWindow:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SlidingWindow(0.0)

    def test_eviction(self):
        w = SlidingWindow(span=1.0)
        w.add(0.0, 1.0)
        w.add(0.5, 2.0)
        assert w.count(0.9) == 2
        assert w.count(1.2) == 1  # item at t=0 expired
        assert w.sum(1.2) == 2.0

    def test_mean_empty(self):
        w = SlidingWindow(span=1.0)
        assert w.mean(10.0) == 0.0

    def test_values_snapshot(self):
        w = SlidingWindow(span=10.0)
        w.add(1.0, 3.0)
        w.add(2.0, 4.0)
        assert w.values(2.5) == [3.0, 4.0]


class TestRateEstimator:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RateEstimator(window=0.0)

    def test_zero_before_any_event(self):
        r = RateEstimator(window=1.0)
        assert r.rate(5.0) == 0.0

    def test_steady_rate(self):
        r = RateEstimator(window=2.0)
        for i in range(200):
            r.record(i * 0.01)  # 100 events/sec for 2s
        assert r.rate(2.0) == pytest.approx(100.0, rel=0.05)

    def test_cold_start_uses_elapsed_span(self):
        r = RateEstimator(window=10.0)
        for i in range(10):
            r.record(i * 0.1)  # 10 events in 0.9s ~ 11/s
        assert r.rate(1.0) == pytest.approx(10.0, rel=0.25)

    def test_rate_decays_after_burst(self):
        r = RateEstimator(window=1.0)
        for i in range(100):
            r.record(i * 0.001)
        assert r.rate(0.2) > 0
        assert r.rate(5.0) == 0.0  # all events expired


class TestReservoirSample:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ReservoirSample(0)

    def test_keeps_everything_under_capacity(self):
        r = ReservoirSample(10, rng=0)
        for i in range(5):
            r.add(float(i))
        assert sorted(r.sample) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_capacity_bound(self):
        r = ReservoirSample(10, rng=0)
        for i in range(1000):
            r.add(float(i))
        assert len(r.sample) == 10
        assert r.n == 1000

    def test_uniformity(self):
        # Each element should land in the reservoir with p = cap/n.
        hits = np.zeros(100)
        for seed in range(300):
            r = ReservoirSample(10, rng=seed)
            for i in range(100):
                r.add(float(i))
            for v in r.sample:
                hits[int(v)] += 1
        # expected 30 hits each; loose tolerance to stay deterministic
        assert hits.mean() == pytest.approx(30.0, abs=0.001)
        assert hits.std() < 12.0


class TestFidelityHelpers:
    """ks_distance / relative_error / within_tolerance (the fidelity suite's
    agreement measures)."""

    def test_ks_identical_samples(self):
        from repro.common.stats import ks_distance

        assert ks_distance([1.0, 2.0, 3.0], [3.0, 1.0, 2.0]) == 0.0

    def test_ks_disjoint_samples(self):
        from repro.common.stats import ks_distance

        assert ks_distance([0.0, 0.0], [1.0, 1.0]) == 1.0

    def test_ks_known_value(self):
        from repro.common.stats import ks_distance

        # F_a jumps to 1 at 0; F_b is 0 until 1: sup gap is 0.5 at x=0.5
        assert ks_distance([0.0, 1.0], [1.0, 2.0]) == pytest.approx(0.5)

    def test_ks_empty_rejected(self):
        from repro.common.stats import ks_distance

        with pytest.raises(ConfigError):
            ks_distance([], [1.0])
        with pytest.raises(ConfigError):
            ks_distance([1.0], [])

    @settings(deadline=None)
    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
    )
    def test_ks_bounded_and_symmetric(self, a, b):
        from repro.common.stats import ks_distance

        d = ks_distance(a, b)
        assert 0.0 <= d <= 1.0
        assert d == pytest.approx(ks_distance(b, a))

    def test_relative_error_basic(self):
        from repro.common.stats import relative_error

        assert relative_error(110.0, 100.0) == pytest.approx(0.10)
        assert relative_error(90.0, 100.0) == pytest.approx(0.10)

    def test_relative_error_floor_guards_near_zero(self):
        from repro.common.stats import relative_error

        # without the floor a 0.001-vs-0.002 staleness gap is a 1x error;
        # with the floor it is measured against the scale that matters.
        assert relative_error(0.002, 0.001) == pytest.approx(1.0)
        assert relative_error(0.002, 0.001, floor=0.1) == pytest.approx(0.01)

    def test_relative_error_zero_reference(self):
        import math

        from repro.common.stats import relative_error

        assert relative_error(0.0, 0.0) == 0.0
        assert math.isinf(relative_error(1.0, 0.0))

    def test_within_tolerance(self):
        from repro.common.stats import within_tolerance

        assert within_tolerance(105.0, 100.0, rel=0.10)
        assert not within_tolerance(125.0, 100.0, rel=0.10)
        assert within_tolerance(0.0, 0.03, rel=0.35, abs_floor=0.1)
