"""Tests for consistency levels, requirements and quorum arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError, ConsistencyError
from repro.cluster.consistency import (
    ConsistencyLevel,
    Requirement,
    quorum,
    quorum_intersects,
    resolve_level,
)


class TestQuorum:
    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (6, 4), (7, 4)]
    )
    def test_majority(self, n, expected):
        assert quorum(n) == expected

    @given(st.integers(1, 100))
    @settings(max_examples=50, deadline=None)
    def test_property_two_quorums_intersect(self, n):
        assert 2 * quorum(n) > n


class TestResolveLevel:
    def test_numeric_levels(self):
        for n in range(1, 6):
            req = resolve_level(n, rf_total=5)
            assert req.total == n
            assert req.label == f"n={n}"
            assert not req.per_dc

    def test_numeric_out_of_range(self):
        with pytest.raises(ConsistencyError):
            resolve_level(0, rf_total=3)
        with pytest.raises(ConsistencyError):
            resolve_level(4, rf_total=3)

    def test_bool_rejected(self):
        with pytest.raises(ConfigError):
            resolve_level(True, rf_total=3)  # bool is not a level

    def test_symbolic_counts(self):
        assert resolve_level(ConsistencyLevel.ONE, 3).total == 1
        assert resolve_level(ConsistencyLevel.TWO, 3).total == 2
        assert resolve_level(ConsistencyLevel.THREE, 3).total == 3
        assert resolve_level(ConsistencyLevel.QUORUM, 5).total == 3
        assert resolve_level(ConsistencyLevel.ALL, 5).total == 5

    def test_symbolic_exceeding_rf(self):
        with pytest.raises(ConsistencyError):
            resolve_level(ConsistencyLevel.THREE, 2)

    def test_invalid_rf(self):
        with pytest.raises(ConfigError):
            resolve_level(1, rf_total=0)

    def test_invalid_type(self):
        with pytest.raises(ConfigError):
            resolve_level("QUORUM", 3)  # type: ignore[arg-type]

    def test_local_quorum(self):
        req = resolve_level(
            ConsistencyLevel.LOCAL_QUORUM,
            rf_total=5,
            replicas_by_dc={0: 3, 1: 2},
            coordinator_dc=0,
        )
        assert req.total == 2  # quorum of 3 local replicas
        assert req.per_dc == {0: 2}

    def test_local_quorum_needs_context(self):
        with pytest.raises(ConfigError):
            resolve_level(ConsistencyLevel.LOCAL_QUORUM, 5)

    def test_local_quorum_no_local_replicas(self):
        with pytest.raises(ConsistencyError):
            resolve_level(
                ConsistencyLevel.LOCAL_QUORUM,
                rf_total=3,
                replicas_by_dc={0: 3},
                coordinator_dc=1,
            )

    def test_each_quorum(self):
        req = resolve_level(
            ConsistencyLevel.EACH_QUORUM,
            rf_total=5,
            replicas_by_dc={0: 3, 1: 2},
        )
        assert req.per_dc == {0: 2, 1: 2}
        assert req.total == 4

    def test_each_quorum_needs_context(self):
        with pytest.raises(ConfigError):
            resolve_level(ConsistencyLevel.EACH_QUORUM, 5)


class TestRequirement:
    def test_satisfied_total_only(self):
        req = Requirement(total=2)
        assert not req.satisfied(1, {})
        assert req.satisfied(2, {})

    def test_satisfied_per_dc(self):
        req = Requirement(total=3, per_dc={0: 2, 1: 1})
        assert not req.satisfied(3, {0: 1, 1: 2})  # dc0 short
        assert req.satisfied(3, {0: 2, 1: 1})

    def test_feasible(self):
        req = Requirement(total=3, per_dc={0: 2})
        assert not req.feasible(2, {0: 2})
        assert not req.feasible(5, {0: 1})
        assert req.feasible(3, {0: 2, 1: 1})


class TestQuorumIntersects:
    @given(st.integers(1, 10), st.integers(1, 10), st.integers(1, 10))
    @settings(max_examples=200, deadline=None)
    def test_property_matches_definition(self, r, w, rf):
        if r <= rf and w <= rf:
            assert quorum_intersects(r, w, rf) == (r + w > rf)

    def test_classic_cases(self):
        assert quorum_intersects(3, 3, 5)  # QUORUM/QUORUM @ RF5
        assert not quorum_intersects(1, 1, 3)  # ONE/ONE @ RF3
        assert quorum_intersects(1, 3, 3)  # ONE read after ALL write
        assert quorum_intersects(3, 1, 3)  # ALL read after ONE write
