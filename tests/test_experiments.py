"""Tests for platform presets and the experiment harness (scaled down)."""

import pytest

from repro.experiments.platforms import (
    ec2_cost_platform,
    ec2_harmony_platform,
    grid5000_bismar_platform,
    grid5000_harmony_platform,
)
from repro.experiments.runner import (
    bismar_factory,
    harmony_factory,
    rationing_factory,
    run_one,
    rwratio_factory,
    static_factory,
)


class TestPlatforms:
    @pytest.mark.parametrize(
        "factory,nodes,rf",
        [
            (ec2_harmony_platform, 20, 3),
            (grid5000_harmony_platform, 84, 3),
            (ec2_cost_platform, 18, 5),
            (grid5000_bismar_platform, 50, 5),
        ],
    )
    def test_paper_deployment_shapes(self, factory, nodes, rf):
        plat = factory()
        sim, store = plat.build(seed=0)
        assert store.topology.n_nodes == nodes
        assert store.strategy.rf_total == rf
        assert plat.rf == rf
        assert len(store.topology.datacenters) == 2

    def test_builds_are_independent(self):
        plat = ec2_harmony_platform()
        _, a = plat.build(seed=0)
        _, b = plat.build(seed=0)
        assert a is not b
        assert a.sim is not b.sim

    def test_scale_knob(self):
        small = ec2_cost_platform(scale=0.5)
        assert small.default_ops == 20_000
        assert small.default_record_count == 60

    def test_g5k_has_wan_latency(self):
        plat = grid5000_harmony_platform()
        _, store = plat.build(seed=0)
        wan = store.topology.mean_wan_delay()
        assert wan == pytest.approx(0.009, rel=0.01)


class TestRunOne:
    def test_static_run_returns_report_and_bill(self):
        plat = ec2_harmony_platform()
        rep, bill = run_one(
            plat, static_factory(1, 1, name="one"), ops=2000, clients=8, seed=1
        )
        assert rep.ops_completed > 0
        assert rep.policy == "one"
        assert bill.total > 0
        assert bill.ops > 0

    def test_warmup_excluded_from_bill(self):
        plat = ec2_harmony_platform()
        rep_full, bill_full = run_one(
            plat, static_factory(1, 1), ops=2000, clients=8, seed=1,
            warmup_fraction=0.0,
        )
        rep_warm, bill_warm = run_one(
            plat, static_factory(1, 1), ops=2000, clients=8, seed=1,
            warmup_fraction=0.5,
        )
        assert bill_warm.ops < bill_full.ops

    def test_harmony_factory_run(self):
        plat = ec2_harmony_platform()
        rep, _ = run_one(plat, harmony_factory(0.2), ops=3000, clients=8, seed=1)
        assert rep.policy == "harmony(0.2)"
        assert rep.ops_completed > 0
        assert rep.stale_rate_strict <= 0.2 + 0.1

    def test_bismar_factory_run(self):
        plat = grid5000_bismar_platform()
        rep, bill = run_one(
            plat, bismar_factory(plat.prices, stale_cap=0.1),
            ops=3000, clients=8, seed=1,
        )
        assert rep.policy.startswith("bismar")
        assert bill.total > 0

    def test_baseline_factories_run(self):
        plat = ec2_harmony_platform()
        for factory in (rationing_factory(0.01), rwratio_factory(2.0)):
            rep, _ = run_one(plat, factory, ops=1500, clients=4, seed=1)
            assert rep.ops_completed > 0

    def test_target_throughput_paces(self):
        plat = ec2_harmony_platform()
        rep, _ = run_one(
            plat, static_factory(1, 1), ops=2000, clients=8, seed=1,
            target_throughput=1000.0, warmup_fraction=0.0,
        )
        assert rep.throughput == pytest.approx(1000.0, rel=0.15)

    def test_seed_reproducibility(self):
        plat = ec2_harmony_platform()
        rep1, bill1 = run_one(plat, static_factory(1, 1), ops=1500, clients=4, seed=5)
        rep2, bill2 = run_one(plat, static_factory(1, 1), ops=1500, clients=4, seed=5)
        assert rep1.throughput == pytest.approx(rep2.throughput)
        assert rep1.stale_rate == rep2.stale_rate
        assert bill1.total == pytest.approx(bill2.total)
