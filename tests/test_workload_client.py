"""Tests for workload specs, clients, runner and traces."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.cluster.store import ReplicatedStore, StoreConfig
from repro.policy import StaticPolicy
from repro.workload.client import ClosedLoopClient, OpenLoopSource, WorkloadRunner
from repro.workload.traces import (
    PhasedTraceGenerator,
    TracePhase,
    TraceRecord,
    TraceRecorder,
    replay_trace,
)
from repro.workload.workloads import WORKLOADS, WorkloadSpec, heavy_read_update


class TestWorkloadSpec:
    def test_proportions_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(read_proportion=0.5, update_proportion=0.6)

    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(record_count=0)
        with pytest.raises(ConfigError):
            WorkloadSpec(value_size=0)

    def test_sample_op_mix(self):
        spec = WorkloadSpec(read_proportion=0.7, update_proportion=0.3)
        rng = np.random.default_rng(0)
        ops = [spec.sample_op(rng) for _ in range(5000)]
        assert ops.count("read") / 5000 == pytest.approx(0.7, abs=0.03)
        assert set(ops) == {"read", "update"}

    def test_key_naming_and_data_size(self):
        spec = WorkloadSpec(record_count=10, value_size=100)
        assert spec.key_of(3) == "user3"
        assert spec.data_size_bytes() == 1000

    def test_scaled(self):
        spec = heavy_read_update(record_count=100)
        bigger = spec.scaled(1000)
        assert bigger.record_count == 1000
        assert bigger.read_proportion == spec.read_proportion

    def test_presets_valid(self):
        for name, spec in WORKLOADS.items():
            total = (
                spec.read_proportion
                + spec.update_proportion
                + spec.insert_proportion
                + spec.read_modify_write_proportion
            )
            assert total == pytest.approx(1.0)
            chooser = spec.make_chooser(rng=0)
            assert 0 <= chooser.next_index() < spec.record_count

    def test_heavy_read_update_is_50_50(self):
        spec = heavy_read_update()
        assert spec.read_proportion == 0.5
        assert spec.update_proportion == 0.5


class TestClosedLoopClient:
    def test_issues_exact_op_count(self, simple_store):
        finished = []
        client = ClosedLoopClient(
            simple_store,
            heavy_read_update(record_count=20),
            StaticPolicy(1, 1),
            ops=25,
            rng=np.random.default_rng(0),
            on_finished=finished.append,
        )
        client.start()
        simple_store.sim.run()
        assert client.issued == 25
        assert finished == [client]
        assert simple_store.ops_completed() == 25

    def test_zero_ops_finishes_immediately(self, simple_store):
        finished = []
        client = ClosedLoopClient(
            simple_store,
            heavy_read_update(record_count=5),
            StaticPolicy(1, 1),
            ops=0,
            rng=np.random.default_rng(0),
            on_finished=finished.append,
        )
        client.start()
        simple_store.sim.run()
        assert finished == [client]

    def test_target_rate_paces(self, simple_store):
        client = ClosedLoopClient(
            simple_store,
            heavy_read_update(record_count=5),
            StaticPolicy(1, 1),
            ops=50,
            rng=np.random.default_rng(0),
            target_rate=100.0,
        )
        client.start()
        simple_store.sim.run()
        # 50 ops at 100/s take >= 0.49 simulated seconds
        assert simple_store.sim.now >= 0.49

    def test_dc_pinning(self, store):
        client = ClosedLoopClient(
            store,
            heavy_read_update(record_count=5),
            StaticPolicy(1, 1),
            ops=10,
            rng=np.random.default_rng(0),
            dc=1,
        )
        # coordinators come from the store's live per-DC pool, re-queried
        # each op (so elastic membership changes reshape coordinator load)
        assert set(store.coordinator_pool(1)) == {3, 4}
        for _ in range(20):
            assert client._coordinator() in {3, 4}

    def test_rmw_issues_read_then_write(self, simple_store):
        spec = WorkloadSpec(
            read_proportion=0.0,
            update_proportion=0.0,
            read_modify_write_proportion=1.0,
            record_count=5,
        )
        client = ClosedLoopClient(
            simple_store, spec, StaticPolicy(1, 1), ops=10,
            rng=np.random.default_rng(0),
        )
        client.start()
        simple_store.sim.run()
        assert simple_store.reads_ok == 10
        assert simple_store.writes_ok == 10

    def test_insert_grows_population(self, simple_store):
        spec = WorkloadSpec(
            read_proportion=0.0,
            update_proportion=0.0,
            insert_proportion=1.0,
            record_count=5,
            distribution="uniform",
        )
        client = ClosedLoopClient(
            simple_store, spec, StaticPolicy(1, 1), ops=10,
            rng=np.random.default_rng(0),
        )
        client.start()
        simple_store.sim.run()
        assert client.inserted == 10
        assert client.chooser.item_count == 15


class TestOpenLoopSource:
    def test_validation(self, simple_store):
        with pytest.raises(ConfigError):
            OpenLoopSource(
                simple_store, heavy_read_update(record_count=5),
                StaticPolicy(1, 1), rate=0.0, ops=10,
                rng=np.random.default_rng(0),
            )

    def test_offered_rate(self, simple_store):
        src = OpenLoopSource(
            simple_store, heavy_read_update(record_count=5),
            StaticPolicy(1, 1), rate=1000.0, ops=500,
            rng=np.random.default_rng(0),
        )
        src.start()
        simple_store.sim.run()
        assert simple_store.ops_completed() == 500
        # 500 arrivals at 1000/s span about half a second
        assert 0.3 < simple_store.sim.now < 1.5


class TestWorkloadRunner:
    def _store(self):
        from tests.conftest import Simulator
        from repro.net.latency import FixedLatency
        from repro.net.topology import Datacenter, LinkClass, Topology

        topo = Topology(
            [Datacenter("dc", "r")], [4],
            latency={LinkClass.INTRA_DC: FixedLatency(0.0003)},
        )
        return ReplicatedStore(
            Simulator(), topo, config=StoreConfig(seed=3, read_repair_chance=0.0)
        )

    def test_report_fields(self):
        store = self._store()
        rep = WorkloadRunner(
            store, heavy_read_update(record_count=50),
            policy=StaticPolicy(1, 1, name="one"),
            n_clients=4, ops_total=400, seed=1,
        ).run()
        assert rep.ops_completed == 400
        assert rep.throughput > 0
        assert rep.policy == "one"
        assert 0.0 <= rep.stale_rate <= 1.0
        assert rep.read_latency_p99 >= rep.read_latency_mean * 0.5
        assert rep.read_levels  # level usage recorded
        assert "n=1" in rep.level_mix()

    def test_warmup_resets_metrics(self):
        store = self._store()
        rep = WorkloadRunner(
            store, heavy_read_update(record_count=50),
            policy=StaticPolicy(1, 1),
            n_clients=4, ops_total=400, seed=1, warmup_fraction=0.5,
        ).run()
        # only the measurement half is counted
        assert rep.ops_completed == 200

    def test_validation(self):
        store = self._store()
        with pytest.raises(ConfigError):
            WorkloadRunner(store, heavy_read_update(), n_clients=0, ops_total=10)
        with pytest.raises(ConfigError):
            WorkloadRunner(store, heavy_read_update(), n_clients=10, ops_total=5)
        with pytest.raises(ConfigError):
            WorkloadRunner(
                store, heavy_read_update(), n_clients=1, ops_total=10,
                warmup_fraction=1.0,
            )

    def test_deterministic(self):
        rep1 = WorkloadRunner(
            self._store(), heavy_read_update(record_count=50),
            policy=StaticPolicy(1, 1), n_clients=4, ops_total=300, seed=9,
        ).run()
        rep2 = WorkloadRunner(
            self._store(), heavy_read_update(record_count=50),
            policy=StaticPolicy(1, 1), n_clients=4, ops_total=300, seed=9,
        ).run()
        assert rep1.throughput == pytest.approx(rep2.throughput)
        assert rep1.stale_rate == rep2.stale_rate
        assert rep1.billable_bytes == rep2.billable_bytes


class TestTraces:
    def test_recorder(self, simple_store):
        rec = TraceRecorder()
        simple_store.add_listener(rec)
        simple_store.sim.schedule_at(0.0, simple_store.write, "k", 1)
        simple_store.sim.schedule_at(0.5, simple_store.read, "k", 1)
        simple_store.sim.run()
        assert len(rec) == 2
        assert rec.records[0].kind == "write"
        assert rec.records[1].kind == "read"
        assert rec.records[1].stale is False

    def test_phase_validation(self):
        with pytest.raises(ConfigError):
            TracePhase("p", duration=0.0, rate=1.0, read_fraction=0.5)
        with pytest.raises(ConfigError):
            TracePhase("p", duration=1.0, rate=1.0, read_fraction=1.5)

    def test_phased_generation(self):
        gen = PhasedTraceGenerator([
            TracePhase("a", 10.0, rate=100.0, read_fraction=1.0),
            TracePhase("b", 10.0, rate=50.0, read_fraction=0.0),
        ])
        trace = gen.generate(cycles=2, seed=0)
        assert trace, "trace must not be empty"
        # time-ordered
        times = [r.t for r in trace]
        assert times == sorted(times)
        # phase labels planted correctly (phase a = first 10s of each cycle)
        for r in trace:
            in_cycle = r.t % 20.0
            assert r.phase == ("a" if in_cycle < 10.0 else "b")
        # op counts near rate x duration
        n_a = sum(1 for r in trace if r.phase == "a")
        assert n_a == pytest.approx(2 * 10 * 100, rel=0.15)
        # read fractions honored
        assert all(r.kind == "read" for r in trace if r.phase == "a")
        assert all(r.kind == "write" for r in trace if r.phase == "b")

    def test_generate_validation(self):
        gen = PhasedTraceGenerator([TracePhase("a", 1.0, 10.0, 0.5)])
        with pytest.raises(ConfigError):
            gen.generate(cycles=0)
        with pytest.raises(ConfigError):
            PhasedTraceGenerator([])

    def test_replay(self, simple_store):
        trace = [
            TraceRecord(t=0.1, kind="write", key="a"),
            TraceRecord(t=0.2, kind="read", key="a"),
        ]
        n = replay_trace(simple_store, trace, StaticPolicy(1, 1))
        assert n == 2
        simple_store.sim.run()
        assert simple_store.ops_completed() == 2

    def test_replay_time_scale(self, simple_store):
        trace = [TraceRecord(t=10.0, kind="write", key="a")]
        replay_trace(simple_store, trace, StaticPolicy(1, 1), time_scale=0.1)
        simple_store.sim.run()
        assert simple_store.sim.now < 2.0  # compressed 10x
        with pytest.raises(ConfigError):
            replay_trace(simple_store, trace, StaticPolicy(1, 1), time_scale=0.0)
