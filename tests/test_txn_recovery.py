"""Crash-recovery property tests: atomicity through every crash window.

The acceptance property: a node crashed at *any* point between PREPARE and
COMMIT recovers via its WAL to a state where every transaction is either
atomically applied (all written keys, all replicas) or fully absent -- once
the cluster settles, no partial write is observable at any read level.

The tests sweep the crash instant across the whole commit window (before
the prepare arrives, while prepared, after the decision, during the ack
round) for both a participant and the transaction manager, then assert
the all-or-nothing invariant on the settled cluster state and on actual
reads at every consistency level -- for every commit protocol. The
cooperative-termination tests additionally kill the TM *permanently* and
require every live prepared participant to unblock without it, inside
the bound the deterministic backoff schedule implies. A final set pins
down that recovery ordering itself is deterministic (byte-identical WAL
streams) and that the WAL's incremental pending sets match their
full-scan specification at every settle point.
"""

from __future__ import annotations

import pytest

from repro.cluster.replication import SimpleStrategy
from repro.cluster.store import ReplicatedStore, StoreConfig
from repro.net.latency import FixedLatency
from repro.net.topology import Datacenter, LinkClass, Topology
from repro.simcore.simulator import Simulator
from repro.txn.api import PROTOCOLS, TransactionalStore, TxnConfig


def fast_config(protocol: str = "2pc") -> TxnConfig:
    """Fast protocol clocks so every window closes within simulated seconds."""
    return TxnConfig(
        prepare_timeout=0.05,
        client_timeout=0.2,
        retry_interval=0.01,
        status_interval=0.01,
        status_backoff=2.0,
        status_interval_max=0.05,
        termination_after=2,
        commit_protocol=protocol,
    )


FAST = fast_config()

#: With FixedLatency(0.0005) the uncontended commit timeline is:
#: prepare arrives +0.5 ms, votes land +1 ms (decision), commit messages
#: arrive +1.5 ms, acks land +2 ms. The sweep brackets all of it.
CRASH_TIMES = [
    0.0002, 0.0004, 0.0006, 0.0009, 0.0012, 0.0014, 0.0016, 0.0019,
    0.0022, 0.0025, 0.0030, 0.0035,
]


def build(config: TxnConfig = FAST):
    topo = Topology(
        [Datacenter("dc", "r")],
        [5],
        latency={LinkClass.INTRA_DC: FixedLatency(0.0005)},
    )
    store = ReplicatedStore(
        Simulator(),
        topo,
        strategy=SimpleStrategy(rf=3),
        config=StoreConfig(seed=2, read_repair_chance=0.0),
    )
    tstore = TransactionalStore(store, config=config)
    return store, tstore


def assert_wal_sets_match_scan(tstore):
    """The incremental pending sets equal their full-scan specification."""
    for w in tstore.wals:
        assert w.in_doubt() == w.in_doubt_scan()
        assert [r.lsn for r in w.tm_unfinished()] == [
            r.lsn for r in w.tm_unfinished_scan()
        ]


def txn_versions_present(store, tstore, keys):
    """Per (key, replica): does it hold the transaction's exact version?

    The scripted transaction is the only writer, so "the transaction's
    version" is any version newer than the preloaded one.
    """
    flags = []
    for key in keys:
        for r in store.strategy.replicas(key, store.ring, store.topology):
            v = store.nodes[r].data.get(key)
            flags.append(v is not None and v.size == 77)
    return flags


def assert_atomic(store, tstore, keys, outcomes):
    """The all-or-nothing invariant, checked three ways."""
    flags = txn_versions_present(store, tstore, keys)
    assert all(flags) or not any(flags), (
        f"partial transaction visible: {flags} (outcomes={outcomes})"
    )
    # Nothing may stay in doubt or locked once the cluster has settled.
    assert tstore.in_doubt_now() == 0
    assert all(not p.locks for p in tstore.participants)
    # No read level may observe a mix: at every level, every key agrees on
    # whether the transaction happened.
    levels_seen = set()
    for level in (1, 2, 3):
        results = []
        for key in keys:
            store.read(key, level, results.append)
        store.sim.run(until=store.sim.now + 1.0)
        got = tuple(r.ok and r.version is not None and r.version.size == 77 for r in results)
        assert len(set(got)) == 1, f"level {level} sees a partial txn: {got}"
        levels_seen.add(got[0])
    assert len(levels_seen) == 1  # all levels agree with the settled state
    assert_wal_sets_match_scan(tstore)
    return all(flags)


def run_scripted_txn(crash_node, crash_at, recover_after=0.05, config=FAST,
                     recover=True):
    """One scripted two-key transaction with a crash injected mid-window."""
    store, tstore = build(config)
    keys = ["user0", "user1"]
    store.preload(keys, value_size=10)
    outcomes = []

    def go():
        txn = tstore.begin(coordinator=1)
        for key in keys:
            txn.read(key)
            txn.write(key, 77)
        txn.commit(outcomes.append)

    store.sim.schedule(0.0, go)
    store.sim.schedule_at(crash_at, store.on_node_crash, crash_node)
    if recover:
        store.sim.schedule_at(
            crash_at + recover_after, store.on_node_recover, crash_node
        )
    store.sim.run(until=5.0)
    return store, tstore, keys, outcomes


def run_write_txn(crash_node, crash_at, config=FAST, recover=True,
                  recover_after=0.05, extra_crash=None):
    """A write-only transaction: the commit fan-out starts at t=0 on node 1.

    Unlike :func:`run_scripted_txn` there are no reads to wait out, so the
    TM is pinned to node 1 *before* any crash fires -- crashing node 1
    mid-window really kills the coordinator of an in-flight round
    (`_start_commit` would otherwise re-route to a live node). Timeline
    with 0.5 ms links: prepares land +0.5 ms, votes +1 ms (= the 2PC
    decision point), decision lands +1.5 ms, acks +2 ms; 3PC inserts its
    pre-commit round, shifting decision/acks one RTT later.
    """
    store, tstore = build(config)
    keys = ["user0", "user1"]
    store.preload(keys, value_size=10)
    outcomes = []

    def go():
        txn = tstore.begin(coordinator=1)
        for key in keys:
            txn.write(key, 77)
        txn.commit(outcomes.append)

    store.sim.schedule(0.0, go)
    store.sim.schedule_at(crash_at, store.on_node_crash, crash_node)
    if extra_crash is not None:
        store.sim.schedule_at(crash_at, store.on_node_crash, extra_crash)
    if recover:
        store.sim.schedule_at(
            crash_at + recover_after, store.on_node_recover, crash_node
        )
    store.sim.run(until=5.0)
    return store, tstore, keys, outcomes


def live_txn_flags(store, keys):
    """Per (key, live replica): does it hold the transaction's version?"""
    flags = []
    for key in keys:
        for r in store.strategy.replicas(key, store.ring, store.topology):
            if not store.nodes[r].up:
                continue
            v = store.nodes[r].data.get(key)
            flags.append(v is not None and v.size == 77)
    return flags


def participant_nodes():
    """The replica set of the scripted transaction's keys (stable: seed 2)."""
    store, _ = build()
    nodes = set()
    for key in ("user0", "user1"):
        nodes.update(store.strategy.replicas(key, store.ring, store.topology))
    return sorted(nodes)


PARTICIPANTS = participant_nodes()


class TestParticipantCrashWindow:
    @pytest.mark.parametrize("crash_at", CRASH_TIMES)
    @pytest.mark.parametrize("victim", PARTICIPANTS[:2])
    def test_atomic_through_any_crash_instant(self, crash_at, victim):
        store, tstore, keys, outcomes = run_scripted_txn(victim, crash_at)
        applied = assert_atomic(store, tstore, keys, outcomes)
        # The client always learns a definite outcome (commit, abort, or an
        # in-doubt that the recovery pass later resolves).
        assert len(outcomes) == 1
        if outcomes[0].status == "committed":
            assert applied
        if outcomes[0].status == "aborted":
            assert not applied

    def test_crash_between_prepare_and_commit_recovers_via_wal(self):
        # Crash exactly while prepared (vote sent, decision logged by the
        # TM but not yet delivered): the recovered node must learn COMMIT
        # through its WAL + status query and apply the buffered writes.
        store, tstore = build()
        keys = ["user0", "user1"]
        store.preload(keys, value_size=10)
        victim = next(p for p in PARTICIPANTS if p != 1)
        outcomes = []

        def go():  # write-only: prepare +0.5ms, decision +1ms, commit +1.5ms
            txn = tstore.begin(coordinator=1)
            for key in keys:
                txn.write(key, 77)
            txn.commit(outcomes.append)

        store.sim.schedule(0.0, go)
        store.sim.schedule_at(0.0012, store.on_node_crash, victim)
        store.sim.schedule_at(0.05, store.on_node_recover, victim)
        store.sim.run(until=5.0)

        assert outcomes[0].status == "committed"  # decided before the crash
        assert tstore.participants[victim].in_doubt_recovered == 1
        assert assert_atomic(store, tstore, keys, outcomes)

    def test_crash_wipes_volatile_state_only(self):
        store, tstore = build()
        keys = ["user0"]
        store.preload(keys, value_size=10)

        def go():
            txn = tstore.begin(coordinator=1)
            txn.write("user0", 77)
            txn.commit()

        victim = store.strategy.replicas("user0", store.ring, store.topology)[0]
        store.sim.schedule(0.0, go)
        store.sim.schedule_at(0.0009, store.on_node_crash, victim)
        store.sim.run(until=0.001)
        p = tstore.participants[victim]
        assert not p.locks and not p.prepared  # volatile state gone
        assert len(p.wal) >= 1  # the WAL survived the crash


class TestTmCrashWindow:
    @pytest.mark.parametrize("crash_at", CRASH_TIMES)
    def test_atomic_through_any_tm_crash_instant(self, crash_at):
        # Node 1 coordinates the scripted transaction (and may also be a
        # participant), so this sweeps TM crashes across the whole round.
        store, tstore, keys, outcomes = run_scripted_txn(1, crash_at)
        applied = assert_atomic(store, tstore, keys, outcomes)
        if outcomes and outcomes[0].status == "committed":
            assert applied

    def test_tm_crash_before_decision_presumed_aborts(self):
        # Crash the TM after prepares landed but before votes return: every
        # prepared participant must resolve to abort via the recovery pass.
        store, tstore = build()
        keys = ["user0", "user1"]
        store.preload(keys, value_size=10)
        outcomes = []

        def go():  # write-only: prepares land +0.5ms, votes land +1ms
            txn = tstore.begin(coordinator=1)
            for key in keys:
                txn.write(key, 77)
            txn.commit(outcomes.append)

        store.sim.schedule(0.0, go)
        store.sim.schedule_at(0.0007, store.on_node_crash, 1)
        store.sim.schedule_at(0.05, store.on_node_recover, 1)
        store.sim.run(until=5.0)

        assert not any(txn_versions_present(store, tstore, keys))
        assert tstore.in_doubt_now() == 0
        # The abort surfaced through the TM's recovery pass, not silence.
        assert tstore.tms[1].recovery_resolved == 1
        assert [o.status for o in outcomes] == ["aborted"]
        assert outcomes[0].reason == "tm-crash"


class TestProtocolCrashWindows:
    """The atomicity sweep holds for every protocol, both crash sides."""

    @pytest.mark.parametrize("crash_at", CRASH_TIMES + [0.0040, 0.0045])
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_tm_crash_recover_atomic(self, crash_at, protocol):
        store, tstore, keys, outcomes = run_scripted_txn(
            1, crash_at, config=fast_config(protocol)
        )
        applied = assert_atomic(store, tstore, keys, outcomes)
        if outcomes and outcomes[0].status == "committed":
            assert applied

    @pytest.mark.parametrize("crash_at", CRASH_TIMES)
    @pytest.mark.parametrize("protocol", ["2pc-coop", "3pc"])
    def test_participant_crash_recover_atomic(self, crash_at, protocol):
        store, tstore, keys, outcomes = run_scripted_txn(
            PARTICIPANTS[0], crash_at, config=fast_config(protocol)
        )
        assert_atomic(store, tstore, keys, outcomes)


class TestCooperativeTermination:
    """The TM dies for good: no prepared participant may stay blocked."""

    @pytest.mark.parametrize("crash_at", CRASH_TIMES + [0.0040, 0.0045])
    @pytest.mark.parametrize("protocol", ["2pc-coop", "3pc"])
    def test_tm_dead_forever_every_participant_unblocks(self, crash_at, protocol):
        store, tstore, keys, _ = run_write_txn(
            1, crash_at, config=fast_config(protocol), recover=False
        )
        live = [p for p in tstore.participants if store.nodes[p.node_id].up]
        # Termination leaves no live participant wedged, with no TM ever
        # coming back: nothing prepared, no lingering prepare locks.
        assert all(not p.prepared and not p.locks for p in live)
        # Live replicas agree atomically on the round's outcome.
        flags = live_txn_flags(store, keys)
        assert all(flags) or not any(flags)
        assert_wal_sets_match_scan(tstore)

    def test_plain_2pc_blocks_forever_without_tm(self):
        # The contrast case the shootout quantifies: blocking 2PC leaves
        # prepared participants wedged when the TM never returns.
        store, tstore, keys, _ = run_write_txn(
            1, 0.0007, config=fast_config("2pc"), recover=False
        )
        live = [p for p in tstore.participants if store.nodes[p.node_id].up]
        assert any(p.prepared for p in live)
        assert tstore.blocked_participant_time() > 1.0  # wedged for the run

    def test_undecided_round_terminates_to_abort(self):
        # Crash after the prepares land but before the votes return: the
        # TM never decided, so the unique safe outcome is abort -- reached
        # cooperatively, counted, and within the backoff-schedule bound.
        config = fast_config("2pc-coop")
        store, tstore, keys, _ = run_write_txn(
            1, 0.0007, config=config, recover=False
        )
        live = [p for p in tstore.participants if store.nodes[p.node_id].up]
        assert not any(live_txn_flags(store, keys))
        resolved = [p for p in live if p.termination_resolved]
        assert resolved
        # Dwell bound: two polls of the capped jittered schedule bring the
        # termination round, plus one reply window, plus message slack.
        cap = config.status_interval_max * (1.0 + config.status_jitter)
        bound = config.termination_after * cap + config.prepare_timeout + 0.01
        assert all(p.blocked_time <= bound for p in resolved)
        assert tstore.blocked_participant_time() <= bound * len(live)

    def test_3pc_precommitted_round_terminates_to_commit(self):
        # Crash the TM right after the pre-commits are delivered: every
        # live participant holds a pre-commit record, so the round drives
        # itself to COMMIT without the TM (the 3PC non-blocking rule).
        store, tstore, keys, _ = run_write_txn(
            1, 0.0017, config=fast_config("3pc"), recover=False
        )
        live = [p for p in tstore.participants if store.nodes[p.node_id].up]
        assert all(not p.prepared and not p.locks for p in live)
        flags = live_txn_flags(store, keys)
        assert flags and all(flags)
        assert sum(p.termination_resolved for p in live) >= 1

    def test_3pc_tm_recovery_resumes_precommit_barrier(self):
        # With a *recovering* TM the pre-committed round must finish as
        # COMMIT through the TM's own WAL replay (tm-precommit means the
        # round can never abort again).
        store, tstore, keys, outcomes = run_write_txn(
            1, 0.0017, config=fast_config("3pc")
        )
        assert assert_atomic(store, tstore, keys, outcomes)
        assert [o.status for o in outcomes] == ["committed"]

    @pytest.mark.parametrize("protocol", ["2pc-coop", "3pc"])
    def test_recovered_participant_blocks_instead_of_diverging(self, protocol):
        # The crash-overlap hole: a participant down for the COMMIT
        # fan-out recovers into a world where the TM (which durably
        # logged tm-commit) and every co-participant (which durably
        # committed and applied) are dead. TM silence plus silent peers
        # proves nothing to a *recovered* node -- unilaterally aborting
        # here would diverge from the peers' committed replicas. It must
        # block instead, and resolve to COMMIT once the TM returns.
        config = fast_config(protocol)
        store, tstore = build(config)
        keys = ["user0", "user1"]
        store.preload(keys, value_size=10)
        outcomes = []

        def go():  # write-only: decision +1ms (2pc) / +2ms (3pc)
            txn = tstore.begin(coordinator=1)
            for key in keys:
                txn.write(key, 77)
            txn.commit(outcomes.append)

        victim = next(p for p in PARTICIPANTS if p != 1)
        others = [p for p in PARTICIPANTS if p != victim]
        store.sim.schedule(0.0, go)
        # Crash the victim while prepared-without-decision: the COMMIT
        # fan-out is dropped at it while its peers log commit and apply.
        # (Under 3pc the victim also misses PRE-COMMIT; the TM's ack
        # window closes at prepare_timeout=0.05 and commits anyway.)
        store.sim.schedule_at(0.0012, store.on_node_crash, victim)
        # Then -- commit now durable at the TM and the peers -- the TM
        # and every co-participant die (for now, for good).
        for node in sorted({1, *others}):
            store.sim.schedule_at(0.06, store.on_node_crash, node)
        store.sim.schedule_at(0.1, store.on_node_recover, victim)
        store.sim.run(until=5.0)

        assert [o.status for o in outcomes] == ["committed"]
        # The dead peers hold durable commits...
        assert any(
            tstore.wals[n].decision_for(1) == "commit" for n in others
        )
        # ...so the recovered victim must still be blocked, not aborted.
        p = tstore.participants[victim]
        assert list(p.prepared) == [1]
        assert p.wal.decision_for(1) is None
        assert p.termination_resolved == 0

        # TM recovery replays tm-commit and re-drives the decision: the
        # blocked participant finally commits, atomically with its peers.
        store.sim.schedule_at(5.5, store.on_node_recover, 1)
        store.sim.run(until=8.0)
        assert p.wal.decision_for(1) == "commit"
        assert not p.prepared and not p.locks
        v = store.nodes[victim].data.get("user0") or store.nodes[victim].data.get("user1")
        assert v is not None and v.size == 77

    def test_blocked_time_excludes_crash_downtime(self):
        # blocked_participant_time counts live dwell only, matching the
        # dwell oracle's dead-not-blocked rule: a participant that spends
        # [1s, 3s] crashed while in doubt accrues dwell on both sides of
        # the crash but nothing for the downtime itself.
        store, tstore = build(fast_config("2pc"))
        keys = ["user0", "user1"]
        store.preload(keys, value_size=10)

        def go():
            txn = tstore.begin(coordinator=1)
            for key in keys:
                txn.write(key, 77)
            txn.commit()

        victim = next(p for p in PARTICIPANTS if p != 1)
        store.sim.schedule(0.0, go)
        # Kill the TM before the decision: everyone stays in doubt.
        store.sim.schedule_at(0.0007, store.on_node_crash, 1)
        store.sim.schedule_at(1.0, store.on_node_crash, victim)
        store.sim.schedule_at(3.0, store.on_node_recover, victim)
        store.sim.run(until=5.0)

        p = tstore.participants[victim]
        rec = p.wal.prepare_record(1)
        # The pre-crash live stretch was banked at the crash instant...
        assert p.blocked_time == pytest.approx(1.0 - rec.time)
        # ...and the post-recovery stretch restarted at the recovery
        # instant, so the open dwell excludes the 2s of downtime.
        (prep,) = p.prepared.values()
        assert prep.t_registered == pytest.approx(3.0)
        assert prep.recovered
        # Whole-store integral: every participant dwells over its live
        # prepared stretches only -- the victim's [1s, 3s] downtime is
        # carved out, and a participant down at the end (node 1, if it
        # replicates a key) contributes just its banked pre-crash dwell.
        now = store.sim.now
        expected = 0.0
        for q in tstore.participants:
            r = q.wal.prepare_record(1)
            if r is None:
                continue
            if q.node_id == victim:
                expected += (1.0 - r.time) + (now - 3.0)
            elif not store.nodes[q.node_id].up:
                expected += max(0.0007 - r.time, 0.0)  # up until its crash
            else:
                expected += now - r.time
        assert tstore.blocked_participant_time() == pytest.approx(expected)

    def test_termination_leaves_no_stray_poll_state(self):
        # _poll must not reschedule after a termination round resolved
        # the transaction: _resolve already cleaned the poll state.
        store, tstore, keys, _ = run_write_txn(
            1, 0.0007, config=fast_config("2pc-coop"), recover=False
        )
        live = [p for p in tstore.participants if store.nodes[p.node_id].up]
        assert all(not p.prepared for p in live)
        assert all(not p._poll_events for p in live)
        assert all(not p._poll_attempts for p in live)

    def test_dead_peer_round_concludes_by_timeout(self):
        # TM *and* one participant die together: the survivors' termination
        # round can never hear from the dead peer, so the reply-window
        # timeout must conclude it (missing peers count as uncertain).
        dead_peer = next(p for p in PARTICIPANTS if p != 1)
        store, tstore, keys, _ = run_write_txn(
            1, 0.0007, config=fast_config("2pc-coop"), recover=False,
            extra_crash=dead_peer,
        )
        live = [p for p in tstore.participants if store.nodes[p.node_id].up]
        assert all(not p.prepared and not p.locks for p in live)
        assert not any(live_txn_flags(store, keys))
        assert any(p.termination_resolved for p in live)


class TestPollBackoff:
    def test_poll_delay_deterministic_capped_and_jittered(self):
        cfg = fast_config()
        delays = [cfg.poll_delay(7, 3, 11, a) for a in range(8)]
        assert delays == [cfg.poll_delay(7, 3, 11, a) for a in range(8)]
        for attempt, d in enumerate(delays):
            base = min(
                cfg.status_interval * cfg.status_backoff**attempt,
                cfg.status_interval_max,
            )
            assert base <= d <= base * (1.0 + cfg.status_jitter)
        # Different pollers decorrelate (no synchronized query bursts).
        assert cfg.poll_delay(7, 3, 11, 1) != cfg.poll_delay(7, 4, 11, 1)
        assert cfg.poll_delay(7, 3, 11, 1) != cfg.poll_delay(7, 3, 12, 1)
        assert cfg.poll_delay(7, 3, 11, 1) != cfg.poll_delay(8, 3, 11, 1)

    def test_zero_jitter_is_the_pure_exponential(self):
        cfg = TxnConfig(
            status_interval=0.1,
            status_backoff=2.0,
            status_interval_max=0.4,
            status_jitter=0.0,
        )
        assert [cfg.poll_delay(1, 1, 1, a) for a in range(4)] == [
            0.1, 0.2, 0.4, 0.4,
        ]


class TestRecoveryDeterminism:
    def wal_fingerprint(self, tstore):
        return [
            (w.node_id, r.lsn, r.txn_id, r.kind, round(r.time, 9))
            for w in tstore.wals
            for r in w.records
        ]

    @pytest.mark.parametrize("crash_at", [0.0009, 0.0014])
    def test_recovery_ordering_byte_identical(self, crash_at):
        a = run_scripted_txn(PARTICIPANTS[0], crash_at)
        b = run_scripted_txn(PARTICIPANTS[0], crash_at)
        assert self.wal_fingerprint(a[1]) == self.wal_fingerprint(b[1])
        assert [o.status for o in a[3]] == [o.status for o in b[3]]
        assert a[1].txn_summary() == b[1].txn_summary()

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_termination_runs_byte_identical(self, protocol):
        # Backoff jitter is derived, not drawn: two identical runs through
        # polling *and* termination produce byte-identical WAL streams.
        cfg = fast_config(protocol)
        a = run_write_txn(1, 0.0007, config=cfg, recover=False)
        b = run_write_txn(1, 0.0007, config=cfg, recover=False)
        assert self.wal_fingerprint(a[1]) == self.wal_fingerprint(b[1])
        assert a[1].txn_summary() == b[1].txn_summary()
