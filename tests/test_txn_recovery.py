"""Crash-recovery property tests: atomicity through every crash window.

The acceptance property: a node crashed at *any* point between PREPARE and
COMMIT recovers via its WAL to a state where every transaction is either
atomically applied (all written keys, all replicas) or fully absent -- once
the cluster settles, no partial write is observable at any read level.

The tests sweep the crash instant across the whole commit window (before
the prepare arrives, while prepared, after the decision, during the ack
round) for both a participant and the transaction manager, then assert
the all-or-nothing invariant on the settled cluster state and on actual
reads at every consistency level. A final test pins down that recovery
ordering itself is deterministic (byte-identical WAL streams).
"""

from __future__ import annotations

import pytest

from repro.cluster.replication import SimpleStrategy
from repro.cluster.store import ReplicatedStore, StoreConfig
from repro.net.latency import FixedLatency
from repro.net.topology import Datacenter, LinkClass, Topology
from repro.simcore.simulator import Simulator
from repro.txn.api import TransactionalStore, TxnConfig

#: Fast protocol clocks so every window closes within simulated seconds.
FAST = TxnConfig(
    prepare_timeout=0.05, client_timeout=0.2, retry_interval=0.01, status_interval=0.01
)

#: With FixedLatency(0.0005) the uncontended commit timeline is:
#: prepare arrives +0.5 ms, votes land +1 ms (decision), commit messages
#: arrive +1.5 ms, acks land +2 ms. The sweep brackets all of it.
CRASH_TIMES = [
    0.0002, 0.0004, 0.0006, 0.0009, 0.0012, 0.0014, 0.0016, 0.0019,
    0.0022, 0.0025, 0.0030, 0.0035,
]


def build():
    topo = Topology(
        [Datacenter("dc", "r")],
        [5],
        latency={LinkClass.INTRA_DC: FixedLatency(0.0005)},
    )
    store = ReplicatedStore(
        Simulator(),
        topo,
        strategy=SimpleStrategy(rf=3),
        config=StoreConfig(seed=2, read_repair_chance=0.0),
    )
    tstore = TransactionalStore(store, config=FAST)
    return store, tstore


def txn_versions_present(store, tstore, keys):
    """Per (key, replica): does it hold the transaction's exact version?

    The scripted transaction is the only writer, so "the transaction's
    version" is any version newer than the preloaded one.
    """
    flags = []
    for key in keys:
        for r in store.strategy.replicas(key, store.ring, store.topology):
            v = store.nodes[r].data.get(key)
            flags.append(v is not None and v.size == 77)
    return flags


def assert_atomic(store, tstore, keys, outcomes):
    """The all-or-nothing invariant, checked three ways."""
    flags = txn_versions_present(store, tstore, keys)
    assert all(flags) or not any(flags), (
        f"partial transaction visible: {flags} (outcomes={outcomes})"
    )
    # Nothing may stay in doubt or locked once the cluster has settled.
    assert tstore.in_doubt_now() == 0
    assert all(not p.locks for p in tstore.participants)
    # No read level may observe a mix: at every level, every key agrees on
    # whether the transaction happened.
    levels_seen = set()
    for level in (1, 2, 3):
        results = []
        for key in keys:
            store.read(key, level, results.append)
        store.sim.run(until=store.sim.now + 1.0)
        got = tuple(r.ok and r.version is not None and r.version.size == 77 for r in results)
        assert len(set(got)) == 1, f"level {level} sees a partial txn: {got}"
        levels_seen.add(got[0])
    assert len(levels_seen) == 1  # all levels agree with the settled state
    return all(flags)


def run_scripted_txn(crash_node, crash_at, recover_after=0.05):
    """One scripted two-key transaction with a crash injected mid-window."""
    store, tstore = build()
    keys = ["user0", "user1"]
    store.preload(keys, value_size=10)
    outcomes = []

    def go():
        txn = tstore.begin(coordinator=1)
        for key in keys:
            txn.read(key)
            txn.write(key, 77)
        txn.commit(outcomes.append)

    store.sim.schedule(0.0, go)
    store.sim.schedule_at(crash_at, store.on_node_crash, crash_node)
    store.sim.schedule_at(crash_at + recover_after, store.on_node_recover, crash_node)
    store.sim.run(until=5.0)
    return store, tstore, keys, outcomes


def participant_nodes():
    """The replica set of the scripted transaction's keys (stable: seed 2)."""
    store, _ = build()
    nodes = set()
    for key in ("user0", "user1"):
        nodes.update(store.strategy.replicas(key, store.ring, store.topology))
    return sorted(nodes)


PARTICIPANTS = participant_nodes()


class TestParticipantCrashWindow:
    @pytest.mark.parametrize("crash_at", CRASH_TIMES)
    @pytest.mark.parametrize("victim", PARTICIPANTS[:2])
    def test_atomic_through_any_crash_instant(self, crash_at, victim):
        store, tstore, keys, outcomes = run_scripted_txn(victim, crash_at)
        applied = assert_atomic(store, tstore, keys, outcomes)
        # The client always learns a definite outcome (commit, abort, or an
        # in-doubt that the recovery pass later resolves).
        assert len(outcomes) == 1
        if outcomes[0].status == "committed":
            assert applied
        if outcomes[0].status == "aborted":
            assert not applied

    def test_crash_between_prepare_and_commit_recovers_via_wal(self):
        # Crash exactly while prepared (vote sent, decision logged by the
        # TM but not yet delivered): the recovered node must learn COMMIT
        # through its WAL + status query and apply the buffered writes.
        store, tstore = build()
        keys = ["user0", "user1"]
        store.preload(keys, value_size=10)
        victim = next(p for p in PARTICIPANTS if p != 1)
        outcomes = []

        def go():  # write-only: prepare +0.5ms, decision +1ms, commit +1.5ms
            txn = tstore.begin(coordinator=1)
            for key in keys:
                txn.write(key, 77)
            txn.commit(outcomes.append)

        store.sim.schedule(0.0, go)
        store.sim.schedule_at(0.0012, store.on_node_crash, victim)
        store.sim.schedule_at(0.05, store.on_node_recover, victim)
        store.sim.run(until=5.0)

        assert outcomes[0].status == "committed"  # decided before the crash
        assert tstore.participants[victim].in_doubt_recovered == 1
        assert assert_atomic(store, tstore, keys, outcomes)

    def test_crash_wipes_volatile_state_only(self):
        store, tstore = build()
        keys = ["user0"]
        store.preload(keys, value_size=10)

        def go():
            txn = tstore.begin(coordinator=1)
            txn.write("user0", 77)
            txn.commit()

        victim = store.strategy.replicas("user0", store.ring, store.topology)[0]
        store.sim.schedule(0.0, go)
        store.sim.schedule_at(0.0009, store.on_node_crash, victim)
        store.sim.run(until=0.001)
        p = tstore.participants[victim]
        assert not p.locks and not p.prepared  # volatile state gone
        assert len(p.wal) >= 1  # the WAL survived the crash


class TestTmCrashWindow:
    @pytest.mark.parametrize("crash_at", CRASH_TIMES)
    def test_atomic_through_any_tm_crash_instant(self, crash_at):
        # Node 1 coordinates the scripted transaction (and may also be a
        # participant), so this sweeps TM crashes across the whole round.
        store, tstore, keys, outcomes = run_scripted_txn(1, crash_at)
        applied = assert_atomic(store, tstore, keys, outcomes)
        if outcomes and outcomes[0].status == "committed":
            assert applied

    def test_tm_crash_before_decision_presumed_aborts(self):
        # Crash the TM after prepares landed but before votes return: every
        # prepared participant must resolve to abort via the recovery pass.
        store, tstore = build()
        keys = ["user0", "user1"]
        store.preload(keys, value_size=10)
        outcomes = []

        def go():  # write-only: prepares land +0.5ms, votes land +1ms
            txn = tstore.begin(coordinator=1)
            for key in keys:
                txn.write(key, 77)
            txn.commit(outcomes.append)

        store.sim.schedule(0.0, go)
        store.sim.schedule_at(0.0007, store.on_node_crash, 1)
        store.sim.schedule_at(0.05, store.on_node_recover, 1)
        store.sim.run(until=5.0)

        assert not any(txn_versions_present(store, tstore, keys))
        assert tstore.in_doubt_now() == 0
        # The abort surfaced through the TM's recovery pass, not silence.
        assert tstore.tms[1].recovery_resolved == 1
        assert [o.status for o in outcomes] == ["aborted"]
        assert outcomes[0].reason == "tm-crash"


class TestRecoveryDeterminism:
    def wal_fingerprint(self, tstore):
        return [
            (w.node_id, r.lsn, r.txn_id, r.kind, round(r.time, 9))
            for w in tstore.wals
            for r in w.records
        ]

    @pytest.mark.parametrize("crash_at", [0.0009, 0.0014])
    def test_recovery_ordering_byte_identical(self, crash_at):
        a = run_scripted_txn(PARTICIPANTS[0], crash_at)
        b = run_scripted_txn(PARTICIPANTS[0], crash_at)
        assert self.wal_fingerprint(a[1]) == self.wal_fingerprint(b[1])
        assert [o.status for o in a[3]] == [o.status for o in b[3]]
        assert a[1].txn_summary() == b[1].txn_summary()
