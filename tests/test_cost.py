"""Tests for the pricing, billing and per-level cost estimation."""

import pytest

from repro.common.errors import ConfigError
from repro.cost.billing import Bill, Biller
from repro.cost.estimator import CostEstimator
from repro.cost.pricing import EC2_US_EAST_2013, FREE_PRIVATE_CLOUD, PriceBook
from repro.monitor.collector import MonitorSnapshot
from repro.net.topology import LinkClass


class TestPriceBook:
    def test_defaults_positive(self):
        p = PriceBook()
        assert p.instance_hour > 0
        assert p.instance_rate_per_second() == pytest.approx(p.instance_hour / 3600)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PriceBook(instance_hour=-1.0)

    def test_transfer_rates(self):
        p = EC2_US_EAST_2013
        assert p.transfer_rate(LinkClass.LOCAL) == 0.0
        assert p.transfer_rate(LinkClass.INTRA_DC) == 0.0
        assert p.transfer_rate(LinkClass.INTER_AZ) == 0.01
        assert p.transfer_rate(LinkClass.INTER_REGION) == 0.12

    def test_free_private_cloud(self):
        p = FREE_PRIVATE_CLOUD
        assert p.storage_gb_month == 0.0
        assert p.transfer_rate(LinkClass.INTER_REGION) == 0.0
        assert p.instance_hour > 0  # energy proxy


class TestBill:
    def test_total_and_breakdown(self):
        b = Bill(1.0, 2.0, 3.0, duration=10.0, ops=1000)
        assert b.total == 6.0
        assert b.cost_per_kop == pytest.approx(6.0)
        assert b.breakdown()["total"] == 6.0

    def test_zero_ops(self):
        b = Bill(1.0, 0.0, 0.0, duration=1.0, ops=0)
        assert b.cost_per_kop == 0.0


class TestBiller:
    def _run_some_ops(self, store, n=200):
        for i in range(n):
            t = i * 0.005
            store.sim.schedule_at(t, store.write, f"k{i % 10}", 1)
            store.sim.schedule_at(t + 0.002, store.read, f"k{i % 10}", 1)
        store.sim.run()

    def test_three_part_decomposition(self, store):
        biller = Biller(store, EC2_US_EAST_2013, data_size_bytes=10_000_000)
        self._run_some_ops(store)
        bill = biller.bill()
        assert bill.instance_cost > 0
        assert bill.storage_cost > 0
        assert bill.network_cost > 0
        assert bill.total == pytest.approx(
            bill.instance_cost + bill.storage_cost + bill.network_cost
        )
        assert bill.ops == store.ops_completed()

    def test_instance_cost_formula(self, store):
        biller = Biller(store, EC2_US_EAST_2013, data_size_bytes=0)
        self._run_some_ops(store)
        bill = biller.bill()
        expected = (
            store.topology.n_nodes
            * bill.duration
            * EC2_US_EAST_2013.instance_rate_per_second()
        )
        assert bill.instance_cost == pytest.approx(expected)

    def test_rounded_hours(self, store):
        prices = PriceBook(round_up_instance_hours=True)
        biller = Biller(store, prices, data_size_bytes=0)
        self._run_some_ops(store, n=50)
        bill = biller.bill()
        # a sub-second run bills one whole hour per instance
        assert bill.instance_cost == pytest.approx(
            store.topology.n_nodes * prices.instance_hour
        )

    def test_arm_resets_interval(self, store):
        biller = Biller(store, EC2_US_EAST_2013, data_size_bytes=1_000_000)
        self._run_some_ops(store, n=100)
        biller.arm()
        bill = biller.bill()
        assert bill.ops == 0
        assert bill.network_cost == 0.0

    def test_free_cloud_has_no_network_cost(self, store):
        biller = Biller(store, FREE_PRIVATE_CLOUD, data_size_bytes=1_000_000)
        self._run_some_ops(store)
        bill = biller.bill()
        assert bill.network_cost == 0.0
        assert bill.storage_cost == 0.0
        assert bill.instance_cost > 0


def snap(read_rate=1000.0, write_rate=1000.0, acks=(0.001, 0.002, 0.004, 0.008, 0.012)):
    return MonitorSnapshot(
        t=1.0,
        read_rate=read_rate,
        write_rate=write_rate,
        ack_rank_means=list(acks),
        key_profile=[(1.0, 1.0, 1)],
        read_latency=0.002,
        write_latency=0.002,
    )


class TestCostEstimator:
    def _estimator(self, topo, rf=5, local=2.6):
        return CostEstimator(
            prices=EC2_US_EAST_2013,
            topology=topo,
            rf_total=rf,
            local_replicas=local,
            value_size=1000,
        )

    def test_validation(self, small_topology):
        with pytest.raises(ConfigError):
            CostEstimator(EC2_US_EAST_2013, small_topology, 0, 1.0, 1000)
        with pytest.raises(ConfigError):
            CostEstimator(EC2_US_EAST_2013, small_topology, 3, 9.0, 1000)
        est = self._estimator(small_topology, rf=3, local=1.8)
        with pytest.raises(ConfigError):
            est.estimate(snap(), 0, 1)

    def test_cost_increases_with_read_level(self, small_topology):
        est = self._estimator(small_topology, rf=5, local=2.6)
        # need a 5-replica topology? estimator only needs rf; topology for links
        costs = [est.estimate(snap(), r, 1).total_per_op for r in (1, 3, 5)]
        assert costs[0] < costs[1] < costs[2]

    def test_parts_positive_and_sum(self, small_topology):
        est = self._estimator(small_topology, rf=3, local=1.8)
        e = est.estimate(snap(acks=(0.001, 0.002, 0.004)), 2, 1)
        assert e.total_per_op == pytest.approx(
            e.instance_per_op + e.storage_per_op + e.network_per_op
        )
        assert e.instance_per_op > 0
        assert e.storage_per_op > 0

    def test_local_reads_free_of_network(self, small_topology):
        est = self._estimator(small_topology, rf=3, local=2.0)
        e = est.estimate(snap(acks=(0.001, 0.002, 0.004), write_rate=0.0), 1, 1)
        # pure-read workload at level 1 with 2 local replicas: no billable read bytes
        assert e.network_per_op == pytest.approx(0.0)

    def test_remote_reads_billed(self, small_topology):
        est = self._estimator(small_topology, rf=3, local=1.0)
        cheap = est.estimate(snap(write_rate=0.0), 1, 1).network_per_op
        costly = est.estimate(snap(write_rate=0.0), 3, 1).network_per_op
        assert costly > cheap

    def test_single_dc_topology_free_network(self):
        from repro.net.topology import Datacenter, Topology

        topo = Topology([Datacenter("only", "r")], [5])
        est = self._estimator(topo, rf=3, local=3.0)
        e = est.estimate(snap(), 3, 1)
        assert e.network_per_op == 0.0

    def test_fallback_latency_used_when_no_profile(self, small_topology):
        est = self._estimator(small_topology, rf=3, local=1.8)
        e = est.estimate(snap(acks=()), 2, 1)
        assert e.expected_latency > 0

    def test_estimate_all_levels(self, small_topology):
        est = self._estimator(small_topology, rf=4, local=2.0)
        rows = est.estimate_all(snap(acks=(0.001, 0.002, 0.003, 0.004)), 1)
        assert [r.read_level for r in rows] == [1, 2, 3, 4]

    def test_for_store(self, store):
        est = CostEstimator.for_store(store, EC2_US_EAST_2013)
        assert est.rf_total == 3
        assert 0 < est.local_replicas <= 3
        assert est.value_size == store.default_value_size
        e = est.estimate(snap(acks=(0.001, 0.002, 0.01)), 1, 1)
        assert e.total_per_op > 0

    def test_read_repair_adds_io(self, small_topology):
        est = self._estimator(small_topology, rf=5, local=2.6)
        without = est.estimate(snap(), 1, 1, read_repair_chance=0.0)
        with_rr = est.estimate(snap(), 1, 1, read_repair_chance=0.5)
        assert with_rr.storage_per_op > without.storage_per_op
