"""Tests for the policy protocol and the related-work baselines."""

import pytest

from repro.common.errors import ConfigError
from repro.cluster.consistency import ConsistencyLevel
from repro.baselines.rationing import ConsistencyRationingPolicy
from repro.baselines.rwratio import ReadWriteRatioPolicy
from repro.monitor.collector import ClusterMonitor
from repro.policy import EVENTUAL, QUORUM, STRONG, ConsistencyPolicy, StaticPolicy
from tests.test_harmony import feed_monitor


class TestStaticPolicy:
    def test_levels(self):
        p = StaticPolicy(1, ConsistencyLevel.QUORUM)
        assert p.read_level(0.0) == 1
        assert p.write_level(0.0) is ConsistencyLevel.QUORUM

    def test_write_defaults_to_read(self):
        p = StaticPolicy(2)
        assert p.write_level(0.0) == 2

    def test_name(self):
        assert StaticPolicy(1, 1, name="custom").name == "custom"
        assert "static" in StaticPolicy(1).name

    def test_protocol_conformance(self):
        for p in (EVENTUAL(), QUORUM(), STRONG(), StaticPolicy(1)):
            assert isinstance(p, ConsistencyPolicy)

    def test_presets(self):
        assert EVENTUAL().read_level(0.0) is ConsistencyLevel.ONE
        assert QUORUM().read_level(0.0) is ConsistencyLevel.QUORUM
        assert STRONG().read_level(0.0) is ConsistencyLevel.ALL
        assert EVENTUAL().name == "eventual"


class TestConsistencyRationing:
    def test_validation(self):
        m = ClusterMonitor()
        with pytest.raises(ConfigError):
            ConsistencyRationingPolicy(m, threshold=1.5)
        with pytest.raises(ConfigError):
            ConsistencyRationingPolicy(m, conflict_window=0.0)

    def test_no_writes_weak(self):
        m = ClusterMonitor()
        p = ConsistencyRationingPolicy(m, threshold=0.01)
        assert p.read_level(1.0) is ConsistencyLevel.ONE
        assert p.conflict_probability(1.0) == 0.0

    def test_heavy_conflicts_strong(self):
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=400.0, acks=[0.001, 0.010, 0.050])
        p = ConsistencyRationingPolicy(m, threshold=0.01, update_interval=0.1)
        assert p.read_level(5.0) is ConsistencyLevel.QUORUM
        assert p.conflict_probability(5.0) > 0.01
        assert p.decisions[-1][1] is True

    def test_threshold_ordering(self):
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=50.0, acks=[0.001, 0.010, 0.030])
        loose = ConsistencyRationingPolicy(m, threshold=0.99, update_interval=0.1)
        tight = ConsistencyRationingPolicy(m, threshold=1e-6, update_interval=0.1)
        assert loose.read_level(5.0) is ConsistencyLevel.ONE
        assert tight.read_level(5.0) is ConsistencyLevel.QUORUM

    def test_name(self):
        assert "rationing" in ConsistencyRationingPolicy(ClusterMonitor()).name

    def test_blind_spot_read_staleness(self):
        """The paper's critique: rationing ignores read-side staleness.

        A read-heavy workload with few writes keeps conflict probability low
        -> the policy stays weak, even though a WAN deployment would serve
        plenty of stale reads at ONE.
        """
        m = ClusterMonitor(window=10.0)
        # writes spread thinly over many keys: per-key conflicts are rare,
        # but every read still risks a 200-400 ms propagation window.
        for i in range(50):
            feed_monitor(
                m, write_rate=0.2, acks=[0.001, 0.200, 0.400], key=f"k{i}",
                horizon=5.0,
            )
        p = ConsistencyRationingPolicy(m, threshold=0.10, update_interval=0.1)
        assert p.read_level(5.0) is ConsistencyLevel.ONE  # stays weak


class TestReadWriteRatio:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ReadWriteRatioPolicy(ClusterMonitor(), threshold=0.0)

    def test_read_dominated_goes_weak(self):
        m = ClusterMonitor(window=10.0)
        # feed: 1 write per read pair in feed_monitor -> ratio 1.0
        feed_monitor(m, write_rate=10.0, acks=[0.001, 0.002, 0.003])
        weak = ReadWriteRatioPolicy(m, threshold=0.5, update_interval=0.1)
        strong = ReadWriteRatioPolicy(m, threshold=4.0, update_interval=0.1)
        assert weak.read_level(5.0) is ConsistencyLevel.ONE
        assert strong.read_level(5.0) is ConsistencyLevel.QUORUM

    def test_no_writes_is_infinite_ratio(self):
        m = ClusterMonitor()
        p = ReadWriteRatioPolicy(m, threshold=100.0)
        assert p.read_level(1.0) is ConsistencyLevel.ONE

    def test_decision_log(self):
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=10.0, acks=[0.001, 0.002, 0.003])
        p = ReadWriteRatioPolicy(m, threshold=4.0, update_interval=0.1)
        p.read_level(5.0)
        t, weak, ratio = p.decisions[-1]
        assert t == 5.0 and weak is False and ratio == pytest.approx(1.0, rel=0.2)

    def test_name(self):
        assert "rwratio" in ReadWriteRatioPolicy(ClusterMonitor()).name
