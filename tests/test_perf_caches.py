"""Invalidation tests for the hot-path memoization added by the perf pass.

Every cache on the operation path -- store placement, resolved
requirements, network routes, ring ownership fractions -- answers a
question whose inputs change on live membership events. These tests pin
the contract: a cached answer is bit-identical to a fresh resolve, before
and after every bootstrap/decommission, including mid-migration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.consistency import ConsistencyLevel
from repro.cluster.replication import SimpleStrategy
from repro.cluster.ring import TokenRing
from repro.cluster.store import ReplicatedStore, StoreConfig
from repro.common.stats import Histogram
from repro.elastic.rebalance import RebalanceConfig, StreamingRebalancer
from repro.net.topology import Datacenter, LinkClass, Topology
from repro.net.transport import TrafficMatrix
from repro.simcore.simulator import Simulator


def _fresh_placement(store, key):
    """Uncached reference placement for ``key`` (strategy walk, no memo)."""
    strategy = SimpleStrategy(rf=store.strategy.rf_total)
    return strategy.replicas(key, store.ring, store.topology)


@pytest.fixture
def elastic_store():
    sim = Simulator()
    topo = Topology([Datacenter("dc", "r")], [5])
    return ReplicatedStore(
        sim,
        topo,
        strategy=SimpleStrategy(rf=3),
        config=StoreConfig(seed=3, read_repair_chance=0.0),
    )


KEYS = [f"user{i}" for i in range(64)]


class TestPlacementCache:
    def test_replica_info_is_memoized(self, elastic_store):
        st = elastic_store
        st.preload(KEYS)
        first = st.replica_info("user0")
        assert st.replica_info("user0") is first  # cached entry reused
        replicas, extra, by_dc = first
        assert replicas == _fresh_placement(st, "user0")
        assert extra == ()
        assert sum(by_dc.values()) == len(replicas)

    def test_bootstrap_invalidates_placement(self, elastic_store):
        st = elastic_store
        st.preload(KEYS)
        before = {k: st.replica_sets(k)[0] for k in KEYS}
        st.bootstrap_node(0)
        after = {k: st.replica_sets(k)[0] for k in KEYS}
        # The cache must answer with the *new* ring's placement...
        for k in KEYS:
            assert after[k] == _fresh_placement(st, k), k
        # ...and the newcomer actually took over some placements.
        assert any(before[k] != after[k] for k in KEYS)
        assert any(5 in after[k] for k in KEYS)

    def test_decommission_invalidates_placement(self, elastic_store):
        st = elastic_store
        st.preload(KEYS)
        st.decommission_node(4)
        for k in KEYS:
            placement = st.replica_sets(k)[0]
            assert 4 not in placement, k
            assert placement == _fresh_placement(st, k), k

    def test_streaming_migration_cache_lifecycle(self, elastic_store):
        st = elastic_store
        rebalancer = StreamingRebalancer(
            st, RebalanceConfig(pump_interval=0.005, attempt_timeout=0.1)
        )
        st.preload(KEYS)
        strategy_before = {k: tuple(st.replica_sets(k)[0]) for k in KEYS}
        new_node = st.bootstrap_node(0)
        # Mid-migration: pending keys stay with their old owners (the memo
        # must not leak the new placement early), incoming owners are extra.
        moved = 0
        for k in KEYS:
            authoritative, extra = st.replica_sets(k)
            if extra:
                moved += 1
                assert tuple(authoritative) == strategy_before[k], k
                assert all(n == new_node for n in extra)
        assert moved > 0
        st.sim.run(until=60.0)
        assert not rebalancer.active
        # Drained: every key must resolve to the new ring's placement.
        for k in KEYS:
            authoritative, extra = st.replica_sets(k)
            assert extra == ()
            assert authoritative == _fresh_placement(st, k), k


class TestRequirementCache:
    def test_same_shape_reuses_requirement_instance(self, elastic_store):
        st = elastic_store
        coord = st.coordinators[0]
        replicas, _, by_dc = st.replica_info("user0")
        first = coord._requirement(2, replicas, by_dc)
        assert coord._requirement(2, replicas, by_dc) is first
        assert first.total == 2

    def test_local_quorum_keys_on_coordinator_dc(self):
        sim = Simulator()
        topo = Topology([Datacenter("a", "r"), Datacenter("b", "r")], [3, 3])
        st = ReplicatedStore(
            sim, topo, strategy=SimpleStrategy(rf=4), config=StoreConfig(seed=4)
        )
        st.preload(["user0"])
        replicas, _, by_dc = st.replica_info("user0")
        coords = {st.topology.dc_of(c.node_id): c for c in st.coordinators}
        req_a = coords[0]._requirement(
            ConsistencyLevel.LOCAL_QUORUM, replicas, by_dc
        )
        req_b = coords[1]._requirement(
            ConsistencyLevel.LOCAL_QUORUM, replicas, by_dc
        )
        assert req_a.per_dc != req_b.per_dc  # distinct cached entries per DC

    def test_rf_change_misses_the_cache(self, elastic_store):
        st = elastic_store
        coord = st.coordinators[0]
        req3 = coord._requirement(ConsistencyLevel.ALL, [0, 1, 2], {0: 3})
        req2 = coord._requirement(ConsistencyLevel.ALL, [0, 1], {0: 2})
        assert req3.total == 3 and req2.total == 2


class TestNetworkRouteCache:
    def test_routes_cover_new_nodes_after_bootstrap(self, elastic_store):
        st = elastic_store
        net = st.network
        assert net.topology.link_class(0, 1) is LinkClass.INTRA_DC
        fired = []
        net.send(0, 1, 100, fired.append, "x")
        assert (0, 1) in net._route_cache
        new_node = st.bootstrap_node(0)
        assert net._route_cache == {}  # invalidated by the bootstrap
        net.send(0, new_node, 100, fired.append, "y")
        cls, _, _, dcs = net._route_cache[(0, new_node)]
        assert cls is LinkClass.INTRA_DC and dcs == (0, 0)

    def test_traffic_matrix_views_and_codes_agree(self):
        t = TrafficMatrix()
        t.record(LinkClass.INTER_AZ, 10)
        t.record_code(
            list(LinkClass).index(LinkClass.INTER_AZ), 20
        )
        assert t.bytes[LinkClass.INTER_AZ] == 30
        assert t.messages[LinkClass.INTER_AZ] == 2
        assert t.billable_bytes() == 30
        delta = t.delta(t.snapshot())
        assert delta.total_bytes() == 0


class TestRingCaches:
    def test_ownership_fractions_memoized_and_invalidated(self):
        ring = TokenRing(6, vnodes=16)
        first = ring.ownership_fractions()
        assert ring.ownership_fractions() is first
        assert abs(float(first.sum()) - 1.0) < 1e-12
        ring.add_node(6)
        grown = ring.ownership_fractions()
        assert grown is not first
        assert len(grown) == 7 and grown[6] > 0
        assert abs(float(grown.sum()) - 1.0) < 1e-12
        ring.remove_node(6)
        shrunk = ring.ownership_fractions()
        assert shrunk is not grown
        np.testing.assert_allclose(shrunk, first)


class TestHistogramFastPath:
    def test_add_matches_searchsorted_reference(self):
        h = Histogram(lo=1e-4, hi=10.0, nbuckets=64)
        rng = np.random.default_rng(9)
        values = list(rng.lognormal(-3.0, 2.0, size=4000))
        # Exact bucket edges are the off-by-one hazard of the closed form.
        values += list(h._edges_list) + [h.lo, h.hi, h.lo / 2, h.hi * 2]
        ref_counts = [0] * h.nbuckets
        below = above = 0
        for x in values:
            h.add(x)
            if x < h.lo:
                below += 1
            elif x >= h.hi:
                above += 1
            else:
                idx = int(np.searchsorted(h._edges, x, side="right")) - 1
                ref_counts[min(max(idx, 0), h.nbuckets - 1)] += 1
        assert h._counts == ref_counts
        assert h._below == below and h._above == above

    def test_nan_lands_in_top_bucket_like_searchsorted_did(self):
        h = Histogram(lo=1e-4, hi=10.0, nbuckets=16)
        h.add(float("nan"))  # must not raise
        assert h._counts[-1] == 1
        assert h.n == 1

    def test_add_many_matches_add(self):
        xs = np.random.default_rng(10).exponential(0.01, size=2000)
        one = Histogram(lo=1e-5, hi=1.0, nbuckets=32)
        many = Histogram(lo=1e-5, hi=1.0, nbuckets=32)
        for x in xs:
            one.add(float(x))
        many.add_many(xs)
        assert one._counts == many._counts
        assert one.n == many.n
        assert one.percentile(99) == many.percentile(99)
