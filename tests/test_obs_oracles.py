"""Tests for the streaming anomaly oracles (schema ``repro.obs/2``).

The load-bearing guarantees:

- each oracle is a deterministic state machine: driven synthetically it
  emits exactly the edge-triggered start/end (or point) records claimed;
- a real chaos run (WAN partition between the two EC2 AZs) produces a
  quorum-loss window aligned with the injected partition;
- oracles ride the observer-effect contract: enabling them never changes
  a run's results, and anomaly records are byte-identical across
  ``--jobs`` layouts and ``PYTHONHASHSEED`` values;
- ``repro.obs/1`` artifacts (pre-oracle) still load, validate and render
  through the ``/2`` loader.
"""

from __future__ import annotations

import os
from types import SimpleNamespace

import pytest

from repro.cluster.versions import Version
from repro.common.errors import ConfigError
from repro.experiments import scenarios
from repro.experiments.sweep import SweepRunner, plan_sweep
from repro.obs.events import ObsEvent
from repro.obs.oracles import AnomalyOracles, OracleConfig
from repro.obs.recorder import TIMELINE_SCHEMA, ObsConfig
from repro.obs.report import load_timeline, render_text, validate_timeline

# Tiny-but-real chaos runs: pacing makes the horizon ops/offered_load
# (=4000/s), so the partition window must be squeezed to fit.
CHAOS_OPS = 800
CHAOS_OVERRIDES = {"partition_start": 0.05, "partition_duration": 0.08}


class _StubNode:
    def __init__(self, node_id: int, up: bool = True, retired: bool = False):
        self.node_id = node_id
        self.up = up
        self.retired = retired


class _StubTopology:
    def __init__(self, dc_by_node):
        self._dc_by_node = dict(dc_by_node)
        self.datacenters = sorted(set(self._dc_by_node.values()))

    def dc_of(self, node_id: int) -> int:
        return self._dc_by_node[node_id]


class _StubRebalancer:
    def __init__(self):
        self.active = False
        self.sig = (0, 0, 0, 0)

    def progress_signature(self):
        return self.sig

    def pending_keys(self) -> int:
        return 5


class _StubStore:
    """Just enough store surface for the oracle engine: nodes + topology."""

    def __init__(self, nodes=None, topology=None, rebalancer=None):
        self.nodes = nodes if nodes is not None else [_StubNode(0)]
        self.topology = topology or _StubTopology({n.node_id: 0 for n in self.nodes})
        self.rebalancer = rebalancer


def _engine(store=None, **config_kwargs):
    sink: list = []
    engine = AnomalyOracles(
        store or _StubStore(), OracleConfig(**config_kwargs), sink.append
    )
    return engine, sink


def _read(key: str, version, t: float = 1.0, ok: bool = True):
    return SimpleNamespace(kind="read", key=key, version=version, ok=ok, t_end=t)


class TestOracleConfig:
    def test_defaults_are_valid(self):
        OracleConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stale_window_ticks": 0},
            {"stale_rate_threshold": 0.0},
            {"stale_rate_threshold": 1.5},
            {"in_doubt_dwell": 0.0},
            {"rebalance_stall": -1.0},
            {"monotonic_sample_every": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            OracleConfig(**kwargs)


class TestStaleBurstOracle:
    def test_burst_opens_and_closes_on_rate_edge(self):
        engine, sink = _engine(
            stale_window_ticks=2, stale_rate_threshold=0.5, stale_min_reads=10
        )
        engine.on_tick(0.25, window_reads=20, window_stale=2)  # rate 0.1
        assert sink == []
        engine.on_tick(0.50, window_reads=20, window_stale=20)  # window rate 0.55
        assert [r["phase"] for r in sink] == ["start"]
        assert sink[0]["oracle"] == "stale-burst"
        assert sink[0]["t"] == 0.50
        engine.on_tick(0.75, window_reads=20, window_stale=0)  # rate back to 0.5
        assert [r["phase"] for r in sink] == ["start", "end"]
        assert sink[1]["duration"] == pytest.approx(0.25)

    def test_min_reads_gates_noise(self):
        engine, sink = _engine(stale_min_reads=100)
        engine.on_tick(0.25, window_reads=3, window_stale=3)  # rate 1.0, 3 reads
        assert sink == []

    def test_finish_closes_open_burst_as_unresolved(self):
        engine, sink = _engine(stale_min_reads=1)
        engine.on_tick(0.25, window_reads=10, window_stale=10)
        engine.finish(0.4)
        assert sink[-1]["phase"] == "end"
        assert sink[-1]["unresolved"] is True


class TestInDoubtDwellOracle:
    def test_dwell_past_budget_flags_then_resolves(self):
        engine, sink = _engine(in_doubt_dwell=1.0)
        engine.on_txn_prepared(3, 17, 0.0)
        engine.on_tick(0.5, 0, 0)
        assert sink == []  # within budget
        engine.on_tick(1.5, 0, 0)
        (start,) = sink
        assert (start["oracle"], start["phase"]) == ("in-doubt-dwell", "start")
        assert (start["node"], start["txn"]) == (3, 17)
        assert start["waited"] == pytest.approx(1.5)
        engine.on_txn_doubt_resolved(3, 17, 1.8)
        assert sink[-1]["phase"] == "end"
        assert sink[-1]["t"] == 1.8

    def test_resolution_within_budget_is_silent(self):
        engine, sink = _engine(in_doubt_dwell=1.0)
        engine.on_txn_prepared(1, 5, 0.0)
        engine.on_txn_doubt_resolved(1, 5, 0.2)
        engine.on_tick(2.0, 0, 0)
        assert sink == []

    def test_duplicate_registration_keeps_earliest_prepare_time(self):
        # Re-registering a pair while the node stays up keeps the original
        # prepare time: the dwell clock measures the full live wait.
        engine, sink = _engine(in_doubt_dwell=1.0)
        engine.on_txn_prepared(2, 9, 0.1)
        engine.on_txn_prepared(2, 9, 0.9)  # duplicate, later timestamp
        engine.on_tick(1.2, 0, 0)
        (start,) = sink
        assert start["waited"] == pytest.approx(1.1)

    def test_crashed_node_is_dead_not_blocked(self):
        # A pair on a down node is dropped at the tick (dead, not blocked);
        # recovery re-registers at the recovery instant, restarting the
        # clock, so only live dwell counts against the budget.
        nodes = [_StubNode(0), _StubNode(1)]
        engine, sink = _engine(_StubStore(nodes=nodes), in_doubt_dwell=1.0)
        def dwell():
            return [r for r in sink if r["oracle"] == "in-doubt-dwell"]
        engine.on_txn_prepared(1, 7, 0.0)
        nodes[1].up = False
        engine.on_tick(5.0, 0, 0)
        assert dwell() == []  # down the whole dwell: never flagged
        nodes[1].up = True
        engine.on_txn_prepared(1, 7, 5.0)  # recovery replay at ``now``
        engine.on_tick(5.5, 0, 0)
        assert dwell() == []  # only 0.5s of live dwell so far
        engine.on_tick(6.2, 0, 0)
        (start,) = dwell()
        assert start["phase"] == "start"
        assert start["waited"] == pytest.approx(1.2)

    def test_open_dwell_closes_when_the_node_crashes(self):
        nodes = [_StubNode(0), _StubNode(1)]
        engine, sink = _engine(_StubStore(nodes=nodes), in_doubt_dwell=0.5)
        def dwell():
            return [r for r in sink if r["oracle"] == "in-doubt-dwell"]
        engine.on_txn_prepared(1, 3, 0.0)
        engine.on_tick(1.0, 0, 0)
        assert dwell()[-1]["phase"] == "start"
        nodes[1].up = False
        engine.on_tick(1.5, 0, 0)
        assert dwell()[-1]["phase"] == "end"
        assert dwell()[-1]["crashed"] is True

    def test_restart_between_ticks_overwrites_start_time(self):
        # Crash + recovery entirely inside one tick interval: the tick
        # sweep never saw the node down, so without the explicit restart
        # flag the pre-crash start time would win (on_prepared keeps the
        # earliest) and downtime would count as live dwell. The recovery
        # path passes restart=True, which overwrites unconditionally.
        engine, sink = _engine(in_doubt_dwell=1.0)
        engine.on_txn_prepared(1, 7, 0.0)
        engine.on_txn_prepared(1, 7, 5.0, restart=True)  # recovery replay
        engine.on_tick(5.5, 0, 0)
        assert sink == []  # 0.5s of live dwell, not 5.5s
        engine.on_tick(6.2, 0, 0)
        (start,) = sink
        assert start["waited"] == pytest.approx(1.2)

    def test_restart_closes_an_anomaly_left_open_across_the_crash(self):
        engine, sink = _engine(in_doubt_dwell=0.5)
        engine.on_txn_prepared(1, 3, 0.0)
        engine.on_tick(1.0, 0, 0)
        assert sink[-1]["phase"] == "start"
        # Crash + recovery between ticks: the restart closes the stale
        # open anomaly (the node was dead, not blocked) and restarts it.
        engine.on_txn_prepared(1, 3, 1.4, restart=True)
        assert sink[-1]["phase"] == "end"
        assert sink[-1]["crashed"] is True
        assert sink[-1]["t"] == 1.4

    def test_finish_marks_still_blocked_txns(self):
        engine, sink = _engine(in_doubt_dwell=0.1)
        engine.on_txn_prepared(1, 2, 0.0)
        engine.on_tick(1.0, 0, 0)
        engine.finish(1.5)
        assert sink[-1] == {
            "type": "anomaly", "t": 1.5, "oracle": "in-doubt-dwell",
            "phase": "end", "node": 1, "txn": 2, "unresolved": True,
        }


class TestRebalanceStallOracle:
    def test_frozen_signature_past_budget_is_a_stall(self):
        reb = _StubRebalancer()
        store = _StubStore(rebalancer=reb)
        engine, sink = _engine(store, rebalance_stall=0.5)
        engine.on_elastic_event("migration-start", 0.0)
        reb.active = True
        reb.sig = (10, 1000, 0, 0)
        engine.on_tick(0.25, 0, 0)  # first sighting counts as progress
        engine.on_tick(0.50, 0, 0)
        assert sink == []  # only 0.25s frozen
        engine.on_tick(0.80, 0, 0)
        (start,) = sink
        assert (start["oracle"], start["phase"]) == ("rebalance-stall", "start")
        assert start["pending_keys"] == 5
        reb.sig = (20, 2000, 0, 0)  # pump lands
        engine.on_tick(1.0, 0, 0)
        assert sink[-1]["phase"] == "end"

    def test_steady_progress_never_fires(self):
        reb = _StubRebalancer()
        store = _StubStore(rebalancer=reb)
        engine, sink = _engine(store, rebalance_stall=0.5)
        reb.active = True
        for i in range(1, 8):
            reb.sig = (i, i * 100, 0, 0)
            engine.on_tick(i * 0.25, 0, 0)
        assert sink == []

    def test_inactive_rebalancer_is_ignored(self):
        store = _StubStore(rebalancer=_StubRebalancer())
        engine, sink = _engine(store, rebalance_stall=0.1)
        for i in range(1, 6):
            engine.on_tick(i * 1.0, 0, 0)
        assert sink == []


class TestQuorumLossOracle:
    def _two_dc_store(self, per_dc: int = 3):
        nodes = [_StubNode(i) for i in range(2 * per_dc)]
        topo = _StubTopology({i: 0 if i < per_dc else 1 for i in range(2 * per_dc)})
        return _StubStore(nodes=nodes, topology=topo)

    def test_symmetric_partition_loses_quorum_until_heal(self):
        engine, sink = _engine(self._two_dc_store())
        engine.on_bus_event(
            ObsEvent(0.3, "partition", {"dc_a": 0, "dc_b": 1})
        )
        (start,) = sink
        assert (start["oracle"], start["phase"]) == ("quorum-loss", "start")
        # 3+3 nodes split 3|3: best component 3 < needed 4
        assert (start["live"], start["needed"], start["total"]) == (3, 4, 6)
        engine.on_bus_event(ObsEvent(0.7, "heal", {"dc_a": 0, "dc_b": 1}))
        assert sink[-1]["phase"] == "end"
        assert sink[-1]["duration"] == pytest.approx(0.4)

    def test_majority_crash_without_partition(self):
        store = self._two_dc_store()
        engine, sink = _engine(store)
        for node in store.nodes[:4]:
            node.up = False
        engine.on_bus_event(ObsEvent(1.0, "node-crash", {"node": 3}))
        (start,) = sink
        assert (start["live"], start["needed"]) == (2, 4)
        store.nodes[0].up = store.nodes[1].up = True
        engine.on_bus_event(ObsEvent(2.0, "node-recover", {"node": 0}))
        assert sink[-1]["phase"] == "end"

    def test_retired_nodes_shrink_the_quorum(self):
        # 4 nodes, 2 retired: majority of the remaining 2 is 2 -- both up
        # in one component means no loss even though half the fleet is gone.
        nodes = [_StubNode(i, retired=i >= 2) for i in range(4)]
        store = _StubStore(nodes=nodes, topology=_StubTopology({i: 0 for i in range(4)}))
        engine, sink = _engine(store)
        engine.on_tick(1.0, 0, 0)
        assert sink == []

    def test_minority_partition_keeps_quorum(self):
        # DC0 has 4 nodes, DC1 has 1: cutting them leaves a 4-node majority.
        nodes = [_StubNode(i) for i in range(5)]
        topo = _StubTopology({0: 0, 1: 0, 2: 0, 3: 0, 4: 1})
        engine, sink = _engine(_StubStore(nodes=nodes, topology=topo))
        engine.on_bus_event(ObsEvent(0.5, "partition", {"dc_a": 0, "dc_b": 1}))
        assert sink == []


class TestMonotonicReadOracle:
    def test_older_version_is_a_point_anomaly(self):
        engine, sink = _engine(monotonic_sample_every=1)
        newer = Version(2.0, 7, 100)
        older = Version(1.0, 3, 100)
        engine.on_read(_read("k1", newer, t=1.0))
        engine.on_read(_read("k1", older, t=2.0))
        (point,) = sink
        assert (point["oracle"], point["phase"]) == ("monotonic-read", "point")
        assert (point["key"], point["expected"], point["got"]) == ("k1", 7, 3)

    def test_advancing_versions_are_silent(self):
        engine, sink = _engine(monotonic_sample_every=1)
        for write_id in range(5):
            engine.on_read(_read("k", Version(float(write_id), write_id, 10)))
        assert sink == []

    def test_failed_and_valueless_reads_are_ignored(self):
        engine, sink = _engine(monotonic_sample_every=1)
        engine.on_read(_read("k", Version(2.0, 2, 10)))
        engine.on_read(_read("k", None))
        engine.on_read(_read("k", Version(1.0, 1, 10), ok=False))
        assert sink == []

    def test_sampling_is_crc32_not_hash(self):
        # the sampled-key predicate must not depend on PYTHONHASHSEED
        import zlib

        engine, _ = _engine(monotonic_sample_every=8)
        oracle = engine.monotonic
        for key in ("user1", "user2", "k-17", "xyz"):
            expected = zlib.crc32(key.encode("utf-8")) % 8 == 0
            assert oracle._sampled(key) is expected


class TestEngineCap:
    def test_per_oracle_cap_counts_suppressed(self):
        engine, sink = _engine(monotonic_sample_every=1, max_anomalies=2)
        newer = Version(9.0, 9, 10)
        engine.on_read(_read("k", newer))
        for i in range(5):
            engine.on_read(_read("k", Version(1.0, 1, 10), t=float(i)))
        assert len(sink) == 2
        assert engine.counts == {"monotonic-read": 2}
        assert engine.suppressed == 3
        assert engine.total() == 2


def _chaos_run(**kwargs):
    defaults = dict(
        seed=5,
        ops=CHAOS_OPS,
        overrides=CHAOS_OVERRIDES,
        obs=ObsConfig(sample_interval=0.02),
    )
    defaults.update(kwargs)
    return scenarios.get("geo-partition-chaos").run(**defaults)


class TestChaosScenarioIntegration:
    def test_partition_produces_quorum_loss_window(self):
        run = _chaos_run()
        records = run.obs.timeline_records()
        quorum = [
            r for r in records
            if r.get("type") == "anomaly" and r["oracle"] == "quorum-loss"
        ]
        phases = [r["phase"] for r in quorum]
        assert phases == ["start", "end"]
        assert quorum[0]["t"] == pytest.approx(
            CHAOS_OVERRIDES["partition_start"]
        )
        assert quorum[1]["duration"] == pytest.approx(
            CHAOS_OVERRIDES["partition_duration"]
        )
        assert validate_timeline(records) == []

    def test_header_counts_and_report_surface_anomalies(self):
        run = _chaos_run()
        records = run.obs.timeline_records()
        header = records[0]
        assert header["schema"] == TIMELINE_SCHEMA
        anomalies = [r for r in records if r.get("type") == "anomaly"]
        assert sum(header["anomalies"].values()) == len(anomalies)
        assert header["anomalies"]["quorum-loss"] == 2
        text = render_text(records)
        assert "!! anomaly quorum-loss start" in text
        assert "anomalies" in text

    def test_oracles_never_change_results(self):
        observed = _chaos_run()
        plain = _chaos_run(obs=None)
        assert plain.obs is None
        assert observed.report.ops_completed == plain.report.ops_completed
        assert observed.report.stale_rate == plain.report.stale_rate
        assert observed.report.duration == plain.report.duration

    def test_oracles_off_leaves_a_v2_timeline_without_anomaly_plumbing(self):
        run = _chaos_run(obs=ObsConfig(sample_interval=0.02, oracles=False))
        records = run.obs.timeline_records()
        assert [r for r in records if r.get("type") == "anomaly"] == []
        assert "anomalies" not in records[0]
        assert validate_timeline(records) == []


class TestChaosDeterminism:
    def test_anomaly_artifacts_byte_identical_across_jobs(self, tmp_path):
        def run(jobs: int, out: str):
            plan = plan_sweep(
                ["geo-partition-chaos"],
                grid={
                    "partition_start": [CHAOS_OVERRIDES["partition_start"]],
                    "partition_duration": [CHAOS_OVERRIDES["partition_duration"]],
                    "tolerance": [0.2, 0.4],
                },
                root_seed=3,
                ops=CHAOS_OPS,
                obs_dir=out,
            )
            return SweepRunner(jobs=jobs).run(plan)

        a_dir, b_dir = str(tmp_path / "a"), str(tmp_path / "b")
        res_a = run(1, a_dir)
        res_b = run(2, b_dir)
        assert res_a.to_json() == res_b.to_json()
        compared = saw_anomaly = 0
        for root, _dirs, files in os.walk(a_dir):
            for name in sorted(files):
                path_a = os.path.join(root, name)
                path_b = os.path.join(b_dir, os.path.relpath(path_a, a_dir))
                with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
                    data = fa.read()
                    assert data == fb.read(), path_a
                if name == "timeline.jsonl" and b'"type": "anomaly"' in data:
                    saw_anomaly += 1
                compared += 1
        assert compared >= 4, "expected timeline + trace per run"
        assert saw_anomaly >= 1, "chaos timelines carried no anomaly records"

    def test_anomalies_byte_identical_across_hash_seeds(self, tmp_path):
        # Anomaly emission orders dict/set state explicitly (sorted keys,
        # crc32 sampling); prove it by running the chaos sweep in two fresh
        # interpreters with different PYTHONHASHSEED values.
        import subprocess
        import sys

        def run(seed: str, out: str):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in [env.get("PYTHONPATH"), "src"] if p
            )
            subprocess.run(
                [
                    sys.executable, "-m", "repro.cli", "sweep",
                    "--scenario", "geo-partition-chaos",
                    "--grid", f"partition_start={CHAOS_OVERRIDES['partition_start']}",
                    "--grid", f"partition_duration={CHAOS_OVERRIDES['partition_duration']}",
                    "--obs", "--ops", str(CHAOS_OPS),
                    "--jobs", "1", "--out", out,
                ],
                check=True,
                env=env,
                capture_output=True,
            )

        a_dir, b_dir = str(tmp_path / "a"), str(tmp_path / "b")
        run("1", a_dir)
        run("2", b_dir)
        compared = saw_anomaly = 0
        for root, _dirs, files in os.walk(os.path.join(a_dir, "obs")):
            for name in sorted(files):
                path_a = os.path.join(root, name)
                path_b = os.path.join(b_dir, os.path.relpath(path_a, a_dir))
                with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
                    data = fa.read()
                    assert data == fb.read(), path_a
                if name == "timeline.jsonl":
                    assert b'"type": "anomaly"' in data
                    saw_anomaly += 1
                compared += 1
        assert compared >= 2 and saw_anomaly >= 1


class TestSchemaV1BackCompat:
    def _v1_records(self):
        return [
            {"type": "header", "schema": "repro.obs/1", "sample_interval": 0.25},
            {"type": "sample", "t": 0.25, "stale_rate": 0.01, "level": "r=1",
             "ops_per_s": 100.0},
            {"type": "event", "t": 0.3, "kind": "node-crash", "node": 1},
        ]

    def test_v1_timeline_still_validates_and_renders(self):
        records = self._v1_records()
        assert validate_timeline(records) == []
        text = render_text(records)
        assert "repro.obs/1" in text
        assert "node-crash" in text

    def test_v1_loader_roundtrip_from_disk(self, tmp_path):
        import json

        path = tmp_path / "timeline.jsonl"
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in self._v1_records())
        )
        records = load_timeline(str(path))
        assert validate_timeline(records) == []

    def test_anomaly_records_are_invalid_under_v1(self):
        records = self._v1_records()
        records.append(
            {"type": "anomaly", "t": 0.5, "oracle": "quorum-loss",
             "phase": "start"}
        )
        problems = validate_timeline(records)
        assert any("anomaly" in p for p in problems)

    def test_v2_anomaly_shape_is_checked(self):
        base = [
            {"type": "header", "schema": TIMELINE_SCHEMA, "sample_interval": 0.25},
        ]
        missing_oracle = base + [{"type": "anomaly", "t": 0.1, "phase": "start"}]
        assert any("oracle" in p for p in validate_timeline(missing_oracle))
        bad_phase = base + [
            {"type": "anomaly", "t": 0.1, "oracle": "x", "phase": "mid"}
        ]
        assert any("phase" in p for p in validate_timeline(bad_phase))
