"""Fidelity suite: cohort mode reproduces per-client metrics on real scenarios.

Each covered scenario runs twice at equal scale -- same client count, same
op budget, same seed -- once with one object per client and once with the
pooled cohort engine, and the headline metrics must agree within the
tolerances below.  The tolerances are the *documented contract* (see
``docs/ARCHITECTURE.md``): they were set from the worst disagreement
measured across scenarios x seeds, with margin, so a regression in either
engine moves at least one assertion.

What "equal" can mean differs by knob:

- **Unpaced** (pure closed loop) the two engines are the same stochastic
  process -- the per-op latency distributions match to KS < 0.05.
- **Paced**, per-client mode spaces each client's ops deterministically at
  ``rate/N`` while a cohort draws Poisson arrivals at the aggregate rate;
  the superposition of N deterministic renewal streams approaches Poisson
  as N grows, so at small N the *distribution shapes* differ by design
  while rate-normalized metrics (means, percentiles, staleness, cost)
  still agree within the contract.
"""

from __future__ import annotations

import pytest

from repro.common.stats import ks_distance, relative_error, within_tolerance
from repro.experiments import scenarios

#: The equivalence contract: relative tolerance per metric.  Staleness
#: rates use an absolute floor of 0.1 in the denominator, i.e. near-zero
#: rates may differ by up to 0.1 * rel absolute before failing.
TOLERANCE = {
    "read_latency_mean_ms": 0.20,
    "write_latency_mean_ms": 0.20,
    "read_latency_p99_ms": 0.25,
    "write_latency_p99_ms": 0.25,
    "stale_rate": 0.35,
    "stale_rate_strict": 0.35,
    "cost_per_kop_usd": 0.50,
    "throughput_ops_s": 0.50,
}
STALE_FLOOR = 0.1

#: Scenarios the contract is asserted on (>= 3, non-elastic: the elastic
#: autoscaler feeds metrics back into capacity decisions, which amplifies
#: any modeling difference into divergent membership histories).
SCENARIOS = ("single-dc-ycsb-a", "geo-replication", "diurnal-traffic")
SEED = 7


@pytest.fixture(scope="module")
def mode_metrics():
    """Run every covered scenario once per mode (cached across tests)."""
    out = {}
    for name in SCENARIOS:
        spec = scenarios.get(name)
        out[name] = {
            mode: spec.run(seed=SEED, client_mode=mode).metrics()
            for mode in ("per_client", "cohort")
        }
    return out


@pytest.mark.parametrize("name", SCENARIOS)
class TestMetricAgreement:
    def test_same_op_count(self, mode_metrics, name):
        pc, co = mode_metrics[name]["per_client"], mode_metrics[name]["cohort"]
        assert pc["ops_completed"] == co["ops_completed"]

    def test_latency_means_agree(self, mode_metrics, name):
        pc, co = mode_metrics[name]["per_client"], mode_metrics[name]["cohort"]
        for key in ("read_latency_mean_ms", "write_latency_mean_ms"):
            err = relative_error(co[key], pc[key])
            assert err <= TOLERANCE[key], f"{name}.{key}: rel error {err:.3f}"

    def test_latency_percentiles_agree(self, mode_metrics, name):
        pc, co = mode_metrics[name]["per_client"], mode_metrics[name]["cohort"]
        for key in ("read_latency_p99_ms", "write_latency_p99_ms"):
            err = relative_error(co[key], pc[key])
            assert err <= TOLERANCE[key], f"{name}.{key}: rel error {err:.3f}"

    def test_staleness_rates_agree(self, mode_metrics, name):
        pc, co = mode_metrics[name]["per_client"], mode_metrics[name]["cohort"]
        for key in ("stale_rate", "stale_rate_strict"):
            assert within_tolerance(
                co[key], pc[key], rel=TOLERANCE[key], abs_floor=STALE_FLOOR
            ), f"{name}.{key}: per_client={pc[key]:.4g} cohort={co[key]:.4g}"

    def test_cost_agrees(self, mode_metrics, name):
        pc, co = mode_metrics[name]["per_client"], mode_metrics[name]["cohort"]
        key = "cost_per_kop_usd"
        err = relative_error(co[key], pc[key])
        assert err <= TOLERANCE[key], f"{name}.{key}: rel error {err:.3f}"

    def test_throughput_agrees(self, mode_metrics, name):
        pc, co = mode_metrics[name]["per_client"], mode_metrics[name]["cohort"]
        key = "throughput_ops_s"
        err = relative_error(co[key], pc[key])
        assert err <= TOLERANCE[key], f"{name}.{key}: rel error {err:.3f}"

    def test_modes_are_labelled(self, mode_metrics, name):
        assert mode_metrics[name]["per_client"]["client_mode"] == "per_client"
        assert mode_metrics[name]["cohort"]["client_mode"] == "cohort"
        assert mode_metrics[name]["cohort"]["cohorts"]


class TestLatencyDistribution:
    """Unpaced closed loops are the same process: whole-distribution check."""

    def _latencies(self, mode):
        from tests.conftest import Simulator
        from repro.cluster.store import ReplicatedStore, StoreConfig
        from repro.net.latency import FixedLatency
        from repro.net.topology import Datacenter, LinkClass, Topology
        from repro.policy import StaticPolicy
        from repro.workload.client import WorkloadRunner
        from repro.workload.traces import TraceRecorder
        from repro.workload.workloads import heavy_read_update

        topo = Topology(
            [Datacenter("dc", "r")], [4],
            latency={LinkClass.INTRA_DC: FixedLatency(0.0003)},
        )
        store = ReplicatedStore(
            Simulator(), topo, config=StoreConfig(seed=3, read_repair_chance=0.0)
        )
        recorder = TraceRecorder()
        store.add_listener(recorder)
        WorkloadRunner(
            store, heavy_read_update(record_count=100),
            policy=StaticPolicy(1, 2, name="s"),
            n_clients=16, ops_total=6000, seed=5, client_mode=mode,
        ).run()
        reads = [r.latency for r in recorder.records if r.kind == "read"]
        writes = [r.latency for r in recorder.records if r.kind == "write"]
        return reads, writes

    def test_unpaced_latency_distributions_match(self):
        pc_reads, pc_writes = self._latencies("per_client")
        co_reads, co_writes = self._latencies("cohort")
        assert ks_distance(pc_reads, co_reads) < 0.05
        assert ks_distance(pc_writes, co_writes) < 0.08
