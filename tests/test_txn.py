"""Tests for the transaction subsystem: WAL, 2PC, API, mixes, scenarios."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.monitor.collector import ClusterMonitor
from repro.txn.api import TransactionalStore, TxnConfig
from repro.txn.runner import TxnRunner
from repro.txn.wal import (
    REC_ABORT,
    REC_COMMIT,
    REC_PREPARE,
    REC_TM_ABORT,
    REC_TM_BEGIN,
    REC_TM_COMMIT,
    REC_TM_END,
    WriteAheadLog,
)
from repro.workload.workloads import (
    TXN_WORKLOADS,
    TxnWorkloadSpec,
    bank_transfer_mix,
    order_checkout_mix,
    read_modify_write_mix,
)


#: Small timeouts so failure-path tests settle in simulated milliseconds.
FAST = dict(
    prepare_timeout=0.05, client_timeout=0.2, retry_interval=0.01, status_interval=0.01
)


def settle(store, horizon: float = 10.0) -> None:
    """Run the simulator until the protocol machinery goes quiet."""
    store.sim.run(until=store.sim.now + horizon)


def replicas_of(store, key):
    return store.strategy.replicas(key, store.ring, store.topology)


class TestWriteAheadLog:
    def test_append_and_indexing(self):
        wal = WriteAheadLog(3)
        wal.append(REC_PREPARE, 7, 1.0, tm_node=0, writes={})
        wal.append(REC_COMMIT, 7, 2.0)
        wal.append(REC_PREPARE, 8, 3.0, tm_node=0, writes={})
        assert len(wal) == 3
        assert wal.kinds_for(7) == (REC_PREPARE, REC_COMMIT)
        assert [r.lsn for r in wal.records_for(7)] == [0, 1]
        assert wal.prepare_record(8).data["tm_node"] == 0

    def test_in_doubt_is_prepare_without_decision(self):
        wal = WriteAheadLog(0)
        wal.append(REC_PREPARE, 1, 0.0, tm_node=0, writes={})
        wal.append(REC_PREPARE, 2, 0.1, tm_node=0, writes={})
        wal.append(REC_ABORT, 2, 0.2)
        wal.append(REC_PREPARE, 3, 0.3, tm_node=0, writes={})
        wal.append(REC_COMMIT, 3, 0.4)
        assert wal.in_doubt() == [1]

    def test_tm_queries(self):
        wal = WriteAheadLog(0)
        wal.append(REC_TM_BEGIN, 1, 0.0, participants=[0, 1])
        wal.append(REC_TM_COMMIT, 1, 0.1)
        wal.append(REC_TM_BEGIN, 2, 0.2, participants=[2])
        wal.append(REC_TM_BEGIN, 3, 0.3, participants=[0])
        wal.append(REC_TM_ABORT, 3, 0.4)
        wal.append(REC_TM_END, 3, 0.5)
        assert wal.tm_decision(1) == "commit"
        assert wal.tm_decision(2) is None
        assert wal.tm_decision(3) == "abort"
        assert [r.txn_id for r in wal.tm_unfinished()] == [1, 2]


class TestTxnWorkloadSpec:
    def test_builtin_mixes(self):
        assert set(TXN_WORKLOADS) == {
            "bank-transfer",
            "read-modify-write",
            "order-checkout",
        }
        bank = bank_transfer_mix()
        assert bank.n_keys == 2 and bank.read_slots == (0, 1)
        rmw = read_modify_write_mix()
        assert rmw.n_keys == 1
        checkout = order_checkout_mix()
        assert set(checkout.read_slots) & set(checkout.write_slots) == {2}

    def test_validation(self):
        with pytest.raises(ConfigError, match="outside"):
            TxnWorkloadSpec("x", n_keys=2, read_slots=(2,), write_slots=(0,))
        with pytest.raises(ConfigError, match="at least one"):
            TxnWorkloadSpec("x", n_keys=1, read_slots=(), write_slots=())
        with pytest.raises(ConfigError, match="distinct"):
            TxnWorkloadSpec(
                "x", n_keys=4, read_slots=(0,), write_slots=(1,), record_count=3
            )

    def test_sample_keys_distinct(self):
        spec = bank_transfer_mix(record_count=10)
        chooser = spec.make_chooser(rng=1)
        for _ in range(50):
            keys = spec.sample_keys(chooser)
            assert len(set(keys)) == spec.n_keys

    def test_sample_keys_degenerate_distribution(self):
        # A hotspot so extreme the chooser returns the same index forever:
        # the deterministic probe must still produce distinct keys.
        spec = TxnWorkloadSpec(
            "hot",
            n_keys=3,
            read_slots=(0,),
            write_slots=(1, 2),
            record_count=5,
            distribution="hotspot",
            distribution_kwargs={"hot_set_fraction": 0.2, "hot_opn_fraction": 1.0},
        )
        keys = spec.sample_keys(spec.make_chooser(rng=1))
        assert len(set(keys)) == 3


class TestCommitPath:
    def test_commit_applies_atomically_everywhere(self, simple_store):
        store = simple_store
        t = TransactionalStore(store, config=TxnConfig(**FAST))
        outcomes = []

        def go():
            txn = t.begin(coordinator=0)
            txn.write("a", 100)
            txn.write("b", 100)
            txn.commit(outcomes.append)

        store.sim.schedule(0.0, go)
        settle(store)

        assert [o.status for o in outcomes] == ["committed"]
        assert t.commits == 1 and t.abort_count() == 0
        for key in ("a", "b"):
            versions = {store.nodes[r].data.get(key) for r in replicas_of(store, key)}
            assert len(versions) == 1 and None not in versions
        # The oracle saw the commit: a quorum read is judged against it.
        assert store.oracle.expected_version("a")[0].size == 100

    def test_wal_records_of_a_commit(self, simple_store):
        store = simple_store
        t = TransactionalStore(store, config=TxnConfig(**FAST))

        def go():
            txn = t.begin(coordinator=0)
            txn.write("a", 100)
            txn.commit()

        store.sim.schedule(0.0, go)
        settle(store)

        tm_kinds = t.wals[0].kinds_for(1)
        assert REC_TM_BEGIN in tm_kinds
        assert REC_TM_COMMIT in tm_kinds
        assert REC_TM_END in tm_kinds
        for r in replicas_of(store, "a"):
            kinds = [k for k in t.wals[r].kinds_for(1) if k in (REC_PREPARE, REC_COMMIT)]
            assert kinds == [REC_PREPARE, REC_COMMIT]
        assert t.in_doubt_now() == 0

    def test_read_only_commit_is_local(self, simple_store):
        store = simple_store
        store.preload(["a"])
        t = TransactionalStore(store, config=TxnConfig(**FAST))
        outcomes = []

        def go():
            txn = t.begin()
            txn.read("a")
            txn.commit(outcomes.append)

        store.sim.schedule(0.0, go)
        settle(store)
        assert outcomes[0].committed and outcomes[0].n_reads == 1
        assert sum(len(w) for w in t.wals) == 0  # no 2PC round was needed

    def test_reads_route_through_policy_level(self, simple_store):
        store = simple_store
        store.preload(["a"])

        class Probe:
            name = "probe"
            calls = 0

            def read_level(self, now):
                Probe.calls += 1
                return 3

            def write_level(self, now):
                return 1

        t = TransactionalStore(store, policy=Probe(), config=TxnConfig(**FAST))
        seen = []

        def go():
            txn = t.begin()
            txn.read("a", seen.append)
            txn.commit()

        store.sim.schedule(0.0, go)
        settle(store)
        assert Probe.calls == 1
        assert seen[0].level_label == "n=3"
        assert seen[0].version is not None

    def test_single_use_handles(self, simple_store):
        store = simple_store
        t = TransactionalStore(store, config=TxnConfig(**FAST))
        txn = t.begin()
        txn.commit()
        settle(store)
        with pytest.raises(SimulationError):
            txn.read("a")
        with pytest.raises(SimulationError):
            txn.write("a")
        with pytest.raises(SimulationError):
            txn.commit()

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TxnConfig(prepare_timeout=0.0)
        with pytest.raises(ConfigError):
            TxnConfig(retry_interval=-1.0)


class TestConflictsAndValidation:
    def test_concurrent_writers_conflict(self, simple_store):
        store = simple_store
        store.preload(["k"])
        t = TransactionalStore(store, config=TxnConfig(**FAST))
        outcomes = []

        def writer():
            # Same coordinator for both: lock acquisition order is then
            # consistent across replicas, so exactly one writer wins.
            txn = t.begin(coordinator=1)
            txn.write("k", 100)
            txn.commit(outcomes.append)

        store.sim.schedule(0.0, writer)
        store.sim.schedule(0.0001, writer)  # lands inside the prepare window
        settle(store)

        statuses = sorted(o.status for o in outcomes)
        assert statuses == ["aborted", "committed"]
        assert t.aborts == {"conflict": 1}
        # The committed writer's version is on every replica.
        versions = {store.nodes[r].data.get("k") for r in replicas_of(store, "k")}
        assert len(versions) == 1

    def test_symmetric_conflict_aborts_both_but_never_deadlocks(self, simple_store):
        # Two TMs that are themselves replicas each grab their local lock
        # first: neither can prepare everywhere, both abort promptly (the
        # NO-vote rule trades livelock risk for deadlock freedom).
        store = simple_store
        store.preload(["k"])
        t = TransactionalStore(store, config=TxnConfig(**FAST))
        r_a, r_b = replicas_of(store, "k")[:2]
        outcomes = []

        def writer(coord):
            txn = t.begin(coordinator=coord)
            txn.write("k", 100)
            txn.commit(outcomes.append)

        store.sim.schedule(0.0, writer, r_a)
        store.sim.schedule(0.0, writer, r_b)
        settle(store)
        assert [o.status for o in outcomes] == ["aborted", "aborted"]
        assert t.in_doubt_now() == 0  # locks fully released, nothing stuck
        assert all(not p.locks for p in t.participants)

    @staticmethod
    def _stale_read_setup(store, tstore):
        """Choreograph a provably stale transactional read of ``k``.

        A plain write commits at level ONE while two replicas are down (the
        oracle's committed bar rises, only replica ``a`` applies); the
        transaction then reads from a lagging replica. Returns the txn,
        its collected outcomes list, and a callable finishing the commit.
        """
        store.preload(["k"])
        a, b, c = replicas_of(store, "k")
        outcomes = []

        def write_with_lag():
            store.nodes[b].crash()
            store.nodes[c].crash()
            store.write("k", 1, coordinator=a)

        def stale_read_then_commit():
            # Forget the hints (the lag must persist past recovery) and
            # swap which replicas are visible: the read can only hit b/c.
            store.hints.drain(b)
            store.hints.drain(c)
            store.nodes[a].crash()
            store.nodes[b].recover()
            store.nodes[c].recover()
            txn = tstore.begin(coordinator=b)
            txn.read("k")
            txn.write("k", 100)
            # Restore a before prepare so the full replica set can vote.
            store.sim.schedule(0.005, store.nodes[a].recover)
            store.sim.schedule(0.01, txn.commit, outcomes.append)
            return txn

        store.sim.schedule(0.0, write_with_lag)
        txns = []
        store.sim.schedule(0.05, lambda: txns.append(stale_read_then_commit()))
        return txns, outcomes

    def test_stale_validation_aborts_read_modify_write(self, simple_store):
        store = simple_store
        t = TransactionalStore(store, config=TxnConfig(**FAST))
        txns, outcomes = self._stale_read_setup(store, t)
        settle(store)
        assert txns[0].stale_reads == 1  # the choreography produced staleness
        # Replica `a` holds the newer committed version the transaction
        # never saw: validation votes NO and the commit aborts.
        assert [o.status for o in outcomes] == ["aborted"]
        assert t.aborts == {"conflict": 1}
        assert t.lost_updates == 0

    def test_validation_off_turns_stale_read_into_lost_update(self, simple_store):
        store = simple_store
        t = TransactionalStore(store, config=TxnConfig(validate_reads=False, **FAST))
        txns, outcomes = self._stale_read_setup(store, t)
        settle(store)
        assert txns[0].stale_reads == 1
        assert [o.status for o in outcomes] == ["committed"]
        assert t.lost_updates == 1  # the unseen plain write was destroyed

    def test_fresh_read_race_is_not_a_lost_update(self, simple_store):
        # A write that lands *after* a fresh read is a write-write race,
        # not a staleness anomaly: the grading must not count it.
        store = simple_store
        store.preload(["k"])
        t = TransactionalStore(store, config=TxnConfig(validate_reads=False, **FAST))
        outcomes = []

        def rmw():
            txn = t.begin()
            txn.read("k")
            store.sim.schedule(0.002, store.write, "k", 3, None)
            txn.write("k", 100)
            store.sim.schedule(0.02, txn.commit, outcomes.append)

        store.sim.schedule(0.0, rmw)
        settle(store)
        assert [o.status for o in outcomes] == ["committed"]
        assert t.lost_updates == 0

    def test_blind_writes_are_not_lost_updates(self, simple_store):
        store = simple_store
        store.preload(["k"])
        t = TransactionalStore(store, config=TxnConfig(validate_reads=False, **FAST))

        def blind():
            txn = t.begin()
            txn.write("k", 100)
            txn.commit()

        store.sim.schedule(0.0, store.write, "k", 3, None)
        store.sim.schedule(0.01, blind)
        settle(store)
        assert t.commits == 1 and t.lost_updates == 0


class TestFailureModes:
    def test_total_outage_aborts_unavailable(self, simple_store):
        store = simple_store
        for node in store.nodes:
            node.crash()
        t = TransactionalStore(store, config=TxnConfig(**FAST))
        outcomes = []
        txn = t.begin()
        txn.write("a", 100)

        store.sim.schedule(0.0, txn.commit, outcomes.append)
        settle(store)
        assert outcomes[0].status == "aborted"
        assert outcomes[0].reason == "unavailable"

    def test_down_replica_times_out_the_round(self, simple_store):
        store = simple_store
        t = TransactionalStore(store, config=TxnConfig(**FAST))
        victim = replicas_of(store, "a")[1]
        store.on_node_crash(victim)
        outcomes = []

        def go():
            txn = t.begin(coordinator=0)
            txn.write("a", 100)
            txn.commit(outcomes.append)

        store.sim.schedule(0.0, go)
        settle(store)
        assert outcomes[0].status == "aborted"
        assert outcomes[0].reason == "timeout"
        # Nothing was applied anywhere -- the transaction is fully absent.
        for r in replicas_of(store, "a"):
            assert "a" not in store.nodes[r].data

    def test_failed_read_dooms_the_transaction(self, simple_store):
        store = simple_store
        store.preload(["a"])
        for node in store.nodes:
            node.crash()
        t = TransactionalStore(store, config=TxnConfig(**FAST))
        outcomes = []
        txn = t.begin()
        txn.read("a")
        txn.write("a", 100)
        store.sim.schedule(0.0, txn.commit, outcomes.append)
        settle(store)
        assert outcomes[0].status == "aborted"
        assert outcomes[0].reason == "read-failed"


class TestMonitorIntegration:
    def test_monitor_counts_txn_outcomes(self, simple_store):
        store = simple_store
        monitor = ClusterMonitor(window=2.0)
        store.add_listener(monitor)
        t = TransactionalStore(store, config=TxnConfig(**FAST))

        def writer():
            txn = t.begin(coordinator=1)
            txn.write("k", 100)
            txn.commit()

        store.sim.schedule(0.0, writer)
        store.sim.schedule(0.0001, writer)
        settle(store)
        assert monitor.txn_commits == 1
        assert monitor.txn_aborts == 1
        assert monitor.txn_abort_rate() == 0.5
        assert monitor.commit_latency.value > 0.0

    def test_in_doubt_resolution_reaches_listeners(self, simple_store):
        # TM crashes mid-round and only recovers *after* the client's
        # timeout: the client hears "in-doubt", the recovery pass later
        # resolves it, and both the store counters and the monitor must
        # converge on the final verdict (nothing stays in-doubt forever).
        store = simple_store
        monitor = ClusterMonitor(window=2.0)
        store.add_listener(monitor)
        t = TransactionalStore(store, config=TxnConfig(**FAST))
        outcomes = []

        def go():
            txn = t.begin(coordinator=1)
            txn.write("a", 100)
            txn.commit(outcomes.append)

        store.sim.schedule(0.0, go)
        store.sim.schedule_at(0.0007, store.on_node_crash, 1)  # votes in flight
        store.sim.schedule_at(0.3, store.on_node_recover, 1)  # after client_timeout
        settle(store)

        assert [o.status for o in outcomes] == ["in-doubt"]
        assert t.in_doubt_client == 1
        assert t.in_doubt_resolved == 1  # recovery settled it afterwards
        assert t.in_doubt_now() == 0
        assert monitor.txn_in_doubt == 0  # the late verdict moved the count
        assert monitor.txn_commits + monitor.txn_aborts == 1

    def test_reset_metrics_zeroes_txn_surfaces(self, simple_store):
        store = simple_store
        t = TransactionalStore(store, config=TxnConfig(**FAST))

        def writer():
            txn = t.begin()
            txn.write("k", 100)
            txn.commit()

        store.sim.schedule(0.0, writer)
        settle(store)
        assert t.commits == 1
        t.reset_metrics()
        assert t.commits == 0 and t.abort_count() == 0
        assert t.commit_latency.n == 0


class TestTxnRunner:
    def test_runner_produces_txn_report(self, simple_store):
        runner = TxnRunner(
            TransactionalStore(simple_store, config=TxnConfig(**FAST)),
            bank_transfer_mix(record_count=100),
            n_clients=4,
            txns_total=120,
            seed=3,
            warmup_fraction=0.25,
        )
        report = runner.run()
        assert report.txn is not None
        assert report.txn["txns"] > 0
        assert report.txn["commits"] > 0
        assert report.txn["commit_latency_mean_ms"] > 0
        assert report.ops_completed > 0
        assert report.workload == "bank-transfer"

    def test_runner_validates_args(self, simple_store):
        t = TransactionalStore(simple_store)
        spec = bank_transfer_mix(record_count=100)
        with pytest.raises(ConfigError):
            TxnRunner(t, spec, n_clients=0)
        with pytest.raises(ConfigError):
            TxnRunner(t, spec, n_clients=8, txns_total=4)
        with pytest.raises(ConfigError):
            TxnRunner(t, spec, warmup_fraction=1.0)

    def test_identical_runs_are_deterministic(self):
        from repro.cluster.replication import SimpleStrategy
        from repro.cluster.store import ReplicatedStore, StoreConfig
        from repro.net.latency import FixedLatency
        from repro.net.topology import Datacenter, LinkClass, Topology
        from repro.simcore.simulator import Simulator

        def one_run():
            topo = Topology(
                [Datacenter("dc", "r")],
                [5],
                latency={LinkClass.INTRA_DC: FixedLatency(0.0005)},
            )
            store = ReplicatedStore(
                Simulator(),
                topo,
                strategy=SimpleStrategy(rf=3),
                config=StoreConfig(seed=2, read_repair_chance=0.0),
            )
            t = TransactionalStore(store, config=TxnConfig(**FAST))
            report = TxnRunner(
                t, bank_transfer_mix(record_count=100),
                n_clients=4, txns_total=100, seed=3,
            ).run()
            return report.txn, report.stale_rate, report.throughput

        assert one_run() == one_run()


class TestTxnScenarios:
    def test_registered_and_tagged(self):
        from repro.experiments import scenarios

        for name in ("txn-shootout", "txn-crash-storm", "txn-geo-2pc"):
            spec = scenarios.get(name)
            assert "txn" in spec.tags
            assert spec.txn_workload is not None

    def test_shootout_metrics_include_txn_block(self):
        from repro.experiments import scenarios

        run = scenarios.get("txn-shootout").run(seed=3, ops=60)
        m = run.metrics()
        assert m["txn"]["txns"] > 0
        assert "commit_latency_p99_ms" in m["txn"]
        assert m["policy"].startswith("harmony")

    def test_crash_storm_recovers_in_doubt(self):
        from repro.experiments import scenarios

        # Storm compressed so the tiny run still lives through every crash
        # and recovery; the in-doubt machinery must resolve everything.
        run = scenarios.get("txn-crash-storm").run(
            seed=3,
            ops=150,
            overrides={"crash_start": 0.05, "crash_interval": 0.1, "downtime": 0.2},
        )
        t = run.report.txn
        assert t["commits"] > 0
        assert t["commits"] + sum(t["aborts"].values()) == t["txns"]

    def test_sweep_parallel_matches_serial_byte_identical(self):
        from repro.experiments.sweep import SweepRunner, plan_sweep

        # txn-crash-storm is in the plan deliberately: its runs exercise
        # WAL recovery, so this asserts recovery *ordering* determinism too.
        plan = plan_sweep(
            scenario_names=["txn-shootout", "txn-geo-2pc", "txn-crash-storm"],
            grid={
                "tolerance": [0.2, 0.4],
                "crash_start": [0.05],
                "crash_interval": [0.1],
                "downtime": [0.2],
            },
            root_seed=7,
            ops=60,
        )
        serial = SweepRunner(jobs=1).run(plan)
        parallel = SweepRunner(jobs=2).run(plan)
        assert serial.to_json() == parallel.to_json()
        assert serial.to_csv() == parallel.to_csv()
        assert all("txn" in row for row in serial.rows)

    def test_protocol_shootout_sweep_byte_identical_across_jobs(self):
        from repro.experiments.sweep import SweepRunner, plan_sweep

        # The capstone table: all three commit protocols through the same
        # parameter-scripted crash storm, byte-identical whatever --jobs.
        plan = plan_sweep(
            scenario_names=["txn-protocol-shootout"],
            grid={
                "commit_protocol": ["2pc", "2pc-coop", "3pc"],
                "crash_start": [0.05],
                "crash_interval": [0.1],
                "downtime": [0.2],
            },
            root_seed=7,
            ops=60,
        )
        serial = SweepRunner(jobs=1).run(plan)
        parallel = SweepRunner(jobs=2).run(plan)
        assert serial.to_json() == parallel.to_json()
        assert serial.to_csv() == parallel.to_csv()
        assert sorted(r["txn"]["commit_protocol"] for r in serial.rows) == [
            "2pc", "2pc-coop", "3pc",
        ]
        # Every protocol's row carries the shootout metrics.
        for row in serial.rows:
            t = row["txn"]
            assert t["msgs"] > 0 and t["msg_bytes"] > 0
            assert t["blocked_time"] >= 0.0
        header = serial.to_csv().splitlines()[0]
        for col in (
            "txn_commit_protocol",
            "txn_blocked_time",
            "txn_msgs",
            "txn_msg_bytes",
        ):
            assert col in header
