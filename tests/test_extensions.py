"""Tests for the §V future-work extensions: power, deadlines, provisioning."""

import pytest

from repro.common.errors import ConfigError
from repro.cluster.deadline import FreshnessDeadline
from repro.cost.power import PowerModel
from repro.cost.pricing import EC2_US_EAST_2013
from repro.cost.provisioning import Candidate, ProvisioningAdvisor, WorkloadEnvelope
from repro.policy import StaticPolicy
from repro.workload.client import WorkloadRunner
from repro.workload.workloads import heavy_read_update


class TestPowerModel:
    def test_validation(self, store):
        with pytest.raises(ConfigError):
            PowerModel(store, idle_watts=-1.0)
        with pytest.raises(ConfigError):
            PowerModel(store, idle_watts=100.0, peak_watts=50.0)

    def test_idle_cluster_burns_idle_power(self, store):
        meter = PowerModel(store, idle_watts=100.0, peak_watts=200.0)
        store.sim.schedule(10.0, lambda: None)
        store.sim.run()
        report = meter.report()
        assert report.dynamic_joules == pytest.approx(0.0)
        assert report.idle_joules == pytest.approx(
            100.0 * store.topology.n_nodes * 10.0
        )
        assert report.mean_watts == pytest.approx(100.0 * store.topology.n_nodes)

    def test_work_adds_dynamic_energy(self, store):
        meter = PowerModel(store)
        for i in range(500):
            store.sim.schedule_at(i * 0.001, store.write, f"k{i % 10}", 1)
        store.sim.run()
        report = meter.report()
        assert report.dynamic_joules > 0
        assert report.total_joules == pytest.approx(
            report.idle_joules + report.dynamic_joules
        )
        assert report.ops == 500
        assert report.joules_per_kop > 0

    def test_stronger_levels_use_more_energy_per_op(self):
        """The §V direction-1 question, answered by the simulator."""
        from repro.experiments.platforms import grid5000_bismar_platform

        plat = grid5000_bismar_platform()
        joules = {}
        for lv in (1, 5):
            sim, st = plat.build(seed=2)
            meter = PowerModel(st)
            WorkloadRunner(
                st, heavy_read_update(record_count=100),
                policy=StaticPolicy(lv, lv), n_clients=16, ops_total=4000,
                seed=2,
            ).run()
            joules[lv] = meter.report().joules_per_kop
        assert joules[5] > joules[1]

    def test_arm_resets(self, store):
        meter = PowerModel(store)
        store.sim.schedule(5.0, lambda: None)
        store.sim.run()
        meter.arm()
        report = meter.report()
        assert report.duration == 0.0
        assert report.total_joules == 0.0


class TestFreshnessDeadline:
    def test_validation(self, store):
        with pytest.raises(ConfigError):
            FreshnessDeadline(store, deadline=0.0)

    def test_no_violations_after_deadline(self, store):
        fd = FreshnessDeadline(store, deadline=0.05)
        store.add_listener(fd)
        for i in range(100):
            store.sim.schedule_at(i * 0.002, store.write, f"k{i % 5}", 1)
        store.sim.run()
        assert fd.checks > 0
        assert fd.violations() == 0

    def test_repush_heals_partition_laggards(self, store):
        """A write cut off from one DC converges within ~one deadline after heal."""
        fd = FreshnessDeadline(store, deadline=0.1)
        store.add_listener(fd)
        store.network.partition_dcs(0, 1)
        store.sim.schedule_at(0.0, store.write, "k", 1, None, None, 0)
        store.sim.schedule_at(0.05, store.network.heal_all)
        store.sim.run(until=1.0)
        assert fd.repushes >= 1
        assert fd.violations() == 0
        replicas = store.strategy.replicas("k", store.ring, store.topology)
        assert all("k" in store.nodes[r].data for r in replicas)

    def test_key_filter_scopes_guarantee(self, store):
        fd = FreshnessDeadline(
            store, deadline=0.05, key_filter=lambda k: k.startswith("guard")
        )
        store.add_listener(fd)
        store.sim.schedule_at(0.0, store.write, "guarded-key", 1)
        store.sim.schedule_at(0.0, store.write, "other", 1)
        store.sim.run()
        assert fd.checks == 1  # only the guarded keyspace was checked

    def test_down_replica_not_counted(self, store):
        fd = FreshnessDeadline(store, deadline=0.05)
        store.add_listener(fd)
        replicas = store.strategy.replicas("k", store.ring, store.topology)
        store.nodes[replicas[-1]].crash()
        store.sim.schedule_at(0.0, store.write, "k", 1)
        store.sim.run(until=1.0)
        assert fd.violations() == 0  # crashed node excused


class TestProvisioning:
    def _advisor(self):
        return ProvisioningAdvisor(
            prices=EC2_US_EAST_2013,
            dc_delays=[[0.0002, 0.009], [0.009, 0.0002]],
        )

    def _envelope(self, **kw):
        base = dict(
            read_rate=5000.0,
            write_rate=5000.0,
            hot_key_write_rate=200.0,
            data_size_bytes=24_000_000_000,
            stale_tolerance=0.05,
            failures_tolerated=1,
        )
        base.update(kw)
        return WorkloadEnvelope(**base)

    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkloadEnvelope(
                read_rate=-1, write_rate=1, hot_key_write_rate=1,
                data_size_bytes=1,
            )
        with pytest.raises(ConfigError):
            ProvisioningAdvisor(EC2_US_EAST_2013, [[0.0, 0.1]])  # not square

    def test_recommend_returns_cheapest_feasible(self):
        advisor = self._advisor()
        candidates = advisor.evaluate(self._envelope())
        feasible = [c for c in candidates if c.feasible]
        assert feasible, "some candidate must be feasible"
        best = advisor.recommend(self._envelope())
        assert best is not None
        assert best.feasible
        assert best.monthly_cost == min(c.monthly_cost for c in feasible)
        assert best.est_stale_rate <= 0.05

    def test_more_load_needs_more_nodes(self):
        advisor = self._advisor()
        sweep = (6, 9, 12, 18, 24, 36, 48, 60, 84)
        light = advisor.recommend(
            self._envelope(read_rate=2000.0, write_rate=2000.0), nodes_range=sweep
        )
        heavy = advisor.recommend(
            self._envelope(read_rate=40_000.0, write_rate=40_000.0),
            nodes_range=sweep,
        )
        assert light is not None and heavy is not None
        assert heavy.n_nodes >= light.n_nodes
        assert heavy.monthly_cost >= light.monthly_cost

    def test_failure_tolerance_constrains(self):
        advisor = self._advisor()
        # demanding f=4 with small RF options must kill thin layouts
        env = self._envelope(failures_tolerated=4)
        for c in advisor.evaluate(env):
            if c.feasible:
                assert c.rf_total - 4 >= c.read_level

    def test_tight_staleness_forces_stronger_or_fails(self):
        advisor = self._advisor()
        loose = advisor.recommend(self._envelope(stale_tolerance=0.5))
        tight = advisor.recommend(
            self._envelope(stale_tolerance=0.0001, hot_key_write_rate=2000.0)
        )
        assert loose is not None
        if tight is not None:
            assert tight.read_level >= loose.read_level

    def test_infeasible_candidates_carry_reasons(self):
        advisor = self._advisor()
        env = self._envelope(read_rate=10_000_000.0, write_rate=10_000_000.0)
        candidates = advisor.evaluate(env)
        assert all(not c.feasible for c in candidates)
        assert all(c.reason for c in candidates if not c.feasible)

    def test_candidate_properties(self):
        c = Candidate((6, 6), (3, 2), 1, 0.01, 100.0, True)
        assert c.n_nodes == 12
        assert c.rf_total == 5
