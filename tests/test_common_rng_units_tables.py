"""Tests for repro.common.rng / units / tables / errors."""

import numpy as np
import pytest

from repro.common import units
from repro.common.errors import (
    ConfigError,
    ReproError,
    TimeoutError_,
    UnavailableError,
)
from repro.common.rng import RngFactory, spawn_rng
from repro.common.tables import Table, format_float


class TestRngFactory:
    def test_same_seed_same_streams(self):
        a = RngFactory(42).stream("x")
        b = RngFactory(42).stream("x")
        assert np.array_equal(a.random(8), b.random(8))

    def test_different_names_different_streams(self):
        f = RngFactory(42)
        xs = f.stream("a").random(8)
        ys = f.stream("b").random(8)
        assert not np.array_equal(xs, ys)

    def test_streams_cached(self):
        f = RngFactory(1)
        assert f.stream("s") is f.stream("s")

    def test_order_independence(self):
        f1 = RngFactory(7)
        f1.stream("first")
        v1 = f1.stream("second").random(4)
        f2 = RngFactory(7)
        v2 = f2.stream("second").random(4)  # requested without "first"
        assert np.array_equal(v1, v2)

    def test_fork_namespaces(self):
        f = RngFactory(3)
        child_a = f.fork("sub")
        child_b = f.fork("sub")
        assert np.array_equal(
            child_a.stream("x").random(4), child_b.stream("x").random(4)
        )
        assert not np.array_equal(
            f.stream("x").random(4), RngFactory(3).fork("other").stream("x").random(4)
        )

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngFactory("seed")  # type: ignore[arg-type]


class TestSpawnRng:
    def test_none_is_deterministic(self):
        assert np.array_equal(spawn_rng(None).random(4), spawn_rng(None).random(4))

    def test_int_seeds(self):
        assert np.array_equal(spawn_rng(5).random(4), spawn_rng(5).random(4))
        assert not np.array_equal(spawn_rng(5).random(4), spawn_rng(6).random(4))

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert spawn_rng(g) is g

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            spawn_rng("x")  # type: ignore[arg-type]


class TestUnits:
    def test_time_conversions(self):
        assert units.us(1) == pytest.approx(1e-6)
        assert units.ms(2) == pytest.approx(2e-3)
        assert units.seconds(3) == 3.0
        assert units.minutes(2) == 120.0
        assert units.hours(1) == 3600.0

    def test_size_conversions(self):
        assert units.KiB(1) == 1024
        assert units.MiB(1) == 1024**2
        assert units.GiB(1) == 1024**3
        assert units.KB(1) == 1000
        assert units.MB(1) == 10**6
        assert units.GB(1.5) == int(1.5e9)

    def test_fmt_duration(self):
        assert units.fmt_duration(5e-7).endswith("us")
        assert units.fmt_duration(0.005).endswith("ms")
        assert units.fmt_duration(5).endswith("s")
        assert "m" in units.fmt_duration(90)
        assert "h" in units.fmt_duration(7200)
        assert units.fmt_duration(-5).startswith("-")

    def test_fmt_bytes(self):
        assert units.fmt_bytes(10) == "10B"
        assert units.fmt_bytes(1500).endswith("KB")
        assert units.fmt_bytes(2.5e9).endswith("GB")

    def test_fmt_usd(self):
        assert units.fmt_usd(123.456) == "$123.46"
        assert units.fmt_usd(1.5) == "$1.500"
        assert units.fmt_usd(0.00012) == "$0.00012"

    def test_fmt_rate(self):
        assert "M" in units.fmt_rate(2e6)
        assert "k" in units.fmt_rate(2e3)
        assert units.fmt_rate(10.0) == "10.0 ops/s"


class TestTables:
    def test_format_float(self):
        assert format_float(3) == "3"
        assert format_float("x") == "x"
        assert format_float(True) == "True"
        assert format_float(3.14159, digits=3) == "3.142"
        assert format_float(float("nan")) == "nan"
        assert "e" in format_float(1.23e-9)
        assert format_float(0.0) == "0"

    def test_row_length_checked(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_to_csv(self):
        t = Table("title", ["name", "value"])
        t.add_row(["x", 1.5])
        t.add_row(["with,comma", 2])
        out = t.to_csv()
        assert out == 'name,value\nx,1.5\n"with,comma",2\n'

    def test_render_alignment(self):
        t = Table("title", ["name", "value"])
        t.add_row(["x", 1.5])
        t.add_row(["longer", 22])
        out = t.render()
        lines = out.split("\n")
        assert lines[0] == "title"
        assert "name" in lines[2] and "value" in lines[2]
        # all data lines have equal width
        assert len(set(len(line) for line in lines[1:])) <= 2


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ConfigError, ReproError)
        assert issubclass(UnavailableError, ReproError)
        assert issubclass(TimeoutError_, ReproError)
        assert issubclass(TimeoutError_, TimeoutError)

    def test_unavailable_message(self):
        err = UnavailableError(required=3, alive=1)
        assert err.required == 3
        assert err.alive == 1
        assert "3" in str(err) and "1" in str(err)

    def test_timeout_message(self):
        err = TimeoutError_(required=2, received=1)
        assert err.required == 2 and err.received == 1
