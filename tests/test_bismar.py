"""Tests for the consistency-cost efficiency metric and the Bismar engine."""

import pytest

from repro.common.errors import ConfigError
from repro.bismar.efficiency import (
    EfficiencyRow,
    consistency_cost_efficiency,
    rank_levels,
)
from repro.bismar.engine import BismarEngine
from repro.cost.estimator import CostEstimator
from repro.cost.pricing import EC2_US_EAST_2013
from repro.monitor.collector import ClusterMonitor
from repro.stale.dcmodel import DeploymentInfo
from tests.test_harmony import feed_monitor


class TestEfficiencyMetric:
    def test_fresh_cheap_is_best(self):
        assert consistency_cost_efficiency(0.0, 1.0) == 1.0

    def test_staleness_hurts(self):
        assert consistency_cost_efficiency(0.5, 1.0) == 0.5

    def test_cost_hurts(self):
        assert consistency_cost_efficiency(0.0, 2.0) == 0.5

    def test_paper_shape_weak_wins_only_when_acceptable(self):
        # ONE at 60% stale but 40% cheaper loses to QUORUM (paper's E4 logic)
        one = consistency_cost_efficiency(0.61, 1.0)
        quorum = consistency_cost_efficiency(0.0, 1.0 / 0.6)
        assert quorum > one
        # ONE at 5% stale and 40% cheaper wins
        one_ok = consistency_cost_efficiency(0.05, 1.0)
        assert one_ok > quorum

    def test_validation(self):
        with pytest.raises(ConfigError):
            consistency_cost_efficiency(1.5, 1.0)
        with pytest.raises(ConfigError):
            consistency_cost_efficiency(0.5, 0.0)


class TestRankLevels:
    def test_ordering(self):
        rows = rank_levels(
            stale_rates=[0.6, 0.1, 0.0],
            costs_per_op=[1.0, 1.2, 2.0],
        )
        assert isinstance(rows[0], EfficiencyRow)
        assert rows[0].efficiency >= rows[-1].efficiency
        # level 2 (10% stale, 1.2x cost) beats both extremes here
        assert rows[0].read_level == 2

    def test_relative_cost_floor(self):
        rows = rank_levels([0.0, 0.0], [2.0, 4.0])
        by_level = {r.read_level: r for r in rows}
        assert by_level[1].relative_cost == 1.0
        assert by_level[2].relative_cost == 2.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            rank_levels([0.1], [1.0, 2.0])
        with pytest.raises(ConfigError):
            rank_levels([], [])
        with pytest.raises(ConfigError):
            rank_levels([0.1], [0.0])


def make_engine(monitor, store=None, stale_cap=None, deployment=None, rf=3):
    from repro.net.topology import Datacenter, Topology

    topo = Topology([Datacenter("a", "r"), Datacenter("b", "r")], [2, 2])
    estimator = CostEstimator(
        prices=EC2_US_EAST_2013,
        topology=topo,
        rf_total=rf,
        local_replicas=1.5,
        value_size=1000,
    )
    return BismarEngine(
        monitor,
        estimator,
        rf=rf,
        stale_cap=stale_cap,
        update_interval=0.1,
        deployment=deployment,
    )


class TestBismarEngine:
    def test_validation(self):
        m = ClusterMonitor()
        with pytest.raises(ConfigError):
            make_engine(m, rf=0)
        with pytest.raises(ConfigError):
            BismarEngine(m, None, rf=3, stale_cap=2.0)  # type: ignore[arg-type]

    def test_name(self):
        assert make_engine(ClusterMonitor()).name == "bismar"
        assert "cap=0.05" in make_engine(ClusterMonitor(), stale_cap=0.05).name

    def test_quiet_workload_picks_one(self):
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=0.5, acks=[0.001, 0.002, 0.003])
        eng = make_engine(m)
        assert eng.read_level(5.0) == 1  # nothing stale, ONE is cheapest

    def test_rows_cover_all_levels(self):
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=50.0, acks=[0.001, 0.01, 0.02])
        eng = make_engine(m)
        rows = eng.evaluate_levels(5.0)
        assert sorted(r.read_level for r in rows) == [1, 2, 3]

    def test_stale_cap_filters(self):
        m = ClusterMonitor(window=10.0)
        # hot single key with a long propagation tail: ONE and TWO exceed a
        # 2% cap, the full-fan-out level stays under it.
        feed_monitor(m, write_rate=30.0, acks=[0.0005, 0.050, 0.100])
        uncapped = make_engine(m)
        capped = make_engine(m, stale_cap=0.02)
        lvl_uncapped = uncapped.read_level(5.0)
        lvl_capped = capped.read_level(5.0)
        assert lvl_capped >= lvl_uncapped
        assert lvl_capped == 3
        est = {r.read_level: r.stale_rate for r in capped.decisions[-1].rows}
        assert est[3] <= 0.02

    def test_cap_unsatisfiable_falls_back_to_best(self):
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=500.0, acks=[0.001, 0.050, 0.100])
        eng = make_engine(m, stale_cap=0.0)
        # strict staleness > 0 at every level (in-flight races), so the cap
        # excludes everything; engine must still pick something sensible.
        lvl = eng.read_level(5.0)
        assert 1 <= lvl <= 3

    def test_dc_aware_estimates(self):
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=200.0, acks=[0.001, 0.002, 0.011])
        deployment = DeploymentInfo(
            coordinator_share=[0.5, 0.5],
            rf_per_dc=[2, 1],
            delay=[[0.0002, 0.010], [0.010, 0.0002]],
            write_service=0.0005,
            read_service=0.0005,
        )
        eng = make_engine(m, deployment=deployment, stale_cap=0.01)
        lvl = eng.read_level(5.0)
        rows = {r.read_level: r for r in eng.decisions[-1].rows}
        assert rows[3].stale_rate == pytest.approx(0.0, abs=1e-6)
        assert lvl == 3  # only the all-DC level meets a 1% cap here

    def test_level_time_fractions(self):
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=1.0, acks=[0.001, 0.002, 0.003])
        eng = make_engine(m)
        for t in (1.0, 2.0, 3.0):
            eng.read_level(t)
        assert sum(eng.level_time_fractions().values()) == pytest.approx(1.0)

    def test_write_level_fixed(self):
        eng = make_engine(ClusterMonitor())
        assert eng.write_level(0.0) == 1
