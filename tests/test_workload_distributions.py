"""Tests for the YCSB key-choice distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.workload.distributions import (
    ExponentialChooser,
    HotSpotChooser,
    LatestChooser,
    ScrambledZipfianChooser,
    UniformChooser,
    ZipfianChooser,
    make_chooser,
)


def draw(chooser, n=5000):
    return np.array([chooser.next_index() for _ in range(n)])


class TestUniform:
    def test_range_and_coverage(self):
        c = UniformChooser(10, rng=0)
        xs = draw(c, 2000)
        assert xs.min() >= 0 and xs.max() < 10
        assert len(np.unique(xs)) == 10

    def test_roughly_flat(self):
        c = UniformChooser(5, rng=1)
        xs = draw(c, 10_000)
        counts = np.bincount(xs, minlength=5) / len(xs)
        assert np.all(np.abs(counts - 0.2) < 0.03)

    def test_validation(self):
        with pytest.raises(ConfigError):
            UniformChooser(0)


class TestZipfian:
    def test_range(self):
        c = ZipfianChooser(100, rng=0)
        xs = draw(c)
        assert xs.min() >= 0 and xs.max() < 100

    def test_rank_zero_most_popular(self):
        c = ZipfianChooser(100, rng=0)
        xs = draw(c, 20_000)
        counts = np.bincount(xs, minlength=100)
        assert counts[0] == counts.max()
        # heads ordered roughly by rank
        assert counts[0] > counts[5] > counts[50]

    def test_head_share_matches_theory(self):
        # P(rank 0) = 1/zeta(n, theta)
        n, theta = 100, 0.99
        zetan = np.sum(1.0 / np.arange(1, n + 1) ** theta)
        c = ZipfianChooser(n, theta=theta, rng=2)
        xs = draw(c, 50_000)
        share0 = np.mean(xs == 0)
        assert share0 == pytest.approx(1.0 / zetan, rel=0.08)

    def test_single_item(self):
        c = ZipfianChooser(1, rng=0)
        assert c.next_index() == 0

    def test_notify_insert_grows_range(self):
        c = ZipfianChooser(10, rng=0)
        c.notify_insert(100)
        xs = draw(c, 5000)
        assert xs.max() >= 10  # new items reachable
        assert xs.max() < 100

    def test_validation(self):
        with pytest.raises(ConfigError):
            ZipfianChooser(0)
        with pytest.raises(ConfigError):
            ZipfianChooser(10, theta=1.0)


class TestScrambledZipfian:
    def test_range(self):
        c = ScrambledZipfianChooser(50, rng=0)
        xs = draw(c)
        assert xs.min() >= 0 and xs.max() < 50

    def test_skew_preserved_but_hot_key_moved(self):
        c = ScrambledZipfianChooser(100, rng=0)
        xs = draw(c, 30_000)
        counts = np.bincount(xs, minlength=100)
        # the hottest key holds a zipfian-head-sized share
        assert counts.max() / len(xs) > 0.10
        # scrambling: hottest index is (almost surely) not 0
        top = int(np.argmax(counts))
        assert isinstance(top, int)

    def test_deterministic_hot_key(self):
        a = ScrambledZipfianChooser(100, rng=0)
        b = ScrambledZipfianChooser(100, rng=0)
        xa, xb = draw(a, 5000), draw(b, 5000)
        assert np.argmax(np.bincount(xa)) == np.argmax(np.bincount(xb))


class TestLatest:
    def test_newest_most_popular(self):
        c = LatestChooser(100, rng=0)
        xs = draw(c, 20_000)
        counts = np.bincount(xs, minlength=100)
        assert counts[99] == counts.max()

    def test_follows_inserts(self):
        c = LatestChooser(100, rng=0)
        c.notify_insert(200)
        xs = draw(c, 20_000)
        counts = np.bincount(xs, minlength=200)
        assert counts[199] == counts.max()


class TestHotSpot:
    def test_hot_fraction(self):
        c = HotSpotChooser(100, hot_set_fraction=0.1, hot_opn_fraction=0.9, rng=0)
        xs = draw(c, 20_000)
        hot = np.mean(xs < 10)
        assert hot == pytest.approx(0.9, abs=0.02)

    def test_whole_set_hot(self):
        c = HotSpotChooser(10, hot_set_fraction=1.0, hot_opn_fraction=0.5, rng=0)
        xs = draw(c, 1000)
        assert xs.max() < 10

    def test_validation(self):
        with pytest.raises(ConfigError):
            HotSpotChooser(10, hot_set_fraction=0.0)
        with pytest.raises(ConfigError):
            HotSpotChooser(10, hot_opn_fraction=1.5)


class TestExponential:
    def test_mass_concentration(self):
        c = ExponentialChooser(1000, percentile=95.0, frac=0.1, rng=0)
        xs = draw(c, 20_000)
        assert np.mean(xs < 100) == pytest.approx(0.95, abs=0.02)

    def test_range(self):
        c = ExponentialChooser(50, rng=1)
        xs = draw(c, 5000)
        assert xs.max() < 50


class TestFactory:
    def test_known_names(self):
        for name, cls in [
            ("uniform", UniformChooser),
            ("zipfian", ScrambledZipfianChooser),
            ("rawzipfian", ZipfianChooser),
            ("latest", LatestChooser),
            ("hotspot", HotSpotChooser),
            ("exponential", ExponentialChooser),
        ]:
            assert isinstance(make_chooser(name, 10, rng=0), cls)

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_chooser("nope", 10)

    def test_kwargs_forwarded(self):
        c = make_chooser("hotspot", 10, rng=0, hot_set_fraction=0.5)
        assert c.hot_set_fraction == 0.5

    @given(st.sampled_from(["uniform", "zipfian", "latest", "hotspot"]), st.integers(1, 50))
    @settings(max_examples=40, deadline=None)
    def test_property_all_draws_in_range(self, name, count):
        c = make_chooser(name, count, rng=0)
        for _ in range(50):
            assert 0 <= c.next_index() < count
