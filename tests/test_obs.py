"""Tests for the observability subsystem: metrics, events, traces, timelines.

The load-bearing guarantees:

- attaching a :class:`RunObserver` never changes a run's results (the
  observer-effect test compares full reports with observability on/off);
- with observability off, no observer object or bus subscription exists
  (the zero-overhead path);
- sweep artifacts are byte-identical across ``--jobs`` settings;
- failure injection is observable as typed events
  (``FailureInjector.events`` + the store's event bus).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cluster.failures import FailureInjector
from repro.common.errors import ConfigError
from repro.experiments import scenarios
from repro.experiments.runner import harmony_factory
from repro.facade import RunSpec, run
from repro.experiments.sweep import SweepRunner, plan_sweep
from repro.obs.events import EventBus, ObsEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import TIMELINE_SCHEMA, ObsConfig, RunObserver
from repro.obs.report import (
    find_timelines,
    load_timeline,
    render_text,
    samples_csv,
    validate_timeline,
)
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.trace import Tracer
from repro.simcore.simulator import Simulator

TINY_OPS = 400


class TestMetricsRegistry:
    def test_counter_get_or_create_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("reads", dc=0)
        c.inc()
        c.inc(2)
        assert reg.counter("reads", dc=0).value == 3
        # a different label set is a different instrument
        assert reg.counter("reads", dc=1).value == 0
        assert len(reg) == 2

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry()
        reg.gauge("backlog").set(7)
        assert reg.gauge("backlog").value == 7
        h = reg.histogram("lat")
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(0.002)
        assert 0.0005 < h.percentile(50) < 0.01

    def test_snapshot_is_canonical(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(5)
        reg.counter("a", dc=1).inc(1)
        reg.counter("a", dc=0).inc(2)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["a{dc=0}"] == 2
        assert snap["b"] == 5

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().counter("")


class TestEventBus:
    def test_emit_without_subscribers_is_noop(self):
        bus = EventBus()
        assert not bus.active
        bus.emit(ObsEvent(0.0, "node-crash", {"node": 1}))  # must not raise

    def test_subscribe_and_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        assert bus.active
        event = ObsEvent(1.5, "partition", {"dc_a": 0, "dc_b": 1})
        bus.emit(event)
        assert seen == [event]
        bus.unsubscribe(seen.append)
        bus.emit(event)
        assert len(seen) == 1

    def test_event_record_shape(self):
        record = ObsEvent(2.0, "node-crash", {"node": 3, "dc": 0}).to_record()
        assert record == {
            "type": "event",
            "t": 2.0,
            "kind": "node-crash",
            "node": 3,
            "dc": 0,
        }


class TestTracer:
    def test_span_emits_balanced_async_pair(self):
        tr = Tracer()
        tr.span("op", "op1", "read@r=1", 0.001, 0.002)
        events = tr.to_chrome()["traceEvents"]
        assert [e["ph"] for e in events] == ["b", "e"]
        assert all(e["cat"] == "op" and e["id"] == "op1" for e in events)
        assert events[0]["ts"] == 1000.0 and events[1]["ts"] == 2000.0

    def test_instant_is_global_scope(self):
        tr = Tracer()
        tr.instant("node-crash", 1.0, cat="failure", args={"node": 2})
        (ev,) = tr.to_chrome()["traceEvents"]
        assert ev["ph"] == "i" and ev["s"] == "g" and ev["cat"] == "failure"

    def test_cap_counts_drops(self):
        tr = Tracer(max_events=2)
        for i in range(5):
            tr.instant(f"m{i}", float(i))
        assert len(tr) == 2
        assert tr.dropped == 3
        assert tr.to_chrome()["otherData"]["dropped"] == 3

    def test_json_is_deterministic(self):
        def build():
            tr = Tracer()
            tr.span("txn", "txn1", "prepare", 0.0, 0.5)
            tr.instant("decide:committed", 0.5, cat="txn")
            return tr.to_json({"meta_seed": 7})

        assert build() == build()


class TestTimeSeriesSampler:
    def test_ticks_at_interval(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(sim, 0.5, lambda now: {"x": now})
        sampler.start()
        # ticks are self-perpetuating, so bound the run by a horizon (the
        # workload harnesses always run with `until=` + `stop()`)
        sim.run(until=2.1)
        assert [s["t"] for s in sampler.samples] == [0.5, 1.0, 1.5, 2.0]

    def test_stop_disarms(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(sim, 0.5, lambda now: {})
        sampler.start()
        sim.run(until=1.1)
        sampler.stop()
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        assert len(sampler.samples) == 2

    def test_max_samples_cap(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(sim, 0.1, lambda now: {}, max_samples=3)
        sampler.start()
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        assert len(sampler.samples) == 3

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigError):
            TimeSeriesSampler(Simulator(), 0.0, lambda now: {})


class TestFailureInjectorEvents:
    def test_structured_events_record_every_action(self, store):
        inj = FailureInjector(store)
        inj.crash_node(2, at=1.0, duration=0.5)
        inj.partition(0, 1, at=2.0)
        store.sim.schedule_at(3.0, lambda: None)
        store.sim.run()
        kinds = [e.kind for e in inj.events]
        assert kinds == ["node-crash", "node-recover", "partition"]
        assert inj.events[0].data["node"] == 2
        assert [e.t for e in inj.events] == [1.0, 1.5, 2.0]
        assert inj.events[2].data == {"dc_a": 0, "dc_b": 1}
        # the string-log shim is gone: events are the only record
        assert not hasattr(inj, "log")

    def test_events_published_on_store_bus(self, simple_store):
        seen = []
        simple_store.events.subscribe(seen.append)
        inj = FailureInjector(simple_store)
        inj.crash_node(1, at=0.5)
        simple_store.sim.run()
        assert [e.kind for e in seen] == ["node-crash"]

    def test_fresh_store_bus_is_idle(self, simple_store):
        # the zero-overhead invariant: nobody subscribes unless asked to
        assert not simple_store.events.active


def _run_scenario(name: str, obs=None, **kwargs):
    return scenarios.get(name).run(seed=5, ops=TINY_OPS, obs=obs, **kwargs)


class TestRunObserver:
    def test_observer_never_changes_results(self):
        plain = _run_scenario("geo-replication")
        observed = _run_scenario("geo-replication", obs=ObsConfig())
        assert observed.report.ops_completed == plain.report.ops_completed
        assert observed.report.stale_rate == plain.report.stale_rate
        assert observed.report.read_latency_p99 == plain.report.read_latency_p99
        assert observed.report.duration == plain.report.duration

    def test_disabled_path_constructs_nothing(self):
        run = _run_scenario("geo-replication")
        assert run.obs is None

    def test_timeline_is_valid_and_chronological(self):
        run = _run_scenario("harmony-vs-static", obs=ObsConfig(sample_interval=0.02))
        records = run.obs.timeline_records()
        assert records[0]["type"] == "header"
        assert records[0]["schema"] == TIMELINE_SCHEMA
        assert validate_timeline(records) == []
        times = [r["t"] for r in records[1:]]
        assert times == sorted(times)
        samples = [r for r in records if r["type"] == "sample"]
        assert samples and any(s["ops_per_s"] > 0 for s in samples)
        # Harmony explains its decisions
        assert any(r["type"] == "explain" for r in records)

    def test_trace_records_op_spans(self):
        run = _run_scenario(
            "geo-replication", obs=ObsConfig(trace_sample_every=8)
        )
        events = run.obs.tracer.to_chrome()["traceEvents"]
        ops = [e for e in events if e["cat"] == "op"]
        assert ops
        begins = sorted(e["id"] for e in ops if e["ph"] == "b")
        ends = sorted(e["id"] for e in ops if e["ph"] == "e")
        assert begins == ends
        # write fan-outs carry per-rank ack children
        assert any("/ack" in e["id"] for e in ops)

    def test_finish_writes_artifacts(self, tmp_path):
        out = tmp_path / "run"
        _run_scenario("geo-replication", obs=ObsConfig(out_dir=str(out)))
        assert (out / "timeline.jsonl").is_file()
        assert (out / "trace.json").is_file()
        trace = json.loads((out / "trace.json").read_text())
        assert trace["otherData"]["schema"] == "repro.trace/1"


class TestMarkers:
    def _observed_failure_run(self):
        from repro.experiments.platforms import ec2_harmony_platform

        def script(inj: FailureInjector) -> None:
            inj.crash_node(0, at=0.02, duration=0.03)

        return run(
            RunSpec(
                platform=ec2_harmony_platform(),
                policy=harmony_factory(0.4),
                ops=1200,
                seed=5,
                failure_script=script,
                obs=ObsConfig(sample_interval=0.02),
            )
        )

    def test_crash_and_recover_markers_recorded(self):
        outcome = self._observed_failure_run()
        records = outcome.obs.timeline_records()
        kinds = [r.get("kind") for r in records if r["type"] == "event"]
        assert "node-crash" in kinds and "node-recover" in kinds
        crash = next(r for r in records if r.get("kind") == "node-crash")
        assert crash["node"] == 0 and crash["t"] == pytest.approx(0.02)

    def test_report_renders_markers(self):
        outcome = self._observed_failure_run()
        text = render_text(outcome.obs.timeline_records(), source="test")
        assert "** node-crash" in text
        assert "** node-recover" in text
        assert "run timeline" in text and "repro.obs/2" in text

    def test_trace_carries_failure_instants(self):
        outcome = self._observed_failure_run()
        events = outcome.obs.tracer.to_chrome()["traceEvents"]
        names = {e["name"] for e in events if e["cat"] == "failure"}
        assert {"node-crash", "node-recover"} <= names


class TestTxnPhases:
    def test_2pc_spans_are_balanced(self):
        run = _run_scenario(
            "txn-geo-2pc", obs=ObsConfig(trace_sample_every=1)
        )
        events = run.obs.tracer.to_chrome()["traceEvents"]
        txn = [e for e in events if e["cat"] == "txn"]
        assert txn
        begins = sorted(
            (e["id"], e["name"]) for e in txn if e["ph"] == "b"
        )
        ends = sorted((e["id"], e["name"]) for e in txn if e["ph"] == "e")
        assert begins == ends
        assert any(e["name"].startswith("decide:") for e in txn)

    def test_txn_counters_in_samples(self):
        run = _run_scenario("txn-geo-2pc", obs=ObsConfig())
        last = [
            r for r in run.obs.timeline_records() if r["type"] == "sample"
        ][-1]
        assert last["txn_commits"] > 0


class TestElasticMarkers:
    def test_scale_and_migration_events_recorded(self):
        # enough ops that the run outlasts the churn script (starts t=0.03)
        run = scenarios.get("elastic-rebalance-storm").run(
            seed=5, ops=2000, obs=ObsConfig()
        )
        records = run.obs.timeline_records()
        kinds = {r.get("kind") for r in records if r["type"] == "event"}
        assert "scale-out" in kinds
        assert "migration-start" in kinds and "migration-complete" in kinds
        events = run.obs.tracer.to_chrome()["traceEvents"]
        reb = [e for e in events if e["cat"] == "rebalance"]
        assert sum(e["ph"] == "b" for e in reb) == sum(
            e["ph"] == "e" for e in reb
        )


class TestSweepObs:
    def test_obs_dir_stays_outside_run_identity(self, tmp_path):
        base = plan_sweep(["geo-replication"], root_seed=3)
        observed = plan_sweep(
            ["geo-replication"], root_seed=3, obs_dir=str(tmp_path)
        )
        assert [j.seed for j in base] == [j.seed for j in observed]

    def test_artifacts_byte_identical_across_jobs(self, tmp_path):
        def run(jobs: int, out: str):
            plan = plan_sweep(
                ["harmony-vs-static"],
                grid={"tolerance": [0.2, 0.4]},
                root_seed=3,
                ops=TINY_OPS,
                obs_dir=out,
            )
            return SweepRunner(jobs=jobs).run(plan)

        a_dir, b_dir = str(tmp_path / "a"), str(tmp_path / "b")
        res_a = run(1, a_dir)
        res_b = run(2, b_dir)
        assert res_a.to_json() == res_b.to_json()
        rel = []
        for root, _dirs, files in os.walk(a_dir):
            rel += [
                os.path.relpath(os.path.join(root, f), a_dir) for f in files
            ]
        assert sorted(rel), "sweep wrote no artifacts"
        for path in sorted(rel):
            with open(os.path.join(a_dir, path), "rb") as fa, open(
                os.path.join(b_dir, path), "rb"
            ) as fb:
                assert fa.read() == fb.read(), path

    def test_artifacts_byte_identical_across_interpreter_invocations(
        self, tmp_path
    ):
        # In-process --jobs comparisons share one string hash seed, so they
        # cannot see hash-randomization leaks (set/dict iteration order
        # feeding float summation — the collision_profile tie-break bug).
        # Run the same tiny sweep in two fresh interpreters with different
        # PYTHONHASHSEED values and demand byte-equal artifacts.
        import subprocess
        import sys

        def run(seed: str, out: str):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in [env.get("PYTHONPATH"), "src"] if p
            )
            subprocess.run(
                [
                    sys.executable, "-m", "repro.cli", "sweep",
                    "--scenario", "node-failure-storm",
                    "--grid", "tolerance=0.4",
                    "--obs", "--ops", str(TINY_OPS),
                    "--jobs", "1", "--out", out,
                ],
                check=True,
                env=env,
                capture_output=True,
            )

        a_dir, b_dir = str(tmp_path / "a"), str(tmp_path / "b")
        run("1", a_dir)
        run("2", b_dir)
        compared = 0
        for root, _dirs, files in os.walk(os.path.join(a_dir, "obs")):
            for name in sorted(files):
                path_a = os.path.join(root, name)
                path_b = os.path.join(
                    b_dir, os.path.relpath(path_a, a_dir)
                )
                with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
                    assert fa.read() == fb.read(), path_a
                compared += 1
        assert compared >= 2, "expected timeline + trace artifacts"

    def test_rows_name_their_artifact_dir(self, tmp_path):
        plan = plan_sweep(
            ["geo-replication"],
            root_seed=3,
            ops=TINY_OPS,
            obs_dir=str(tmp_path),
        )
        result = SweepRunner(jobs=1).run(plan)
        (row,) = result.rows
        assert (tmp_path / row["obs_dir"] / "timeline.jsonl").is_file()
        header = load_timeline(
            str(tmp_path / row["obs_dir"] / "timeline.jsonl")
        )[0]
        assert header["meta_scenario"] == "geo-replication"


class TestReportHelpers:
    def _records(self):
        return [
            {"type": "header", "schema": TIMELINE_SCHEMA, "sample_interval": 0.25},
            {"type": "sample", "t": 0.25, "stale_rate": 0.01, "level": "r=1",
             "ops_per_s": 100.0, "live_nodes": 4, "rebalance_active": False},
            {"type": "event", "t": 0.3, "kind": "node-crash", "node": 1},
            {"type": "explain", "t": 0.5, "policy": "harmony(0.4)",
             "read_level": 2, "estimates": [0.5, 0.1], "tolerance": 0.4,
             "write_rate": 10.0, "read_rate": 90.0},
        ]

    def test_valid_timeline_passes(self):
        assert validate_timeline(self._records()) == []

    def test_validation_catches_problems(self):
        assert validate_timeline([]) == ["timeline is empty"]
        bad_schema = self._records()
        bad_schema[0]["schema"] = "bogus/9"
        assert any("schema" in p for p in validate_timeline(bad_schema))
        backwards = self._records()
        backwards[2]["t"] = 0.1
        assert any("backwards" in p for p in validate_timeline(backwards))
        missing = self._records()
        del missing[2]["kind"]
        assert any("kind" in p for p in validate_timeline(missing))

    def test_samples_csv_shape(self):
        csv = samples_csv(self._records())
        lines = csv.strip().split("\n")
        assert lines[0].startswith("t,")
        assert "rebalance_active" in lines[0]
        assert len(lines) == 2
        assert lines[1].split(",")[0] == "0.25"

    def test_load_timeline_rejects_bad_json(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        path.write_text('{"type": "header"}\nnot json\n')
        with pytest.raises(ConfigError, match="timeline.jsonl:2"):
            load_timeline(str(path))

    def test_find_timelines(self, tmp_path):
        nested = tmp_path / "b" / "run1"
        nested.mkdir(parents=True)
        (nested / "timeline.jsonl").write_text("{}\n")
        assert find_timelines(str(tmp_path)) == [
            str(nested / "timeline.jsonl")
        ]
        assert find_timelines(str(nested / "timeline.jsonl")) == [
            str(nested / "timeline.jsonl")
        ]
        with pytest.raises(ConfigError):
            find_timelines(str(tmp_path / "missing"))


class TestReportCli:
    @pytest.fixture()
    def artifact_dir(self, tmp_path):
        out = tmp_path / "run"
        _run_scenario(
            "harmony-vs-static",
            obs=ObsConfig(sample_interval=0.02, out_dir=str(out)),
        )
        return tmp_path

    def test_report_text(self, artifact_dir, capsys):
        from repro.cli import main

        assert main(["report", str(artifact_dir)]) == 0
        out = capsys.readouterr().out
        assert "run timeline" in out and "samples" in out

    def test_report_csv(self, artifact_dir, capsys):
        from repro.cli import main

        assert main(["report", str(artifact_dir), "--csv"]) == 0
        head = capsys.readouterr().out.split("\n")[0]
        assert head.startswith("t,") and "stale_rate" in head

    def test_report_validate_ok(self, artifact_dir, capsys):
        from repro.cli import main

        assert main(["report", str(artifact_dir), "--validate"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_report_validate_fails_on_corrupt(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "timeline.jsonl").write_text(
            '{"type": "sample", "t": 1.0}\n'
        )
        with pytest.raises(SystemExit):
            main(["report", str(tmp_path), "--validate"])
        assert "INVALID" in capsys.readouterr().out

    def test_report_missing_path_is_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_obs_requires_out(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--scenario", "geo-replication", "--obs"]) == 2
        assert "--out" in capsys.readouterr().err


class TestMonitorMetricsBridge:
    def test_monitor_counters_back_samples_without_double_count(self):
        run = scenarios.get("elastic-rebalance-storm").run(
            seed=5, ops=2000, obs=ObsConfig()
        )
        samples = [
            r for r in run.obs.timeline_records() if r["type"] == "sample"
        ]
        final = samples[-1]
        elastic = run.report.elastic
        assert elastic["scale_outs"] > 0
        assert final["scale_outs"] == elastic["scale_outs"]
        assert final["scale_ins"] == elastic["scale_ins"]


class TestObsBench:
    def test_obs_overhead_registered_and_runs(self):
        from repro.perf.specs import REGISTRY

        spec = REGISTRY["obs-overhead"]
        assert "obs" in spec.tags
        assert spec.fn({"ops": 300, "seed": 3}) > 0
