"""Tests for the SLO engine and the cross-run timeline diff.

The load-bearing guarantees:

- :func:`evaluate_slo` is pure arithmetic over recorded samples: the
  error-budget burn math, exact p99, and every objective's pass/fail
  edge are checked on synthetic timelines (including ``/1`` fallbacks);
- ``repro report PATH --slo`` honours the documented exit codes:
  0 = all objectives pass, 1 = breach, 2 = no SLO resolvable;
- ``repro diff A B`` pairs runs deterministically and reports metric
  deltas, anomaly presence changes and event-count changes.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.cli import main
from repro.common.errors import ConfigError
from repro.experiments import scenarios
from repro.obs.diff import diff_timelines, pair_timelines, render_diff
from repro.obs.recorder import TIMELINE_SCHEMA, ObsConfig
from repro.obs.slo import SLOSpec, evaluate_slo

CHAOS_ARGS = [
    "--grid", "partition_start=0.05",
    "--grid", "partition_duration=0.08",
    "--ops", "800",
]


def _header(**meta):
    head = {"type": "header", "schema": TIMELINE_SCHEMA, "sample_interval": 0.25}
    head.update({f"meta_{k}": v for k, v in meta.items()})
    return head


def _sample(t, **cols):
    record = {"type": "sample", "t": t, "level": "r=1"}
    record.update(cols)
    return record


def _result(report, objective):
    (hit,) = [r for r in report.results if r.objective == objective]
    return hit


class TestSLOSpec:
    def test_needs_at_least_one_objective(self):
        with pytest.raises(ConfigError, match="at least one objective"):
            SLOSpec()

    def test_error_budget_range_checked(self):
        with pytest.raises(ConfigError, match="error_budget"):
            SLOSpec(stale_rate_max=0.1, error_budget=1.0)
        with pytest.raises(ConfigError, match="error_budget"):
            SLOSpec(stale_rate_max=0.1, error_budget=-0.1)

    def test_dict_roundtrip_omits_none(self):
        spec = SLOSpec(stale_rate_max=0.05, anomalies_max=0, error_budget=0.1)
        doc = spec.to_dict()
        assert doc == {
            "error_budget": 0.1, "stale_rate_max": 0.05, "anomalies_max": 0,
        }
        assert SLOSpec.from_dict(doc) == spec

    def test_from_dict_rejects_unknown_objectives(self):
        with pytest.raises(ConfigError, match="staleness_max"):
            SLOSpec.from_dict({"staleness_max": 0.1})


class TestEvaluateStaleRate:
    def _timeline(self, stales):
        # four 1s-windows, 100 reads each; `stales` gives per-window counts
        records = [_header()]
        for i, stale in enumerate(stales):
            records.append(
                _sample(float(i + 1), window_reads=100, window_stale=stale)
            )
        return records

    def test_clean_run_passes_with_zero_burn(self):
        report = evaluate_slo(
            self._timeline([0, 1, 0, 2]), SLOSpec(stale_rate_max=0.05)
        )
        hit = _result(report, "stale_rate")
        assert not hit.breached
        assert hit.burn == 0.0
        assert hit.observed == pytest.approx(0.02)  # worst window
        assert report.ok

    def test_burn_is_breach_fraction_over_budget(self):
        # 1 breaching window of 4 -> 25% of exposed time; budget 50%
        report = evaluate_slo(
            self._timeline([0, 90, 0, 0]),
            SLOSpec(stale_rate_max=0.5, error_budget=0.5),
        )
        hit = _result(report, "stale_rate")
        assert not hit.breached
        assert hit.burn == pytest.approx(0.5)

    def test_over_budget_breaches(self):
        # 3 of 4 windows breaching vs a 5% budget
        report = evaluate_slo(
            self._timeline([80, 90, 100, 0]), SLOSpec(stale_rate_max=0.5)
        )
        hit = _result(report, "stale_rate")
        assert hit.breached
        assert hit.burn == pytest.approx(0.75 / 0.05)
        assert not report.ok

    def test_zero_budget_makes_any_breach_infinite_burn(self):
        report = evaluate_slo(
            self._timeline([0, 90, 0, 0]),
            SLOSpec(stale_rate_max=0.5, error_budget=0.0),
        )
        hit = _result(report, "stale_rate")
        assert hit.breached
        assert math.isinf(hit.burn)

    def test_readless_windows_carry_no_exposure(self):
        records = [
            _header(),
            _sample(1.0, window_reads=0, window_stale=0),
            _sample(2.0, window_reads=100, window_stale=1),
        ]
        hit = _result(
            evaluate_slo(records, SLOSpec(stale_rate_max=0.05)), "stale_rate"
        )
        assert "1s" in hit.detail  # only the second window counts

    def test_v1_samples_fall_back_to_cumulative_rate(self):
        # /1 samples carry no window_stale; the cumulative stale_rate is
        # the deterministic fallback.
        records = [
            {"type": "header", "schema": "repro.obs/1", "sample_interval": 1.0},
            _sample(1.0, stale_rate=0.3, dc0_reads_per_s=50.0),
            _sample(2.0, stale_rate=0.3, dc0_reads_per_s=50.0),
        ]
        hit = _result(
            evaluate_slo(records, SLOSpec(stale_rate_max=0.1)), "stale_rate"
        )
        assert hit.breached
        assert hit.observed == pytest.approx(0.3)

    def test_no_reads_at_all_is_not_applicable(self):
        records = [_header(), _sample(1.0, window_reads=0, window_stale=0)]
        hit = _result(
            evaluate_slo(records, SLOSpec(stale_rate_max=0.05)), "stale_rate"
        )
        assert not hit.breached
        assert hit.observed is None


class TestEvaluateOtherObjectives:
    def test_read_p99_is_worst_dc(self):
        records = [_header()]
        for i in range(10):
            records.append(
                _sample(
                    float(i + 1),
                    dc0_read_lat=0.010,  # 10ms steady
                    dc1_read_lat=0.010 + (0.290 if i == 9 else 0.0),
                )
            )
        report = evaluate_slo(records, SLOSpec(read_p99_ms_max=100.0))
        hit = _result(report, "read_p99_ms")
        assert hit.breached
        assert hit.observed == pytest.approx(300.0)
        assert "dc0=10ms" in hit.detail and "dc1=300ms" in hit.detail

    def test_abort_rate_reads_final_counters(self):
        records = [
            _header(),
            _sample(1.0, txn_commits=10, txn_aborts=0),
            _sample(2.0, txn_commits=90, txn_aborts=10),
        ]
        hit = _result(
            evaluate_slo(records, SLOSpec(abort_rate_max=0.05)), "abort_rate"
        )
        assert hit.breached
        assert hit.observed == pytest.approx(0.1)

    def test_abort_rate_vacuous_without_txns(self):
        records = [_header(), _sample(1.0)]
        hit = _result(
            evaluate_slo(records, SLOSpec(abort_rate_max=0.05)), "abort_rate"
        )
        assert not hit.breached and hit.observed is None

    def test_blocked_txn_time_sums_in_doubt_windows(self):
        records = [
            _header(),
            _sample(1.0, txn_in_doubt=0),
            _sample(2.0, txn_in_doubt=2),
            _sample(3.5, txn_in_doubt=1),
            _sample(4.0, txn_in_doubt=0),
        ]
        hit = _result(
            evaluate_slo(records, SLOSpec(blocked_txn_time_max=2.0)),
            "blocked_txn_time",
        )
        assert hit.breached
        assert hit.observed == pytest.approx(2.5)  # (1,2] + (2,3.5]

    def test_cost_ceiling_reads_header_meta(self):
        records = [_header(cost_total_usd=12.5), _sample(1.0)]
        hit = _result(
            evaluate_slo(records, SLOSpec(cost_ceiling_usd=10.0)),
            "cost_ceiling_usd",
        )
        assert hit.breached and hit.observed == 12.5
        missing = [_header(), _sample(1.0)]
        hit = _result(
            evaluate_slo(missing, SLOSpec(cost_ceiling_usd=10.0)),
            "cost_ceiling_usd",
        )
        assert not hit.breached and hit.observed is None

    def test_anomalies_counts_detections_not_ends(self):
        records = [
            _header(),
            {"type": "anomaly", "t": 0.5, "oracle": "quorum-loss",
             "phase": "start"},
            {"type": "anomaly", "t": 0.9, "oracle": "quorum-loss",
             "phase": "end"},
            {"type": "anomaly", "t": 1.0, "oracle": "monotonic-read",
             "phase": "point", "key": "k"},
            _sample(1.5),
        ]
        hit = _result(
            evaluate_slo(records, SLOSpec(anomalies_max=0)), "anomalies"
        )
        assert hit.breached
        assert hit.observed == 2.0  # start + point; end is not a detection
        assert "quorum-loss=1" in hit.detail

    def test_render_names_breaches(self):
        records = [_header(), _sample(1.0, window_reads=10, window_stale=9)]
        report = evaluate_slo(
            records, SLOSpec(stale_rate_max=0.1, anomalies_max=5)
        )
        text = report.render("run-42")
        assert "SLO verdict — run-42" in text
        assert "FAIL stale_rate" in text
        assert "PASS anomalies" in text
        assert "verdict: BREACH (1/2 objectives failed)" in text


class TestScenarioSLOWiring:
    def test_chaos_scenario_declares_its_gate(self):
        spec = scenarios.get("geo-partition-chaos").slo
        assert spec is not None
        assert spec.anomalies_max == 0

    def test_scenarios_json_carries_slo(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        by_name = {e["name"]: e for e in json.loads(capsys.readouterr().out)}
        chaos = by_name["geo-partition-chaos"]
        assert chaos["slo"]["anomalies_max"] == 0
        assert by_name["geo-replication"]["slo"] is None

    def test_scenario_run_stamps_slo_into_header(self, tmp_path):
        run = scenarios.get("single-dc-ycsb-a").run(
            seed=5, ops=400, obs=ObsConfig(out_dir=str(tmp_path / "run"))
        )
        header = run.obs.timeline_records()[0]
        assert header["meta_scenario"] == "single-dc-ycsb-a"
        assert SLOSpec.from_dict(header["meta_slo"]) == scenarios.get(
            "single-dc-ycsb-a"
        ).slo
        assert header["meta_cost_total_usd"] > 0


class TestReportSloCli:
    def _sweep(self, tmp_path, scenario, extra=(), seed=3):
        out = str(tmp_path / f"{scenario}-{seed}")
        argv = [
            "sweep", "--scenario", scenario, "--obs", "--jobs", "1",
            "--seed", str(seed), "--out", out, *extra,
        ]
        assert main(argv) == 0
        return out

    def test_breaching_chaos_sweep_exits_1(self, tmp_path, capsys):
        out = self._sweep(tmp_path, "geo-partition-chaos", CHAOS_ARGS)
        capsys.readouterr()
        with pytest.raises(SystemExit) as exc:
            main(["report", out, "--slo"])
        assert exc.value.code == 1
        text = capsys.readouterr().out
        assert "FAIL anomalies" in text
        assert "verdict: BREACH" in text

    def test_clean_sweep_exits_0(self, tmp_path, capsys):
        out = self._sweep(tmp_path, "single-dc-ycsb-a", ["--ops", "400"])
        capsys.readouterr()
        assert main(["report", out, "--slo"]) == 0
        text = capsys.readouterr().out
        assert "verdict: OK" in text

    def test_no_slo_anywhere_exits_2(self, tmp_path, capsys):
        scenarios.get("harmony-vs-static").run(
            seed=5, ops=400, obs=ObsConfig(out_dir=str(tmp_path / "run"))
        )
        assert main(["report", str(tmp_path), "--slo"]) == 2
        captured = capsys.readouterr()
        assert "no SLO" in captured.out
        assert "error:" in captured.err


class TestDiffTimelines:
    def _records(self, rate, crashes=0, anomaly=False):
        records = [
            _header(),
            _sample(1.0, stale_rate=rate, ops_per_s=100.0),
            _sample(2.0, stale_rate=rate, ops_per_s=110.0),
        ]
        for i in range(crashes):
            records.insert(
                2, {"type": "event", "t": 1.5, "kind": "node-crash", "node": i}
            )
        if anomaly:
            records.append(
                {"type": "anomaly", "t": 2.0, "oracle": "stale-burst",
                 "phase": "start", "window_rate": rate}
            )
        return records

    def test_metric_deltas_and_horizon(self):
        diff = diff_timelines(self._records(0.1), self._records(0.3))
        assert diff["horizon"] == 2.0
        by_metric = {m["metric"]: m for m in diff["metrics"]}
        stale = by_metric["stale_rate"]
        assert stale["mean_a"] == pytest.approx(0.1)
        assert stale["delta_mean"] == pytest.approx(0.2)
        assert stale["final_b"] == pytest.approx(0.3)

    def test_longer_run_is_truncated_to_common_horizon(self):
        longer = self._records(0.1) + [
            _sample(10.0, stale_rate=0.9, ops_per_s=1.0)
        ]
        diff = diff_timelines(self._records(0.1), longer)
        assert diff["horizon"] == 2.0
        assert diff["duration_b"] == 10.0
        by_metric = {m["metric"]: m for m in diff["metrics"]}
        # the t=10 outlier must not leak into B's mean
        assert by_metric["stale_rate"]["mean_b"] == pytest.approx(0.1)

    def test_anomaly_appearance_is_named(self):
        diff = diff_timelines(
            self._records(0.1), self._records(0.3, anomaly=True)
        )
        (row,) = diff["anomalies"]
        assert row == {
            "oracle": "stale-burst", "a": 0, "b": 1, "delta": 1,
            "note": "appeared",
        }
        back = diff_timelines(
            self._records(0.3, anomaly=True), self._records(0.1)
        )
        assert back["anomalies"][0]["note"] == "resolved"

    def test_event_count_deltas(self):
        diff = diff_timelines(
            self._records(0.1, crashes=1), self._records(0.1, crashes=3)
        )
        (row,) = diff["events"]
        assert row == {"kind": "node-crash", "a": 1, "b": 3, "delta": 2}

    def test_identical_runs_diff_to_zero(self):
        diff = diff_timelines(self._records(0.1), self._records(0.1))
        assert all(m["delta_mean"] == 0.0 for m in diff["metrics"])
        assert diff["anomalies"] == []

    def test_render_is_deterministic_text(self):
        diff = diff_timelines(
            self._records(0.1, crashes=1), self._records(0.3, anomaly=True)
        )
        text_a = render_diff(diff, label="run")
        text_b = render_diff(diff, label="run")
        assert text_a == text_b
        assert "diff run: aligned to t<=2" in text_a
        assert "appeared" in text_a
        assert "node-crash" in text_a


class TestDiffPairing:
    def test_single_files_pair_directly(self, tmp_path):
        for side in ("a", "b"):
            d = tmp_path / side / "run"
            d.mkdir(parents=True)
            (d / "timeline.jsonl").write_text(
                json.dumps(_header()) + "\n"
            )
        pairs, only_a, only_b = pair_timelines(
            str(tmp_path / "a"), str(tmp_path / "b")
        )
        assert [p[0] for p in pairs] == ["run"]
        assert only_a == only_b == []

    def test_unmatched_dirs_are_reported(self, tmp_path):
        layout = {"a": ("run1", "run2"), "b": ("run2", "run3")}
        for side, runs in layout.items():
            for run in runs:
                d = tmp_path / side / run
                d.mkdir(parents=True)
                (d / "timeline.jsonl").write_text(json.dumps(_header()) + "\n")
        pairs, only_a, only_b = pair_timelines(
            str(tmp_path / "a"), str(tmp_path / "b")
        )
        assert [p[0] for p in pairs] == ["run2"]
        assert only_a == ["run1"] and only_b == ["run3"]

    def test_missing_side_is_a_clean_error(self, tmp_path):
        d = tmp_path / "a" / "run"
        d.mkdir(parents=True)
        (d / "timeline.jsonl").write_text(json.dumps(_header()) + "\n")
        with pytest.raises(ConfigError, match="no (such file|timeline)"):
            pair_timelines(str(tmp_path / "a"), str(tmp_path / "b"))


class TestDiffCli:
    @pytest.fixture()
    def two_sweeps(self, tmp_path):
        # same scenario+grid (same artifact labels), different seeds
        outs = []
        for seed in (3, 4):
            out = str(tmp_path / f"s{seed}")
            assert main(
                [
                    "sweep", "--scenario", "single-dc-ycsb-a",
                    "--grid", "tolerance=0.2,0.4",
                    "--obs", "--jobs", "1", "--ops", "400",
                    "--seed", str(seed), "--out", out,
                ]
            ) == 0
        return str(tmp_path / "s3"), str(tmp_path / "s4")

    def test_diff_text_pairs_runs(self, two_sweeps, capsys):
        a, b = two_sweeps
        capsys.readouterr()
        assert main(["diff", a, b]) == 0
        out = capsys.readouterr().out
        assert out.count("diff single-dc-ycsb-a-") == 2
        assert "sample metrics" in out

    def test_diff_json_is_machine_readable(self, two_sweeps, capsys):
        a, b = two_sweeps
        capsys.readouterr()
        assert main(["diff", a, b, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["pairs"]) == 2
        assert doc["only_a"] == [] and doc["only_b"] == []
        first = doc["pairs"][0]["diff"]
        assert {"horizon", "metrics", "anomalies", "events"} <= set(first)

    def test_diff_missing_path_is_clean_error(self, tmp_path, capsys):
        assert main(["diff", str(tmp_path / "x"), str(tmp_path / "y")]) == 2
        assert "error:" in capsys.readouterr().err
