"""Tests for the discrete-event engine: events, simulator, processes, resources."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError, SimulationError
from repro.simcore.events import Event
from repro.simcore.process import Delay, Process, WaitEvent
from repro.simcore.resources import Resource
from repro.simcore.simulator import Simulator


class TestEvent:
    def test_ordering_by_time_then_seq(self):
        a = Event(1.0, 1, None)
        b = Event(2.0, 0, None)
        c = Event(1.0, 2, None)
        assert a < b and a < c and not (b < a)

    def test_cancel_drops_references(self):
        payload = [1, 2, 3]
        ev = Event(1.0, 1, print, (payload,))
        ev.cancel()
        assert ev.cancelled
        assert ev.fn is None
        assert ev.args == ()


class TestSimulator:
    def test_fires_in_time_order(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "c")
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_equal_times_fire_in_schedule_order(self, sim):
        fired = []
        for tag in "abcde":
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == list("abcde")

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancelled_event_skipped(self, sim):
        fired = []
        ev = sim.schedule(1.0, fired.append, "x")
        ev.cancel()
        sim.run()
        assert fired == []
        assert sim.events_processed == 0

    def test_run_until_advances_clock(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_run_until_leaves_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        assert fired == ["early"]
        assert sim.pending() == 1
        sim.run()
        assert fired == ["early", "late"]

    def test_events_scheduled_during_run(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_max_events(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i), fired.append, i)
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_stop_from_callback(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, sim.stop)
        sim.schedule(3.0, fired.append, 3)
        sim.run(until=100.0)
        assert fired == [1]
        assert sim.now == 2.0  # stop prevents clock advance to `until`

    def test_step(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is False

    def test_pending_counter_tracks_cancel_and_fire(self, sim):
        events = [sim.schedule(float(i), lambda: None) for i in range(4)]
        assert sim.pending() == 4
        events[1].cancel()
        assert sim.pending() == 3
        events[1].cancel()  # double-cancel must not double-decrement
        assert sim.pending() == 3
        sim.run()
        assert sim.pending() == 0
        events[2].cancel()  # cancel after firing is a no-op
        assert sim.pending() == 0

    def test_pending_counter_during_run(self, sim):
        seen = []
        later = sim.schedule(5.0, lambda: None)
        sim.schedule(1.0, lambda: seen.append(sim.pending()))
        sim.schedule(2.0, later.cancel)
        sim.schedule(3.0, lambda: seen.append(sim.pending()))
        sim.run()
        # at t=1: the t=2, t=3 and t=5 events remain; at t=3: none.
        assert seen == [3, 0]

    def test_reset(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending() == 0
        assert sim.events_processed == 0

    def test_not_reentrant(self, sim):
        def nested():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(0.0, nested)
        sim.run()

    def test_peek_time_skips_cancelled(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.peek_time() == 2.0

    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_property_monotone_clock(self, delays):
        sim = Simulator()
        times = []
        for d in delays:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
        assert len(times) == len(delays)


class TestProcess:
    def test_delay_sequencing(self, sim):
        log = []

        def proc():
            log.append(("start", sim.now))
            yield Delay(1.5)
            log.append(("mid", sim.now))
            yield Delay(0.5)
            log.append(("end", sim.now))

        Process(sim, proc())
        sim.run()
        assert log == [("start", 0.0), ("mid", 1.5), ("end", 2.0)]

    def test_wait_event_value(self, sim):
        got = []
        we = WaitEvent()

        def waiter():
            value = yield we
            got.append(value)

        Process(sim, waiter())
        sim.schedule(2.0, we.succeed, "payload")
        sim.run()
        assert got == ["payload"]
        assert we.done and we.value == "payload"

    def test_wait_event_already_done(self, sim):
        we = WaitEvent()
        we.succeed(7)
        got = []

        def waiter():
            got.append((yield we))

        Process(sim, waiter())
        sim.run()
        assert got == [7]

    def test_wait_event_failure_raises_in_process(self, sim):
        we = WaitEvent()
        caught = []

        def waiter():
            try:
                yield we
            except RuntimeError as e:
                caught.append(str(e))

        Process(sim, waiter())
        sim.schedule(1.0, we.fail, RuntimeError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_double_complete_rejected(self, sim):
        we = WaitEvent()
        we.succeed(1)
        with pytest.raises(SimulationError):
            we.succeed(2)
        with pytest.raises(SimulationError):
            we.fail(RuntimeError())

    def test_process_waits_on_process(self, sim):
        order = []

        def child():
            yield Delay(2.0)
            order.append("child-done")
            return 42

        def parent():
            c = Process(sim, child(), name="child")
            result = yield c
            order.append(("parent-got", result))

        Process(sim, parent(), name="parent")
        sim.run()
        assert order == ["child-done", ("parent-got", 42)]

    def test_finished_event(self, sim):
        def proc():
            yield Delay(1.0)
            return "done"

        p = Process(sim, proc())
        sim.run()
        assert p.finished.done
        assert p.finished.value == "done"

    def test_bad_yield_raises(self, sim):
        def proc():
            yield "not an instruction"

        Process(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Delay(-1.0)


class TestResource:
    def test_validation(self, sim):
        with pytest.raises(ConfigError):
            Resource(sim, servers=0)
        r = Resource(sim)
        with pytest.raises(ConfigError):
            r.submit(-1.0, lambda: None)

    def test_single_server_serializes(self, sim):
        r = Resource(sim, servers=1)
        done = []
        r.submit(1.0, lambda: done.append(sim.now))
        r.submit(1.0, lambda: done.append(sim.now))
        r.submit(1.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0, 2.0, 3.0]
        assert r.completed == 3

    def test_parallel_servers(self, sim):
        r = Resource(sim, servers=3)
        done = []
        for _ in range(3):
            r.submit(1.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0, 1.0, 1.0]

    def test_queue_wait_recorded(self, sim):
        r = Resource(sim, servers=1)
        r.submit(2.0, lambda: None)
        r.submit(1.0, lambda: None)
        sim.run()
        # second request waited 2.0s
        assert r.queue_wait.max == pytest.approx(2.0)
        assert r.queue_wait.min == pytest.approx(0.0)

    def test_busy_and_queued_counters(self, sim):
        r = Resource(sim, servers=1)
        r.submit(1.0, lambda: None)
        r.submit(1.0, lambda: None)
        assert r.busy == 1
        assert r.queued == 1
        assert r.utilization_hint() == 1.0
        sim.run()
        assert r.busy == 0 and r.queued == 0

    def test_fifo_order(self, sim):
        r = Resource(sim, servers=1)
        order = []
        for tag in "abc":
            r.submit(0.5, order.append, tag)
        sim.run()
        assert order == ["a", "b", "c"]

    @given(st.integers(1, 4), st.lists(st.floats(0.01, 2.0), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_property_conservation(self, servers, services):
        sim = Simulator()
        r = Resource(sim, servers=servers)
        done = []
        for s in services:
            r.submit(s, done.append, s)
        sim.run()
        assert sorted(done) == sorted(services)  # nothing lost or duplicated
        assert r.completed == len(services)
        # makespan bounds: at least max service, at most serial sum
        assert sim.now >= max(services) - 1e-9
        assert sim.now <= sum(services) + 1e-9
