"""Tests for the unified ``repro.run(RunSpec)`` front door.

The facade's promises, each asserted here:

- :class:`~repro.facade.RunSpec` rejects contradictory shapes loudly at
  construction time (not deep inside a harness);
- dispatch picks the harness from the spec's shape and the backend knob,
  returning the harness's native outcome type;
- the three legacy entry points still work, emit a
  :class:`DeprecationWarning`, and produce bit-identical reports to the
  facade (they are thin wrappers, not forks);
- the asyncio backend derives a faithful
  :class:`~repro.runtime.localhost.LocalhostSpec` from the sim-style
  spec (topology, RF, slots, keyspace, hotspot approximation);
- the backend knob threads through scenarios and sweep planning without
  entering a job's identity (sim seeds are reused verbatim);
- the package's public ``__all__`` surface actually resolves.
"""

import dataclasses

import pytest

import repro
from repro.common.errors import ConfigError
from repro.elastic.runner import ElasticRunOutcome, ElasticSpec, deploy_and_run_elastic
from repro.experiments import scenarios
from repro.experiments.platforms import (
    ec2_harmony_platform,
    single_dc_platform,
    small_dc_platform,
)
from repro.experiments.runner import (
    RunOutcome,
    deploy_and_run,
    harmony_factory,
    named_policy_factory,
    static_factory,
)
from repro.experiments.sweep import plan_sweep
from repro.facade import (
    LocalhostRunOutcome,
    RunSpec,
    _derive_localhost_spec,
    _hotspot_shape,
    run,
)
from repro.txn.api import TxnConfig
from repro.txn.runner import TxnRunOutcome, deploy_and_run_txn
from repro.workload.workloads import TxnWorkloadSpec, bank_transfer_mix


def _plain_spec(**overrides):
    base = dict(
        platform=single_dc_platform(),
        policy=harmony_factory(0.05),
        ops=400,
        seed=11,
    )
    base.update(overrides)
    return RunSpec(**base)


def _txn_spec(**overrides):
    base = dict(
        platform=single_dc_platform(),
        policy=named_policy_factory("eventual"),
        txn_workload=bank_transfer_mix(record_count=400),
        ops=60,
        clients=8,
        seed=11,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestRunSpecValidation:
    def test_fields_are_keyword_only(self):
        with pytest.raises(TypeError):
            RunSpec(single_dc_platform(), harmony_factory(0.05))

    def test_unknown_backend(self):
        with pytest.raises(ConfigError, match="backend"):
            _plain_spec(backend="mpi")

    def test_bad_client_mode(self):
        with pytest.raises(ConfigError, match="client_mode"):
            _plain_spec(client_mode="swarm")

    def test_elastic_and_txn_are_exclusive(self):
        with pytest.raises(ConfigError, match="not both"):
            _txn_spec(elastic=ElasticSpec())

    def test_txn_knobs_require_txn_workload(self):
        with pytest.raises(ConfigError, match="txn_workload"):
            _plain_spec(txn_config=TxnConfig())
        with pytest.raises(ConfigError, match="txn_workload"):
            _plain_spec(commit_protocol="3pc")

    def test_asyncio_backend_needs_a_transactional_shape(self):
        with pytest.raises(ConfigError, match="transactional"):
            _plain_spec(backend="asyncio")

    def test_asyncio_backend_rejects_sim_only_knobs(self):
        with pytest.raises(ConfigError, match="sim-only"):
            _txn_spec(backend="asyncio", obs=__import__(
                "repro.obs.recorder", fromlist=["ObsConfig"]
            ).ObsConfig())
        with pytest.raises(ConfigError, match="sim-only"):
            _txn_spec(backend="asyncio", failure_script=((0.1, "crash", 0),))
        with pytest.raises(ConfigError, match="closed-loop"):
            _txn_spec(backend="asyncio", target_throughput=500.0)

    def test_asyncio_elastic_is_rejected(self):
        from repro.runtime.localhost import LocalhostSpec

        # Without a localhost spec the transactional-shape check fires first;
        # with one, the elastic rejection is the active guard.
        with pytest.raises(ConfigError, match="transactional"):
            RunSpec(
                platform=single_dc_platform(),
                policy=harmony_factory(0.05),
                elastic=ElasticSpec(),
                backend="asyncio",
            )
        with pytest.raises(ConfigError, match="sim-only"):
            RunSpec(
                platform=single_dc_platform(),
                policy=harmony_factory(0.05),
                elastic=ElasticSpec(),
                backend="asyncio",
                localhost=LocalhostSpec(txns=2),
            )


class TestDispatch:
    def test_plain_run(self):
        out = run(_plain_spec())
        assert isinstance(out, RunOutcome)
        # The report covers the measured window: 400 ops minus 20% warmup.
        assert out.report.ops_completed == 320

    def test_txn_run(self):
        out = run(_txn_spec())
        assert isinstance(out, TxnRunOutcome)
        txn = out.report.txn
        assert txn["commits"] + sum(txn["aborts"].values()) == txn["txns"]

    def test_elastic_run(self):
        out = run(
            RunSpec(
                platform=small_dc_platform(),
                policy=static_factory(1, 1, name="one"),
                elastic=ElasticSpec(),
                ops=300,
                clients=4,
                seed=3,
            )
        )
        assert isinstance(out, ElasticRunOutcome)
        assert out.report.elastic is not None

    def test_asyncio_run(self):
        out = run(_txn_spec(backend="asyncio", ops=10, clients=2))
        assert isinstance(out, LocalhostRunOutcome)
        assert not out.timed_out
        assert out.txn["commits"] + sum(out.txn["aborts"].values()) == 10
        assert 0.0 <= out.stale_rate <= 1.0
        assert out.spec.txns == 10


class TestLegacyWrappers:
    def test_deploy_and_run_warns_and_matches_facade(self):
        with pytest.warns(DeprecationWarning, match="repro.run"):
            legacy = deploy_and_run(
                single_dc_platform(), harmony_factory(0.05), ops=400, seed=11
            )
        fresh = run(_plain_spec())
        # Thin wrapper, deterministic backend: bit-identical reports.
        assert legacy.report == fresh.report

    def test_deploy_and_run_txn_warns_and_matches_facade(self):
        with pytest.warns(DeprecationWarning):
            legacy = deploy_and_run_txn(
                single_dc_platform(),
                named_policy_factory("eventual"),
                bank_transfer_mix(record_count=400),
                txns=60,
                clients=8,
                seed=11,
            )
        fresh = run(_txn_spec())
        assert legacy.report.txn == fresh.report.txn

    def test_deploy_and_run_elastic_warns(self):
        with pytest.warns(DeprecationWarning):
            out = deploy_and_run_elastic(
                small_dc_platform(),
                static_factory(1, 1, name="one"),
                ElasticSpec(),
                ops=200,
                clients=4,
                seed=3,
            )
        assert isinstance(out, ElasticRunOutcome)

    def test_facade_itself_does_not_warn(self, recwarn):
        run(_plain_spec(ops=200))
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]


class TestLocalhostDerivation:
    def test_hotspot_shapes(self):
        def mix(distribution, **kwargs):
            return TxnWorkloadSpec(
                name="m",
                n_keys=2,
                read_slots=(0,),
                write_slots=(0, 1),
                record_count=1000,
                distribution=distribution,
                distribution_kwargs=kwargs,
            )

        assert _hotspot_shape(mix("uniform")) == (0, 0.0)
        assert _hotspot_shape(
            mix("hotspot", hot_set_fraction=0.1, hot_opn_fraction=0.9)
        ) == (100, 0.9)
        # Skewed families approximate as a 5% hot set taking half the draws.
        assert _hotspot_shape(mix("zipfian")) == (50, 0.5)
        assert _hotspot_shape(mix("latest")) == (50, 0.5)

    def test_derived_spec_mirrors_platform_and_workload(self):
        platform = ec2_harmony_platform()
        spec = _derive_localhost_spec(
            _txn_spec(
                platform=platform,
                ops=30,
                clients=5,
                seed=77,
                commit_protocol="3pc",
                backend="asyncio",
            )
        )
        assert spec.topology.n_nodes == platform.topology_factory().n_nodes
        assert spec.txns == 30
        assert spec.clients == 5
        assert spec.seed == 77
        assert spec.writes_per_txn == 2  # bank transfer writes both slots
        assert spec.reads_per_txn == 2
        assert spec.n_keys == 400
        assert spec.txn_config.commit_protocol == "3pc"

    def test_derived_spec_defaults_are_smoke_sized(self):
        spec = _derive_localhost_spec(_txn_spec(ops=None, clients=None))
        assert spec.txns == 50  # not the platform's simulator-scale default
        assert spec.clients <= 8

    def test_explicit_localhost_spec_wins(self):
        from repro.runtime.localhost import LocalhostSpec

        explicit = LocalhostSpec(txns=4, clients=1, time_scale=0.02)
        out = run(
            RunSpec(
                platform=single_dc_platform(),
                policy=named_policy_factory("eventual"),
                backend="asyncio",
                localhost=explicit,
            )
        )
        assert out.spec is explicit
        assert out.result["outcomes"] == 4


class TestBackendKnobThreading:
    def test_scenario_run_on_asyncio_labels_rows_localhost(self):
        spec = scenarios.get("txn-shootout")
        result = spec.run(seed=11, overrides={}, ops=8, backend="asyncio")
        assert result.report.policy == "localhost"
        txn = result.report.txn
        assert txn["commits"] + sum(txn["aborts"].values()) == 8
        assert result.cost_total == 0.0  # wall-clock runs are not billed

    def test_scenario_failures_are_sim_only_on_asyncio(self):
        flagged = [
            scenarios.get(n)
            for n in scenarios.names()
            if scenarios.get(n).failures is not None
        ]
        assert flagged  # the registry carries chaos scenarios
        with pytest.raises(ConfigError, match="sim-only|transactional"):
            flagged[0].run(seed=1, overrides={}, ops=4, backend="asyncio")

    def test_plan_sweep_validates_backend(self):
        with pytest.raises(ConfigError, match="backend"):
            plan_sweep(["txn-shootout"], backend="threads")

    def test_backend_stays_outside_job_identity(self):
        # Same scenarios, same grid: the asyncio plan must reuse the sim
        # plan's seeds and keys verbatim, so cross-backend comparisons pair
        # rows one-to-one.
        sim_plan = plan_sweep(["txn-shootout"])
        aio_plan = plan_sweep(["txn-shootout"], backend="asyncio")
        assert [j.key() for j in sim_plan.jobs] == [j.key() for j in aio_plan.jobs]
        assert [j.seed for j in sim_plan.jobs] == [j.seed for j in aio_plan.jobs]
        assert all(j.backend is None for j in sim_plan.jobs)
        assert all(j.backend == "asyncio" for j in aio_plan.jobs)


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_run_is_the_facade(self):
        import repro.facade

        assert repro.run is repro.facade.run
        assert repro.RunSpec is repro.facade.RunSpec

    def test_runspec_is_a_frozen_shape_of_known_fields(self):
        fields = {f.name for f in dataclasses.fields(repro.RunSpec)}
        assert {
            "platform",
            "policy",
            "workload",
            "txn_workload",
            "elastic",
            "backend",
            "localhost",
        } <= fields
