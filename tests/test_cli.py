"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name, "--ops", "100", "--seed", "3"])
            assert args.command == name
            assert args.ops == 100
            assert args.seed == 3

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_e1_g5k_small_run(self, capsys):
        assert main(["e1-g5k", "--ops", "3000", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "E1:" in out
        assert "harmony(0.2)" in out
        assert "stale-read reduction" in out

    def test_fig1_small_run(self, capsys):
        assert main(["fig1", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "FIG1" in out
        assert "simulator" in out
