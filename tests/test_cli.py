"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for name in COMMANDS:
            argv = [name, "--ops", "100", "--seed", "3"]
            if name == "report":
                argv.insert(1, "some/path")  # report takes a positional PATH
            elif name == "diff":
                argv[1:1] = ["run/a", "run/b"]  # diff takes two positionals
            args = parser.parse_args(argv)
            assert args.command == name
            assert args.ops == 100
            assert args.seed == 3

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_sweep_flags_parse(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--grid", "tolerance=0.2,0.4",
                "--grid", "policy=strong",
                "--scenario", "geo-replication",
                "--jobs", "4",
                "--out", "results",
            ]
        )
        assert args.command == "sweep"
        assert args.grid == ["tolerance=0.2,0.4", "policy=strong"]
        assert args.scenario == ["geo-replication"]
        assert args.jobs == 4
        assert args.out == "results"


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_e1_g5k_small_run(self, capsys):
        assert main(["e1-g5k", "--ops", "3000", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "E1:" in out
        assert "harmony(0.2)" in out
        assert "stale-read reduction" in out

    def test_fig1_small_run(self, capsys):
        assert main(["fig1", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "FIG1" in out
        assert "simulator" in out

    def test_sweep_bad_input_is_clean_error(self, capsys):
        assert main(["sweep", "--grid", "tolerence=0.2"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "tolerence" in err

    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "geo-replication" in out
        assert "node-failure-storm" in out

    def test_scenarios_json_listing(self, capsys):
        import json

        from repro.experiments import scenarios

        assert main(["scenarios", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in doc}
        # machine-readable contract: name, params, description, tags, kind
        assert set(by_name) == set(scenarios.names())
        geo = by_name["geo-replication"]
        assert geo["description"]
        assert geo["params"] == {"tolerance": 0.2}
        assert geo["kind"] == "plain"
        assert by_name["txn-shootout"]["kind"] == "txn"
        assert by_name["elastic-flash-crowd"]["kind"] == "elastic"

    def test_scenarios_json_carries_commit_protocol(self, capsys):
        import json

        assert main(["scenarios", "--json"]) == 0
        by_name = {e["name"]: e for e in json.loads(capsys.readouterr().out)}
        assert by_name["txn-crash-storm"]["commit_protocol"] == "2pc"
        assert by_name["txn-protocol-shootout"]["commit_protocol"] == "2pc"
        # non-txn scenarios carry no protocol
        assert by_name["geo-replication"]["commit_protocol"] is None

    def test_txn_protocol_flag_runs(self, capsys):
        assert main(["txn", "--ops", "60", "--policy", "harmony",
                     "--protocol", "2pc-coop", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "2PC-coop over two EC2 AZs" in out

    def test_txn_unknown_protocol_is_clean_error(self, capsys):
        assert main(["txn", "--ops", "60", "--policy", "harmony",
                     "--protocol", "4pc"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "4pc" in err
        assert "2pc-coop" in err  # the message names the valid choices

    def test_scenarios_json_carries_client_mode_and_scale(self, capsys):
        import json

        assert main(["scenarios", "--json"]) == 0
        by_name = {e["name"]: e for e in json.loads(capsys.readouterr().out)}
        assert by_name["harmony-geo-cohort"]["client_mode"] == "cohort"
        assert by_name["harmony-geo-cohort"]["clients"] == 1_000_000
        assert by_name["elastic-diurnal-cohort"]["client_mode"] == "cohort"
        assert by_name["geo-replication"]["client_mode"] == "per_client"

    def test_scenarios_text_marks_cohort_scale(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "<cohort:1000000>" in out
        # per-client scenarios carry no mode marker
        geo_line = next(l for l in out.splitlines() if l.startswith("geo-replication"))
        assert "<" not in geo_line

    def test_elastic_small_run(self, capsys):
        assert main(["elastic", "--scenario", "elastic-rebalance-storm",
                     "--ops", "2000", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "keys streamed" in out
        assert "membership timeline:" in out
        assert "scale-out" in out

    def test_elastic_rejects_non_elastic_scenario(self, capsys):
        assert main(["elastic", "--scenario", "geo-replication"]) == 2
        err = capsys.readouterr().err
        assert "not an elastic scenario" in err

    def test_sweep_small_run(self, capsys, tmp_path):
        out_dir = tmp_path / "results"
        assert (
            main(
                [
                    "sweep",
                    "--scenario", "single-dc-ycsb-a",
                    "--grid", "tolerance=0.2,0.4",
                    "--jobs", "1",
                    "--ops", "400",
                    "--out", str(out_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sweep: 2 runs" in out
        assert (out_dir / "results.json").exists()
        assert (out_dir / "results.csv").exists()

    def test_sweep_client_mode_flag(self, capsys, tmp_path):
        import json

        out_dir = tmp_path / "results"
        assert (
            main(
                [
                    "sweep",
                    "--scenario", "single-dc-ycsb-a",
                    "--client-mode", "cohort",
                    "--jobs", "1",
                    "--ops", "400",
                    "--out", str(out_dir),
                ]
            )
            == 0
        )
        capsys.readouterr()
        doc = json.loads((out_dir / "results.json").read_text())
        assert doc["runs"][0]["client_mode"] == "cohort"
        assert doc["runs"][0]["cohorts"]

    def test_sweep_rejects_unknown_client_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--client-mode", "pooled"])

    def test_sweep_cohort_scenario_runs(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--scenario", "harmony-geo-cohort",
                    "--jobs", "1",
                    "--ops", "800",
                    "--seed", "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sweep: 1 runs" in out
        assert "harmony-geo-cohort" in out
