"""Transport-conformance suite: one contract, every backend.

Each test in :class:`TestTransportContract` runs twice -- once over
:class:`~repro.runtime.sim.SimTransport` (discrete-event virtual time)
and once over :class:`~repro.runtime.aio.AsyncioTransport` (real asyncio
timers and a JSON wire codec) -- through a tiny harness that hides *only*
how time advances. The protocol-visible behaviour asserted here is what
:class:`~repro.runtime.interface.Transport` promises both engines honour:

- per-link FIFO delivery under the (default) constant-latency models;
- partitions drop at send time (``send`` returns ``None``) and heal;
- cancelled timers never fire, and cancelling twice is harmless;
- ``set_timer_at`` never fires early on the protocol clock;
- registered handlers receive *equal* argument values (and, on the
  asyncio backend, *fresh* objects -- the wire codec forbids shared
  references);
- a crashed :class:`~repro.runtime.localhost.LocalhostStore` replica set
  makes reads unavailable until recovery, on either transport.

Because the test body is identical per backend, a divergence pinpoints an
engine bug rather than a protocol bug -- this suite is the safety net for
the "same protocol classes on both backends" claim.
"""

import asyncio

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.cluster.versions import Version
from repro.net.topology import Datacenter, Topology, LinkClass
from repro.net.transport import Network
from repro.runtime.aio import AsyncioTransport
from repro.runtime.localhost import LocalhostStore
from repro.runtime.sim import SimTransport
from repro.simcore.simulator import Simulator


def two_dc_topology() -> Topology:
    """3+3 nodes across two regions: intra-DC, and true WAN links."""
    return Topology(
        [Datacenter("east", "us-east"), Datacenter("west", "eu-west")], [3, 3]
    )


class SimHarness:
    """Conformance driver over the discrete-event backend."""

    backend = "sim"

    def __init__(self, topology, seed=7):
        self.topology = topology
        self.sim = Simulator()
        self.network = Network(self.sim, topology, rng=seed)
        self.transport = SimTransport(self.sim, self.network)

    def run(self, setup, until):
        """Call ``setup(transport)`` at t=0, then advance to ``until``."""
        setup(self.transport)
        self.sim.run(until=until)


class AioHarness:
    """Conformance driver over the asyncio backend (scaled wall clock)."""

    backend = "asyncio"
    #: wall seconds per protocol second; keeps each test well under 1s of
    #: wall time while protocol timers still span a meaningful range.
    TIME_SCALE = 0.05

    def __init__(self, topology, seed=7):
        self.topology = topology
        self.transport = AsyncioTransport(
            topology, rng=seed, time_scale=self.TIME_SCALE
        )

    def run(self, setup, until):
        async def main():
            self.transport.start(asyncio.get_running_loop())
            setup(self.transport)
            # Margin over the scaled horizon absorbs call_later jitter.
            await asyncio.sleep(until * self.TIME_SCALE + 0.1)

        asyncio.run(main())
        self.transport.close()


@pytest.fixture(params=["sim", "asyncio"])
def harness(request):
    """Factory for a fresh backend harness; ``harness.backend`` names it."""

    def make(topology=None, seed=7):
        topo = topology if topology is not None else two_dc_topology()
        cls = SimHarness if request.param == "sim" else AioHarness
        return cls(topo, seed=seed)

    make.backend = request.param
    return make


class TestTransportContract:
    def test_per_link_delivery_is_fifo(self, harness):
        # 25 frames down one WAN link, registered so the asyncio side
        # genuinely crosses the codec: arrival order == send order.
        h = harness()
        got = []

        def setup(t):
            def sink(i):
                got.append(i)

            t.register("sink", sink)
            for i in range(25):
                t.send(0, 3, 64 + i, sink, i)

        h.run(setup, until=1.0)
        assert got == list(range(25))

    def test_send_returns_sampled_delay(self, harness):
        h = harness()
        delays = {}

        def setup(t):
            delays["wan"] = t.send(0, 3, 64, lambda: None)
            delays["lan"] = t.send(0, 1, 64, lambda: None)

        h.run(setup, until=1.0)
        # Default models are constant per link class: 40 ms WAN, 0.25 ms LAN.
        assert delays["wan"] == pytest.approx(0.040)
        assert delays["lan"] == pytest.approx(0.00025)

    def test_partition_drops_at_send_time_then_heals(self, harness):
        h = harness()
        got = []
        sent = {}

        def setup(t):
            def sink(tag):
                got.append(tag)

            t.register("sink", sink)
            t.partition_dcs(0, 1)
            sent["cut"] = t.send(0, 3, 64, sink, "cut")  # cross-DC: dropped
            sent["lan"] = t.send(0, 1, 64, sink, "lan")  # intra-DC: unaffected
            sent["was_partitioned"] = t.is_partitioned(0, 1)

            def heal_and_resend():
                t.heal_partition(0, 1)
                sent["healed"] = t.send(0, 3, 64, sink, "healed")
                sent["still_partitioned"] = t.is_partitioned(0, 1)

            t.set_timer(0.5, heal_and_resend)

        h.run(setup, until=2.0)
        assert sent["cut"] is None
        assert sent["lan"] is not None
        assert sent["was_partitioned"]
        assert sent["healed"] is not None
        assert not sent["still_partitioned"]
        assert got == ["lan", "healed"]

    def test_heal_all_clears_every_partition(self, harness):
        topo = Topology(
            [
                Datacenter("a", "r-a"),
                Datacenter("b", "r-b"),
                Datacenter("c", "r-c"),
            ],
            [1, 1, 1],
        )
        t = harness(topo).transport
        t.partition_dcs(0, 1)
        t.partition_dcs(2, 1)  # either argument order cuts the pair
        assert t.is_partitioned(1, 0) and t.is_partitioned(1, 2)
        t.heal_all()
        assert not t.is_partitioned(0, 1)
        assert not t.is_partitioned(1, 2)

    def test_cancelled_timer_never_fires(self, harness):
        h = harness()
        fired = []

        def setup(t):
            doomed = t.set_timer(0.2, fired.append, "cancelled")
            doomed.cancel()
            doomed.cancel()  # idempotent per the TimerHandle contract
            t.set_timer(0.4, fired.append, "kept")

        h.run(setup, until=1.0)
        assert fired == ["kept"]

    def test_timer_at_never_fires_early(self, harness):
        h = harness()
        seen = {}

        def setup(t):
            seen["t0"] = t.now
            t.set_timer_at(seen["t0"] + 0.5, lambda: seen.update(fire=t.now))

        h.run(setup, until=2.0)
        assert seen["fire"] >= seen["t0"] + 0.5 - 1e-9

    def test_sample_delay_matches_link_class(self, harness):
        t = harness().transport
        assert t.sample_delay(0, 1) == pytest.approx(0.00025)  # intra-DC
        assert t.sample_delay(0, 3) == pytest.approx(0.040)  # inter-region

    def test_unregistered_callable_delivers_locally(self, harness):
        # Client-side completion closures are not protocol traffic: they
        # deliver without a codec round-trip, payload passed through as-is.
        h = harness()
        got = []
        payload = {"k": 1, "nested": [1, 2]}

        def setup(t):
            t.send(1, 2, 64, got.append, payload)

        h.run(setup, until=1.0)
        assert got == [payload]
        assert got[0] is payload

    def test_registered_handler_preserves_values_crossing_the_wire(self, harness):
        # Prepare-style payload: a {key: Version} map. Values must arrive
        # equal on both backends; the asyncio codec additionally forbids
        # shared references (fresh objects at the receiver).
        h = harness()
        got = []
        writes = {"row1": Version(1.5, 3, 64), "row2": Version(2.0, 7, 128)}

        def setup(t):
            def on_prepare(txn_id, wmap):
                got.append((txn_id, wmap))

            t.register("p3.on_prepare", on_prepare)
            t.send(0, 3, 256, on_prepare, 42, writes)

        h.run(setup, until=1.0)
        assert len(got) == 1
        txn_id, wmap = got[0]
        assert txn_id == 42
        assert wmap == writes
        assert isinstance(wmap["row1"], Version)
        if h.backend == "asyncio":
            assert wmap is not writes
            assert wmap["row1"] is not writes["row1"]

    def test_traffic_is_accounted_per_link_class(self, harness):
        h = harness()

        def setup(t):
            t.send(0, 3, 500, lambda: None)  # inter-region
            t.send(0, 1, 100, lambda: None)  # intra-DC

        h.run(setup, until=1.0)
        traffic = (
            h.network.traffic if h.backend == "sim" else h.transport.traffic
        )
        assert traffic.bytes[LinkClass.INTER_REGION] == 500
        assert traffic.bytes[LinkClass.INTRA_DC] == 100

    def test_crashed_replicas_silence_reads_until_recovery(self, harness):
        # The LocalhostStore facade runs over either transport (that is
        # how repro.runtime.xval compares backends); crashing the whole
        # replica set of a key must fail reads, recovery must restore them.
        h = harness()
        results = []
        state = {}

        def setup(t):
            store = LocalhostStore(
                h.topology, t, replication_factor=2, seed=3
            )
            state["store"] = store
            replicas, _ = store.replica_sets("key1")
            for r in replicas:
                store.crash_node(r)
            store.read("key1", None, results.append)

            def recover_and_read():
                for r in replicas:
                    store.recover_node(r)
                store.read("key1", None, results.append)

            t.set_timer(0.5, recover_and_read)

        h.run(setup, until=2.0)
        assert len(results) == 2
        assert not results[0].ok
        assert results[0].error == "unavailable"
        assert results[1].ok
        assert state["store"].read_failures == 1
        assert state["store"].reads_ok == 1


class TestAsyncioTransportSpecifics:
    """Contract points only the asyncio backend can violate."""

    def test_time_scale_must_be_positive(self):
        with pytest.raises(ConfigError):
            AsyncioTransport(two_dc_topology(), time_scale=0.0)

    def test_double_registration_is_rejected(self):
        t = AsyncioTransport(two_dc_topology())
        t.register("h", lambda: None)
        with pytest.raises(ConfigError):
            t.register("h", lambda: None)

    def test_send_before_start_is_an_error(self):
        t = AsyncioTransport(two_dc_topology())
        with pytest.raises(SimulationError):
            t.send(0, 1, 10, lambda: None)
        with pytest.raises(SimulationError):
            t.set_timer(0.1, lambda: None)

    def test_negative_timer_is_rejected(self):
        t = AsyncioTransport(two_dc_topology())
        with pytest.raises(SimulationError):
            t.set_timer(-0.1, lambda: None)

    def test_self_partition_is_rejected(self):
        t = AsyncioTransport(two_dc_topology())
        with pytest.raises(ConfigError):
            t.partition_dcs(1, 1)

    def test_closed_transport_swallows_inflight_callbacks(self):
        t = AsyncioTransport(two_dc_topology(), time_scale=0.01)
        got = []

        async def main():
            t.start(asyncio.get_running_loop())
            t.register("sink", got.append)
            t.send(0, 3, 64, got.append, "late")
            t.set_timer(0.5, got.append, "timer")
            t.close()
            await asyncio.sleep(0.1)

        asyncio.run(main())
        assert got == []
