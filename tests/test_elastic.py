"""Tests for the elastic cluster subsystem.

Covers, bottom-up:

- incremental ring membership and the exact ownership diff;
- store-level bootstrap/decommission with the offline rebalance fallback;
- the streaming rebalancer's pending-ranges semantics (reads consult old
  owners, writes forwarded, hand-off only when caught up);
- the **crash-window property**: a scale-out mid-run stays linearizable at
  the ownership level -- with QUORUM writes and QUORUM reads (r+w>RF),
  every key is readable and fresh at every probed instant of the
  migration, for a crash of the streaming *target* or a streaming *source*
  at any point in the window, and the migration itself always drains;
- the autoscaler's hysteresis (consecutive breaches, cooldown, bounds,
  no decisions mid-migration);
- sweep byte-determinism across worker counts for the elastic scenarios.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError, ConsistencyError
from repro.cluster.partitioner import token_of
from repro.cluster.replication import NetworkTopologyStrategy, SimpleStrategy
from repro.cluster.ring import TokenRing
from repro.cluster.store import ReplicatedStore, StoreConfig
from repro.elastic import (
    AutoscalerConfig,
    CostAwareAutoscaler,
    ElasticCluster,
    ElasticSpec,
    RebalanceConfig,
    StreamingRebalancer,
)
from repro.facade import RunSpec, run
from repro.cost.pricing import EC2_US_EAST_2013
from repro.experiments.platforms import small_dc_platform
from repro.experiments.runner import harmony_factory, static_factory
from repro.experiments.sweep import SweepRunner, plan_sweep
from repro.monitor.collector import ClusterMonitor
from repro.net.latency import FixedLatency
from repro.net.topology import Datacenter, LinkClass, Topology
from repro.simcore.simulator import Simulator

KEYS = [f"user{i}" for i in range(60)]


def build_store(n_nodes=5, rf=3, seed=2):
    topo = Topology(
        [Datacenter("dc", "r")],
        [n_nodes],
        latency={LinkClass.INTRA_DC: FixedLatency(0.0005)},
    )
    # Short op timeouts so reads/writes racing an injected crash resolve
    # within the property tests' horizon instead of hanging to 5s.
    return ReplicatedStore(
        Simulator(),
        topo,
        strategy=SimpleStrategy(rf=rf),
        config=StoreConfig(
            seed=seed, read_repair_chance=0.0, read_timeout=0.5, write_timeout=0.5
        ),
    )


# -- ring membership ------------------------------------------------------------


class TestRingMembership:
    def test_grown_ring_equals_fresh_ring(self):
        grown = TokenRing(4, vnodes=8)
        grown.add_node(4)
        fresh = TokenRing(5, vnodes=8)
        for i in range(200):
            t = token_of(f"k{i}")
            assert grown.primary_for_token(t) == fresh.primary_for_token(t)
        assert grown.members == (0, 1, 2, 3, 4)

    def test_add_diff_is_exact(self):
        old = TokenRing(4, vnodes=8)
        new = TokenRing(4, vnodes=8)
        diff = new.add_node(4)
        assert diff  # something must move
        for i in range(5000):
            t = token_of(f"k{i}")
            before, after = old.primary_for_token(t), new.primary_for_token(t)
            covered = any(m.contains(t) for m in diff)
            if before != after:
                assert covered and after == 4
                arc = next(m for m in diff if m.contains(t))
                assert arc.old_owner == before and arc.new_owner == 4
            else:
                assert not covered

    def test_remove_diff_is_exact(self):
        old = TokenRing(5, vnodes=8)
        new = TokenRing(5, vnodes=8)
        diff = new.remove_node(2)
        assert new.members == (0, 1, 3, 4)
        for i in range(5000):
            t = token_of(f"k{i}")
            before, after = old.primary_for_token(t), new.primary_for_token(t)
            covered = any(m.contains(t) for m in diff)
            if before != after:
                assert before == 2 and covered
            else:
                assert not covered

    def test_add_remove_roundtrip_restores_layout(self):
        ring = TokenRing(4, vnodes=8)
        ring.add_node(4)
        ring.remove_node(4)
        fresh = TokenRing(4, vnodes=8)
        assert ring._tokens == fresh._tokens
        assert ring._owners == fresh._owners

    def test_membership_validation(self):
        ring = TokenRing(2, vnodes=4)
        with pytest.raises(ConfigError, match="already on the ring"):
            ring.add_node(0)
        with pytest.raises(ConfigError, match="not on the ring"):
            ring.remove_node(7)
        ring.remove_node(1)
        with pytest.raises(ConfigError, match="last ring member"):
            ring.remove_node(0)

    def test_ownership_fractions_exact(self):
        ring = TokenRing(6, vnodes=16)
        fractions = ring.ownership_fractions()
        assert fractions.sum() == pytest.approx(1.0, abs=1e-12)
        # exact gap math must agree with brute-force sampling
        import numpy as np

        counts = np.zeros(6)
        for i in range(20000):
            counts[ring.primary_for_token(token_of(f"balance:{i}"))] += 1
        assert np.abs(counts / 20000 - fractions).max() < 0.02

    def test_ownership_fractions_after_decommission(self):
        ring = TokenRing(5, vnodes=16)
        ring.remove_node(3)
        fractions = ring.ownership_fractions()
        assert fractions[3] == 0.0
        assert fractions.sum() == pytest.approx(1.0, abs=1e-12)


# -- store-level membership (offline fallback) ----------------------------------


class TestStoreMembership:
    def test_bootstrap_then_full_reads(self):
        store = build_store()
        store.preload(KEYS, value_size=10)
        node_id = store.bootstrap_node(0)
        assert node_id == 5
        assert store.ring.n_nodes == 6
        assert len(store.nodes) == 6 and len(store.coordinators) == 6
        results = []
        for key in KEYS:
            store.read(key, 3, results.append)
        store.sim.run(until=1.0)
        assert all(r.ok for r in results)
        assert store.stale_rate == 0.0
        # the newcomer holds its share of the data
        assert len(store.nodes[node_id].data) > 0

    def test_decommission_then_full_reads(self):
        store = build_store()
        store.preload(KEYS, value_size=10)
        store.decommission_node(1)
        assert store.nodes[1].retired
        assert 1 not in store.ring.members
        results = []
        for key in KEYS:
            store.read(key, 3, results.append)
        store.sim.run(until=1.0)
        assert all(r.ok for r in results)
        assert store.stale_rate == 0.0

    def test_decommission_below_rf_rejected(self):
        store = build_store(n_nodes=3, rf=3)
        with pytest.raises(ConsistencyError):
            store.decommission_node(0)

    def test_decommission_twice_rejected(self):
        store = build_store()
        store.decommission_node(1)
        with pytest.raises(ConfigError, match="already decommissioned"):
            store.decommission_node(1)

    def test_retired_node_cannot_recover(self):
        store = build_store()
        store.decommission_node(1)
        store.on_node_recover(1)
        assert not store.nodes[1].up

    def test_per_dc_quota_protected(self, az_topology):
        store = ReplicatedStore(
            Simulator(),
            az_topology,
            strategy=NetworkTopologyStrategy({0: 2, 1: 1}),
            config=StoreConfig(seed=1, read_repair_chance=0.0),
        )
        # az-a has 3 nodes and needs 2 replicas: dropping to 1 must fail
        store.decommission_node(0)
        with pytest.raises(ConsistencyError):
            store.decommission_node(1)

    def test_bootstrapped_node_is_deterministic(self):
        a, b = build_store(seed=9), build_store(seed=9)
        for s in (a, b):
            s.preload(KEYS, value_size=10)
            s.bootstrap_node(0)
        assert sorted(a.nodes[5].data) == sorted(b.nodes[5].data)


# -- streaming rebalance ---------------------------------------------------------


def build_streaming(n_nodes=5, rf=3, seed=2):
    store = build_store(n_nodes=n_nodes, rf=rf, seed=seed)
    reb = StreamingRebalancer(
        store, RebalanceConfig(pump_interval=0.002, attempt_timeout=0.02)
    )
    return store, reb


class TestStreamingRebalance:
    def test_migration_streams_and_drains(self):
        store, reb = build_streaming()
        store.preload(KEYS, value_size=10)
        store.bootstrap_node(0)
        assert reb.active
        assert reb.pending_keys() > 0
        store.sim.run(until=1.0)
        assert not reb.active
        assert reb.keys_streamed > 0
        assert reb.bytes_streamed > 0
        assert len(store.nodes[5].data) > 0

    def test_reads_during_migration_hit_old_owners(self):
        store, reb = build_streaming()
        store.preload(KEYS, value_size=10)
        store.bootstrap_node(0)
        # issued while every migration is still pending: reads must resolve
        # against the old owners (the new node holds nothing yet)
        moved = [k for k in KEYS if reb.pending_old_replicas(k) is not None]
        assert moved
        for key in moved:
            assert 5 not in reb.pending_old_replicas(key)
        results = []
        for key in KEYS:
            store.read(key, 3, results.append)
        store.sim.run(until=1.0)
        assert all(r.ok for r in results)
        assert store.stale_rate == 0.0

    def test_writes_forwarded_to_incoming_owners(self):
        store, reb = build_streaming()
        store.preload(KEYS, value_size=10)
        store.bootstrap_node(0)
        moved = [k for k in KEYS if reb.pending_old_replicas(k) is not None]
        assert moved
        done = []
        for key in moved:
            store.write(key, 1, done.append, value_size=77)
        store.sim.run(until=1.0)
        assert all(r.ok for r in done)
        # after the drain, every current replica holds the foreground write
        for key in moved:
            for r in store.strategy.replicas(key, store.ring, store.topology):
                v = store.nodes[r].data.get(key)
                assert v is not None and v.size == 77, (key, r)

    def test_handoff_waits_for_in_flight_writes(self):
        """A dispatched-but-unsettled write blocks its key's hand-off.

        The lost-write race: a write already in the old owners' queues when
        the stream lands must reach them before they stop being the
        read-visible set. The gate is the store's in-flight tracker.
        """
        store, reb = build_streaming()
        store.preload(KEYS, value_size=10)
        store.bootstrap_node(0)
        moved = [k for k in KEYS if reb.pending_old_replicas(k) is not None]
        key = moved[0]
        store._note_write_dispatched(key)  # simulate a write stuck in flight
        store.sim.run(until=1.0)
        assert reb.pending_old_replicas(key) is not None  # still gated
        assert all(k == key or reb.pending_old_replicas(k) is None for k in moved)
        store._note_write_settled(key)
        store.sim.run(until=2.0)
        assert reb.pending_old_replicas(key) is None
        assert not reb.active

    def test_decommission_retires_only_after_drain(self):
        store, reb = build_streaming()
        store.preload(KEYS, value_size=10)
        store.decommission_node(1)
        assert not store.nodes[1].retired  # still draining
        store.sim.run(until=1.0)
        assert store.nodes[1].retired
        assert not reb.active

    def test_monitor_counters_track_migration(self):
        store, reb = build_streaming()
        monitor = ClusterMonitor(window=2.0)
        store.add_listener(monitor)
        store.preload(KEYS, value_size=10)
        cluster_events = []
        store._notify_elastic = _wrap_notify(store._notify_elastic, cluster_events)
        store.bootstrap_node(0)
        store.sim.run(until=1.0)
        assert monitor.ranges_moved > 0
        assert monitor.keys_streamed == reb.keys_streamed
        assert monitor.bytes_streamed == reb.bytes_streamed
        kinds = [e["kind"] for e in cluster_events]
        assert kinds[0] == "migration-start" and kinds[-1] == "migration-complete"


def _wrap_notify(inner, log):
    def notify(event):
        log.append(event)
        inner(event)

    return notify


# -- the crash-window property ----------------------------------------------------


#: With FixedLatency(0.0005) and pump_interval 0.002 the bootstrap at
#: t=0.005 streams its first batch ~0.007 and finishes (uncrashed) within a
#: few milliseconds; the sweep brackets before / during / after, and the
#: recovery (at +0.03) lands inside the run horizon.
CRASH_TIMES = [
    0.004, 0.006, 0.0075, 0.009, 0.011, 0.013, 0.016, 0.020, 0.026, 0.035,
]

#: Foreground QUORUM writes staggered across the whole migration window.
WRITE_TIMES = [0.002, 0.006, 0.010, 0.014, 0.018, 0.024, 0.032]

#: Instants at which every key must be readable and fresh at QUORUM.
PROBE_TIMES = [0.0065, 0.0105, 0.0145, 0.019, 0.028, 0.040, 0.080]

PROP_KEYS = [f"user{i}" for i in range(30)]


def run_crash_window(crash_node_picker, crash_at, seed=2):
    """One scale-out with a crash injected at ``crash_at``; returns evidence.

    ``crash_node_picker(store, new_node)`` chooses the crash victim after
    the bootstrap happened (so it can pick the streaming target itself or
    one of the sources).
    """
    store, reb = build_streaming(seed=seed)
    store.preload(PROP_KEYS, value_size=10)
    writes, probes = [], []

    def do_writes(t_index):
        for i, key in enumerate(PROP_KEYS):
            if i % len(WRITE_TIMES) == t_index:
                store.write(key, 2, writes.append, value_size=50 + t_index)

    def do_probe():
        batch = []
        probes.append(batch)
        for key in PROP_KEYS:
            store.read(key, 2, batch.append)

    new_node_box = []

    def do_bootstrap():
        new_node_box.append(store.bootstrap_node(0))

    def do_crash():
        new = new_node_box[0] if new_node_box else None
        store.on_node_crash(crash_node_picker(store, new))

    def do_recover():
        # recover whichever node is down (the one we crashed)
        for node in store.nodes:
            if not node.up and not node.retired:
                store.on_node_recover(node.node_id)

    for t_index, t in enumerate(WRITE_TIMES):
        store.sim.schedule_at(t, do_writes, t_index)
    for t in PROBE_TIMES:
        store.sim.schedule_at(t, do_probe)
    store.sim.schedule_at(0.005, do_bootstrap)
    store.sim.schedule_at(crash_at, do_crash)
    store.sim.schedule_at(crash_at + 0.03, do_recover)
    store.sim.run(until=2.0)
    return store, reb, writes, probes


def assert_ownership_linearizable(store, reb, writes, probes, crash_at):
    """The acceptance invariant, checked during and after the migration."""
    # The migration always drains, whatever the crash hit.
    assert not reb.active
    assert reb.pending_keys() == 0
    # QUORUM writes + QUORUM reads (r+w>RF): every probed instant of the
    # migration saw every key readable and fresh. A read that *raced the
    # injected crash itself* (issued inside the down window, served by the
    # victim mid-crash) may time out -- that is the crash's doing, present
    # in the static system too -- but it must never return stale data, and
    # outside the crash window every read must succeed.
    crash_window = (crash_at - 0.005, crash_at + 0.035)
    for batch in probes:
        assert len(batch) == len(PROP_KEYS)
        for r in batch:
            if r.ok:
                assert r.stale is False, f"stale read of {r.key!r} during migration"
                continue
            assert r.error == "timeout", f"{r.key!r} unavailable: {r.error}"
            assert crash_window[0] <= r.t_start <= crash_window[1], (
                f"read of {r.key!r} at t={r.t_start} failed outside the "
                f"crash window {crash_window}"
            )
    # No acked write was lost: a final ALL read returns a version at least
    # as new as the newest acknowledged one, for every key.
    finals = []
    for key in PROP_KEYS:
        store.read(key, 3, finals.append)
    store.sim.run(until=store.sim.now + 1.0)
    for r in finals:
        assert r.ok and r.version is not None
        expected, _ = store.oracle.expected_version(r.key)
        assert not expected.newer_than(r.version), f"lost write on {r.key!r}"


class TestCrashWindowProperty:
    # The target only exists once the bootstrap (t=0.005) has happened; the
    # source sweep additionally covers crash-before-scale-out instants.
    @pytest.mark.parametrize("crash_at", [t for t in CRASH_TIMES if t >= 0.006])
    def test_target_crash_any_instant(self, crash_at):
        """Crashing the bootstrapping node itself never loses a key."""
        store, reb, writes, probes = run_crash_window(
            lambda store, new: new, crash_at
        )
        assert_ownership_linearizable(store, reb, writes, probes, crash_at)

    @pytest.mark.parametrize("crash_at", CRASH_TIMES)
    def test_source_crash_any_instant(self, crash_at):
        """Crashing a streaming source mid-hand-off never loses a key."""
        store, reb, writes, probes = run_crash_window(
            lambda store, new: 0, crash_at  # node 0: an old owner / source
        )
        assert_ownership_linearizable(store, reb, writes, probes, crash_at)

    def test_crash_actually_forces_restreams(self):
        """Sanity: the sweep exercises the retry path, not just clean runs."""
        total = 0
        for crash_at in (0.006, 0.0075, 0.009):
            _, reb, _, _ = run_crash_window(lambda store, new: new, crash_at)
            total += reb.restreams
        assert total > 0


# -- autoscaler hysteresis --------------------------------------------------------


def build_autoscaled(config=None, n_nodes=4):
    store = build_store(n_nodes=n_nodes)
    cluster = ElasticCluster(
        store, RebalanceConfig(pump_interval=0.002, attempt_timeout=0.02)
    )
    monitor = ClusterMonitor(window=2.0)
    store.add_listener(monitor)
    scaler = CostAwareAutoscaler(
        cluster,
        monitor,
        EC2_US_EAST_2013,
        config
        or AutoscalerConfig(
            interval=0.01, consecutive=3, cooldown=0.05, scale_out_util=0.6,
            scale_in_util=0.2, max_nodes=6,
        ),
    )
    return store, cluster, scaler


def force_signals(scaler, util, queue=0.0):
    scaler.observed_utilization = lambda: util
    scaler.mean_queue_depth = lambda: queue


class TestAutoscaler:
    def test_scale_out_needs_consecutive_breaches(self):
        store, cluster, scaler = build_autoscaled()
        force_signals(scaler, util=0.9)
        scaler.start()
        store.sim.run(until=0.025)  # two ticks: not enough
        assert cluster.scale_outs == 0
        store.sim.run(until=0.035)  # third consecutive breach
        assert cluster.scale_outs == 1

    def test_brief_spike_does_not_scale(self):
        store, cluster, scaler = build_autoscaled()
        spiky = iter([0.9, 0.9, 0.1, 0.9, 0.9, 0.1] * 10)
        scaler.observed_utilization = lambda: next(spiky)
        scaler.mean_queue_depth = lambda: 0.0
        scaler.start()
        store.sim.run(until=0.1)
        assert cluster.scale_outs == 0

    def test_cooldown_blocks_back_to_back_changes(self):
        store, cluster, scaler = build_autoscaled()
        force_signals(scaler, util=0.9)
        scaler.start()
        store.sim.run(until=0.06)
        # one change, then the migration + 0.05s cooldown must gate the next
        assert cluster.scale_outs == 1
        store.sim.run(until=0.2)
        assert cluster.scale_outs >= 2  # resumes after cooldown

    def test_max_nodes_clamps(self):
        store, cluster, scaler = build_autoscaled()
        force_signals(scaler, util=0.95)
        scaler.start()
        store.sim.run(until=2.0)
        assert cluster.n_members == 6  # max_nodes

    def test_scale_in_floors_at_rf(self):
        store, cluster, scaler = build_autoscaled(n_nodes=5)
        force_signals(scaler, util=0.01)
        scaler.start()
        store.sim.run(until=2.0)
        assert cluster.n_members == 3  # rf floor
        assert all(d["action"] == "scale-in" for d in scaler.decisions)
        assert all("projected_util" in d for d in scaler.decisions)

    def test_queue_depth_triggers_scale_out(self):
        store, cluster, scaler = build_autoscaled()
        force_signals(scaler, util=0.1, queue=50.0)
        scaler.start()
        store.sim.run(until=0.2)
        assert cluster.scale_outs >= 1

    def test_no_decision_while_migrating(self):
        store, cluster, scaler = build_autoscaled()
        store.preload(KEYS, value_size=10)
        force_signals(scaler, util=0.9)
        scaler.start()
        store.sim.run(until=0.035)
        assert cluster.scale_outs == 1
        # while the resulting migration streams, breaches must not stack
        assert scaler._streak_out == 0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            AutoscalerConfig(scale_in_util=0.7, scale_out_util=0.5)
        with pytest.raises(ConfigError):
            AutoscalerConfig(interval=0.0)
        with pytest.raises(ConfigError):
            AutoscalerConfig(consecutive=0)


# -- end-to-end scenarios ----------------------------------------------------------


class TestElasticScenarios:
    def test_elastic_harness_produces_block(self):
        out = run(RunSpec(
            platform=small_dc_platform(),
            policy=harmony_factory(0.3),
            elastic=ElasticSpec(
                autoscaler=AutoscalerConfig(
                    interval=0.02, consecutive=2, cooldown=0.08,
                    scale_out_util=0.5, scale_in_util=0.1, max_nodes=8,
                    queue_depth_high=3.0,
                ),
                rebalance=RebalanceConfig(pump_interval=0.005, attempt_timeout=0.1),
            ),
            ops=3000,
            clients=48,
            seed=3,
        ))
        block = out.report.elastic
        assert block is not None
        assert block["scale_outs"] >= 1
        assert block["pending_final"] == 0
        assert block["bytes_streamed"] > 0
        assert block["autoscaler"]["decisions"]
        assert out.report.stale_rate <= 1.0

    def test_pacing_schedule_repaces_clients(self):
        out = run(RunSpec(
            platform=small_dc_platform(),
            policy=static_factory(1, 1, name="one"),
            elastic=ElasticSpec(pacing_schedule=((0.05, 100.0),)),
            ops=1000,
            clients=8,
            seed=3,
            target_throughput=8000.0,
        ))
        # after the 0.05s step-down to 100 ops/s, the run must stretch out
        assert out.report.duration > 1.0
        assert out.report.throughput < 2000.0

    def test_scale_in_reduces_the_instance_bill(self):
        """The bill integrates capacity over time: fewer node-seconds, fewer $.

        Same platform, same paced load -- the autoscaled run that walks the
        cluster down must bill strictly less for instances than the static
        one (and the static path must still price exactly n x duration).
        """
        from repro.experiments.platforms import ec2_harmony_platform

        kwargs = dict(ops=1500, clients=16, seed=3, target_throughput=1000.0)
        static = run(RunSpec(
            platform=ec2_harmony_platform(),
            policy=harmony_factory(0.4),
            **kwargs,
        ))
        rate = ec2_harmony_platform().prices.instance_rate_per_second()
        assert static.bill.instance_cost == pytest.approx(
            20 * static.bill.duration * rate
        )
        elastic = run(RunSpec(
            platform=ec2_harmony_platform(),
            policy=harmony_factory(0.4),
            elastic=ElasticSpec(
                autoscaler=AutoscalerConfig(
                    interval=0.05, consecutive=2, cooldown=0.1,
                    scale_out_util=0.55, scale_in_util=0.2, min_nodes=6,
                ),
                rebalance=RebalanceConfig(pump_interval=0.005, attempt_timeout=0.1),
            ),
            **kwargs,
        ))
        assert elastic.report.elastic["scale_ins"] >= 1
        assert elastic.bill.instance_cost < 0.9 * static.bill.instance_cost

    def test_sweep_determinism_across_jobs(self):
        plan = plan_sweep(
            scenario_names=[
                "elastic-diurnal",
                "elastic-flash-crowd",
                "elastic-scale-in-cost",
                "elastic-rebalance-storm",
            ],
            root_seed=7,
            ops=800,
        )
        serial = SweepRunner(jobs=1).run(plan)
        parallel = SweepRunner(jobs=4).run(plan)
        assert serial.to_json() == parallel.to_json()
        assert serial.to_csv() == parallel.to_csv()
        rows = {row["scenario"]: row for row in serial.rows}
        assert rows["elastic-rebalance-storm"]["elastic"]["scale_outs"] >= 1
        # elastic columns surface in the CSV header
        assert "elastic_bytes_streamed" in serial.to_csv().splitlines()[0]
