"""Tests for the Harmony adaptive-consistency engine."""

import pytest

from repro.common.errors import ConfigError
from repro.cluster.coordinator import OpResult
from repro.harmony.engine import HarmonyEngine
from repro.monitor.collector import ClusterMonitor
from repro.stale.dcmodel import DeploymentInfo


def feed_monitor(monitor, write_rate, acks, horizon=5.0, key="hot"):
    """Synthesize a steady write stream with a fixed ack profile."""
    t = 0.0
    dt = 1.0 / write_rate
    while t < horizon:
        r = OpResult("write", key, t, "n=1")
        r.t_end = t + acks[0]
        r.ok = True
        r.ack_delays = list(acks)
        r.replicas_contacted = len(acks)
        monitor.on_op_complete(r)
        monitor.on_write_propagated(r)
        # a matching read stream
        rr = OpResult("read", key, t, "n=1")
        rr.t_end = t + 0.001
        rr.ok = True
        monitor.on_op_complete(rr)
        t += dt


class TestValidation:
    def test_bounds(self):
        m = ClusterMonitor()
        with pytest.raises(ConfigError):
            HarmonyEngine(m, tolerance=1.5, rf=3)
        with pytest.raises(ConfigError):
            HarmonyEngine(m, tolerance=0.1, rf=0)
        with pytest.raises(ConfigError):
            HarmonyEngine(m, tolerance=0.1, rf=3, write_level=4)
        with pytest.raises(ConfigError):
            HarmonyEngine(m, tolerance=0.1, rf=3, update_interval=0.0)

    def test_name(self):
        eng = HarmonyEngine(ClusterMonitor(), tolerance=0.05, rf=3)
        assert eng.name == "harmony(0.05)"


class TestDecisions:
    def test_cold_start_picks_one(self):
        eng = HarmonyEngine(ClusterMonitor(), tolerance=0.1, rf=3)
        assert eng.read_level(0.0) == 1  # no writes observed -> nothing stale

    def test_write_level_fixed(self):
        eng = HarmonyEngine(ClusterMonitor(), tolerance=0.1, rf=3, write_level=2)
        assert eng.write_level(0.0) == 2

    def test_low_write_rate_stays_weak(self):
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=0.5, acks=[0.001, 0.002, 0.003])
        eng = HarmonyEngine(m, tolerance=0.10, rf=3, update_interval=0.1)
        assert eng.read_level(5.0) == 1

    def test_hot_workload_escalates(self):
        m = ClusterMonitor(window=10.0)
        # 200 writes/s to one key with 50 ms propagation tail
        feed_monitor(m, write_rate=200.0, acks=[0.001, 0.030, 0.050])
        eng = HarmonyEngine(m, tolerance=0.05, rf=3, update_interval=0.1)
        level = eng.read_level(5.0)
        assert level >= 2

    def test_tolerance_ordering(self):
        # looser tolerance must never pick a stronger level
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=100.0, acks=[0.001, 0.020, 0.040])
        levels = {}
        for tol in (0.01, 0.10, 0.50):
            eng = HarmonyEngine(m, tolerance=tol, rf=3, update_interval=0.1)
            levels[tol] = eng.read_level(5.0)
        assert levels[0.01] >= levels[0.10] >= levels[0.50]

    def test_estimates_monotone_in_level(self):
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=100.0, acks=[0.001, 0.020, 0.040])
        eng = HarmonyEngine(m, tolerance=0.1, rf=3)
        est = eng.estimate_all_levels(5.0)
        assert len(est) == 3
        for a, b in zip(est, est[1:]):
            assert a >= b - 1e-12

    def test_update_interval_caches_decision(self):
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=10.0, acks=[0.001, 0.002, 0.003])
        eng = HarmonyEngine(m, tolerance=0.1, rf=3, update_interval=5.0)
        eng.read_level(0.0)
        n = len(eng.decisions)
        eng.read_level(1.0)  # within interval: no new decision
        assert len(eng.decisions) == n
        eng.read_level(6.0)
        assert len(eng.decisions) == n + 1

    def test_decision_log_contents(self):
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=50.0, acks=[0.001, 0.010, 0.020])
        eng = HarmonyEngine(m, tolerance=0.2, rf=3, update_interval=0.1)
        eng.read_level(5.0)
        d = eng.decisions[-1]
        assert d.read_level >= 1
        assert len(d.estimates) == 3
        assert d.write_rate > 0

    def test_level_time_fractions(self):
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=1.0, acks=[0.001, 0.002, 0.003])
        eng = HarmonyEngine(m, tolerance=0.5, rf=3, update_interval=0.1)
        for t in (1.0, 2.0, 3.0):
            eng.read_level(t)
        fracs = eng.level_time_fractions()
        assert sum(fracs.values()) == pytest.approx(1.0)
        assert HarmonyEngine(ClusterMonitor(), 0.1, 3).level_time_fractions() == {}

    def test_padded_windows_when_rf_exceeds_profile(self):
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=50.0, acks=[0.001, 0.010])  # only 2 acks seen
        eng = HarmonyEngine(m, tolerance=0.01, rf=5, update_interval=0.1)
        est = eng.estimate_all_levels(5.0)
        assert len(est) == 5  # padded to rf


class TestDcAwareMode:
    def _deployment(self):
        return DeploymentInfo(
            coordinator_share=[0.5, 0.5],
            rf_per_dc=[2, 1],
            delay=[[0.0002, 0.010], [0.010, 0.0002]],
            write_service=0.0005,
            read_service=0.0005,
        )

    def test_dc_aware_estimates_used(self):
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=200.0, acks=[0.001, 0.002, 0.011])
        eng = HarmonyEngine(
            m, tolerance=0.01, rf=3, update_interval=0.1,
            deployment=self._deployment(),
        )
        est = eng.estimate_all_levels(5.0)
        assert len(est) == 3
        # level 3 contacts both DCs -> essentially fresh
        assert est[2] == pytest.approx(0.0, abs=1e-6)
        assert est[0] > est[2]

    def test_dc_aware_changes_decision(self):
        m = ClusterMonitor(window=10.0)
        feed_monitor(m, write_rate=200.0, acks=[0.001, 0.002, 0.011])
        plain = HarmonyEngine(m, tolerance=0.02, rf=3, update_interval=0.1)
        aware = HarmonyEngine(
            m, tolerance=0.02, rf=3, update_interval=0.1,
            deployment=self._deployment(),
        )
        # both produce valid levels; decisions may differ but must satisfy
        # their own estimates
        for eng in (plain, aware):
            lvl = eng.read_level(5.0)
            est = eng.decisions[-1].estimates
            if lvl < eng.rf:
                assert est[lvl - 1] <= eng.tolerance


class TestEndToEnd:
    def test_harmony_respects_tolerance_in_live_run(self, store):
        """Full loop: monitor + engine + store, measured staleness bounded."""
        from repro.workload.client import WorkloadRunner
        from repro.workload.workloads import heavy_read_update

        monitor = ClusterMonitor(window=1.0)
        store.add_listener(monitor)
        eng = HarmonyEngine(
            monitor, tolerance=0.10, rf=3, update_interval=0.2,
            deployment=DeploymentInfo.from_store(store),
        )
        rep = WorkloadRunner(
            store,
            heavy_read_update(record_count=50),
            policy=eng,
            n_clients=8,
            ops_total=6000,
            seed=3,
            warmup_fraction=0.3,
        ).run()
        assert rep.stale_rate_strict <= 0.10 + 0.05  # tolerance + margin
        assert len(eng.decisions) > 3
