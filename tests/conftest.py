"""Shared fixtures: small deterministic deployments for fast tests."""

from __future__ import annotations

import pytest

from repro.cluster.replication import NetworkTopologyStrategy, SimpleStrategy
from repro.cluster.store import ReplicatedStore, StoreConfig
from repro.net.latency import FixedLatency
from repro.net.topology import Datacenter, LinkClass, Topology
from repro.simcore.simulator import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def small_topology() -> Topology:
    """Two regions, 3+2 nodes, deterministic latencies for exact assertions."""
    return Topology(
        [Datacenter("east", "r-east"), Datacenter("south", "r-south")],
        [3, 2],
        latency={
            LinkClass.INTRA_DC: FixedLatency(0.0002),
            LinkClass.INTER_REGION: FixedLatency(0.010),
        },
    )


@pytest.fixture
def az_topology() -> Topology:
    """Two availability zones in one region (inter-AZ links)."""
    return Topology(
        [Datacenter("az-a", "region"), Datacenter("az-b", "region")],
        [3, 3],
        latency={
            LinkClass.INTRA_DC: FixedLatency(0.0002),
            LinkClass.INTER_AZ: FixedLatency(0.001),
        },
    )


@pytest.fixture
def store(sim, small_topology) -> ReplicatedStore:
    """RF=3 over {2 east, 1 south}, fixed latencies, no read repair."""
    return ReplicatedStore(
        sim,
        small_topology,
        strategy=NetworkTopologyStrategy({0: 2, 1: 1}),
        config=StoreConfig(seed=1, read_repair_chance=0.0),
    )


@pytest.fixture
def simple_store(sim) -> ReplicatedStore:
    """Single-DC, RF=3 SimpleStrategy store (the minimal deployment)."""
    topo = Topology(
        [Datacenter("dc", "r")],
        [5],
        latency={LinkClass.INTRA_DC: FixedLatency(0.0005)},
    )
    return ReplicatedStore(
        sim,
        topo,
        strategy=SimpleStrategy(rf=3),
        config=StoreConfig(seed=2, read_repair_chance=0.0),
    )


def drain(sim: Simulator, until: float | None = None) -> None:
    """Run the simulator until idle (or a horizon)."""
    sim.run(until=until)
