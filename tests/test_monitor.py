"""Tests for the monitoring module (rates, ack profile, key frequencies)."""

import pytest

from repro.common.errors import ConfigError
from repro.cluster.coordinator import OpResult
from repro.monitor.collector import ClusterMonitor
from repro.monitor.keyfreq import KeyFrequencyTracker


def op(kind, key, t_start, t_end, ok=True, acks=None):
    r = OpResult(kind, key, t_start, "n=1")
    r.t_end = t_end
    r.ok = ok
    if acks is not None:
        r.ack_delays = list(acks)
        r.replicas_contacted = len(acks)
    return r


class TestKeyFrequencyTracker:
    def test_validation(self):
        with pytest.raises(ConfigError):
            KeyFrequencyTracker(window=0.0)

    def test_shares(self):
        t = KeyFrequencyTracker(window=10.0)
        for _ in range(3):
            t.record_read("a", 1.0)
        t.record_read("b", 1.0)
        shares = t.read_shares()
        assert shares["a"] == pytest.approx(0.75)
        assert shares["b"] == pytest.approx(0.25)

    def test_empty_shares(self):
        t = KeyFrequencyTracker()
        assert t.read_shares() == {}
        assert t.write_shares() == {}
        assert t.effective_key_count() == float("inf")

    def test_effective_key_count_uniform(self):
        t = KeyFrequencyTracker()
        for i in range(10):
            t.record_write(f"k{i}", 1.0)
        assert t.effective_key_count() == pytest.approx(10.0)

    def test_effective_key_count_skewed(self):
        t = KeyFrequencyTracker()
        for _ in range(9):
            t.record_write("hot", 1.0)
        t.record_write("cold", 1.0)
        # inverse simpson of (0.9, 0.1) = 1/(0.81+0.01)
        assert t.effective_key_count() == pytest.approx(1.0 / 0.82)

    def test_rotation_expires_old_counts(self):
        t = KeyFrequencyTracker(window=1.0)
        t.record_write("old", 0.0)
        t.record_write("new", 1.5)  # rotates; "old" in previous bucket
        assert "old" in t.write_shares()
        t.record_write("newer", 3.0)  # rotates again; "old" gone
        assert "old" not in t.write_shares()
        assert "new" in t.write_shares()

    def test_collision_profile_exact_when_small(self):
        t = KeyFrequencyTracker()
        t.record_read("a", 0.0)
        t.record_write("a", 0.0)
        t.record_read("b", 0.0)
        rows = t.collision_profile()
        assert len(rows) == 2
        assert all(m == 1 for _, _, m in rows)
        # sorted by read share desc, shares sum to 1
        assert rows[0][0] >= rows[1][0]
        assert sum(r for r, _, _ in rows) == pytest.approx(1.0)

    def test_collision_profile_tail_folding(self):
        t = KeyFrequencyTracker()
        for i in range(600):
            t.record_read(f"k{i}", 0.0)
            t.record_write(f"k{i}", 0.0)
        rows = t.collision_profile(max_keys=100)
        assert len(rows) == 101
        head, tail = rows[:100], rows[100]
        assert tail[2] == 500  # multiplicity of the folded tail
        total_read = sum(r * m for r, _, m in rows)
        assert total_read == pytest.approx(1.0, rel=1e-6)


class TestClusterMonitor:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ClusterMonitor(window=0.0)

    def test_rates(self):
        m = ClusterMonitor(window=2.0)
        for i in range(100):
            m.on_op_complete(op("read", "k", i * 0.01, i * 0.01 + 0.001))
        for i in range(50):
            m.on_op_complete(op("write", "k", i * 0.02, i * 0.02 + 0.001))
        snap = m.snapshot(1.0)
        assert snap.read_rate == pytest.approx(100.0, rel=0.2)
        assert snap.write_rate == pytest.approx(50.0, rel=0.2)

    def test_latency_ewma(self):
        m = ClusterMonitor(window=2.0)
        for i in range(50):
            m.on_op_complete(op("read", "k", i * 0.1, i * 0.1 + 0.005))
        assert m.read_latency.value == pytest.approx(0.005, rel=0.01)

    def test_failed_ops_excluded_from_latency(self):
        m = ClusterMonitor()
        m.on_op_complete(op("read", "k", 0.0, 99.0, ok=False))
        assert m.read_latency.value == 0.0

    def test_ack_rank_profile(self):
        m = ClusterMonitor()
        # two writes with 3 acks each
        m.on_write_propagated(op("write", "k", 0.0, 0.0, acks=[0.003, 0.001, 0.010]))
        m.on_write_propagated(op("write", "k", 1.0, 1.0, acks=[0.002, 0.012, 0.004]))
        ranks = m.ack_rank_means(recent=False)
        assert len(ranks) == 3
        assert ranks[0] == pytest.approx((0.001 + 0.002) / 2)
        assert ranks[2] == pytest.approx((0.010 + 0.012) / 2)
        # ranks are sorted per write so means are monotone
        assert ranks[0] <= ranks[1] <= ranks[2]

    def test_empty_ack_profile(self):
        m = ClusterMonitor()
        m.on_write_propagated(op("write", "k", 0.0, 0.0, acks=[]))
        assert m.ack_rank_means() == []

    def test_snapshot_structure(self):
        m = ClusterMonitor()
        m.on_op_complete(op("read", "a", 0.0, 0.001))
        m.on_op_complete(op("write", "a", 0.0, 0.001))
        m.on_write_propagated(op("write", "a", 0.0, 0.0, acks=[0.001, 0.002]))
        snap = m.snapshot(0.5)
        assert snap.replication_factor() == 2
        assert snap.key_profile
        windows = snap.propagation_windows(write_level=1)
        assert len(windows) == 2
        assert windows[0] == 0.0  # rank-1 window relative to rank-1 commit

    def test_propagation_windows_levels(self):
        m = ClusterMonitor()
        m.on_write_propagated(
            op("write", "k", 0.0, 0.0, acks=[0.001, 0.005, 0.020])
        )
        snap = m.snapshot(0.1)
        w1 = snap.propagation_windows(1)
        assert w1 == pytest.approx([0.0, 0.004, 0.019])
        w3 = snap.propagation_windows(3)
        assert w3 == pytest.approx([0.0, 0.0, 0.0])

    def test_snapshot_empty_monitor(self):
        snap = ClusterMonitor().snapshot(1.0)
        assert snap.read_rate == 0.0
        assert snap.replication_factor() == 0
        assert snap.propagation_windows(1) == []

    def test_live_against_store(self, store):
        m = ClusterMonitor(window=5.0)
        store.add_listener(m)
        for i in range(100):
            store.sim.schedule_at(i * 0.01, store.write, "k", 1)
            store.sim.schedule_at(i * 0.01 + 0.002, store.read, "k", 1)
        store.sim.run()
        assert m.ops_seen == 200
        snap = m.snapshot()
        assert snap.replication_factor() == 3
        assert snap.write_rate > 0
        # rank means increase with rank and reflect the 10ms WAN hop
        ranks = snap.ack_rank_means
        assert ranks[0] < ranks[-1]
        assert ranks[-1] > 0.01
