"""Tests for the asyncio localhost runtime: codec, file WALs, runs, xval.

Covers the pieces the transport-conformance suite does not: the JSON wire
codec's type tagging, :class:`~repro.runtime.wal.FileWriteAheadLog` disk
replay, end-to-end :func:`~repro.runtime.localhost.run_localhost` runs
(including the wall-timeout guard and crash scripts), the deterministic
sim twin, and the cross-validation trend checker's verdict logic.
"""

import json
import os

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.cluster.versions import Version
from repro.runtime import codec
from repro.runtime.localhost import LocalhostSpec, run_localhost
from repro.runtime.wal import FileWriteAheadLog
from repro.runtime.xval import (
    XvalCheck,
    XvalReport,
    _trend_failures,
    cross_validate,
    default_xval_spec,
    run_sim_twin,
)
from repro.txn.wal import REC_COMMIT, REC_PREPARE, REC_TM_BEGIN, WriteAheadLog


class TestWireCodec:
    def test_roundtrip_scalars_and_containers(self):
        name, args = codec.decode(
            codec.encode("p1.on_vote", (7, True, None, 1.5, "key", [1, 2]))
        )
        assert name == "p1.on_vote"
        assert args == [7, True, None, 1.5, "key", [1, 2]]

    def test_version_maps_survive_the_wire(self):
        writes = {"row1": Version(1.25, 3, 64), "row2": Version(2.0, 9, 128)}
        _, args = codec.decode(codec.encode("p0.on_prepare", (42, writes)))
        assert args[0] == 42
        revived = args[1]
        assert revived == writes
        assert isinstance(revived["row1"], Version)
        assert revived["row1"].size == 64
        # Fresh objects: decoding shares nothing with the sender's state.
        assert revived["row1"] is not writes["row1"]

    def test_tuples_and_sets_become_lists(self):
        assert codec.to_wire((1, 2)) == [1, 2]
        assert codec.to_wire({3, 1, 2}) == [1, 2, 3]  # sorted for determinism

    def test_dict_keys_are_stringified(self):
        assert codec.to_wire({1: "a"}) == {"1": "a"}

    def test_version_tag_requires_exact_shape(self):
        # A dict that merely *contains* the tag key plus other keys is user
        # data, not a tagged Version.
        wire = {"__v__": [1.0, 2, 3], "other": 1}
        back = codec.from_wire(wire)
        assert isinstance(back, dict)
        assert not isinstance(back, Version)
        assert back["other"] == 1

    def test_unencodable_object_is_rejected(self):
        with pytest.raises(SimulationError):
            codec.to_wire(object())

    def test_frames_are_compact_utf8_json(self):
        frame = codec.encode("h", (1,))
        assert isinstance(frame, bytes)
        assert json.loads(frame.decode("utf-8")) == {"h": "h", "a": [1]}


class TestFileWriteAheadLog:
    def test_appends_persist_and_replay_identically(self, tmp_path):
        path = str(tmp_path / "node0.wal")
        wal = FileWriteAheadLog(0, path)
        writes = {"k": Version(1.0, 1, 10)}
        wal.append(REC_PREPARE, 7, 0.5, writes=writes)
        wal.append(REC_TM_BEGIN, 8, 0.6, participants=[0, 1])
        wal.append(REC_COMMIT, 7, 0.9)
        assert wal.in_doubt() == []  # the commit resolved txn 7
        assert [r.txn_id for r in wal.tm_unfinished()] == [8]
        wal.close()

        replayed = FileWriteAheadLog.replay(0, path)
        assert len(replayed) == len(wal)
        assert [r.kind for r in replayed.records] == [
            REC_PREPARE,
            REC_TM_BEGIN,
            REC_COMMIT,
        ]
        # The incremental in-doubt / unfinished sets re-derive from records.
        assert replayed.in_doubt() == wal.in_doubt()
        assert [r.txn_id for r in replayed.tm_unfinished()] == [8]
        # Typed payloads survive the disk round trip.
        rec = replayed.prepare_record(7)
        assert rec is not None
        assert rec.data["writes"] == writes
        assert isinstance(rec.data["writes"]["k"], Version)
        replayed.close()

    def test_replay_preserves_in_doubt_transactions(self, tmp_path):
        path = str(tmp_path / "node1.wal")
        wal = FileWriteAheadLog(1, path)
        wal.append(REC_PREPARE, 3, 0.1, writes={})
        wal.close()
        replayed = FileWriteAheadLog.replay(1, path)
        assert replayed.in_doubt() == [3]
        replayed.close()

    def test_replay_does_not_rewrite_the_file(self, tmp_path):
        path = str(tmp_path / "node2.wal")
        wal = FileWriteAheadLog(2, path)
        wal.append(REC_PREPARE, 1, 0.1, writes={})
        wal.close()
        size_before = os.path.getsize(path)
        FileWriteAheadLog.replay(2, path).close()
        assert os.path.getsize(path) == size_before

    def test_matches_in_memory_wal_semantics(self, tmp_path):
        # The file-backed log is the in-memory WriteAheadLog plus disk; the
        # derived sets must agree record-for-record.
        mem = WriteAheadLog(0)
        disk = FileWriteAheadLog(0, str(tmp_path / "twin.wal"))
        for wal in (mem, disk):
            wal.append(REC_PREPARE, 1, 0.1, writes={})
            wal.append(REC_PREPARE, 2, 0.2, writes={})
            wal.append(REC_COMMIT, 1, 0.3)
        assert disk.in_doubt() == mem.in_doubt() == [2]
        assert disk.decision_for(1) == mem.decision_for(1) == REC_COMMIT
        disk.close()


class TestLocalhostSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            LocalhostSpec(txns=0)
        with pytest.raises(ConfigError):
            LocalhostSpec(reads_per_txn=-1)
        with pytest.raises(ConfigError):
            LocalhostSpec(hot_fraction=1.5)
        with pytest.raises(ConfigError):
            LocalhostSpec(wall_timeout=0.0)

    def test_build_topology_shape(self):
        topo = LocalhostSpec(n_dcs=2, nodes_per_dc=3).build_topology()
        assert topo.n_nodes == 6
        assert len(topo.datacenters) == 2

    def test_sample_key_respects_hotspot(self):
        from repro.common.rng import spawn_rng

        spec = LocalhostSpec(n_keys=100, hot_keys=2, hot_fraction=1.0)
        rng = spawn_rng(5)
        keys = {spec.sample_key(rng) for _ in range(50)}
        assert keys <= {"key0", "key1"}

        uniform = LocalhostSpec(n_keys=100, hot_keys=2, hot_fraction=0.0)
        rng = spawn_rng(5)
        keys = {uniform.sample_key(rng) for _ in range(200)}
        assert len(keys) > 10  # draws cover the whole keyspace


def _smoke_spec(**overrides):
    base = dict(
        n_dcs=1,
        nodes_per_dc=3,
        replication_factor=2,
        txns=8,
        clients=2,
        writes_per_txn=2,
        reads_per_txn=1,
        n_keys=20,
        hot_keys=2,
        hot_fraction=0.5,
        seed=5,
        time_scale=0.02,
        wall_timeout=30.0,
    )
    base.update(overrides)
    return LocalhostSpec(**base)


class TestRunLocalhost:
    def test_smoke_run_completes_every_txn(self, tmp_path):
        result = run_localhost(_smoke_spec(wal_dir=str(tmp_path)))
        assert not result["timed_out"]
        assert result["outcomes"] == 8
        txn = result["txn"]
        assert txn["txns"] == 8
        assert txn["commits"] + sum(txn["aborts"].values()) == 8
        assert result["protocol_seconds"] > 0
        # Real per-node WAL files were written and carry protocol records.
        wal_files = sorted(os.listdir(tmp_path))
        assert wal_files == [f"node{i}.wal" for i in range(3)]
        assert any(os.path.getsize(tmp_path / f) > 0 for f in wal_files)

    def test_wall_timeout_reports_partial_run(self):
        # An absurdly small wall cap: the guard must fire, cancel the
        # clients and still hand back a well-formed partial result.
        result = run_localhost(
            _smoke_spec(txns=500, wall_timeout=0.05, time_scale=1.0)
        )
        assert result["timed_out"] is True
        assert result["txn"]["txns"] <= 500

    def test_crash_script_runs_to_completion(self, tmp_path):
        # Crash one replica mid-run, recover it later: the run must still
        # terminate (WAL recovery and the cooperative paths absorb it).
        result = run_localhost(
            _smoke_spec(
                wal_dir=str(tmp_path),
                txns=6,
                crashes=((0.2, 0, 1.0),),
            )
        )
        assert not result["timed_out"]
        assert result["outcomes"] == 6


class TestSimTwin:
    def test_twin_is_deterministic(self):
        spec = _smoke_spec()
        a = run_sim_twin(spec)
        b = run_sim_twin(spec)
        assert a["txn"] == b["txn"]
        assert a["stale_rate"] == b["stale_rate"]
        assert a["protocol_seconds"] == b["protocol_seconds"]

    def test_twin_completes_and_reports_same_shape(self):
        result = run_sim_twin(_smoke_spec())
        assert result["timed_out"] is False
        assert result["outcomes"] == 8
        assert result["txn"]["commits"] + sum(result["txn"]["aborts"].values()) == 8
        # Same keys as the asyncio result: xval can compare them blindly.
        aio_keys = set(run_localhost(_smoke_spec()).keys())
        assert set(result.keys()) == aio_keys


class TestXvalVerdicts:
    def test_trend_checker_flags_opposite_moves(self):
        fails = _trend_failures(
            "abort_rate",
            [0.0, 0.5, 0.95],
            [0.10, 0.40, 0.60],  # sim rises twice
            [0.12, 0.02, 0.70],  # asyncio falls on the first step
            deadband=0.05,
        )
        assert len(fails) == 1
        assert "0.00->0.50" in fails[0]

    def test_trend_checker_ignores_deadband_noise(self):
        assert (
            _trend_failures(
                "stale_rate",
                [0.0, 0.5],
                [0.10, 0.14],  # sim move within the deadband: step is flat
                [0.30, 0.10],
                deadband=0.05,
            )
            == []
        )
        assert (
            _trend_failures(
                "stale_rate",
                [0.0, 0.5],
                [0.10, 0.40],
                [0.30, 0.28],  # asyncio move within the deadband: noise
                deadband=0.05,
            )
            == []
        )

    def test_report_passes_only_when_everything_agrees(self):
        ok = XvalCheck(0.5, 0.1, 0.15, 0.0, 0.1, 5.0, 6.0, False)
        bad = XvalCheck(0.9, 0.1, 0.15, 0.0, 0.1, 5.0, 6.0, False, failures=["gap"])
        assert XvalReport([ok], 0.2, 0.25, 0.05).passed
        assert not XvalReport([ok, bad], 0.2, 0.25, 0.05).passed
        assert not XvalReport([ok], 0.2, 0.25, 0.05, trend_failures=["t"]).passed

    def test_report_to_dict_carries_per_level_metrics(self):
        check = XvalCheck(0.5, 0.1, 0.15, 0.0, 0.1, 5.0, 6.0, False)
        d = XvalReport([check], 0.2, 0.25, 0.05).to_dict()
        assert d["passed"] is True
        assert d["levels"][0]["hot_fraction"] == 0.5
        assert d["levels"][0]["aio_commit_ms"] == 6.0

    def test_cross_validate_needs_two_levels(self):
        with pytest.raises(ConfigError):
            cross_validate(hot_fractions=(0.5,))

    def test_default_spec_is_wan_and_overridable(self):
        spec = default_xval_spec()
        assert spec.n_dcs == 2
        assert spec.time_scale >= 0.2  # WAN delays must dwarf loop jitter
        assert default_xval_spec(txns=7).txns == 7

    def test_cross_validate_small_sweep(self):
        # A tiny two-level sweep end to end: both backends run, the report
        # carries one check per level. (Verdicts may legitimately vary with
        # wall-clock jitter at this size; the structure may not.)
        report = cross_validate(
            spec=_smoke_spec(n_dcs=2, nodes_per_dc=2, replication_factor=2, txns=6),
            hot_fractions=(0.0, 0.9),
        )
        assert len(report.checks) == 2
        assert [c.hot_fraction for c in report.checks] == [0.0, 0.9]
        for check in report.checks:
            assert not check.aio_timed_out
