"""Tests for the performance subsystem: registry, runner, compare, CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.common.errors import ConfigError
from repro.perf import specs
from repro.perf.compare import compare_reports, load_report
from repro.perf.runner import BENCH_SCHEMA, BenchRunner


def _tiny_spec(name="tiny-test", events=1000):
    return specs.BenchSpec(
        name=name,
        description="tiny deterministic test bench",
        fn=lambda p: int(p["events"]),
        defaults={"events": events},
        quick={"events": events // 10},
        events_unit="units",
        tags=("testonly",),
    )


@pytest.fixture
def tiny(monkeypatch):
    spec = _tiny_spec()
    monkeypatch.setitem(specs.REGISTRY, spec.name, spec)
    return spec


class TestRegistry:
    def test_builtin_registry_covers_every_layer(self):
        tags = set()
        for name in specs.names():
            tags.update(specs.get(name).tags)
        for layer in ("engine", "store", "workload", "txn", "elastic", "sweep"):
            assert layer in tags, f"no benchmark covers layer {layer!r}"

    def test_register_rejects_duplicates(self, tiny):
        with pytest.raises(ConfigError, match="already registered"):
            specs.register(_tiny_spec())

    def test_get_unknown_lists_alternatives(self):
        with pytest.raises(ConfigError, match="choose from"):
            specs.get("no-such-bench")

    def test_select_filters_by_name_and_tag(self, tiny):
        assert [s.name for s in specs.select(["tiny-te"])] == ["tiny-test"]
        assert [s.name for s in specs.select(["testonly"])] == ["tiny-test"]
        with pytest.raises(ConfigError, match="no benchmark matches"):
            specs.select(["zzz-no-match"])

    def test_resolve_params_quick_overrides_and_seed(self, tiny):
        full = tiny.resolve_params(seed=7)
        quick = tiny.resolve_params(seed=7, quick=True)
        assert full == {"events": 1000, "seed": 7}
        assert quick == {"events": 100, "seed": 7}


class TestRunner:
    def test_run_one_records_samples_and_events(self, tiny):
        record = BenchRunner(repeats=3, seed=5).run_one(tiny)
        assert record.events == 1000
        assert len(record.wall_s) == 3
        assert record.wall_best_s == min(record.wall_s)
        assert record.events_per_s > 0
        assert record.peak_rss_kb > 0

    def test_rejects_nondeterministic_bench(self, monkeypatch):
        drifting = iter([100, 101])
        spec = specs.BenchSpec(
            name="drift-test",
            description="changes its event count between repeats",
            fn=lambda p: next(drifting),
        )
        monkeypatch.setitem(specs.REGISTRY, spec.name, spec)
        with pytest.raises(ConfigError, match="non-deterministic"):
            BenchRunner(repeats=2).run_one(spec)

    def test_rejects_nondeterminism_even_from_zero_events(self, monkeypatch):
        drifting = iter([0, 50])
        spec = specs.BenchSpec(
            name="zero-drift-test",
            description="first repeat reports zero events",
            fn=lambda p: next(drifting),
        )
        monkeypatch.setitem(specs.REGISTRY, spec.name, spec)
        with pytest.raises(ConfigError, match="non-deterministic"):
            BenchRunner(repeats=2).run_one(spec)

    def test_rejects_bad_repeats(self):
        with pytest.raises(ConfigError):
            BenchRunner(repeats=0)

    def test_report_write_appends_to_trajectory(self, tiny, tmp_path):
        runner = BenchRunner(repeats=1, quick=True)
        report = runner.run(["tiny-test"])
        first = report.write(str(tmp_path))
        second = report.write(str(tmp_path))
        assert first["json"].endswith("BENCH_1.json")
        assert second["json"].endswith("BENCH_2.json")
        doc = json.loads((tmp_path / "BENCH_1.json").read_text())
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["config"]["quick"] is True
        (bench,) = doc["benches"]
        assert bench["name"] == "tiny-test"
        assert bench["events"] == 100
        assert bench["wall_best_s"] <= bench["wall_mean_s"] + 1e-12
        csv_text = (tmp_path / "BENCH_1.csv").read_text()
        assert csv_text.splitlines()[0].startswith("bench,events,unit")


class TestCompare:
    def _report(self, tiny):
        return BenchRunner(repeats=1, quick=True).run(["tiny-test"])

    def test_self_compare_passes(self, tiny):
        report = self._report(tiny)
        comparison = compare_reports(report.to_doc(), report, tolerance=0.25)
        assert comparison.ok
        assert comparison.rows[0]["verdict"] == "ok"

    def test_regression_beyond_tolerance_fails(self, tiny):
        report = self._report(tiny)
        baseline = report.to_doc()
        baseline["benches"][0]["events_per_s"] *= 10.0
        comparison = compare_reports(baseline, report, tolerance=0.25)
        assert not comparison.ok
        assert comparison.regressions == ["tiny-test"]

    def test_improvement_is_flagged_not_failed(self, tiny):
        report = self._report(tiny)
        baseline = report.to_doc()
        baseline["benches"][0]["events_per_s"] /= 10.0
        comparison = compare_reports(baseline, report, tolerance=0.25)
        assert comparison.ok
        assert comparison.rows[0]["verdict"] == "IMPROVED"

    def test_missing_bench_fails_unless_filtered(self, tiny):
        report = self._report(tiny)
        baseline = report.to_doc()
        baseline["benches"].append(dict(baseline["benches"][0], name="ghost"))
        strict = compare_reports(baseline, report, tolerance=0.25)
        assert not strict.ok and strict.missing == ["ghost"]
        filtered = compare_reports(
            baseline, report, tolerance=0.25, require_all=False
        )
        assert filtered.ok

    def test_new_bench_is_informational(self, tiny):
        report = self._report(tiny)
        comparison = compare_reports(
            {"schema": BENCH_SCHEMA, "benches": []}, report, tolerance=0.25
        )
        assert comparison.ok
        assert comparison.new == ["tiny-test"]

    def test_bad_tolerance_rejected(self, tiny):
        report = self._report(tiny)
        with pytest.raises(ConfigError, match="tolerance"):
            compare_reports(report.to_doc(), report, tolerance=1.5)

    def test_load_report_validates(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            load_report(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_report(str(bad))
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "other/9", "benches": []}))
        with pytest.raises(ConfigError, match="schema"):
            load_report(str(wrong))


class TestBenchCli:
    def test_list_benches(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "engine-events" in out and "replica-lookup" in out

    def test_quick_filtered_run_writes_artifacts(self, tiny, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--quick",
                "--repeat",
                "1",
                "--filter",
                "tiny-test",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        doc = json.loads((tmp_path / "BENCH_1.json").read_text())
        assert doc["schema"] == BENCH_SCHEMA
        assert "BENCH_1.json" in capsys.readouterr().out

    def test_baseline_write_and_compare_pass(self, tiny, tmp_path, capsys):
        baseline = tmp_path / "base" / "baseline.json"
        args = [
            "bench", "--quick", "--repeat", "1",
            "--filter", "tiny-test", "--out", str(tmp_path),
        ]
        assert main(args + ["--baseline", str(baseline)]) == 0
        assert baseline.exists()
        assert main(args + ["--compare", str(baseline)]) == 0
        assert "perf gate ok" in capsys.readouterr().out

    def test_compare_regression_exits_nonzero(self, tiny, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        args = [
            "bench", "--quick", "--repeat", "1",
            "--filter", "tiny-test", "--out", str(tmp_path),
        ]
        assert main(args + ["--baseline", str(baseline)]) == 0
        doc = json.loads(baseline.read_text())
        doc["benches"][0]["events_per_s"] *= 10.0
        baseline.write_text(json.dumps(doc))
        with pytest.raises(SystemExit) as exc:
            main(args + ["--compare", str(baseline)])
        assert exc.value.code == 1
        assert "FAILED" in capsys.readouterr().err

    def test_unknown_filter_is_config_error(self, tmp_path):
        code = main(
            ["bench", "--quick", "--repeat", "1",
             "--filter", "zzz-no-match", "--out", str(tmp_path)]
        )
        assert code == 2

    def test_missing_baseline_is_config_error(self, tiny, tmp_path):
        code = main(
            ["bench", "--quick", "--repeat", "1", "--filter", "tiny-test",
             "--out", str(tmp_path), "--compare", str(tmp_path / "nope.json")]
        )
        assert code == 2
