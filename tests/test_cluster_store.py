"""Tests for versions, nodes, coordinator paths and the store facade."""

import pytest

from repro.common.errors import ConfigError
from repro.cluster.consistency import ConsistencyLevel
from repro.cluster.node import ServiceModel, StorageNode
from repro.cluster.store import ReplicatedStore, StoreConfig
from repro.cluster.versions import NONE_VERSION, Version, max_version


class TestVersion:
    def test_ordering_by_timestamp(self):
        old = Version(1.0, 1, 100)
        new = Version(2.0, 2, 100)
        assert new.newer_than(old)
        assert not old.newer_than(new)

    def test_tie_break_by_write_id(self):
        a = Version(1.0, 1, 100)
        b = Version(1.0, 2, 100)
        assert b.newer_than(a)

    def test_equality_and_hash(self):
        a = Version(1.0, 1, 100)
        b = Version(1.0, 1, 999)  # size not part of identity
        assert a == b
        assert hash(a) == hash(b)
        assert a != "not a version"

    def test_none_version_older_than_everything(self):
        v = Version(0.0, 0, 1)
        assert v.newer_than(NONE_VERSION)

    def test_max_version(self):
        a = Version(1.0, 1, 1)
        b = Version(2.0, 2, 1)
        assert max_version(a, b) is b
        assert max_version(None, a) is a
        assert max_version(a, None) is a
        assert max_version(None, None) is None


class TestServiceModel:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ServiceModel(read_base=-1.0)

    def test_sampling_bounds(self):
        import numpy as np

        m = ServiceModel(read_base=0.001, read_jitter=0.002)
        rng = np.random.default_rng(0)
        xs = [m.sample_read(rng) for _ in range(100)]
        assert all(x >= 0.001 for x in xs)
        assert m.mean_read() == pytest.approx(0.003)
        assert m.mean_write() == pytest.approx(0.0005)

    def test_zero_jitter_deterministic(self):
        import numpy as np

        m = ServiceModel(read_base=0.002, read_jitter=0.0, write_base=0.001, write_jitter=0.0)
        rng = np.random.default_rng(0)
        assert m.sample_read(rng) == 0.002
        assert m.sample_write(rng) == 0.001


class TestStorageNode:
    def test_write_then_read(self, sim):
        node = StorageNode(sim, 0, rng=0)
        v = Version(1.0, 1, 100)
        got = []
        node.handle_write("k", v, lambda nid, k, ver: got.append(("applied", nid)))
        sim.run()
        assert got == [("applied", 0)]
        assert node.data["k"] is v
        node.handle_read("k", lambda nid, k, ver: got.append(ver))
        sim.run()
        assert got[-1] is v

    def test_lww_reconciliation(self, sim):
        node = StorageNode(sim, 0, rng=0)
        newer = Version(2.0, 2, 100)
        older = Version(1.0, 1, 100)
        node.handle_write("k", newer, lambda *a: None)
        sim.run()
        node.handle_write("k", older, lambda *a: None)
        sim.run()
        assert node.data["k"] is newer  # older write lost the race but applied

    def test_down_node_drops_requests(self, sim):
        node = StorageNode(sim, 0, rng=0)
        node.crash()
        got = []
        node.handle_write("k", Version(1.0, 1, 1), lambda *a: got.append("w"))
        node.handle_read("k", lambda *a: got.append("r"))
        sim.run()
        assert got == []
        assert node.dropped_while_down == 2

    def test_recover_keeps_data(self, sim):
        node = StorageNode(sim, 0, rng=0)
        v = Version(1.0, 1, 1)
        node.handle_write("k", v, lambda *a: None)
        sim.run()
        node.crash()
        node.recover()
        assert node.data["k"] is v

    def test_read_missing_key_returns_none(self, sim):
        node = StorageNode(sim, 0, rng=0)
        got = []
        node.handle_read("nope", lambda nid, k, ver: got.append(ver))
        sim.run()
        assert got == [None]


def run_ops(store, ops):
    """Schedule (t, kind, key, level) ops and run to completion."""
    results = []
    for t, kind, key, level in ops:
        if kind == "w":
            store.sim.schedule_at(t, store.write, key, level, results.append)
        else:
            store.sim.schedule_at(t, store.read, key, level, results.append)
    store.sim.run()
    return results


class TestReplicatedStore:
    def test_write_read_roundtrip(self, store):
        results = run_ops(
            store, [(0.0, "w", "k", 1), (1.0, "r", "k", ConsistencyLevel.ALL)]
        )
        assert all(r.ok for r in results)
        read = results[1]
        assert read.kind == "read"
        assert read.stale is False
        assert read.value_size == store.default_value_size

    def test_read_before_any_write_is_fresh(self, store):
        results = run_ops(store, [(0.0, "r", "nokey", 1)])
        assert results[0].ok
        assert results[0].stale is False

    def test_quorum_read_after_quorum_write_never_stale(self, store):
        ops = []
        t = 0.0
        for i in range(50):
            t += 0.002
            ops.append((t, "w", f"k{i % 5}", ConsistencyLevel.QUORUM))
            t += 0.0001  # read races the next write closely
            ops.append((t, "r", f"k{i % 5}", ConsistencyLevel.QUORUM))
        run_ops(store, ops)
        assert store.oracle.stale_reads == 0

    def test_one_read_can_be_stale_across_wan(self, store):
        # hammer one key at level ONE: WAN replicas lag 10ms
        ops = []
        t = 0.0
        for i in range(300):
            t += 0.001
            ops.append((t, "w", "hot", 1))
            ops.append((t + 0.0005, "r", "hot", 1))
        run_ops(store, ops)
        assert store.oracle.stale_rate_strict > 0.0

    def test_all_write_then_one_read_fresh(self, store):
        # r + w > RF structurally fresh (committed definition)
        ops = []
        t = 0.0
        for i in range(100):
            t += 0.05
            ops.append((t, "w", "k", ConsistencyLevel.ALL))
            ops.append((t + 0.045, "r", "k", 1))  # well after propagation
        run_ops(store, ops)
        assert store.oracle.stale_reads == 0

    def test_unavailable_write(self, store):
        for node in store.nodes:
            node.crash()
        results = run_ops(store, [(0.0, "w", "k", 1)])
        assert not results[0].ok
        assert results[0].error == "unavailable"
        assert store.failures.get("write_unavailable") == 1

    def test_unavailable_read(self, store):
        replicas = store.strategy.replicas("k", store.ring, store.topology)
        for r in replicas:
            store.nodes[r].crash()
        results = run_ops(store, [(0.0, "r", "k", ConsistencyLevel.ALL)])
        assert not results[0].ok
        assert results[0].error == "unavailable"

    def test_partial_failure_write_succeeds_at_one(self, store):
        replicas = store.strategy.replicas("k", store.ring, store.topology)
        store.nodes[replicas[0]].crash()
        results = run_ops(store, [(0.0, "w", "k", 1)])
        assert results[0].ok

    def test_preload_installs_everywhere(self, store):
        store.preload(["a", "b"], 500)
        for key in ("a", "b"):
            for r in store.strategy.replicas(key, store.ring, store.topology):
                assert key in store.nodes[r].data
                assert store.nodes[r].data[key].size == 500
        assert set(store.written_keys()) == {"a", "b"}

    def test_preloaded_reads_fresh(self, store):
        store.preload(["a"], 100)
        results = run_ops(store, [(0.0, "r", "a", 1)])
        assert results[0].ok and results[0].stale is False

    def test_reset_metrics_keeps_data(self, store):
        store.preload(["a"], 100)
        run_ops(store, [(0.0, "w", "a", 1), (0.5, "r", "a", 1)])
        assert store.ops_completed() == 2
        store.reset_metrics()
        assert store.ops_completed() == 0
        assert store.oracle.reads == 0
        assert "a" in store.nodes[
            store.strategy.replicas("a", store.ring, store.topology)[0]
        ].data

    def test_listener_called(self, store):
        seen = []

        class Listener:
            def on_op_complete(self, result):
                seen.append(result.kind)

        store.add_listener(Listener())
        run_ops(store, [(0.0, "w", "k", 1), (0.5, "r", "k", 1)])
        assert seen == ["write", "read"]

    def test_propagation_listener(self, store):
        propagated = []

        class Listener:
            def on_op_complete(self, result):
                pass

            def on_write_propagated(self, result):
                propagated.append(len(result.ack_delays))

        store.add_listener(Listener())
        run_ops(store, [(0.0, "w", "k", 1)])
        assert propagated == [3]  # all RF=3 replicas acked

    def test_summary_keys(self, store):
        run_ops(store, [(0.0, "w", "k", 1), (0.5, "r", "k", 1)])
        s = store.summary()
        for key in (
            "reads_ok",
            "writes_ok",
            "stale_rate",
            "read_latency_mean",
            "billable_bytes",
        ):
            assert key in s
        assert s["reads_ok"] == 1 and s["writes_ok"] == 1

    def test_rf_exceeding_nodes_rejected(self, sim, small_topology):
        from repro.cluster.replication import SimpleStrategy

        with pytest.raises(ConfigError):
            ReplicatedStore(
                sim, small_topology, strategy=SimpleStrategy(rf=6)
            )

    def test_coordinator_pinning(self, store):
        results = []
        store.sim.schedule_at(0.0, store.write, "k", 1, results.append, None, 0)
        store.sim.run()
        assert results[0].ok

    def test_read_repair_patches_lagging_replica(self, sim, small_topology):
        from repro.cluster.replication import NetworkTopologyStrategy

        st = ReplicatedStore(
            sim,
            small_topology,
            strategy=NetworkTopologyStrategy({0: 2, 1: 1}),
            config=StoreConfig(seed=3, read_repair_chance=1.0),
        )
        st.preload(["k"], 100)
        results = run_ops(
            st,
            [(0.0, "w", "k", 1)]
            + [(0.5 + i * 0.01, "r", "k", 1) for i in range(20)],
        )
        sim.run(until=sim.now + 1.0)
        # after repair everything converges to the newest version
        versions = {
            st.nodes[r].data["k"].write_id
            for r in st.strategy.replicas("k", st.ring, st.topology)
        }
        assert len(versions) == 1
