"""Tests for the partitioner, token ring and replication strategies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError, ConsistencyError
from repro.cluster.partitioner import TOKEN_SPACE, token_of
from repro.cluster.replication import NetworkTopologyStrategy, SimpleStrategy
from repro.cluster.ring import TokenRing
from repro.net.topology import Topology


class TestPartitioner:
    def test_deterministic(self):
        assert token_of("user1") == token_of("user1")

    def test_range(self):
        for key in ("a", "user123", "x" * 100, ""):
            assert 0 <= token_of(key) < TOKEN_SPACE

    def test_distinct_keys_distinct_tokens(self):
        tokens = {token_of(f"user{i}") for i in range(1000)}
        assert len(tokens) == 1000  # md5 collisions would be astronomical

    @given(st.text(max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_property_stable_and_in_range(self, key):
        t = token_of(key)
        assert t == token_of(key)
        assert 0 <= t < TOKEN_SPACE


class TestTokenRing:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TokenRing(0)
        with pytest.raises(ConfigError):
            TokenRing(3, vnodes=0)

    def test_walk_yields_distinct_nodes(self):
        ring = TokenRing(6, vnodes=8)
        walked = list(ring.walk_key("user42"))
        assert sorted(walked) == list(range(6))  # all nodes, each once

    def test_walk_deterministic(self):
        ring = TokenRing(6, vnodes=8)
        assert list(ring.walk_key("k")) == list(ring.walk_key("k"))

    def test_two_rings_agree(self):
        # layout depends only on (n_nodes, vnodes), never on instance state
        a = TokenRing(5, vnodes=16)
        b = TokenRing(5, vnodes=16)
        for i in range(50):
            key = f"user{i}"
            assert list(a.walk_key(key)) == list(b.walk_key(key))

    def test_primary_matches_walk_head(self):
        ring = TokenRing(4, vnodes=16)
        for i in range(30):
            key = f"user{i}"
            assert ring.primary_for_token(token_of(key)) == next(ring.walk_key(key))

    def test_balance(self):
        ring = TokenRing(8, vnodes=32)
        fractions = ring.ownership_fractions(sample=8000)
        assert fractions.sum() == pytest.approx(1.0)
        # each of 8 nodes should own 12.5% +- a few points
        assert fractions.min() > 0.04
        assert fractions.max() < 0.25

    def test_single_node_owns_everything(self):
        ring = TokenRing(1, vnodes=4)
        assert ring.primary_for_token(123456) == 0

    @given(st.integers(0, TOKEN_SPACE - 1))
    @settings(max_examples=50, deadline=None)
    def test_property_walk_complete(self, token):
        ring = TokenRing(5, vnodes=4)
        assert sorted(ring.walk(token)) == list(range(5))


class TestBoundedMovement:
    """The consistent-hashing contract: membership changes move O(1/N) keys.

    Adding one node to an N-node ring remaps about 1/(N+1) of the keys, and
    *never* remaps a key between two surviving nodes -- movement only flows
    toward the joiner (and, on removal, only away from the leaver).
    """

    SAMPLE = 20_000

    @pytest.mark.parametrize("n_nodes", [4, 8, 16])
    def test_join_moves_about_one_over_n_plus_one(self, n_nodes):
        before = TokenRing(n_nodes, vnodes=32)
        after = TokenRing(n_nodes, vnodes=32)
        after.add_node(n_nodes)
        moved = 0
        for i in range(self.SAMPLE):
            t = token_of(f"user{i}")
            a, b = before.primary_for_token(t), after.primary_for_token(t)
            if a != b:
                # a remap between two survivors would double data motion
                assert b == n_nodes, f"key moved {a} -> {b}, not to the joiner"
                moved += 1
        expected = 1.0 / (n_nodes + 1)
        # vnode placement is random-ish; allow a generous band around 1/(N+1)
        assert 0.4 * expected < moved / self.SAMPLE < 2.0 * expected

    @pytest.mark.parametrize("n_nodes", [4, 8, 16])
    def test_leave_moves_only_the_leavers_keys(self, n_nodes):
        before = TokenRing(n_nodes, vnodes=32)
        after = TokenRing(n_nodes, vnodes=32)
        leaver = n_nodes // 2
        after.remove_node(leaver)
        moved = 0
        for i in range(self.SAMPLE):
            t = token_of(f"user{i}")
            a, b = before.primary_for_token(t), after.primary_for_token(t)
            if a != b:
                assert a == leaver, f"key moved {a} -> {b}, not from the leaver"
                moved += 1
        expected = 1.0 / n_nodes
        assert 0.4 * expected < moved / self.SAMPLE < 2.0 * expected


class TestSimpleStrategy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SimpleStrategy(0)

    def test_replica_count_and_distinctness(self, small_topology):
        ring = TokenRing(small_topology.n_nodes, vnodes=8)
        strat = SimpleStrategy(rf=3)
        for i in range(40):
            reps = strat.replicas(f"user{i}", ring, small_topology)
            assert len(reps) == 3
            assert len(set(reps)) == 3

    def test_rf_exceeding_cluster(self, small_topology):
        ring = TokenRing(small_topology.n_nodes, vnodes=8)
        strat = SimpleStrategy(rf=10)
        with pytest.raises(ConsistencyError):
            strat.replicas("k", ring, small_topology)

    def test_caching_returns_same_list(self, small_topology):
        ring = TokenRing(small_topology.n_nodes, vnodes=8)
        strat = SimpleStrategy(rf=2)
        assert strat.replicas("k", ring, small_topology) is strat.replicas(
            "k", ring, small_topology
        )

    def test_replicas_by_dc_totals(self, small_topology):
        ring = TokenRing(small_topology.n_nodes, vnodes=8)
        strat = SimpleStrategy(rf=3)
        by_dc = strat.replicas_by_dc("user7", ring, small_topology)
        assert sum(by_dc.values()) == 3


class TestNetworkTopologyStrategy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            NetworkTopologyStrategy({})
        with pytest.raises(ConfigError):
            NetworkTopologyStrategy({0: -1})
        with pytest.raises(ConfigError):
            NetworkTopologyStrategy({0: 0})

    def test_per_dc_counts_honored(self, small_topology):
        ring = TokenRing(small_topology.n_nodes, vnodes=8)
        strat = NetworkTopologyStrategy({0: 2, 1: 1})
        for i in range(40):
            key = f"user{i}"
            by_dc = strat.replicas_by_dc(key, ring, small_topology)
            assert by_dc == {0: 2, 1: 1}
            reps = strat.replicas(key, ring, small_topology)
            assert len(reps) == 3 and len(set(reps)) == 3

    def test_zero_count_dcs_dropped(self):
        strat = NetworkTopologyStrategy({0: 2, 1: 0})
        assert strat.rf_per_dc == {0: 2}
        assert strat.rf_total == 2

    def test_unknown_dc_rejected(self, small_topology):
        ring = TokenRing(small_topology.n_nodes, vnodes=8)
        strat = NetworkTopologyStrategy({5: 1})
        with pytest.raises(ConfigError):
            strat.replicas("k", ring, small_topology)

    def test_dc_overflow_rejected(self, small_topology):
        ring = TokenRing(small_topology.n_nodes, vnodes=8)
        strat = NetworkTopologyStrategy({1: 3})  # south has only 2 nodes
        with pytest.raises(ConsistencyError):
            strat.replicas("k", ring, small_topology)

    def test_deterministic_across_instances(self, small_topology):
        ring = TokenRing(small_topology.n_nodes, vnodes=8)
        a = NetworkTopologyStrategy({0: 2, 1: 1})
        b = NetworkTopologyStrategy({0: 2, 1: 1})
        for i in range(20):
            key = f"user{i}"
            assert a.replicas(key, ring, small_topology) == b.replicas(
                key, ring, small_topology
            )
