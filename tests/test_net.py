"""Tests for the network substrate: latency models, topology, transport."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.net.latency import (
    EmpiricalLatency,
    FixedLatency,
    LogNormalLatency,
    UniformLatency,
)
from repro.net.topology import Datacenter, LinkClass, Topology
from repro.net.transport import Network, TrafficMatrix
from repro.simcore.simulator import Simulator


class TestLatencyModels:
    def test_fixed(self):
        m = FixedLatency(0.01)
        rng = np.random.default_rng(0)
        assert m.sample(rng) == 0.01
        assert m.mean() == 0.01
        assert np.all(m.sample_batch(rng, 5) == 0.01)
        with pytest.raises(ConfigError):
            FixedLatency(-1.0)

    def test_uniform(self):
        m = UniformLatency(0.01, 0.02)
        rng = np.random.default_rng(0)
        xs = m.sample_batch(rng, 1000)
        assert np.all((xs >= 0.01) & (xs <= 0.02))
        assert m.mean() == pytest.approx(0.015)
        with pytest.raises(ConfigError):
            UniformLatency(0.02, 0.01)

    def test_lognormal_from_mean_cv(self):
        m = LogNormalLatency.from_mean_cv(0.010, cv=0.5)
        rng = np.random.default_rng(1)
        xs = m.sample_batch(rng, 100_000)
        assert xs.mean() == pytest.approx(0.010, rel=0.03)
        assert m.mean() == pytest.approx(0.010, rel=1e-9)
        assert np.all(xs >= m.floor)

    def test_lognormal_floor_fraction(self):
        m = LogNormalLatency.from_mean_cv(0.010, cv=0.5, floor_fraction=0.8)
        assert m.floor == pytest.approx(0.008)
        rng = np.random.default_rng(2)
        assert np.all(m.sample_batch(rng, 1000) >= 0.008)

    def test_lognormal_validation(self):
        with pytest.raises(ConfigError):
            LogNormalLatency.from_mean_cv(-1.0)
        with pytest.raises(ConfigError):
            LogNormalLatency.from_mean_cv(1.0, cv=0.0)
        with pytest.raises(ConfigError):
            LogNormalLatency.from_mean_cv(1.0, floor_fraction=1.0)
        with pytest.raises(ConfigError):
            LogNormalLatency(0.0, sigma=-1.0)

    def test_empirical(self):
        m = EmpiricalLatency([0.01, 0.02, 0.03])
        rng = np.random.default_rng(0)
        xs = m.sample_batch(rng, 500)
        assert set(np.round(xs, 6)) <= {0.01, 0.02, 0.03}
        assert m.mean() == pytest.approx(0.02)
        with pytest.raises(ConfigError):
            EmpiricalLatency([])
        with pytest.raises(ConfigError):
            EmpiricalLatency([-0.1])

    @given(st.floats(1e-4, 1.0), st.floats(0.1, 2.0))
    @settings(max_examples=30, deadline=None)
    def test_property_lognormal_mean_consistent(self, mean, cv):
        m = LogNormalLatency.from_mean_cv(mean, cv)
        assert m.mean() == pytest.approx(mean, rel=1e-6)


class TestTopology:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Topology([], [])
        with pytest.raises(ConfigError):
            Topology([Datacenter("a", "r")], [1, 2])
        with pytest.raises(ConfigError):
            Topology(
                [Datacenter("a", "r"), Datacenter("a", "r")], [1, 1]
            )  # duplicate names
        with pytest.raises(ConfigError):
            Topology([Datacenter("a", "r")], [0])

    def test_node_placement(self, small_topology):
        topo = small_topology
        assert topo.n_nodes == 5
        assert [topo.dc_of(i) for i in range(5)] == [0, 0, 0, 1, 1]
        assert topo.nodes_in_dc(0) == [0, 1, 2]
        assert topo.nodes_in_dc(1) == [3, 4]
        assert topo.dc_name_of(4) == "south"

    def test_link_classes(self, small_topology, az_topology):
        assert small_topology.link_class(0, 0) is LinkClass.LOCAL
        assert small_topology.link_class(0, 1) is LinkClass.INTRA_DC
        assert small_topology.link_class(0, 3) is LinkClass.INTER_REGION
        assert az_topology.link_class(0, 3) is LinkClass.INTER_AZ

    def test_latency_model_lookup(self, small_topology):
        assert small_topology.latency_model(0, 3).mean() == pytest.approx(0.010)
        assert small_topology.latency_model(0, 1).mean() == pytest.approx(0.0002)

    def test_mean_wan_delay(self, small_topology, az_topology):
        assert small_topology.mean_wan_delay() == pytest.approx(0.010)
        assert az_topology.mean_wan_delay() == pytest.approx(0.001)
        single = Topology([Datacenter("one", "r")], [3])
        assert single.mean_wan_delay() == single.latency_models[LinkClass.INTRA_DC].mean()


class TestTrafficMatrix:
    def test_record_and_totals(self):
        t = TrafficMatrix()
        t.record(LinkClass.INTRA_DC, 100)
        t.record(LinkClass.INTER_AZ, 50)
        t.record(LinkClass.INTER_REGION, 25)
        assert t.total_bytes() == 175
        assert t.billable_bytes() == 75
        assert t.messages[LinkClass.INTRA_DC] == 1

    def test_snapshot_delta(self):
        t = TrafficMatrix()
        t.record(LinkClass.INTER_AZ, 10)
        snap = t.snapshot()
        t.record(LinkClass.INTER_AZ, 30)
        d = t.delta(snap)
        assert d.bytes[LinkClass.INTER_AZ] == 30
        assert d.messages[LinkClass.INTER_AZ] == 1
        # snapshot unaffected
        assert snap.bytes[LinkClass.INTER_AZ] == 10


class TestNetwork:
    def _net(self, topo):
        sim = Simulator()
        return sim, Network(sim, topo, rng=0)

    def test_delivery_and_accounting(self, small_topology):
        sim, net = self._net(small_topology)
        got = []
        delay = net.send(0, 3, 500, got.append, "msg")
        assert delay == pytest.approx(0.010)
        assert got == []  # not yet delivered
        sim.run()
        assert got == ["msg"]
        assert net.traffic.bytes[LinkClass.INTER_REGION] == 500

    def test_local_messages_counted_but_free_class(self, small_topology):
        sim, net = self._net(small_topology)
        net.send(2, 2, 100, lambda: None)
        assert net.traffic.bytes[LinkClass.LOCAL] == 100
        assert net.traffic.billable_bytes() == 0

    def test_partition_drops(self, small_topology):
        sim, net = self._net(small_topology)
        net.partition_dcs(0, 1)
        got = []
        assert net.send(0, 3, 100, got.append, "x") is None
        sim.run()
        assert got == []
        assert net.dropped == 1
        # intra-DC unaffected
        assert net.send(0, 1, 100, got.append, "y") is not None

    def test_partition_is_bidirectional_and_healable(self, small_topology):
        sim, net = self._net(small_topology)
        net.partition_dcs(0, 1)
        assert net.is_partitioned(3, 0)
        net.heal_partition(1, 0)
        assert not net.is_partitioned(0, 3)

    def test_heal_all(self, small_topology):
        sim, net = self._net(small_topology)
        net.partition_dcs(0, 1)
        net.heal_all()
        assert not net.is_partitioned(0, 3)

    def test_self_partition_rejected(self, small_topology):
        _, net = self._net(small_topology)
        with pytest.raises(ConfigError):
            net.partition_dcs(0, 0)

    def test_extra_delay(self, small_topology):
        sim, net = self._net(small_topology)
        net.set_extra_delay(0.5)
        d = net.send(0, 3, 10, lambda: None)
        assert d == pytest.approx(0.510)
        # local messages unaffected
        d_local = net.send(0, 0, 10, lambda: None)
        assert d_local == pytest.approx(0.0)
        with pytest.raises(ConfigError):
            net.set_extra_delay(-1.0)

    def test_sample_delay_no_traffic(self, small_topology):
        _, net = self._net(small_topology)
        before = net.traffic.total_bytes()
        net.sample_delay(0, 3)
        assert net.traffic.total_bytes() == before
