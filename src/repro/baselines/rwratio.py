"""Wang-style read/write-ratio adaptive consistency (GCC'10), as a baseline.

Their mechanism: compare the read rate to the write rate; when the ratio
exceeds a static threshold the system serves reads with eventual
consistency (reads dominate, so cheap reads pay off), otherwise it uses
strong consistency. The paper's §II critique -- "the main limitation of
this work is the arbitrary choice of a static threshold" -- shows up
directly in the benchmarks: no single threshold tracks workloads whose
staleness is driven by propagation time and key skew rather than by the
r/w ratio.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import ConfigError
from repro.cluster.consistency import ConsistencyLevel, LevelSpec
from repro.monitor.collector import ClusterMonitor

__all__ = ["ReadWriteRatioPolicy"]


class ReadWriteRatioPolicy:
    """Static-threshold read/write-ratio switching.

    Parameters
    ----------
    monitor:
        Cluster monitor attached to the target store.
    threshold:
        When ``read_rate / write_rate`` exceeds this, reads go eventual
        (ONE); otherwise reads go strong (QUORUM). Writes mirror reads, as
        in the original primary/secondary design's strong mode.
    """

    def __init__(
        self,
        monitor: ClusterMonitor,
        threshold: float = 4.0,
        update_interval: float = 1.0,
    ):
        if threshold <= 0:
            raise ConfigError(f"threshold must be positive, got {threshold}")
        self.monitor = monitor
        self.threshold = float(threshold)
        self.update_interval = float(update_interval)
        self._weak = True
        self._last_update = -float("inf")
        self.decisions: List[Tuple[float, bool, float]] = []

    @property
    def name(self) -> str:
        return f"rwratio({self.threshold:g})"

    def _refresh(self, now: float) -> None:
        self._last_update = now
        rr = self.monitor.read_rate.rate(now)
        wr = self.monitor.write_rate.rate(now)
        ratio = rr / wr if wr > 0 else float("inf")
        self._weak = ratio > self.threshold
        self.decisions.append((now, self._weak, ratio))

    def read_level(self, now: float) -> LevelSpec:
        if now - self._last_update >= self.update_interval:
            self._refresh(now)
        return ConsistencyLevel.ONE if self._weak else ConsistencyLevel.QUORUM

    def write_level(self, now: float) -> LevelSpec:
        if now - self._last_update >= self.update_interval:
            self._refresh(now)
        return ConsistencyLevel.ONE if self._weak else ConsistencyLevel.QUORUM

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReadWriteRatioPolicy(threshold={self.threshold}, weak={self._weak})"
