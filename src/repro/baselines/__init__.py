"""Related-work baselines (paper §II), for head-to-head comparison.

- :mod:`repro.baselines.rationing` -- Kraska et al., *Consistency Rationing
  in the Cloud* (VLDB'09): switch between strong and weak consistency by
  thresholding the estimated probability of an update conflict;
- :mod:`repro.baselines.rwratio` -- Wang et al. (GCC'10): switch between
  strong and eventual consistency by comparing the read/write rate ratio to
  a static threshold.

Both are implemented as :class:`~repro.policy.ConsistencyPolicy` objects so
every experiment can run them in the same harness as Harmony/Bismar; the
paper's §II critiques (conflict probability ignores staleness; arbitrary
static threshold) are directly observable in the results.
"""

from repro.baselines.rationing import ConsistencyRationingPolicy
from repro.baselines.rwratio import ReadWriteRatioPolicy

__all__ = ["ConsistencyRationingPolicy", "ReadWriteRatioPolicy"]
