"""Kraska-style consistency rationing (VLDB'09), as a policy baseline.

Their model: inconsistency arises from *update conflicts*. With writes to a
record arriving at Poisson rate ``lambda_w`` and taking a window ``W`` to
settle, the probability that another update lands inside a given update's
window is ``P_conflict = 1 - exp(-lambda_w * W)``. When the (workload-wide,
hot-key-weighted) conflict probability exceeds a threshold, the policy runs
*serializability-like* strong consistency (QUORUM/QUORUM here -- the
strongest sensible per-op Cassandra analogue); otherwise it runs weak
session-style consistency (ONE/ONE).

The paper's §II critique is visible by construction: the switch ignores
read-side staleness entirely (a read-heavy workload with modest writes
keeps conflict probability low and stays weak no matter how stale reads
get), and the threshold prices pending-update queues rather than the
application's tolerated stale rate.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.common.errors import ConfigError
from repro.cluster.consistency import ConsistencyLevel, LevelSpec
from repro.monitor.collector import ClusterMonitor

__all__ = ["ConsistencyRationingPolicy"]


class ConsistencyRationingPolicy:
    """Conflict-probability-thresholded strong/weak switching.

    Parameters
    ----------
    monitor:
        Cluster monitor attached to the target store.
    threshold:
        Conflict probability above which the policy goes strong.
    conflict_window:
        The settle window ``W`` (defaults to the monitor's observed full
        propagation proxy, falling back to this value before warm).
    """

    def __init__(
        self,
        monitor: ClusterMonitor,
        threshold: float = 0.01,
        conflict_window: float = 0.05,
        update_interval: float = 1.0,
    ):
        if not (0.0 <= threshold <= 1.0):
            raise ConfigError(f"threshold must be in [0,1], got {threshold}")
        if conflict_window <= 0:
            raise ConfigError(f"conflict_window must be positive, got {conflict_window}")
        self.monitor = monitor
        self.threshold = float(threshold)
        self.conflict_window = float(conflict_window)
        self.update_interval = float(update_interval)
        self._strong = False
        self._last_update = -float("inf")
        self.decisions: List[Tuple[float, bool, float]] = []

    @property
    def name(self) -> str:
        return f"rationing({self.threshold:g})"

    def conflict_probability(self, now: float) -> float:
        """Hot-key-weighted update-conflict probability estimate."""
        write_rate = self.monitor.write_rate.rate(now)
        if write_rate <= 0:
            return 0.0
        ranks = self.monitor.ack_rank_means(recent=True)
        window = ranks[-1] if ranks and ranks[-1] > 0 else self.conflict_window
        # Weight per-key conflict probability by the key's write share: the
        # probability that a random update conflicts with a concurrent one.
        shares = self.monitor.keys.write_shares()
        if not shares:
            lam = write_rate
            return 1.0 - math.exp(-lam * window)
        acc = 0.0
        for share in shares.values():
            lam_key = write_rate * share
            acc += share * (1.0 - math.exp(-lam_key * window))
        return acc

    def _refresh(self, now: float) -> None:
        self._last_update = now
        p = self.conflict_probability(now)
        self._strong = p > self.threshold
        self.decisions.append((now, self._strong, p))

    def read_level(self, now: float) -> LevelSpec:
        if now - self._last_update >= self.update_interval:
            self._refresh(now)
        return ConsistencyLevel.QUORUM if self._strong else ConsistencyLevel.ONE

    def write_level(self, now: float) -> LevelSpec:
        if now - self._last_update >= self.update_interval:
            self._refresh(now)
        return ConsistencyLevel.QUORUM if self._strong else ConsistencyLevel.ONE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConsistencyRationingPolicy(threshold={self.threshold}, strong={self._strong})"
