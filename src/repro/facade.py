"""One front door for every experiment run: ``repro.run(RunSpec)``.

Historically the harness grew three parallel entry points --
``deploy_and_run`` (plain single-op workloads),
``deploy_and_run_txn`` (multi-key transactions) and
``deploy_and_run_elastic`` (capacity-changing deployments) -- whose
signatures drifted apart one keyword at a time. :class:`RunSpec` is the
union of those knobs as one keyword-only declarative spec, and
:func:`run` is the single dispatcher: the *shape* of the spec (which of
``workload`` / ``txn_workload`` / ``elastic`` is set) picks the harness,
and the ``backend`` field picks the execution engine:

- ``backend="sim"`` (default): the deterministic discrete-event
  simulator. Bit-for-bit reproducible; this is what every result table
  in the repository is built from.
- ``backend="asyncio"``: the localhost runtime
  (:mod:`repro.runtime.localhost`) -- the *same* transaction-protocol
  classes on real asyncio timers, a JSON wire codec and file-backed
  WALs. Wall-clock, hence not deterministic; supported for
  transactional workloads, and cross-validated against the simulator by
  ``repro xval`` (:mod:`repro.runtime.xval`).

The three old names still work as thin wrappers that emit a
:class:`DeprecationWarning`; in-repo code calls this facade.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple, Union

from repro.common.errors import ConfigError
from repro.elastic.runner import ElasticRunOutcome, ElasticSpec, _deploy_and_run_elastic
from repro.experiments.platforms import Platform
from repro.experiments.runner import (
    FailureScript,
    PolicyFactory,
    RunOutcome,
    _deploy_and_run,
)
from repro.obs.recorder import ObsConfig
from repro.runtime import BACKENDS
from repro.txn.api import TxnConfig
from repro.txn.runner import TxnRunOutcome, _deploy_and_run_txn
from repro.workload.workloads import TxnWorkloadSpec, WorkloadSpec

if TYPE_CHECKING:  # localhost imports are deferred (they pull asyncio/tempfile)
    from repro.runtime.localhost import LocalhostSpec

__all__ = ["RunSpec", "LocalhostRunOutcome", "AnyRunOutcome", "run"]


@dataclass
class LocalhostRunOutcome:
    """What one asyncio-backend run produced.

    The localhost runtime reports the protocol surface (the
    ``txn_summary()`` block, oracle staleness, WAL directory) rather
    than a billed :class:`~repro.workload.client.RunReport` -- wall-clock
    runs are not priced, and single-op latency modelling is sim-only.
    """

    #: the raw result dict from :func:`repro.runtime.localhost.run_localhost`.
    result: Dict[str, Any]
    #: the fully resolved spec the run executed (auto-derived or explicit).
    spec: "LocalhostSpec"

    @property
    def txn(self) -> Dict[str, Any]:
        """The transaction summary block (commit/abort counts, latency)."""
        return self.result["txn"]

    @property
    def stale_rate(self) -> float:
        return float(self.result["stale_rate"])

    @property
    def timed_out(self) -> bool:
        """True if the wall-clock guard expired before all txns finished."""
        return bool(self.result["timed_out"])


AnyRunOutcome = Union[
    RunOutcome, TxnRunOutcome, ElasticRunOutcome, LocalhostRunOutcome
]


@dataclass(kw_only=True)
class RunSpec:
    """Declarative description of one experiment run (all fields keyword-only).

    Exactly one workload shape applies: ``elastic`` (with an optional
    plain ``workload``), ``txn_workload``, or plain ``workload`` /
    defaults. ``txn_config`` / ``commit_protocol`` only make sense with
    a transactional workload and are rejected otherwise.

    Attributes
    ----------
    platform:
        Deployment preset (topology, replica placement, prices, default
        scale) -- see :mod:`repro.experiments.platforms`.
    policy:
        Policy factory ``(store) -> ConsistencyPolicy``; it may attach
        monitors to the freshly built store before returning.
    workload / txn_workload / elastic:
        The run's shape (see above). ``elastic`` carries the membership
        script / autoscaler / pacing schedule.
    ops:
        Total operations (plain/elastic) or transactions (txn);
        ``None`` uses the platform default.
    backend:
        ``"sim"`` (deterministic, default) or ``"asyncio"`` (localhost
        runtime; transactional only).
    localhost:
        Optional explicit :class:`~repro.runtime.localhost.LocalhostSpec`
        for the asyncio backend. When ``None`` one is derived from
        ``platform`` + ``txn_workload`` (topology and RF verbatim;
        keyspace skew approximated as a hotspot mix).
    """

    platform: Platform
    policy: PolicyFactory
    workload: Optional[WorkloadSpec] = None
    txn_workload: Optional[TxnWorkloadSpec] = None
    elastic: Optional[ElasticSpec] = None
    ops: Optional[int] = None
    clients: Optional[int] = None
    seed: int = 11
    warmup_fraction: float = 0.2
    target_throughput: Optional[float] = None
    failure_script: Optional[FailureScript] = None
    client_mode: str = "per_client"
    txn_config: Optional[TxnConfig] = None
    commit_protocol: Optional[str] = None
    obs: Optional[ObsConfig] = None
    backend: str = "sim"
    localhost: Optional["LocalhostSpec"] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigError(
                f"backend must be one of {list(BACKENDS)}, got {self.backend!r}"
            )
        if self.client_mode not in ("per_client", "cohort"):
            raise ConfigError(
                f"client_mode must be 'per_client' or 'cohort', "
                f"got {self.client_mode!r}"
            )
        if self.elastic is not None and self.txn_workload is not None:
            raise ConfigError(
                "a run is elastic or transactional, not both: "
                "set only one of elastic / txn_workload"
            )
        if self.txn_workload is None and (
            self.txn_config is not None or self.commit_protocol is not None
        ):
            raise ConfigError(
                "txn_config / commit_protocol require a txn_workload"
            )
        if self.backend == "asyncio":
            if self.txn_workload is None and self.localhost is None:
                raise ConfigError(
                    "the asyncio backend runs transactional workloads only: "
                    "set txn_workload (or an explicit localhost spec)"
                )
            if self.elastic is not None:
                raise ConfigError("elasticity is sim-only; use backend='sim'")
            if self.obs is not None:
                raise ConfigError(
                    "run observability is sim-only; use backend='sim'"
                )
            if self.failure_script is not None:
                raise ConfigError(
                    "failure scripts are sim-only; script crashes via "
                    "LocalhostSpec.crashes on the asyncio backend"
                )
            if self.target_throughput is not None:
                raise ConfigError(
                    "the asyncio backend is closed-loop; "
                    "target_throughput is sim-only"
                )


def _hotspot_shape(w: TxnWorkloadSpec) -> Tuple[int, float]:
    """Map a txn workload's key distribution onto the localhost hotspot dial.

    The localhost driver samples keys from a two-level hotspot mix
    (``hot_fraction`` of draws over the first ``hot_keys`` keys); this
    translates the declared distribution into that shape -- exact for
    ``uniform`` and ``hotspot``, an explicit approximation for the
    skewed families (zipfian/latest/exponential), whose head mass is
    modelled as a 5%-of-keyspace hot set taking half the draws.
    """
    if w.distribution == "uniform":
        return 0, 0.0
    if w.distribution == "hotspot":
        kw = w.distribution_kwargs
        hot_set = float(kw.get("hot_set_fraction", 0.2))
        hot_opn = float(kw.get("hot_opn_fraction", 0.8))
        return max(1, int(w.record_count * hot_set)), hot_opn
    return max(1, int(w.record_count * 0.05)), 0.5


def _derive_localhost_spec(spec: RunSpec) -> "LocalhostSpec":
    """Build the asyncio run's :class:`LocalhostSpec` from the sim-style spec."""
    from repro.runtime.localhost import LocalhostSpec

    w = spec.txn_workload
    topology = spec.platform.topology_factory()
    config = spec.txn_config or TxnConfig()
    if spec.commit_protocol is not None:
        config = replace(config, commit_protocol=str(spec.commit_protocol))
    hot_keys, hot_fraction = _hotspot_shape(w)
    return LocalhostSpec(
        topology=topology,
        replication_factor=min(spec.platform.rf, topology.n_nodes),
        # Platform defaults are sized for the simulator (tens of
        # thousands of ops in virtual time); a wall-clock run defaults
        # to a smoke-sized workload unless the caller asks for more.
        txns=spec.ops if spec.ops is not None else 50,
        clients=(
            spec.clients
            if spec.clients is not None
            else min(spec.platform.default_clients, 8)
        ),
        writes_per_txn=max(len(w.write_slots), 1),
        reads_per_txn=len(w.read_slots),
        n_keys=w.record_count,
        hot_keys=hot_keys,
        hot_fraction=hot_fraction,
        value_size=w.value_size,
        seed=spec.seed,
        txn_config=config,
    )


def _run_asyncio(spec: RunSpec) -> LocalhostRunOutcome:
    from repro.runtime.localhost import run_localhost

    lspec = spec.localhost if spec.localhost is not None else _derive_localhost_spec(spec)
    return LocalhostRunOutcome(result=run_localhost(lspec), spec=lspec)


def run(spec: RunSpec) -> AnyRunOutcome:
    """Execute one run described by ``spec`` and return its outcome.

    Dispatch: ``backend="asyncio"`` routes to the localhost runtime
    (returns :class:`LocalhostRunOutcome`); on the sim backend the
    workload shape picks the harness -- ``elastic`` set returns an
    :class:`~repro.elastic.runner.ElasticRunOutcome`, ``txn_workload``
    set a :class:`~repro.txn.runner.TxnRunOutcome`, otherwise a plain
    :class:`~repro.experiments.runner.RunOutcome`.

    >>> from repro.experiments import single_dc_platform, harmony_factory
    >>> from repro.facade import RunSpec, run
    >>> out = run(RunSpec(platform=single_dc_platform(),
    ...                   policy=harmony_factory(0.05), ops=400))
    >>> out.report.ops_completed  # the measured window: ops minus warmup
    320
    """
    if spec.backend == "asyncio":
        return _run_asyncio(spec)
    if spec.elastic is not None:
        return _deploy_and_run_elastic(
            spec.platform,
            spec.policy,
            spec.elastic,
            spec=spec.workload,
            ops=spec.ops,
            clients=spec.clients,
            seed=spec.seed,
            warmup_fraction=spec.warmup_fraction,
            target_throughput=spec.target_throughput,
            failure_script=spec.failure_script,
            client_mode=spec.client_mode,
            obs=spec.obs,
        )
    if spec.txn_workload is not None:
        return _deploy_and_run_txn(
            spec.platform,
            spec.policy,
            spec.txn_workload,
            txns=spec.ops,
            clients=spec.clients,
            seed=spec.seed,
            warmup_fraction=spec.warmup_fraction,
            target_throughput=spec.target_throughput,
            failure_script=spec.failure_script,
            txn_config=spec.txn_config,
            commit_protocol=spec.commit_protocol,
            obs=spec.obs,
        )
    return _deploy_and_run(
        spec.platform,
        spec.policy,
        spec=spec.workload,
        ops=spec.ops,
        clients=spec.clients,
        seed=spec.seed,
        warmup_fraction=spec.warmup_fraction,
        target_throughput=spec.target_throughput,
        failure_script=spec.failure_script,
        client_mode=spec.client_mode,
        obs=spec.obs,
    )
