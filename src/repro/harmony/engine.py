"""The Harmony adaptive-consistency engine.

The runtime loop (paper §III-A):

1. the monitoring module supplies read/write arrival rates, the replica
   acknowledgement profile and the key-access profile
   (:class:`~repro.monitor.collector.ClusterMonitor`);
2. the estimation model computes the expected stale-read rate of every
   candidate read level (:mod:`repro.stale.model`);
3. the engine selects the **basic level ONE** when its estimate already
   meets the application's tolerated stale rate, "or else, computes the
   number of involved replicas necessary to maintain an acceptable stale
   reads rate" -- the smallest ``r`` whose estimate is within tolerance.

Decisions are re-evaluated lazily at most every ``update_interval``
simulated seconds (the paper's monitoring period): adaptive behaviour with
zero background machinery inside the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.errors import ConfigError
from repro.cluster.consistency import LevelSpec
from repro.monitor.collector import ClusterMonitor
from repro.stale.dcmodel import DeploymentInfo, system_stale_rate_dc
from repro.stale.model import params_from_snapshot, system_stale_rate

__all__ = ["LevelDecision", "HarmonyEngine"]


@dataclass(frozen=True)
class LevelDecision:
    """One adaptation step, kept for post-run analysis."""

    t: float
    read_level: int
    estimates: List[float]  # estimated stale rate per read level 1..rf
    write_rate: float
    read_rate: float


class HarmonyEngine:
    """Self-adaptive read-consistency policy.

    Parameters
    ----------
    monitor:
        The cluster monitor attached (by the caller) to the target store.
    tolerance:
        Application-tolerated stale-read rate (e.g. ``0.05`` for 5%).
        The paper's experiments use 20%/40% (Grid'5000) and 40%/60% (EC2).
    rf:
        Replication factor of the keyspace Harmony manages.
    write_level:
        Fixed write level (Harmony tunes the *read* side; writes default to
        ONE as in the Harmony/Cassandra deployment).
    update_interval:
        Seconds between decision refreshes.
    fallback_window:
        Conservative residual-window estimate used before the monitor has
        observed any write propagation (cold start).
    strict:
        Staleness definition the estimates target: ``True`` (default) is
        the paper's Figure-1 write-start definition, ``False`` the
        committed-acknowledgement definition.
    """

    def __init__(
        self,
        monitor: ClusterMonitor,
        tolerance: float,
        rf: int,
        write_level: int = 1,
        update_interval: float = 1.0,
        fallback_window: float = 0.05,
        strict: bool = True,
        deployment: "DeploymentInfo | None" = None,
    ):
        if not (0.0 <= tolerance <= 1.0):
            raise ConfigError(f"tolerance must be in [0, 1], got {tolerance}")
        if rf < 1:
            raise ConfigError(f"rf must be >= 1, got {rf}")
        if not (1 <= write_level <= rf):
            raise ConfigError(f"write_level {write_level} outside 1..{rf}")
        if update_interval <= 0:
            raise ConfigError(f"update_interval must be positive, got {update_interval}")
        self.monitor = monitor
        self.tolerance = float(tolerance)
        self.rf = int(rf)
        self._write_level = int(write_level)
        self.update_interval = float(update_interval)
        self.fallback_window = float(fallback_window)
        self.strict = bool(strict)
        #: when set, estimates use the DC-aware model (snitch-ordered reads
        #: correlate replica lags; see repro.stale.dcmodel).
        self.deployment = deployment

        self._current = 1
        self._last_update = -float("inf")
        self.decisions: List[LevelDecision] = []
        #: optional observer callback ``fn(engine, decision)`` fired after
        #: every refresh -- the observability layer turns these into
        #: "explain" records without ever calling ``read_level`` itself
        #: (which would perturb the decision schedule).
        self.on_decision = None

    # -- ConsistencyPolicy interface ------------------------------------------------

    @property
    def name(self) -> str:
        return f"harmony({self.tolerance:g})"

    def read_level(self, now: float) -> LevelSpec:
        """Current adaptive read level (refreshing the decision if due)."""
        if now - self._last_update >= self.update_interval:
            self._refresh(now)
        return self._current

    def write_level(self, now: float) -> LevelSpec:
        return self._write_level

    # -- the adaptive consistency module -------------------------------------------

    def estimate_all_levels(self, now: float) -> List[float]:
        """Estimated stale rate for each read level ``1..rf`` right now."""
        snapshot = self.monitor.snapshot(now)
        if self.deployment is not None and self.strict:
            profile = snapshot.key_profile or [(1.0, 1.0, 1)]
            return [
                system_stale_rate_dc(
                    self.deployment, snapshot.write_rate, profile, r
                )
                for r in range(1, self.rf + 1)
            ]
        params = params_from_snapshot(
            snapshot,
            write_level=self._write_level,
            fallback_rf=self.rf,
            fallback_window=self.fallback_window,
            strict=self.strict,
        )
        if params.rf != self.rf:
            # Ack profile shorter than RF (e.g. nodes down): pad windows with
            # the largest observed window, conservatively.
            windows = list(params.windows)
            pad = max(windows) if windows else self.fallback_window
            while len(windows) < self.rf:
                windows.append(pad)
            params.windows = windows[: self.rf]
            params.rf = self.rf
        return [
            system_stale_rate(params, r, self._write_level)
            for r in range(1, self.rf + 1)
        ]

    def _refresh(self, now: float) -> None:
        self._last_update = now
        estimates = self.estimate_all_levels(now)
        chosen = self.rf  # strongest, if nothing meets tolerance
        for r, est in enumerate(estimates, start=1):
            if est <= self.tolerance:
                chosen = r
                break
        self._current = chosen
        snap_rates = self.monitor.snapshot(now)
        decision = LevelDecision(
            t=now,
            read_level=chosen,
            estimates=estimates,
            write_rate=snap_rates.write_rate,
            read_rate=snap_rates.read_rate,
        )
        self.decisions.append(decision)
        if self.on_decision is not None:
            self.on_decision(self, decision)

    # -- diagnostics -----------------------------------------------------------------

    def level_time_fractions(self) -> dict:
        """Fraction of decisions spent at each read level (post-run report)."""
        if not self.decisions:
            return {}
        counts: dict = {}
        for d in self.decisions:
            counts[d.read_level] = counts.get(d.read_level, 0) + 1
        total = len(self.decisions)
        return {lvl: c / total for lvl, c in sorted(counts.items())}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HarmonyEngine(tolerance={self.tolerance}, rf={self.rf}, "
            f"current={self._current}, decisions={len(self.decisions)})"
        )
