"""Harmony: automated self-adaptive consistency (contribution A, §III-A).

Harmony "monitors the storage system and data accesses in order to estimate
the stale reads rate in the system. Accordingly, it scales up/down the
consistency level to preserve a stale rate tolerated by the application."

:class:`~repro.harmony.engine.HarmonyEngine` is a
:class:`~repro.policy.ConsistencyPolicy`: attach its monitor to a store,
hand the engine to the workload clients, and every read is issued at the
smallest replica count whose *estimated* stale rate stays within the
application's tolerance -- level ONE whenever the workload permits,
gradually stronger only when it does not.
"""

from repro.harmony.engine import HarmonyEngine, LevelDecision

__all__ = ["HarmonyEngine", "LevelDecision"]
