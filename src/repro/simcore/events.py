"""Event objects for the discrete-event engine.

Events are small ``__slots__`` objects ordered by ``(time, seq)``; the
monotonically increasing sequence number makes simultaneous events fire in
schedule order, which keeps every run bit-for-bit deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

__all__ = ["Event"]


class Event:
    """A scheduled callback, orderable by firing time.

    Do not construct directly; use :meth:`repro.simcore.Simulator.schedule`.
    Cancellation is lazy: :meth:`cancel` marks the event and the simulator
    skips it when popped (O(1) cancel, no heap surgery).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "live", "owner")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Optional[Callable[..., Any]],
        args: Tuple[Any, ...] = (),
        owner: Optional[Any] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: True while the event is scheduled and has neither fired nor been
        #: cancelled; the owning simulator keeps a live-event counter in sync.
        self.live = True
        self.owner = owner

    def cancel(self) -> None:
        """Prevent this event from firing (no-op if it already fired)."""
        if not self.live:
            return
        self.live = False
        self.cancelled = True
        # Drop references eagerly so cancelled events do not pin payloads
        # (messages, closures) in memory until they surface from the heap.
        self.fn = None
        self.args = ()
        if self.owner is not None:
            self.owner._event_cancelled()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Event(t={self.time:.6f}, seq={self.seq}, fn={name}, {state})"
