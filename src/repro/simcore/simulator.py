"""The discrete-event simulator: clock + binary-heap event queue.

Design notes (hpc-parallel idioms):

- the run loop is a tight ``heappop`` + call, with local-variable binding of
  hot attributes; profiling end-to-end store runs shows >80% of wall time in
  user callbacks, not the engine;
- heap entries are ``(time, seq, Event)`` tuples, not bare events: the heap
  siftup/siftdown comparisons then run entirely in C on float/int pairs
  instead of calling :meth:`Event.__lt__` per comparison -- profiling showed
  nearly a million ``__lt__`` calls per 8k-op store run, all pure overhead
  (``seq`` is unique, so the :class:`Event` in slot 3 is never compared);
- cancellation is lazy (flag + skip) so cancelling the common case -- a
  timeout that did not fire -- costs O(1);
- determinism: equal-time events fire in scheduling order via a sequence
  counter; no wall-clock or entropy anywhere in the engine.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.simcore.events import Event

__all__ = ["Simulator"]


class Simulator:
    """A simulated clock with an ordered callback queue.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq: int = 0
        self._live: int = 0
        self._running = False
        self._stop_requested = False
        self.events_processed: int = 0

    def stop(self) -> None:
        """Request the current :meth:`run` to return after the current event.

        Safe to call from inside an event callback (that is its purpose:
        "the workload is finished, stop simulating background chatter").
        """
        self._stop_requested = True

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` simulated seconds from now.

        Returns the :class:`Event` handle (cancellable). ``delay`` must be
        non-negative; scheduling into the past is a harness bug and raises
        :class:`~repro.common.errors.SimulationError`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        # Inlined schedule_at body: this is the hottest entry point of the
        # engine (every message hop and service completion lands here), and
        # the extra call layer is measurable at millions of events.
        self._seq += 1
        time = self.now + delay
        ev = Event(time, self._seq, fn, args, owner=self)
        heapq.heappush(self._heap, (time, self._seq, ev))
        self._live += 1
        return ev

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self.now}"
            )
        self._seq += 1
        ev = Event(time, self._seq, fn, args, owner=self)
        heapq.heappush(self._heap, (time, self._seq, ev))
        self._live += 1
        return ev

    def _event_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` so ``pending()`` stays O(1)."""
        self._live -= 1

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next pending event. Returns ``False`` if the queue is empty."""
        heap = self._heap
        while heap:
            time, _, ev = heapq.heappop(heap)
            if ev.cancelled:
                continue
            self.now = time
            fn, args = ev.fn, ev.args
            ev.fn = None  # break cycles; event objects may be retained by callers
            ev.args = ()
            ev.live = False
            self._live -= 1
            self.events_processed += 1
            fn(*args)  # type: ignore[misc]
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        When ``until`` is given and the queue drains earlier, the clock is
        advanced to ``until`` (matching how a real system would idle).
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        self._stop_requested = False
        try:
            heap = self._heap
            heappop = heapq.heappop
            budget = max_events if max_events is not None else -1
            while heap and not self._stop_requested:
                time, _, ev = heap[0]
                if ev.cancelled:
                    heappop(heap)
                    continue
                if until is not None and time > until:
                    break
                if budget == 0:
                    break
                heappop(heap)
                self.now = time
                fn, args = ev.fn, ev.args
                ev.fn = None
                ev.args = ()
                ev.live = False
                self._live -= 1
                self.events_processed += 1
                fn(*args)  # type: ignore[misc]
                if budget > 0:
                    budget -= 1
            if until is not None and self.now < until and not self._stop_requested:
                self.now = until
        finally:
            self._running = False

    # -- introspection ---------------------------------------------------------

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue.

        O(1): a live-event counter is incremented on schedule and decremented
        on fire/cancel, so monitors can poll this every tick without paying a
        heap scan.
        """
        return self._live

    def peek_time(self) -> Optional[float]:
        """Firing time of the next live event, or ``None`` if idle."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self.now = 0.0
        for _, _, ev in self._heap:
            ev.live = False
            ev.owner = None
        self._heap.clear()
        self._seq = 0
        self._live = 0
        self.events_processed = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Simulator(now={self.now:.6f}, pending={len(self._heap)}, "
            f"processed={self.events_processed})"
        )
