"""FIFO service resources: the queueing model behind node service times.

A :class:`Resource` represents ``servers`` identical servers in front of a
FIFO queue (an M/G/c station when arrivals are Poisson). Storage nodes use
one resource per node to model request service time *and* the queueing delay
that appears under load -- this queueing delay is what makes strong
consistency levels slower at high throughput in the reproduction, exactly
the mechanism the paper's evaluation exercises.

The implementation is callback-based: ``submit()`` returns immediately and
the ``done`` callback fires when service completes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Tuple

from repro.common.errors import ConfigError
from repro.common.stats import OnlineStats
from repro.simcore.simulator import Simulator

__all__ = ["Resource"]


class Resource:
    """``servers`` identical servers with one shared FIFO queue.

    Parameters
    ----------
    sim:
        Owning simulator.
    servers:
        Degree of service parallelism (e.g. CPU threads of a node).
    name:
        Diagnostic label used in ``repr`` and error messages.

    Notes
    -----
    Service times are supplied *per request* by the caller, which keeps the
    resource model-agnostic (deterministic, exponential, empirical -- the
    caller decides).
    """

    __slots__ = (
        "sim",
        "servers",
        "name",
        "_busy",
        "_queue",
        "queue_wait",
        "service_time",
        "completed",
        "_busy_integral",
        "_last_change",
    )

    def __init__(self, sim: Simulator, servers: int = 1, name: str = "resource"):
        if servers < 1:
            raise ConfigError(f"servers must be >= 1, got {servers}")
        self.sim = sim
        self.servers = int(servers)
        self.name = name
        self._busy = 0
        self._queue: Deque[Tuple[float, float, Callable[..., Any], Tuple[Any, ...]]] = deque()
        self.queue_wait = OnlineStats()
        self.service_time = OnlineStats()
        self.completed = 0
        # busy-time integral (server-seconds of actual work), the basis of
        # the dynamic part of the power model.
        self._busy_integral = 0.0
        self._last_change = sim.now

    # -- public API -------------------------------------------------------------

    def submit(
        self,
        service: float,
        done: Callable[..., Any],
        *args: Any,
    ) -> None:
        """Enqueue a request needing ``service`` seconds; call ``done(*args)`` after.

        The completion callback fires at ``now + queueing-delay + service``.
        """
        if service < 0:
            raise ConfigError(f"negative service time {service}")
        if self._busy < self.servers:
            self._start(self.sim.now, service, done, args)
        else:
            self._queue.append((self.sim.now, service, done, args))

    @property
    def busy(self) -> int:
        """Number of servers currently serving a request."""
        return self._busy

    @property
    def queued(self) -> int:
        """Number of requests waiting for a free server."""
        return len(self._queue)

    def utilization_hint(self) -> float:
        """Instantaneous busy fraction (coarse load signal for monitors)."""
        return self._busy / self.servers

    def busy_seconds(self) -> float:
        """Cumulative server-seconds spent serving (the energy meter)."""
        return self._busy_integral + self._busy * (self.sim.now - self._last_change)

    def _tick(self) -> None:
        now = self.sim.now
        self._busy_integral += self._busy * (now - self._last_change)
        self._last_change = now

    # -- internals ---------------------------------------------------------------

    def _start(
        self,
        arrival: float,
        service: float,
        done: Callable[..., Any],
        args: Tuple[Any, ...],
    ) -> None:
        self._tick()
        self._busy += 1
        wait = self.sim.now - arrival
        self.queue_wait.add(wait)
        self.service_time.add(service)
        self.sim.schedule(service, self._finish, done, args)

    def _finish(self, done: Callable[..., Any], args: Tuple[Any, ...]) -> None:
        self._tick()
        self._busy -= 1
        self.completed += 1
        if self._queue:
            arrival, service, nxt_done, nxt_args = self._queue.popleft()
            self._start(arrival, service, nxt_done, nxt_args)
        done(*args)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Resource({self.name!r}, servers={self.servers}, busy={self._busy}, "
            f"queued={len(self._queue)}, completed={self.completed})"
        )
