"""Discrete-event simulation engine.

A minimal, fast event-driven core purpose-built for the replicated-store
simulator:

- :class:`~repro.simcore.simulator.Simulator` -- binary-heap event queue with
  a simulated clock, callback scheduling and cancellation;
- :class:`~repro.simcore.process.Process` -- optional generator-based
  coroutine layer for sequential behaviours (clients, repair daemons);
- :class:`~repro.simcore.resources.Resource` -- FIFO service stations used to
  model node service times and queueing delay.

The hot path is callback-based (no coroutine overhead for message delivery);
processes are sugar on top for code that reads better sequentially.
"""

from repro.simcore.events import Event
from repro.simcore.simulator import Simulator
from repro.simcore.process import Process, Delay, WaitEvent
from repro.simcore.resources import Resource

__all__ = ["Event", "Simulator", "Process", "Delay", "WaitEvent", "Resource"]
