"""Generator-based processes on top of the callback engine.

A :class:`Process` wraps a Python generator whose ``yield`` values describe
what the process waits for:

- ``yield Delay(t)`` -- sleep ``t`` simulated seconds;
- ``yield WaitEvent(we)`` -- block until someone calls ``we.succeed(value)``;
  the value is sent back into the generator.

This gives sequential code (closed-loop clients, repair daemons, failure
scripts) a readable shape while the store's message fan-out stays on the
cheap callback path.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.simcore.simulator import Simulator

__all__ = ["Delay", "WaitEvent", "Process"]


class Delay:
    """Yield instruction: suspend the process for ``duration`` seconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise SimulationError(f"negative delay {duration}")
        self.duration = float(duration)


class WaitEvent:
    """A one-shot completion signal a process can wait on.

    A producer calls :meth:`succeed` (or :meth:`fail`); every process
    currently waiting resumes with the value (or the exception raised into
    the generator).
    """

    __slots__ = ("_done", "_value", "_error", "_waiters")

    def __init__(self) -> None:
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._waiters: List[Tuple[Simulator, "Process"]] = []

    @property
    def done(self) -> bool:
        """Whether the event has been completed (succeeded or failed)."""
        return self._done

    @property
    def value(self) -> Any:
        """The success value (``None`` until completion)."""
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Complete the event successfully, waking all waiters."""
        if self._done:
            raise SimulationError("WaitEvent already completed")
        self._done = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for sim, proc in waiters:
            sim.schedule(0.0, proc._resume, value)

    def fail(self, error: BaseException) -> None:
        """Complete the event with an exception, raised inside each waiter."""
        if self._done:
            raise SimulationError("WaitEvent already completed")
        self._done = True
        self._error = error
        waiters, self._waiters = self._waiters, []
        for sim, proc in waiters:
            sim.schedule(0.0, proc._throw, error)

    def _register(self, sim: Simulator, proc: "Process") -> None:
        if self._done:
            if self._error is not None:
                sim.schedule(0.0, proc._throw, self._error)
            else:
                sim.schedule(0.0, proc._resume, self._value)
        else:
            self._waiters.append((sim, proc))


class Process:
    """Drives a generator as a simulated process.

    Parameters
    ----------
    sim:
        The simulator that owns the clock.
    gen:
        A generator yielding :class:`Delay` / :class:`WaitEvent` instructions.

    The process starts on the next zero-delay event (not synchronously), so
    constructing several processes before ``sim.run()`` behaves intuitively.
    ``proc.finished`` is itself a :class:`WaitEvent` completing with the
    generator's return value, so processes can wait on each other.
    """

    __slots__ = ("sim", "_gen", "finished", "name")

    def __init__(self, sim: Simulator, gen: Generator[Any, Any, Any], name: str = "proc"):
        self.sim = sim
        self._gen = gen
        self.finished = WaitEvent()
        self.name = name
        sim.schedule(0.0, self._resume, None)

    def _resume(self, value: Any) -> None:
        try:
            instruction = self._gen.send(value)
        except StopIteration as stop:
            self.finished.succeed(stop.value)
            return
        self._dispatch(instruction)

    def _throw(self, error: BaseException) -> None:
        try:
            instruction = self._gen.throw(error)
        except StopIteration as stop:
            self.finished.succeed(stop.value)
            return
        self._dispatch(instruction)

    def _dispatch(self, instruction: Any) -> None:
        if isinstance(instruction, Delay):
            self.sim.schedule(instruction.duration, self._resume, None)
        elif isinstance(instruction, WaitEvent):
            instruction._register(self.sim, self)
        elif isinstance(instruction, Process):
            instruction.finished._register(self.sim, self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported instruction "
                f"{type(instruction).__name__}; expected Delay/WaitEvent/Process"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "finished" if self.finished.done else "running"
        return f"Process({self.name!r}, {state})"
