"""Declarative benchmark registry: named, parameterized perf targets.

A :class:`BenchSpec` names one measured code path -- the event engine, the
store's operation path, a full harness run -- with two parameter points:
``defaults`` (the full-size run CI trajectories are built from) and
``quick`` overrides (a seconds-scale variant for the CI gate and local
smoke runs). The registry mirrors :mod:`repro.experiments.scenarios`:
adding a benchmark is one :func:`register` call, no new script.

Every spec's ``fn`` receives the resolved parameter mapping (including
``seed``) and returns the number of *events* it processed -- operations,
simulator events, lookups, rows -- so the runner can report a
hardware-independent events-per-second figure next to raw wall-clock.

The built-in specs deliberately cover every layer the experiment harnesses
exercise (simcore, cluster, workload, experiments, txn, elastic), so a
regression anywhere in the stack moves at least one number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.common.errors import ConfigError

__all__ = ["BenchSpec", "REGISTRY", "register", "get", "names", "select"]

#: Resolved benchmark parameters, as passed to every spec ``fn``.
Params = Mapping[str, Any]


@dataclass(frozen=True)
class BenchSpec:
    """One named benchmark target.

    Attributes
    ----------
    name / description:
        Registry key and one-line summary (shown by ``repro bench --list``).
    fn:
        ``params -> events``: run the benchmark once at the resolved
        parameter point and return how many events it processed.
    defaults:
        Full-size parameters (the trajectory run).
    quick:
        Overrides applied on top of ``defaults`` in ``--quick`` mode.
    events_unit:
        What one event is ("ops", "events", "lookups", "rows", "txns").
    tags:
        Layer labels (``engine``, ``store``, ``workload``, ...).
    """

    name: str
    description: str
    fn: Callable[[Params], int]
    defaults: Mapping[str, Any] = field(default_factory=dict)
    quick: Mapping[str, Any] = field(default_factory=dict)
    events_unit: str = "ops"
    tags: Tuple[str, ...] = ()

    def resolve_params(self, seed: int, quick: bool = False) -> Dict[str, Any]:
        """Parameter point for one execution (``seed`` always included)."""
        params = dict(self.defaults)
        if quick:
            params.update(self.quick)
        params["seed"] = int(seed)
        return params


REGISTRY: Dict[str, BenchSpec] = {}


def register(spec: BenchSpec) -> BenchSpec:
    """Add a benchmark to the registry (names must be unique)."""
    if spec.name in REGISTRY:
        raise ConfigError(f"benchmark {spec.name!r} is already registered")
    REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> BenchSpec:
    """Look up a benchmark; unknown names list the alternatives."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown benchmark {name!r}; choose from {names()}"
        ) from None


def names() -> List[str]:
    """Registered benchmark names, sorted."""
    return sorted(REGISTRY)


def select(filters: Optional[List[str]] = None) -> List[BenchSpec]:
    """Benchmarks whose name or tags contain any of ``filters`` (all if empty).

    Matching is case-insensitive substring over the name and the tags, like
    pytest's ``-k``. An empty selection is a :class:`ConfigError` -- a typo
    must not silently gate nothing.
    """
    if not filters:
        return [REGISTRY[n] for n in names()]
    terms = [f.lower() for f in filters]
    out = []
    for name in names():
        spec = REGISTRY[name]
        haystack = [name.lower()] + [t.lower() for t in spec.tags]
        if any(term in hay for term in terms for hay in haystack):
            out.append(spec)
    if not out:
        raise ConfigError(
            f"no benchmark matches {filters}; choose from {names()}"
        )
    return out


# -- the built-in benchmarks ---------------------------------------------------
#
# Spec functions import the layers they exercise lazily, so listing the
# registry costs nothing and the perf package never creates import cycles.


def _bench_engine_events(p: Params) -> int:
    """Tight schedule/fire churn through the event heap (no cluster on top)."""
    from repro.simcore.simulator import Simulator

    sim = Simulator()
    total = int(p["events"])
    fanout = int(p["fanout"])

    def tick(depth: int) -> None:
        if depth <= 0:
            return
        for i in range(fanout):
            sim.schedule(0.001 * (i + 1), tick, depth - 1)

    # Seed enough independent chains that the heap stays a few thousand
    # events deep -- the regime every full-store run operates in.
    chains = 64
    depth = 6
    events_per_wave = chains * sum(fanout**d for d in range(1, depth + 1))
    waves = max(1, total // events_per_wave)
    for _ in range(waves):
        for _ in range(chains):
            sim.schedule(0.0, tick, depth)
        sim.run()
    return sim.events_processed


def _bench_engine_timeouts(p: Params) -> int:
    """The op+timeout pattern: most scheduled timeouts are cancelled, not fired."""
    from repro.simcore.simulator import Simulator

    sim = Simulator()
    pairs = int(p["pairs"])

    def op_done(timeout_event) -> None:
        timeout_event.cancel()

    def noop() -> None:
        return None

    # Stagger the op/timeout pairs so cancelled timeouts sit in the heap a
    # while before being skipped on pop -- the store's actual access pattern.
    for i in range(pairs):
        t = i * 0.001
        timeout = sim.schedule_at(t + 5.0, noop)
        sim.schedule_at(t + 0.0005, op_done, timeout)
    sim.run()
    return sim.events_processed


def _small_store(seed: int, nodes: int = 4):
    from repro.cluster.replication import SimpleStrategy
    from repro.cluster.store import ReplicatedStore, StoreConfig
    from repro.net.topology import Datacenter, Topology
    from repro.simcore.simulator import Simulator

    sim = Simulator()
    topo = Topology([Datacenter("dc0", "region0")], [nodes])
    store = ReplicatedStore(
        sim,
        topo,
        strategy=SimpleStrategy(rf=3),
        config=StoreConfig(seed=seed, read_repair_chance=0.1),
    )
    return store


def _bench_store_ops(p: Params) -> int:
    """The full single-DC data path: coordinator fan-out, service queues, acks."""
    from repro.policy import StaticPolicy
    from repro.workload.client import WorkloadRunner
    from repro.workload.workloads import WORKLOADS

    store = _small_store(int(p["seed"]))
    spec = WORKLOADS["A"].scaled(int(p["records"]), name="bench-a")
    report = WorkloadRunner(
        store,
        spec,
        policy=StaticPolicy(1, 2, name="bench"),
        n_clients=int(p["clients"]),
        ops_total=int(p["ops"]),
        seed=int(p["seed"]),
    ).run()
    return int(report.ops_completed)


def _bench_workload_harmony(p: Params) -> int:
    """End-to-end geo-replicated harness run with the adaptive policy on."""
    from repro.experiments.platforms import ec2_harmony_platform
    from repro.experiments.runner import harmony_factory
    from repro.facade import RunSpec, run

    outcome = run(
        RunSpec(
            platform=ec2_harmony_platform(),
            policy=harmony_factory(0.4),
            ops=int(p["ops"]),
            seed=int(p["seed"]),
        )
    )
    return int(outcome.report.ops_completed)


def _bench_openloop_schedule(p: Params) -> int:
    """Open-loop arrival scheduling: the Poisson pre-schedule of N arrivals."""
    from repro.common.rng import RngFactory
    from repro.policy import StaticPolicy
    from repro.workload.client import OpenLoopSource
    from repro.workload.workloads import WORKLOADS

    store = _small_store(int(p["seed"]))
    spec = WORKLOADS["A"].scaled(1000, name="bench-openloop")
    source = OpenLoopSource(
        store,
        spec,
        StaticPolicy(1, 1, name="bench"),
        rate=float(p["rate"]),
        ops=int(p["ops"]),
        rng=RngFactory(int(p["seed"])).stream("bench.openloop"),
    )
    source.start()
    return int(store.sim.pending())


def _bench_ring_churn(p: Params) -> int:
    """Live membership: incremental ring surgery + exact ownership diffs."""
    from repro.cluster.ring import TokenRing

    ring = TokenRing(int(p["nodes"]), vnodes=int(p["vnodes"]))
    changes = int(p["changes"])
    next_id = int(p["nodes"])
    for i in range(changes):
        if i % 2 == 0:
            ring.add_node(next_id)
            next_id += 1
        else:
            ring.remove_node(ring.members[0])
        ring.ownership_fractions()
    return changes


def _bench_replica_lookup(p: Params) -> int:
    """Ownership lookups on the store: the per-operation placement resolve."""
    store = _small_store(int(p["seed"]))
    keys = [f"user{i}" for i in range(int(p["keys"]))]
    store.preload(keys)
    lookups = int(p["lookups"])
    n = len(keys)
    for i in range(lookups):
        store.replica_sets(keys[i % n])
    return lookups


def _bench_sweep_aggregate(p: Params) -> int:
    """Sweep row aggregation: canonical sort, table render, JSON + CSV emit."""
    from repro.experiments.sweep import SweepResult

    rows = []
    for i in range(int(p["rows"])):
        rows.append(
            {
                "scenario": f"synthetic-{i % 7}",
                "params": {"tolerance": (i % 5) / 10.0, "index": i},
                "seed": 1000 + i,
                "policy": "harmony(0.4)",
                "workload": "heavy-read-update",
                "ops_completed": 4000 + i,
                "duration_s": 1.25,
                "throughput_ops_s": 3200.0 + i,
                "read_latency_mean_ms": 1.5,
                "read_latency_p99_ms": 9.0,
                "write_latency_mean_ms": 1.1,
                "write_latency_p99_ms": 7.5,
                "stale_rate": 0.01 * (i % 9),
                "stale_rate_strict": 0.012 * (i % 9),
                "cost_total_usd": 0.5,
                "cost_per_kop_usd": 0.000125,
                "read_levels": {"n=1": 2000, "n=2": 2000 + i},
                "level_fractions": {"1": 0.5, "2": 0.5},
            }
        )
    result = SweepResult(root_seed=int(p["seed"]), rows=rows)
    result.rows.sort(key=lambda r: (r["scenario"], r["seed"]))
    text = result.table().render() + result.to_json() + result.to_csv()
    return len(rows) + (0 if text else 1)


def _bench_txn_2pc(p: Params) -> int:
    """Atomic bank transfers under 2PC over two EC2 AZs."""
    from repro.experiments.platforms import ec2_harmony_platform
    from repro.experiments.runner import named_policy_factory
    from repro.facade import RunSpec, run
    from repro.workload.workloads import bank_transfer_mix

    outcome = run(
        RunSpec(
            platform=ec2_harmony_platform(),
            policy=named_policy_factory("quorum"),
            txn_workload=bank_transfer_mix(record_count=int(p["records"])),
            ops=int(p["txns"]),
            clients=int(p["clients"]),
            seed=int(p["seed"]),
        )
    )
    return int(outcome.report.txn["txns"])


def _bench_txn_protocol(p: Params) -> int:
    """Commit-protocol machinery under a rolling crash storm: termination
    rounds, pre-commit barriers and WAL recovery re-drives, not just the
    happy commit path."""
    from repro.cluster.failures import FailureInjector
    from repro.experiments.platforms import storm_txn_platform
    from repro.experiments.runner import named_policy_factory
    from repro.facade import RunSpec, run
    from repro.txn.api import TxnConfig
    from repro.workload.workloads import read_modify_write_mix

    def storm(injector: FailureInjector) -> None:
        injector.crash_storm([0, 2, 5, 7], start=0.5, interval=0.5, downtime=1.5)

    outcome = run(
        RunSpec(
            platform=storm_txn_platform(),
            policy=named_policy_factory("quorum"),
            txn_workload=read_modify_write_mix(record_count=int(p["records"])),
            ops=int(p["txns"]),
            clients=int(p["clients"]),
            seed=int(p["seed"]),
            failure_script=storm,
            txn_config=TxnConfig(
                prepare_timeout=0.5,
                client_timeout=2.0,
                retry_interval=0.25,
                status_interval=0.1,
                status_backoff=2.0,
                status_interval_max=0.5,
                termination_after=2,
                termination_timeout=0.25,
            ),
            commit_protocol=str(p["protocol"]),
        )
    )
    return int(outcome.report.txn["txns"])


def _bench_cohort_million(p: Params) -> int:
    """Cohort-mode runner at the scale ceiling: 10^6 clients, one pooled
    generator per DC, paced aggregate arrivals through the full data path."""
    from repro.policy import StaticPolicy
    from repro.workload.client import WorkloadRunner
    from repro.workload.workloads import WORKLOADS

    store = _small_store(int(p["seed"]))
    spec = WORKLOADS["A"].scaled(int(p["records"]), name="bench-cohort")
    report = WorkloadRunner(
        store,
        spec,
        policy=StaticPolicy(1, 2, name="bench"),
        n_clients=int(p["clients"]),
        ops_total=int(p["ops"]),
        seed=int(p["seed"]),
        target_throughput=float(p["rate"]),
        client_mode="cohort",
    ).run()
    return int(report.ops_completed)


def _bench_cohort_geo_scenario(p: Params) -> int:
    """End-to-end geo cohort scenario: Harmony adapting under 10^6 clients."""
    from repro.experiments import scenarios

    run = scenarios.get("harmony-geo-cohort").run(
        seed=int(p["seed"]), ops=int(p["ops"])
    )
    return int(run.report.ops_completed)


def _bench_obs_overhead(p: Params) -> int:
    """The harness run with full observability on: sampler ticks, every-op
    listener accounting, trace span construction, and the streaming anomaly
    oracles (on by default in ObsConfig, so the per-tick invariant checks and
    per-read monotonicity sampling are inside the measured region). In-memory
    only (no artifact writes), so the number isolates the recording overhead
    itself."""
    from repro.experiments.platforms import ec2_harmony_platform
    from repro.experiments.runner import harmony_factory
    from repro.facade import RunSpec, run
    from repro.obs.recorder import ObsConfig

    outcome = run(
        RunSpec(
            platform=ec2_harmony_platform(),
            policy=harmony_factory(0.4),
            ops=int(p["ops"]),
            seed=int(p["seed"]),
            obs=ObsConfig(
                sample_interval=0.05, trace=True, trace_sample_every=4
            ),
        )
    )
    return int(outcome.report.ops_completed)


def _bench_elastic_rebalance(p: Params) -> int:
    """Membership churn under load: streaming rebalance + live traffic."""
    from repro.experiments import scenarios

    run = scenarios.get("elastic-rebalance-storm").run(
        seed=int(p["seed"]), ops=int(p["ops"])
    )
    return int(run.report.ops_completed)


register(
    BenchSpec(
        name="engine-events",
        description="Event-heap churn: schedule/fire fan-out chains in simcore",
        fn=_bench_engine_events,
        defaults={"events": 400_000, "fanout": 2},
        quick={"events": 80_000},
        events_unit="events",
        tags=("simcore", "engine"),
    )
)

register(
    BenchSpec(
        name="engine-timeouts",
        description="Lazy-cancel path: op+timeout pairs where timeouts rarely fire",
        fn=_bench_engine_timeouts,
        defaults={"pairs": 150_000},
        quick={"pairs": 30_000},
        events_unit="events",
        tags=("simcore", "engine"),
    )
)

register(
    BenchSpec(
        name="store-ops",
        description="Single-DC read/write data path at static consistency",
        fn=_bench_store_ops,
        defaults={"ops": 24_000, "clients": 16, "records": 800},
        quick={"ops": 5_000},
        events_unit="ops",
        tags=("cluster", "store", "workload"),
    )
)

register(
    BenchSpec(
        name="workload-harmony-geo",
        description="Full geo-replicated harness run with Harmony adapting",
        fn=_bench_workload_harmony,
        defaults={"ops": 12_000},
        quick={"ops": 2_500},
        events_unit="ops",
        tags=("workload", "harmony", "experiments"),
    )
)

register(
    BenchSpec(
        name="openloop-schedule",
        description="Poisson pre-scheduling of open-loop arrivals (RNG + heap)",
        fn=_bench_openloop_schedule,
        defaults={"ops": 400_000, "rate": 2_000.0},
        quick={"ops": 80_000},
        events_unit="arrivals",
        tags=("workload", "rng"),
    )
)

register(
    BenchSpec(
        name="ring-churn",
        description="Incremental ring membership with exact ownership diffs",
        fn=_bench_ring_churn,
        defaults={"nodes": 24, "vnodes": 32, "changes": 240},
        quick={"changes": 60},
        events_unit="events",
        tags=("cluster", "ring", "elastic"),
    )
)

register(
    BenchSpec(
        name="replica-lookup",
        description="Per-operation replica-set resolution on a live store",
        fn=_bench_replica_lookup,
        defaults={"keys": 2_000, "lookups": 400_000},
        quick={"lookups": 80_000},
        events_unit="lookups",
        tags=("cluster", "store"),
    )
)

register(
    BenchSpec(
        name="sweep-aggregate",
        description="Sweep result aggregation: sort, render, JSON + CSV",
        fn=_bench_sweep_aggregate,
        defaults={"rows": 6_000},
        quick={"rows": 1_200},
        events_unit="rows",
        tags=("experiments", "sweep"),
    )
)

register(
    BenchSpec(
        name="txn-2pc",
        description="Atomic bank transfers: 2PC commit path over two AZs",
        fn=_bench_txn_2pc,
        defaults={"txns": 1_500, "clients": 12, "records": 1_000},
        quick={"txns": 400},
        events_unit="txns",
        tags=("txn",),
    )
)

register(
    BenchSpec(
        name="txn-protocol",
        description="Commit-protocol storm: 3PC + termination paths under rolling crashes",
        fn=_bench_txn_protocol,
        defaults={"txns": 1_200, "clients": 12, "records": 400, "protocol": "3pc"},
        quick={"txns": 400},
        events_unit="txns",
        tags=("txn", "protocol"),
    )
)

register(
    BenchSpec(
        name="cohort-million-clients",
        description="Cohort engine at the 10^6-client scale ceiling (paced, 1 DC)",
        fn=_bench_cohort_million,
        defaults={"ops": 20_000, "clients": 1_000_000, "records": 800, "rate": 8_000.0},
        quick={"ops": 4_000},
        events_unit="ops",
        tags=("workload", "cohort", "scale"),
    )
)

register(
    BenchSpec(
        name="cohort-geo-scenario",
        description="Geo cohort scenario end-to-end: Harmony + 10^6 clients",
        fn=_bench_cohort_geo_scenario,
        defaults={"ops": 12_000},
        quick={"ops": 2_500},
        events_unit="ops",
        tags=("workload", "cohort", "experiments", "harmony"),
    )
)

register(
    BenchSpec(
        name="obs-overhead",
        description="Geo harness run with tracing, dense sampling and anomaly oracles attached",
        fn=_bench_obs_overhead,
        defaults={"ops": 12_000},
        quick={"ops": 2_500},
        events_unit="ops",
        tags=("obs", "workload", "harmony"),
    )
)

register(
    BenchSpec(
        name="elastic-rebalance",
        description="Streaming rebalance storm under foreground traffic",
        fn=_bench_elastic_rebalance,
        defaults={"ops": 5_000},
        quick={"ops": 1_500},
        events_unit="ops",
        tags=("elastic",),
    )
)
