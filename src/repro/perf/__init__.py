"""Performance subsystem: benchmark registry, runner, and regression gate.

The ROADMAP's north star is a system that runs "as fast as the hardware
allows" -- which is only a meaningful claim if speed is *measured*, every
PR, with machine-readable artifacts. This package provides that:

- :mod:`repro.perf.specs` -- a declarative :class:`~repro.perf.specs.BenchSpec`
  registry (mirroring ``experiments/scenarios.py``) covering every hot layer:
  the event engine, the replicated-store data path, workload clients, ring
  membership, sweep aggregation, 2PC and elastic scaling;
- :mod:`repro.perf.runner` -- a :class:`~repro.perf.runner.BenchRunner` that
  executes each spec N times with deterministic seeds and records wall-clock,
  events-per-second and peak RSS into a schema-versioned ``BENCH_<n>.json``
  (plus a CSV rendered via :mod:`repro.common.tables`);
- :mod:`repro.perf.compare` -- baseline comparison with a configurable
  tolerance, the engine behind CI's perf-regression gate.

Entry point: ``repro bench`` (see :mod:`repro.cli`).
"""

from repro.perf.compare import BenchComparison, compare_reports, load_report
from repro.perf.runner import BENCH_SCHEMA, BenchRecord, BenchReport, BenchRunner
from repro.perf.specs import REGISTRY, BenchSpec, get, names, register

__all__ = [
    "BenchSpec",
    "REGISTRY",
    "register",
    "get",
    "names",
    "BenchRunner",
    "BenchReport",
    "BenchRecord",
    "BENCH_SCHEMA",
    "BenchComparison",
    "compare_reports",
    "load_report",
]
