"""Baseline comparison: the perf-regression gate behind ``repro bench --compare``.

A comparison matches the current run's benchmarks against a baseline
``BENCH_*.json`` by name and computes the events-per-second delta for each.
A benchmark **regresses** when its throughput falls below
``baseline * (1 - tolerance)``; any regression (or a benchmark that exists
in the baseline but was not run) fails the gate, which CI turns into a red
build. Improvements beyond the tolerance are highlighted so speedups are
visible in the job log -- a reminder to refresh the committed baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.common.errors import ConfigError
from repro.common.tables import Table
from repro.perf.runner import BENCH_SCHEMA, BenchReport

__all__ = ["BenchComparison", "compare_reports", "load_report"]


def load_report(path: str) -> Dict[str, Any]:
    """Load and schema-check a ``BENCH_*.json`` document."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        raise ConfigError(f"baseline {path!r} does not exist") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline {path!r} is not valid JSON: {exc}") from None
    schema = doc.get("schema")
    if schema != BENCH_SCHEMA:
        raise ConfigError(
            f"baseline {path!r} has schema {schema!r}, expected {BENCH_SCHEMA!r}"
        )
    return doc


@dataclass
class BenchComparison:
    """Outcome of one baseline comparison."""

    tolerance: float
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: benches in the baseline that the current run did not execute.
    missing: List[str] = field(default_factory=list)
    #: benches in the current run with no baseline entry (informational).
    new: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[str]:
        return [r["name"] for r in self.rows if r["verdict"] == "REGRESSED"]

    @property
    def ok(self) -> bool:
        """Gate verdict: no regression and nothing missing."""
        return not self.regressions and not self.missing

    def table(self) -> Table:
        t = Table(
            f"bench compare (tolerance ±{self.tolerance:.0%})",
            [
                "bench",
                "baseline_ev_s",
                "current_ev_s",
                "delta",
                "verdict",
            ],
        )
        for r in self.rows:
            t.add_row(
                [
                    r["name"],
                    f"{r['baseline_events_per_s']:.0f}",
                    f"{r['current_events_per_s']:.0f}",
                    f"{r['delta']:+.1%}",
                    r["verdict"],
                ]
            )
        for name in self.missing:
            t.add_row([name, "-", "-", "-", "MISSING"])
        for name in self.new:
            t.add_row([name, "-", "-", "-", "NEW"])
        return t


def compare_reports(
    baseline: Dict[str, Any],
    current: BenchReport,
    tolerance: float = 0.25,
    require_all: bool = True,
) -> BenchComparison:
    """Compare a fresh run against a baseline document.

    ``tolerance`` is the allowed relative throughput loss (0.25 = a bench
    may run up to 25% slower than the baseline before the gate trips);
    wall-clock gates must leave room for machine-to-machine noise, which is
    why the default is generous and CI pins its own value explicitly.
    ``require_all=False`` skips the missing-benchmark check -- the right
    mode for ``--filter``-restricted local runs, where unselected baseline
    entries are absent by design, not silently dropped.
    """
    if not (0.0 < tolerance < 1.0):
        raise ConfigError(f"tolerance must be in (0, 1), got {tolerance}")
    base_by_name = {b["name"]: b for b in baseline.get("benches", [])}
    comparison = BenchComparison(tolerance=float(tolerance))
    current_names = set()
    for record in current.records:
        current_names.add(record.name)
        base = base_by_name.get(record.name)
        if base is None:
            comparison.new.append(record.name)
            continue
        base_eps = float(base["events_per_s"])
        cur_eps = record.events_per_s
        delta = (cur_eps - base_eps) / base_eps if base_eps > 0 else 0.0
        if delta < -tolerance:
            verdict = "REGRESSED"
        elif delta > tolerance:
            verdict = "IMPROVED"
        else:
            verdict = "ok"
        comparison.rows.append(
            {
                "name": record.name,
                "baseline_events_per_s": base_eps,
                "current_events_per_s": cur_eps,
                "delta": delta,
                "verdict": verdict,
            }
        )
    if require_all:
        comparison.missing = sorted(set(base_by_name) - current_names)
    return comparison
