"""The benchmark runner: deterministic execution, timing, artifacts.

:class:`BenchRunner` executes each selected :class:`~repro.perf.specs.BenchSpec`
``repeats`` times with deterministic seeds and collects, per benchmark:

- per-repeat **wall-clock** (``time.perf_counter`` around the spec ``fn``,
  with a ``gc.collect()`` fence between repeats so collector debt from one
  benchmark is not billed to the next);
- **events-per-second** from the best (minimum) wall sample -- best-of-N is
  the standard noise-robust statistic for regression gating;
- **peak RSS** (``resource.getrusage`` high-water, kilobytes on Linux).
  The OS counter is monotonic over the process lifetime, so per-benchmark
  values measure the high-water *as of that benchmark* -- comparable across
  runs because the execution order (registry order) is fixed.

Artifacts are schema-versioned: :meth:`BenchReport.write` emits the next
``BENCH_<n>.json`` in the output directory (the perf trajectory -- one file
per recorded run, never overwritten) plus a ``BENCH_<n>.csv`` rendered via
:class:`repro.common.tables.Table`.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.common.errors import ConfigError
from repro.common.tables import Table
from repro.perf.specs import BenchSpec, select

__all__ = ["BENCH_SCHEMA", "BenchRecord", "BenchReport", "BenchRunner"]

#: Artifact schema identifier; bump on any incompatible layout change.
BENCH_SCHEMA = "repro-bench/1"


def _peak_rss_kb() -> int:
    """Process peak RSS in kilobytes (0 where the platform offers none)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS bytes; normalize to KB.
    if platform.system() == "Darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


@dataclass
class BenchRecord:
    """Measured result of one benchmark (all repeats)."""

    name: str
    description: str
    events_unit: str
    params: Dict[str, Any]
    events: int
    wall_s: List[float] = field(default_factory=list)
    peak_rss_kb: int = 0

    @property
    def wall_best_s(self) -> float:
        """Fastest repeat -- the noise-robust statistic compare gates on."""
        return min(self.wall_s)

    @property
    def wall_mean_s(self) -> float:
        return sum(self.wall_s) / len(self.wall_s)

    @property
    def events_per_s(self) -> float:
        """Throughput at the best repeat."""
        return self.events / max(self.wall_best_s, 1e-12)

    def to_doc(self) -> Dict[str, Any]:
        """JSON-safe document for the ``BENCH_<n>.json`` artifact."""
        return {
            "name": self.name,
            "description": self.description,
            "events_unit": self.events_unit,
            "params": dict(sorted(self.params.items())),
            "events": int(self.events),
            "repeats": len(self.wall_s),
            "wall_s": [round(w, 6) for w in self.wall_s],
            "wall_best_s": round(self.wall_best_s, 6),
            "wall_mean_s": round(self.wall_mean_s, 6),
            "events_per_s": round(self.events_per_s, 3),
            "peak_rss_kb": int(self.peak_rss_kb),
        }


@dataclass
class BenchReport:
    """One complete benchmark run: configuration plus per-bench records."""

    quick: bool
    repeats: int
    seed: int
    records: List[BenchRecord] = field(default_factory=list)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "schema": BENCH_SCHEMA,
            "config": {
                "quick": self.quick,
                "repeats": self.repeats,
                "seed": self.seed,
            },
            "host": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "system": platform.system(),
                "cpu_count": os.cpu_count() or 0,
            },
            "benches": [r.to_doc() for r in self.records],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_doc(), sort_keys=True, indent=2) + "\n"

    def table(self) -> Table:
        """ASCII summary (the ``repro bench`` stdout report)."""
        mode = "quick" if self.quick else "full"
        t = Table(
            f"bench: {len(self.records)} benchmarks ({mode}, "
            f"best of {self.repeats}, seed {self.seed})",
            [
                "bench",
                "events",
                "unit",
                "wall_best_s",
                "wall_mean_s",
                "events_per_s",
                "peak_rss_kb",
            ],
        )
        for r in self.records:
            t.add_row(
                [
                    r.name,
                    r.events,
                    r.events_unit,
                    f"{r.wall_best_s:.4f}",
                    f"{r.wall_mean_s:.4f}",
                    f"{r.events_per_s:.0f}",
                    r.peak_rss_kb,
                ]
            )
        return t

    def to_csv(self) -> str:
        return self.table().to_csv()

    def write(self, out_dir: str) -> Dict[str, str]:
        """Append this run to the perf trajectory under ``out_dir``.

        Writes ``BENCH_<n>.json`` and ``BENCH_<n>.csv`` with ``n`` one past
        the highest existing index -- artifacts accumulate, so the directory
        is a machine-readable perf history of the repository.
        """
        os.makedirs(out_dir, exist_ok=True)
        pattern = re.compile(r"^BENCH_(\d+)\.json$")
        taken = [
            int(m.group(1))
            for f in os.listdir(out_dir)
            if (m := pattern.match(f)) is not None
        ]
        n = max(taken, default=0) + 1
        paths = {
            "json": os.path.join(out_dir, f"BENCH_{n}.json"),
            "csv": os.path.join(out_dir, f"BENCH_{n}.csv"),
        }
        with open(paths["json"], "w", encoding="utf-8") as f:
            f.write(self.to_json())
        with open(paths["csv"], "w", encoding="utf-8") as f:
            f.write(self.to_csv())
        return paths

    def write_baseline(self, path: str) -> str:
        """Write this run as the named comparison baseline (overwrites)."""
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_json())
        return path


class BenchRunner:
    """Execute benchmark specs and collect a :class:`BenchReport`.

    Parameters
    ----------
    repeats:
        Wall-clock samples per benchmark (best-of-N gating).
    quick:
        Use each spec's ``quick`` parameter overrides.
    seed:
        Root seed passed to every spec (execution stays deterministic:
        repeating a run re-processes the exact same events).
    """

    def __init__(self, repeats: int = 3, quick: bool = False, seed: int = 11):
        if repeats < 1:
            raise ConfigError(f"repeats must be >= 1, got {repeats}")
        self.repeats = int(repeats)
        self.quick = bool(quick)
        self.seed = int(seed)

    def run_one(self, spec: BenchSpec) -> BenchRecord:
        """Execute one spec ``repeats`` times and record its samples."""
        params = spec.resolve_params(self.seed, quick=self.quick)
        record = BenchRecord(
            name=spec.name,
            description=spec.description,
            events_unit=spec.events_unit,
            params=params,
            events=0,
        )
        prev: Optional[int] = None
        for _ in range(self.repeats):
            gc.collect()
            t0 = time.perf_counter()
            events = int(spec.fn(params))
            record.wall_s.append(time.perf_counter() - t0)
            if prev is not None and events != prev:
                raise ConfigError(
                    f"benchmark {spec.name!r} is non-deterministic: "
                    f"{events} events vs {prev} on a prior repeat"
                )
            prev = events
            record.events = events
        record.peak_rss_kb = _peak_rss_kb()
        return record

    def run(
        self, filters: Optional[List[str]] = None, progress=None
    ) -> BenchReport:
        """Execute every selected benchmark (sorted registry order)."""
        report = BenchReport(quick=self.quick, repeats=self.repeats, seed=self.seed)
        for spec in select(filters):
            if progress is not None:
                progress(spec)
            report.records.append(self.run_one(spec))
        return report
