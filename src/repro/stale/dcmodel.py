"""Datacenter-aware stale-read model.

The rank-window model in :mod:`repro.stale.model` assumes the read contacts
a *uniformly random* replica subset. Real coordinators (and this
simulator's) are snitch-ordered: they prefer replicas in their own
datacenter. That correlates the contacted replicas' lags -- all local
replicas of a remotely-committed write lag by the same WAN delay -- so the
uniform-subset model underestimates staleness for multi-replica reads.

This model keeps the per-datacenter structure explicit. The paper's
monitoring module "collects ... network latencies"; here those latencies
come in as the mean one-way delay matrix between datacenters.

For a read issued from DC ``d`` at level ``r`` against a key written from
DC ``d'`` (both weighted by where coordinators live):

- the write reaches replicas in DC ``e`` at ``W[d', e] = delay(d', e) +
  write_service`` after its start (the strict Figure-1 bar);
- the read arrives at a replica in DC ``e`` at ``delay(d, e) +
  read_service`` after *its* start, which eats into the staleness window;
- the contacted DCs are the local DC first, then remote DCs by proximity,
  honouring the per-DC replica counts;
- with ``tau ~ Exp(lambda_w)`` since the last write, the read is stale iff
  ``tau < min_e [ W[d', e] - arrival(d, e) ]`` over contacted DCs ``e``
  (replicas within one DC share the same window -- exactly the correlation
  the uniform model misses).

Hence ``P = sum_{d, d'} p_d p_{d'} (1 - exp(-lambda_w * V(d, d')))`` with
``V`` the positive part of that minimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import math

from repro.common.errors import ConfigError

__all__ = ["DeploymentInfo", "per_key_stale_dc", "system_stale_rate_dc"]


@dataclass
class DeploymentInfo:
    """The deployment facts the DC-aware model needs.

    Attributes
    ----------
    coordinator_share:
        Probability a random operation is coordinated from each DC
        (proportional to node counts when clients spread evenly).
    rf_per_dc:
        Replicas of each key per DC.
    delay:
        ``delay[a][b]``: mean one-way network delay from DC ``a`` to ``b``.
    write_service / read_service:
        Mean replica service times.
    """

    coordinator_share: List[float]
    rf_per_dc: List[int]
    delay: List[List[float]]
    write_service: float
    read_service: float

    def __post_init__(self) -> None:
        n = len(self.coordinator_share)
        if not (len(self.rf_per_dc) == n and len(self.delay) == n):
            raise ConfigError("DeploymentInfo fields must align on DC count")
        total = sum(self.coordinator_share)
        if total <= 0:
            raise ConfigError("coordinator shares must sum to a positive value")
        self.coordinator_share = [s / total for s in self.coordinator_share]

    @property
    def n_dcs(self) -> int:
        """Number of datacenters."""
        return len(self.rf_per_dc)

    @property
    def rf_total(self) -> int:
        """Total replication factor."""
        return sum(self.rf_per_dc)

    @classmethod
    def from_store(cls, store) -> "DeploymentInfo":
        """Extract deployment facts from a running store.

        Uses the topology's latency-model means -- the same quantities a
        real monitoring module estimates by probing inter-node RTTs.
        """
        topo = store.topology
        n = len(topo.datacenters)
        shares = [topo.nodes_per_dc[d] / topo.n_nodes for d in range(n)]
        by_dc = getattr(store.strategy, "rf_per_dc", None)
        if by_dc:
            rf = [by_dc.get(d, 0) for d in range(n)]
        else:
            # SimpleStrategy spreads roughly proportionally to node counts.
            total = store.strategy.rf_total
            rf = [max(1, round(total * s)) for s in shares]
            while sum(rf) > total:
                rf[rf.index(max(rf))] -= 1
            while sum(rf) < total:
                rf[rf.index(min(rf))] += 1
        reps = [topo.nodes_in_dc(d)[0] for d in range(n)]
        delay = [
            [
                topo.latency_model(reps[a], reps[b]).mean() if a != b
                else topo.latency_models[_intra_class()].mean()
                for b in range(n)
            ]
            for a in range(n)
        ]
        svc = store.config.service
        return cls(
            coordinator_share=shares,
            rf_per_dc=rf,
            delay=delay,
            write_service=svc.mean_write(),
            read_service=svc.mean_read(),
        )


def _intra_class():
    from repro.net.topology import LinkClass

    return LinkClass.INTRA_DC


def _contacted_dcs(info: DeploymentInfo, reader_dc: int, read_level: int) -> List[int]:
    """DCs whose replicas a level-``r`` read from ``reader_dc`` contacts."""
    remaining = read_level
    order = sorted(
        range(info.n_dcs),
        key=lambda e: (e != reader_dc, info.delay[reader_dc][e]),
    )
    contacted: List[int] = []
    for e in order:
        take = min(remaining, info.rf_per_dc[e])
        if take > 0:
            contacted.append(e)
            remaining -= take
        if remaining == 0:
            break
    return contacted


def per_key_stale_dc(
    info: DeploymentInfo,
    write_rate: float,
    read_level: int,
) -> float:
    """Strict (Figure-1) stale probability of one key, DC-aware.

    ``write_rate`` is the key's Poisson write rate; ``read_level`` the
    number of replicas contacted.
    """
    if write_rate < 0:
        raise ConfigError(f"write_rate must be >= 0, got {write_rate}")
    if not (1 <= read_level <= info.rf_total):
        raise ConfigError(f"read_level {read_level} outside 1..{info.rf_total}")
    if write_rate == 0.0:
        return 0.0
    acc = 0.0
    for d, p_read in enumerate(info.coordinator_share):
        if p_read <= 0:
            continue
        contacted = _contacted_dcs(info, d, read_level)
        for d2, p_write in enumerate(info.coordinator_share):
            if p_write <= 0:
                continue
            window = math.inf
            for e in contacted:
                apply_at = info.delay[d2][e] + info.write_service
                read_arrives = info.delay[d][e] + info.read_service
                window = min(window, max(apply_at - read_arrives, 0.0))
            acc += p_read * p_write * (-math.expm1(-write_rate * window))
    return min(acc, 1.0)


def system_stale_rate_dc(
    info: DeploymentInfo,
    write_rate: float,
    key_profile: Sequence[Tuple[float, float, int]],
    read_level: int,
) -> float:
    """Workload-wide DC-aware strict staleness (read-share-weighted)."""
    if not key_profile:
        return 0.0
    acc = 0.0
    for read_share, write_share, mult in key_profile:
        if read_share <= 0:
            continue
        p = per_key_stale_dc(info, write_rate * write_share, read_level)
        acc += read_share * mult * p
    return min(acc, 1.0)
