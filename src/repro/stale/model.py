"""Closed-form stale-read probability.

The model, per Figure 1 of the paper
---------------------------------------

A write of a key arrives (Poisson, per-key rate ``lambda_w``). At level
``w`` it is acknowledged once ``w`` replicas applied it (time ``T`` = the
rank-``w`` apply delay); the remaining ``N - w`` replicas apply it after
their own delays. Replica *i*'s **residual window** is
``W_i = max(apply_i - T, 0)`` -- the time it still serves the old value
*after* the write is acknowledged.

A read (Poisson, rate ``lambda_r``) contacts ``r`` replicas chosen
uniformly without replacement and returns the newest version seen. By the
memorylessness of Poisson arrivals, the time since the last acknowledged
write is ``tau ~ Exp(lambda_w)``. The read is stale iff **every** contacted
replica still lags, i.e. contacted subset ``S`` satisfies
``min_{i in S} W_i > tau``.

Two structural facts sharpen this:

1. **Quorum overlap**: if ``r + w > N`` the contacted set always intersects
   the synchronous set, so ``P_stale = 0`` exactly.
2. **Synchronous avoidance**: otherwise the read is stale only if ``S``
   avoids the ``w`` synchronous replicas (probability
   ``C(N-w, r) / C(N, r)``, hypergeometric), and conditional on avoidance
   ``S`` is a uniform ``r``-subset of the ``N - w`` laggards.

With deterministic windows ``V_1 <= ... <= V_M`` (``M = N - w``, the
laggards' windows sorted ascending), the min over a uniform ``r``-subset has
``P(min = V_j) = C(M - j, r - 1) / C(M, r)``, so

    P_stale(r, w) = C(N-w, r)/C(N, r) *
                    sum_j [ C(M-j, r-1)/C(M, r) * (1 - exp(-lambda_w V_j)) ]

:func:`closed_form_exponential` gives the even simpler form when windows
are modelled Exp(theta): ``P = H * lambda_w*theta / (lambda_w*theta + r)``.

System-level staleness aggregates per-key staleness over the workload's key
profile: ``P_sys = sum_k read_share_k * P_stale(lambda_w * write_share_k)``
(:func:`system_stale_rate`) -- the skew correction that makes zipfian
workloads read much more stale data than uniform ones at equal aggregate
rates.

Known approximations (validated against Monte Carlo and the simulator):
reads are judged at replica serve time rather than read start (slightly
conservative), windows use mean delays rather than full distributions, and
only the most recent write can be missed (excellent when
``lambda_w * max(W) << 1``, still conservative above).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.cluster.consistency import quorum_intersects

__all__ = [
    "StaleModelParams",
    "per_key_stale_probability",
    "per_key_stale_probability_strict",
    "closed_form_exponential",
    "system_stale_rate",
    "params_from_snapshot",
]


def _check_levels(read_level: int, write_level: int, rf: int) -> None:
    if rf < 1:
        raise ConfigError(f"rf must be >= 1, got {rf}")
    if not (1 <= read_level <= rf):
        raise ConfigError(f"read_level {read_level} outside 1..{rf}")
    if not (1 <= write_level <= rf):
        raise ConfigError(f"write_level {write_level} outside 1..{rf}")


def per_key_stale_probability(
    write_rate: float,
    read_level: int,
    write_level: int,
    windows: Sequence[float],
) -> float:
    """Stale probability for one key written at Poisson rate ``write_rate``.

    Parameters
    ----------
    write_rate:
        Per-key write arrival rate (writes/sec).
    read_level / write_level:
        Replica counts ``r`` and ``w``.
    windows:
        Residual staleness windows per replica (``rf`` entries; the
        synchronous ranks contribute zeros). Order does not matter.
    """
    rf = len(windows)
    _check_levels(read_level, write_level, rf)
    if write_rate < 0:
        raise ConfigError(f"write_rate must be >= 0, got {write_rate}")
    if write_rate == 0.0:
        return 0.0
    r, w = read_level, write_level
    if quorum_intersects(r, w, rf):
        return 0.0

    # Laggard windows: drop the w smallest (the synchronous ranks).
    laggards = sorted(windows)[w:]
    m = len(laggards)
    if r > m:  # cannot even pick r laggards -> some contacted replica is sync
        return 0.0

    avoid = math.comb(rf - w, r) / math.comb(rf, r)

    total_subsets = math.comb(m, r)
    acc = 0.0
    lam = write_rate
    for j, v in enumerate(laggards, start=1):  # v ascending; j is 1-based rank
        weight = math.comb(m - j, r - 1) / total_subsets
        if weight == 0.0:
            continue
        acc += weight * (-math.expm1(-lam * v))
    return avoid * acc


def per_key_stale_probability_strict(
    write_rate: float,
    read_level: int,
    windows: Sequence[float],
) -> float:
    """Stale probability under the strict Figure-1 definition.

    Here the freshness bar rises at the write's **start** (``Xw``), not its
    acknowledgement, so every replica's window is its *full* apply delay
    (no commit-rank subtraction) and there is no synchronous-avoidance
    term: even the replicas that will form the write's quorum lag while the
    write is in flight. Same subset-minimum DP as the committed form:

        P = sum_j C(N-j, r-1)/C(N, r) * (1 - exp(-lambda_w W_j))

    over the apply delays ``W_1 <= ... <= W_N``. This is the definition the
    paper's Figure 1 draws and the conservative quantity its estimator
    reports ("X% of reads are estimated to be up-to-date").
    """
    rf = len(windows)
    if rf < 1:
        raise ConfigError("need at least one window")
    if not (1 <= read_level <= rf):
        raise ConfigError(f"read_level {read_level} outside 1..{rf}")
    if write_rate < 0:
        raise ConfigError(f"write_rate must be >= 0, got {write_rate}")
    if write_rate == 0.0:
        return 0.0
    r = read_level
    ordered = sorted(windows)
    total_subsets = math.comb(rf, r)
    acc = 0.0
    for j, v in enumerate(ordered, start=1):
        weight = math.comb(rf - j, r - 1) / total_subsets
        if weight == 0.0:
            continue
        acc += weight * (-math.expm1(-write_rate * v))
    return acc


def closed_form_exponential(
    write_rate: float,
    read_level: int,
    write_level: int,
    rf: int,
    theta: float,
) -> float:
    """Stale probability with i.i.d. ``Exp(theta)``-distributed windows.

    ``P = C(N-w, r)/C(N, r) * (lambda * theta) / (lambda * theta + r)`` --
    the memoryless special case, handy for back-of-envelope level choice and
    as a regression anchor in tests.
    """
    _check_levels(read_level, write_level, rf)
    if theta < 0:
        raise ConfigError(f"theta must be >= 0, got {theta}")
    if write_rate <= 0.0 or theta == 0.0:
        return 0.0
    r, w = read_level, write_level
    if quorum_intersects(r, w, rf):
        return 0.0
    avoid = math.comb(rf - w, r) / math.comb(rf, r)
    lt = write_rate * theta
    return avoid * lt / (lt + r)


@dataclass
class StaleModelParams:
    """Everything the system-level estimator needs.

    Attributes
    ----------
    write_rate:
        Aggregate write arrival rate (writes/sec over all keys).
    windows:
        Residual windows per replica for the *current* write level.
    key_profile:
        ``[(read_share, write_share, multiplicity)]`` rows; ``[(1, 1, 1)]``
        means "a single key takes all traffic" and
        ``[(1/K, 1/K, K)]``-style rows encode a uniform keyspace.
    rf:
        Replication factor (defaults to ``len(windows)``).
    strict:
        Staleness definition: ``True`` = Figure-1 write-start bar (windows
        are full apply delays), ``False`` = committed bar (windows are
        post-acknowledgement residuals).
    """

    write_rate: float
    windows: Sequence[float]
    key_profile: Sequence[Tuple[float, float, int]]
    rf: Optional[int] = None
    strict: bool = True

    def __post_init__(self) -> None:
        if self.rf is None:
            self.rf = len(self.windows)
        if self.rf != len(self.windows):
            raise ConfigError(
                f"rf={self.rf} but {len(self.windows)} windows supplied"
            )


def system_stale_rate(
    params: StaleModelParams, read_level: int, write_level: int
) -> float:
    """Workload-wide stale-read probability at levels ``(r, w)``.

    The read-share-weighted average of per-key staleness over the key
    profile. Profiles not summing exactly to one (truncation) are used
    as-is: missing mass means unobserved cold keys, which contribute ~0.
    """
    if not params.key_profile:
        return 0.0
    acc = 0.0
    for read_share, write_share, mult in params.key_profile:
        if read_share <= 0.0:
            continue
        lam_key = params.write_rate * write_share
        if params.strict:
            p = per_key_stale_probability_strict(
                lam_key, read_level, params.windows
            )
        else:
            p = per_key_stale_probability(
                lam_key, read_level, write_level, params.windows
            )
        acc += read_share * mult * p
    return min(acc, 1.0)


def params_from_snapshot(
    snapshot,
    write_level: int,
    fallback_rf: int,
    fallback_window: float = 0.0,
    strict: bool = True,
) -> StaleModelParams:
    """Build model parameters from a :class:`~repro.monitor.collector.MonitorSnapshot`.

    Before any write has fully propagated the monitor has no ack profile;
    ``fallback_rf`` / ``fallback_window`` seed the model conservatively in
    that cold-start phase (Harmony then starts from whatever level the
    fallback implies and adapts as data arrives).

    ``strict`` selects the Figure-1 (write-start) definition, the paper's
    conservative choice; ``False`` selects the committed-bar definition.
    """
    rf = snapshot.replication_factor()
    if rf == 0:
        rf = fallback_rf
        windows = [fallback_window] * rf
    elif strict:
        windows = list(snapshot.ack_rank_means)
    else:
        windows = snapshot.propagation_windows(write_level)
    profile = snapshot.key_profile or [(1.0, 1.0, 1)]
    return StaleModelParams(
        write_rate=snapshot.write_rate,
        windows=windows,
        key_profile=profile,
        rf=rf,
        strict=strict,
    )
