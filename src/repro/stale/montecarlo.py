"""Monte-Carlo estimation of the stale-read probability.

Simulates the Figure-1 process directly -- Poisson writes with sampled
per-replica apply delays, Poisson reads contacting random replica subsets --
without any of the closed form's simplifications (windows keep their full
distribution, consecutive writes can overlap, the commit time is the true
order statistic per write). Agreement between this estimator, the closed
form and the full store simulator is what the FIG1 experiment demonstrates.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import spawn_rng

__all__ = ["MonteCarloStaleEstimator"]


class MonteCarloStaleEstimator:
    """Direct simulation of one key's read/write race.

    Parameters
    ----------
    write_rate / read_rate:
        Per-key Poisson arrival rates (reads/sec, writes/sec). The read rate
        only controls sample count per unit of simulated time; the stale
        probability itself is read-rate-invariant (PASTA).
    rf:
        Replication factor.
    delay_sampler:
        ``f(rng, n_writes) -> (n_writes, rf)`` array of per-replica apply
        delays. Defaults to lognormal-ish delays if not given.
    """

    def __init__(
        self,
        write_rate: float,
        read_rate: float,
        rf: int,
        delay_sampler: Optional[Callable[[np.random.Generator, int], np.ndarray]] = None,
        rng: "np.random.Generator | int | None" = None,
    ):
        if write_rate <= 0 or read_rate <= 0:
            raise ConfigError("rates must be positive")
        if rf < 1:
            raise ConfigError(f"rf must be >= 1, got {rf}")
        self.write_rate = float(write_rate)
        self.read_rate = float(read_rate)
        self.rf = int(rf)
        self.rng = spawn_rng(rng)
        self._sampler = delay_sampler or self._default_sampler

    def _default_sampler(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(mean=-4.0, sigma=0.5, size=(n, self.rf))

    def estimate(
        self,
        read_level: int,
        write_level: int,
        horizon: float = 500.0,
    ) -> float:
        """Estimated stale-read probability over ``horizon`` simulated seconds."""
        r, w, rf = int(read_level), int(write_level), self.rf
        if not (1 <= r <= rf and 1 <= w <= rf):
            raise ConfigError(f"levels ({r},{w}) outside 1..{rf}")

        rng = self.rng
        # --- writes: arrival times, per-replica apply times, ack times -------
        n_writes = max(1, int(self.write_rate * horizon * 1.2) + 8)
        gaps = rng.exponential(1.0 / self.write_rate, size=n_writes)
        w_times = np.cumsum(gaps)
        w_times = w_times[w_times < horizon]
        n_writes = len(w_times)
        if n_writes == 0:
            return 0.0
        delays = self._sampler(rng, n_writes)  # (n_writes, rf)
        apply_times = w_times[:, None] + delays
        # rank-w apply delay = commit (acknowledgement) time of each write
        kth = np.partition(delays, w - 1, axis=1)[:, w - 1]
        ack_times = w_times + kth

        # --- reads ------------------------------------------------------------
        n_reads = max(1, int(self.read_rate * horizon))
        r_times = np.sort(rng.uniform(0.0, horizon, size=n_reads))

        # committed bar per read: last write acked at or before the read.
        # ack_times are not necessarily sorted (overlapping writes); the bar
        # is the max write *index* among acked ones -- compute via running max.
        order = np.argsort(ack_times, kind="stable")
        sorted_acks = ack_times[order]
        running_latest = np.maximum.accumulate(order)  # newest write idx acked so far
        bar_pos = np.searchsorted(sorted_acks, r_times, side="right") - 1

        stale = 0
        judged = 0
        contact = np.empty(r, dtype=np.int64)
        for read_idx in range(n_reads):
            bp = bar_pos[read_idx]
            if bp < 0:
                continue  # nothing committed yet: cannot be stale
            bar_write = int(running_latest[bp])
            x = r_times[read_idx]
            judged += 1
            # contacted replicas
            contact = rng.choice(rf, size=r, replace=False)
            # replica i is fresh if it applied the bar write (or any newer
            # write) by the read time.
            fresh = False
            for i in contact:
                if apply_times[bar_write, i] <= x:
                    fresh = True
                    break
                # a newer write applied on i also counts as fresh
                nw = bar_write + 1
                while nw < n_writes and w_times[nw] <= x:
                    if apply_times[nw, i] <= x:
                        fresh = True
                        break
                    nw += 1
                if fresh:
                    break
            if not fresh:
                stale += 1
        if judged == 0:
            return 0.0
        return stale / judged

    def estimate_matrix(
        self, write_level: int, horizon: float = 500.0
    ) -> np.ndarray:
        """Stale probability for every read level ``1..rf`` (shared randomness)."""
        return np.array(
            [
                self.estimate(r, write_level, horizon=horizon)
                for r in range(1, self.rf + 1)
            ]
        )
