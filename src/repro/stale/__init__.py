"""Stale-read probability estimation (the model behind Figure 1).

- :mod:`repro.stale.model` -- the closed-form estimator: Poisson read/write
  arrivals, per-replica residual propagation windows, quorum-overlap
  correction, and key-skew aggregation;
- :mod:`repro.stale.montecarlo` -- an independent Monte-Carlo estimator of
  the same quantity, used to validate the closed form (and by the FIG1
  benchmark, against the simulator's ground-truth oracle as well).
"""

from repro.stale.model import (
    StaleModelParams,
    per_key_stale_probability,
    per_key_stale_probability_strict,
    closed_form_exponential,
    system_stale_rate,
    params_from_snapshot,
)
from repro.stale.dcmodel import DeploymentInfo, per_key_stale_dc, system_stale_rate_dc
from repro.stale.montecarlo import MonteCarloStaleEstimator

__all__ = [
    "StaleModelParams",
    "per_key_stale_probability",
    "per_key_stale_probability_strict",
    "closed_form_exponential",
    "system_stale_rate",
    "params_from_snapshot",
    "MonteCarloStaleEstimator",
    "DeploymentInfo",
    "per_key_stale_dc",
    "system_stale_rate_dc",
]
