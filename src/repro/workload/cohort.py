"""Cohort-mode workload generation: millions of clients as pooled processes.

Per-client mode (:class:`~repro.workload.client.ClosedLoopClient`) gives
every simulated client its own object, RNG stream and key chooser, which
caps sweeps at ~10^4 clients.  A :class:`CohortPopulation` models the *N*
clients colocated with one datacenter and sharing one workload mix as a
single pooled generator:

- **Arrivals** are the superposition of the members' individual processes.
  For paced members that superposition is (asymptotically) Poisson at the
  aggregate rate, so the cohort draws unit-exponential inter-arrival gaps
  in vectorized batches -- the same bit-identical batching guarantee PR 4
  established for :class:`~repro.workload.client.OpenLoopSource`, proven by
  ``tests/test_cohort.py`` -- and scales them by the *current* rate at
  scheduling time, so mid-run re-pacing (diurnal shapes) applies on the
  very next arrival without touching the RNG stream.
- **Concurrency** is capped at the member count: an arrival that finds all
  members busy queues in a backlog and is issued by the next completion,
  which preserves the closed-loop property that one client never has two
  operations outstanding.  Unpaced cohorts degenerate to exactly the
  pooled closed loop: ``min(members, ops)`` operations in flight, each
  completion issuing the next.
- **Accounting** is aggregated per cohort (ops, latency, staleness via
  :class:`~repro.common.stats.OnlineStats`) while every operation still
  flows through ``store.read`` / ``store.write`` -- the monitor collectors,
  staleness oracle, billing and adaptive policies observe cohort traffic
  through the exact listener hooks per-client traffic uses.

The memory and setup cost of a cohort is O(1) in the member count, which
is what moves the client-count ceiling from ~10^4 to 10^6+ (see the
``cohort-million-clients`` benchmark).  ``tests/test_cohort_fidelity.py``
is the equivalence evidence: per-client and cohort mode agree on
staleness / latency / cost within documented tolerances on real scenarios.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigError
from repro.common.stats import OnlineStats
from repro.cluster.coordinator import OpResult
from repro.cluster.store import ReplicatedStore
from repro.policy import ConsistencyPolicy
from repro.workload.traces import TraceRecord
from repro.workload.workloads import WorkloadSpec

__all__ = ["CohortPopulation"]

#: Unit-exponential gaps drawn per RNG round-trip.  Large enough that the
#: generator call overhead amortizes to nothing, small enough that a paced
#: run's working set stays cache-resident.
_GAP_BATCH = 4096


class CohortPopulation:
    """``members`` clients of one (DC, workload-mix) as one pooled generator.

    Parameters
    ----------
    store, spec, policy:
        The deployment, the workload mix, and the consistency policy --
        exactly as for the per-client classes.
    members:
        How many clients this cohort stands in for.  Bounds the number of
        operations in flight (one outstanding op per member).
    ops:
        Total operations the cohort will issue.
    rng:
        Generator for operation sampling (op type, key, coordinator).
    arrival_rng:
        Generator for inter-arrival gaps.  Kept separate from ``rng`` so
        batched gap refills never perturb the op-sampling stream; defaults
        to ``rng`` being split is **not** done implicitly -- pass one
        (the runner derives ``cohort.<dc>.arrivals``) or arrivals fall
        back to ``rng`` with gap draws interleaving op draws.
    target_rate:
        Aggregate offered rate of the whole cohort (ops/sec), or ``None``
        for the unpaced pooled closed loop.
    dc:
        Datacenter whose nodes coordinate this cohort's operations.
    on_finished:
        Callback fired once when the last operation completes.
    batch:
        Unit-exponential gaps per vectorized refill (tested bit-identical
        to scalar draws for any value >= 1).
    """

    #: Pacing weight relative to a single closed-loop client (the elastic
    #: re-pacer splits a total offered rate proportionally to this).
    @property
    def weight(self) -> int:
        return self.members

    def __init__(
        self,
        store: ReplicatedStore,
        spec: WorkloadSpec,
        policy: ConsistencyPolicy,
        members: int,
        ops: int,
        rng: np.random.Generator,
        arrival_rng: Optional[np.random.Generator] = None,
        target_rate: Optional[float] = None,
        dc: Optional[int] = None,
        on_finished=None,
        batch: int = _GAP_BATCH,
    ):
        if members < 1:
            raise ConfigError(f"members must be >= 1, got {members}")
        if ops < 0:
            raise ConfigError(f"ops must be >= 0, got {ops}")
        if target_rate is not None and target_rate <= 0:
            raise ConfigError(f"target_rate must be positive, got {target_rate}")
        if batch < 1:
            raise ConfigError(f"batch must be >= 1, got {batch}")
        self.store = store
        self.spec = spec
        self.policy = policy
        self.members = int(members)
        self.remaining = int(ops)
        self.ops_total = int(ops)
        self.rng = rng
        self.arrival_rng = arrival_rng if arrival_rng is not None else rng
        self.rate = float(target_rate) if target_rate else None
        self.dc = dc
        self.on_finished = on_finished
        self.chooser = spec.make_chooser(rng=rng)
        self.inserted = 0
        self.issued = 0
        self.in_flight = 0
        #: arrivals that found every member busy, waiting for a completion.
        self.backlog = 0
        self._batch = int(batch)
        self._gaps: Optional[np.ndarray] = None
        self._gap_pos = 0
        self._arrivals_left = 0
        self._script: Optional[List[Tuple[float, str, str]]] = None
        #: scripted ops that found every member busy ((kind, key) FIFO).
        self._script_backlog: List[Tuple[str, str]] = []
        # -- aggregate per-cohort accounting (fed to RunReport.cohorts) ----
        self.read_latency = OnlineStats()
        self.write_latency = OnlineStats()
        self.stale_reads = 0
        self.failed_ops = 0
        self.completed = 0

    # -- construction from a recorded trace ------------------------------------

    @classmethod
    def from_trace(
        cls,
        store: ReplicatedStore,
        trace: Sequence[TraceRecord],
        policy: ConsistencyPolicy,
        members: Optional[int] = None,
        time_scale: float = 1.0,
        dc: Optional[int] = None,
        on_finished=None,
    ) -> "CohortPopulation":
        """A cohort that replays a trace instead of sampling a mix.

        Arrival times, op kinds and keys come from the records (scaled by
        ``time_scale``); the member window and aggregate accounting work as
        for synthetic cohorts.  ``members`` defaults to the trace length,
        i.e. an unbounded window.
        """
        if time_scale <= 0:
            raise ConfigError(f"time_scale must be positive, got {time_scale}")
        records = list(trace)
        cohort = cls(
            store,
            WorkloadSpec(name="trace-replay", record_count=max(1, len(records))),
            policy,
            members=members if members is not None else max(1, len(records)),
            ops=len(records),
            rng=np.random.default_rng(0),
            dc=dc,
            on_finished=on_finished,
        )
        cohort._script = [
            (float(rec.t) * float(time_scale), rec.kind, rec.key) for rec in records
        ]
        return cohort

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Begin generating operations (call before ``sim.run``)."""
        if self.remaining == 0:
            self._finish()
            return
        if self._script is not None:
            sim = self.store.sim
            base = sim.now
            for t, kind, key in self._script:
                sim.schedule_at(base + t, self._scripted_arrival, kind, key)
            return
        if self.rate is None:
            # Pooled closed loop: fill the member window, completions refill.
            for _ in range(min(self.members, self.remaining)):
                self.remaining -= 1
                self._issue()
            return
        self._arrivals_left = self.remaining
        self._schedule_next_arrival()

    def set_rate(self, target_rate: Optional[float]) -> None:
        """Re-pace the whole cohort mid-run (aggregate ops/sec).

        Paced cohorts apply the new rate on the very next arrival (gaps are
        stored rate-free as unit exponentials).  Switching a paced cohort to
        unpaced (``None``) lets the chained arrival scheduler drain what is
        already scheduled and issues the rest completion-driven.
        """
        if target_rate is not None and target_rate <= 0:
            raise ConfigError(f"target_rate must be positive, got {target_rate}")
        self.rate = float(target_rate) if target_rate else None

    # -- arrival machinery -------------------------------------------------------

    def _next_gap(self) -> float:
        """One unit-exponential gap from the vectorized buffer.

        The buffer refill is a single ``standard_exponential(size=batch)``
        call; numpy produces bit-identical doubles for the batched and the
        scalar form, so the arrival stream does not depend on ``batch``
        (property-tested).
        """
        if self._gaps is None or self._gap_pos >= len(self._gaps):
            self._gaps = self.arrival_rng.standard_exponential(
                size=min(self._batch, max(1, self._arrivals_left))
            )
            self._gap_pos = 0
        gap = float(self._gaps[self._gap_pos])
        self._gap_pos += 1
        return gap

    def _schedule_next_arrival(self) -> None:
        if self._arrivals_left <= 0:
            return
        self._arrivals_left -= 1
        if self.rate is None:
            # Re-paced to unpaced mid-run: issue the rest completion-driven.
            self._arrivals_left = 0
            while self.remaining > 0 and self.in_flight < self.members:
                self.remaining -= 1
                self._issue()
            return
        delay = self._next_gap() / self.rate
        self.store.sim.schedule(delay, self._arrival)

    def _arrival(self) -> None:
        if self.remaining > 0:
            self.remaining -= 1
            if self.in_flight < self.members:
                self._issue()
            else:
                self.backlog += 1
        self._schedule_next_arrival()

    def _scripted_arrival(self, kind: str, key: str) -> None:
        self.remaining -= 1
        if self.in_flight >= self.members:
            self._script_backlog.append((kind, key))
            return
        self._issue_scripted(kind, key)

    # -- operation emission ------------------------------------------------------

    def _coordinator(self) -> Optional[int]:
        if self.dc is None:
            return None
        coords = self.store.coordinator_pool(self.dc)
        if not coords:
            return None
        return coords[int(self.rng.integers(0, len(coords)))]

    def _issue(self) -> None:
        self.in_flight += 1
        self.issued += 1
        now = self.store.sim.now
        op = self.spec.sample_op(self.rng)
        if op == "insert":
            index = self.spec.record_count + self.inserted
            self.inserted += 1
            self.chooser.notify_insert(self.spec.record_count + self.inserted)
        else:
            index = self.chooser.next_index()
        key = self.spec.key_of(index)
        if op == "read":
            self.store.read(
                key, self.policy.read_level(now), self._op_done,
                coordinator=self._coordinator(),
            )
        elif op in ("update", "insert"):
            self.store.write(
                key, self.policy.write_level(now), self._op_done,
                value_size=self.spec.value_size,
                coordinator=self._coordinator(),
            )
        else:  # rmw: read, then write the same key (one op, two round-trips)
            self.store.read(
                key, self.policy.read_level(now), self._rmw_read_done(key),
                coordinator=self._coordinator(),
            )

    def _issue_scripted(self, kind: str, key: str) -> None:
        self.in_flight += 1
        self.issued += 1
        now = self.store.sim.now
        if kind == "read":
            self.store.read(
                key, self.policy.read_level(now), self._op_done,
                coordinator=self._coordinator(),
            )
        else:
            self.store.write(
                key, self.policy.write_level(now), self._op_done,
                value_size=self.spec.value_size,
                coordinator=self._coordinator(),
            )

    def _rmw_read_done(self, key: str):
        def then_write(result: OpResult) -> None:
            now = self.store.sim.now
            self.store.write(
                key, self.policy.write_level(now), self._op_done,
                value_size=self.spec.value_size,
                coordinator=self._coordinator(),
            )

        return then_write

    def _op_done(self, result: OpResult) -> None:
        self.in_flight -= 1
        self.completed += 1
        if result.ok:
            if result.kind == "read":
                self.read_latency.add(result.latency)
                if result.stale:
                    self.stale_reads += 1
            else:
                self.write_latency.add(result.latency)
        else:
            self.failed_ops += 1
        if self._script_backlog:
            kind, key = self._script_backlog.pop(0)
            self._issue_scripted(kind, key)
        elif self.backlog > 0:
            self.backlog -= 1
            self._issue()
        elif self.rate is None and self._script is None and self.remaining > 0:
            self.remaining -= 1
            self._issue()
        elif self.remaining <= 0 and self.in_flight == 0 and self._arrivals_left <= 0:
            self._finish()

    def _finish(self) -> None:
        if self.on_finished is not None:
            cb, self.on_finished = self.on_finished, None
            cb(self)

    # -- reporting ---------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Aggregate per-cohort accounting (JSON-safe, deterministic keys)."""
        reads = self.read_latency.n
        return {
            "dc": self.dc if self.dc is not None else -1,
            "members": int(self.members),
            "ops": int(self.completed),
            "reads": int(reads),
            "writes": int(self.write_latency.n),
            "failed": int(self.failed_ops),
            "stale_reads": int(self.stale_reads),
            "stale_rate": float(self.stale_reads / reads) if reads else 0.0,
            "read_latency_mean_ms": float(self.read_latency.mean * 1e3),
            "write_latency_mean_ms": float(self.write_latency.mean * 1e3),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CohortPopulation(members={self.members}, dc={self.dc}, "
            f"issued={self.issued}, remaining={self.remaining})"
        )
