"""Workload mixes: YCSB core workloads plus the paper's heavy read-update.

A :class:`WorkloadSpec` is a declarative description: operation proportions,
record count/size, key distribution. The client layer samples operations
from it. Key strings follow YCSB (``user<index>``).

The paper's evaluation uses a *"heavy read-update"* workload -- YCSB
workload A's 50/50 read/update mix at maximum offered load -- with
2-24 GB data sets; :func:`heavy_read_update` builds it at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigError
from repro.workload.distributions import KeyChooser, make_chooser

__all__ = [
    "WorkloadSpec",
    "WORKLOADS",
    "heavy_read_update",
    "flash_crowd",
    "read_mostly_latest",
    "TxnWorkloadSpec",
    "TXN_WORKLOADS",
    "bank_transfer_mix",
    "read_modify_write_mix",
    "order_checkout_mix",
]


@dataclass
class WorkloadSpec:
    """Declarative workload description (a YCSB properties file, as code).

    Attributes
    ----------
    name:
        Report label.
    read_proportion / update_proportion / insert_proportion /
    read_modify_write_proportion:
        Operation mix; must sum to 1.
    record_count:
        Initial key population (the load phase inserts these).
    value_size:
        Bytes per row (YCSB default: 10 fields x 100 B).
    distribution:
        Key-chooser name (``uniform``/``zipfian``/``latest``/``hotspot``/...).
    distribution_kwargs:
        Extra chooser parameters (e.g. hotspot fractions).
    """

    name: str = "workload"
    read_proportion: float = 0.5
    update_proportion: float = 0.5
    insert_proportion: float = 0.0
    read_modify_write_proportion: float = 0.0
    record_count: int = 1000
    value_size: int = 1000
    distribution: str = "zipfian"
    distribution_kwargs: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        total = (
            self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.read_modify_write_proportion
        )
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"operation proportions sum to {total}, expected 1.0")
        if self.record_count < 1:
            raise ConfigError(f"record_count must be >= 1, got {self.record_count}")
        if self.value_size <= 0:
            raise ConfigError(f"value_size must be > 0, got {self.value_size}")

    # -- sampling ---------------------------------------------------------------

    def make_chooser(self, rng: "np.random.Generator | int | None" = None) -> KeyChooser:
        """Instantiate this spec's key chooser."""
        return make_chooser(
            self.distribution, self.record_count, rng=rng, **self.distribution_kwargs
        )

    def key_of(self, index: int) -> str:
        """YCSB key naming."""
        return f"user{index}"

    def data_size_bytes(self) -> int:
        """Total logical data size (records x value size), for billing."""
        return self.record_count * self.value_size

    def sample_op(self, rng: np.random.Generator) -> str:
        """Draw an operation type: ``read``/``update``/``insert``/``rmw``."""
        u = rng.random()
        if u < self.read_proportion:
            return "read"
        u -= self.read_proportion
        if u < self.update_proportion:
            return "update"
        u -= self.update_proportion
        if u < self.insert_proportion:
            return "insert"
        return "rmw"

    def scaled(self, record_count: int, name: Optional[str] = None) -> "WorkloadSpec":
        """Copy of this spec at a different population size."""
        return replace(
            self, record_count=record_count, name=name or f"{self.name}@{record_count}"
        )


def heavy_read_update(
    record_count: int = 2000,
    value_size: int = 1000,
    distribution: str = "zipfian",
) -> WorkloadSpec:
    """The paper's evaluation workload: YCSB-A-style 50/50 read/update.

    §IV runs "a heavy read-update workload" (50% reads, 50% updates, zipfian
    key skew) at 3M-10M operations over 14-24 GB. The simulator runs the
    same mix at a configurable scale; EXPERIMENTS.md records the scales used.
    """
    return WorkloadSpec(
        name="heavy-read-update",
        read_proportion=0.5,
        update_proportion=0.5,
        record_count=record_count,
        value_size=value_size,
        distribution=distribution,
    )


def flash_crowd(
    record_count: int = 1000,
    value_size: int = 1000,
    hot_set_fraction: float = 0.05,
    hot_opn_fraction: float = 0.95,
) -> WorkloadSpec:
    """A flash-crowd mix: nearly all traffic slams a tiny hot key set.

    Models the "everyone refreshes the same product page" regime -- a 70/30
    read/update mix where ``hot_opn_fraction`` of operations hit the first
    ``hot_set_fraction`` of keys. Contention on the hot set is what makes
    adaptive consistency interesting here: per-key write rates are far above
    what the global average suggests.
    """
    return WorkloadSpec(
        name="flash-crowd",
        read_proportion=0.7,
        update_proportion=0.3,
        record_count=record_count,
        value_size=value_size,
        distribution="hotspot",
        distribution_kwargs={
            "hot_set_fraction": hot_set_fraction,
            "hot_opn_fraction": hot_opn_fraction,
        },
    )


def read_mostly_latest(
    record_count: int = 1000, value_size: int = 1000
) -> WorkloadSpec:
    """A diurnal-style mix: read-mostly with inserts skewed to recent keys.

    YCSB-D's shape (95% reads, 5% inserts, ``latest`` distribution) -- the
    "users read what was just written" pattern of feeds and timelines; the
    diurnal scenario paces it to an off-peak offered load.
    """
    return replace(
        WORKLOADS["D"],
        name="read-mostly-latest",
        record_count=record_count,
        value_size=value_size,
    )


@dataclass
class TxnWorkloadSpec:
    """Declarative multi-key transaction mix.

    Every transaction touches ``n_keys`` *distinct* keys drawn from the
    spec's key distribution; ``read_slots`` / ``write_slots`` name which of
    those key positions are read and which are written (a slot may appear
    in both -- that is the read-modify-write shape whose commit-time
    validation makes stale reads abort).

    Attributes
    ----------
    name:
        Report label.
    n_keys:
        Distinct keys per transaction.
    read_slots / write_slots:
        Indices in ``range(n_keys)`` read (before commit) and written
        (buffered, atomically applied at commit).
    record_count / value_size / distribution / distribution_kwargs:
        Key population and skew, as in :class:`WorkloadSpec`.
    """

    name: str
    n_keys: int
    read_slots: Tuple[int, ...]
    write_slots: Tuple[int, ...]
    record_count: int = 1000
    value_size: int = 1000
    distribution: str = "zipfian"
    distribution_kwargs: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_keys < 1:
            raise ConfigError(f"n_keys must be >= 1, got {self.n_keys}")
        for label, slots in (("read_slots", self.read_slots), ("write_slots", self.write_slots)):
            for s in slots:
                if not (0 <= s < self.n_keys):
                    raise ConfigError(f"{label} index {s} outside 0..{self.n_keys - 1}")
        if not self.read_slots and not self.write_slots:
            raise ConfigError("a transaction mix needs at least one read or write slot")
        if self.record_count < self.n_keys:
            raise ConfigError(
                f"record_count {self.record_count} < n_keys {self.n_keys}: "
                "transactions could never draw distinct keys"
            )
        if self.value_size <= 0:
            raise ConfigError(f"value_size must be > 0, got {self.value_size}")

    def make_chooser(self, rng: "np.random.Generator | int | None" = None) -> KeyChooser:
        """Instantiate this spec's key chooser."""
        return make_chooser(
            self.distribution, self.record_count, rng=rng, **self.distribution_kwargs
        )

    def key_of(self, index: int) -> str:
        """YCSB key naming (shared with the single-op specs)."""
        return f"user{index}"

    def data_size_bytes(self) -> int:
        """Total logical data size (records x value size), for billing."""
        return self.record_count * self.value_size

    def sample_keys(self, chooser: KeyChooser) -> Tuple[str, ...]:
        """Draw ``n_keys`` distinct keys from the skewed distribution.

        Rejection-samples the chooser (bounded), then falls back to a
        deterministic linear probe so a pathological hot-spot distribution
        can never stall a client. All randomness comes from the chooser --
        nothing else is consumed, which keeps client RNG streams stable.
        """
        indices: list = []
        for _ in range(8 * self.n_keys):
            if len(indices) == self.n_keys:
                break
            idx = chooser.next_index()
            if idx not in indices:
                indices.append(idx)
        probe = indices[-1] if indices else 0
        while len(indices) < self.n_keys:
            probe = (probe + 1) % self.record_count
            if probe not in indices:
                indices.append(probe)
        return tuple(self.key_of(i) for i in indices)

    def scaled(self, record_count: int, name: Optional[str] = None) -> "TxnWorkloadSpec":
        """Copy of this spec at a different population size."""
        return replace(
            self, record_count=record_count, name=name or f"{self.name}@{record_count}"
        )


def bank_transfer_mix(
    record_count: int = 1000, value_size: int = 1000, distribution: str = "zipfian"
) -> TxnWorkloadSpec:
    """Move money between two accounts: read both, write both.

    The canonical lost-update workload -- both balances are derived from
    the values read, so a stale read silently destroys a concurrent
    deposit unless commit-time validation (or a strong read level)
    intervenes.
    """
    return TxnWorkloadSpec(
        name="bank-transfer",
        n_keys=2,
        read_slots=(0, 1),
        write_slots=(0, 1),
        record_count=record_count,
        value_size=value_size,
        distribution=distribution,
    )


def read_modify_write_mix(
    record_count: int = 1000, value_size: int = 1000, distribution: str = "zipfian"
) -> TxnWorkloadSpec:
    """Single-key read-modify-write (YCSB-F, made atomic)."""
    return TxnWorkloadSpec(
        name="read-modify-write",
        n_keys=1,
        read_slots=(0,),
        write_slots=(0,),
        record_count=record_count,
        value_size=value_size,
        distribution=distribution,
    )


def order_checkout_mix(
    record_count: int = 1000, value_size: int = 1000
) -> TxnWorkloadSpec:
    """Web-shop checkout: read catalog/cart/stock, write stock + order row.

    Reads fan out wider than writes (3 reads, 2 writes over 4 keys) and
    only the stock key is both read and written, so validation conflicts
    concentrate on inventory -- the contended resource of a real checkout.
    """
    return TxnWorkloadSpec(
        name="order-checkout",
        n_keys=4,
        read_slots=(0, 1, 2),
        write_slots=(2, 3),
        record_count=record_count,
        value_size=value_size,
        distribution="zipfian",
    )


#: The built-in transactional mixes, keyed by mix name.
TXN_WORKLOADS: Dict[str, TxnWorkloadSpec] = {
    "bank-transfer": bank_transfer_mix(),
    "read-modify-write": read_modify_write_mix(),
    "order-checkout": order_checkout_mix(),
}


def _core(name: str, **kw) -> WorkloadSpec:
    return WorkloadSpec(name=name, **kw)


#: The YCSB core workloads (scan-free approximations where YCSB scans:
#: workload E's scans are modelled as reads, which preserves the read/write
#: ratio the consistency study cares about).
WORKLOADS: Dict[str, WorkloadSpec] = {
    "A": _core("ycsb-a", read_proportion=0.5, update_proportion=0.5),
    "B": _core("ycsb-b", read_proportion=0.95, update_proportion=0.05),
    "C": _core("ycsb-c", read_proportion=1.0, update_proportion=0.0),
    "D": _core(
        "ycsb-d",
        read_proportion=0.95,
        update_proportion=0.0,
        insert_proportion=0.05,
        distribution="latest",
    ),
    "E": _core(
        "ycsb-e",
        read_proportion=0.95,
        update_proportion=0.0,
        insert_proportion=0.05,
    ),
    "F": _core(
        "ycsb-f",
        read_proportion=0.5,
        update_proportion=0.0,
        read_modify_write_proportion=0.5,
    ),
}
