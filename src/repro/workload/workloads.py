"""Workload mixes: YCSB core workloads plus the paper's heavy read-update.

A :class:`WorkloadSpec` is a declarative description: operation proportions,
record count/size, key distribution. The client layer samples operations
from it. Key strings follow YCSB (``user<index>``).

The paper's evaluation uses a *"heavy read-update"* workload -- YCSB
workload A's 50/50 read/update mix at maximum offered load -- with
2-24 GB data sets; :func:`heavy_read_update` builds it at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import spawn_rng
from repro.workload.distributions import KeyChooser, UniformChooser, make_chooser

__all__ = [
    "WorkloadSpec",
    "WORKLOADS",
    "heavy_read_update",
    "flash_crowd",
    "read_mostly_latest",
]


@dataclass
class WorkloadSpec:
    """Declarative workload description (a YCSB properties file, as code).

    Attributes
    ----------
    name:
        Report label.
    read_proportion / update_proportion / insert_proportion /
    read_modify_write_proportion:
        Operation mix; must sum to 1.
    record_count:
        Initial key population (the load phase inserts these).
    value_size:
        Bytes per row (YCSB default: 10 fields x 100 B).
    distribution:
        Key-chooser name (``uniform``/``zipfian``/``latest``/``hotspot``/...).
    distribution_kwargs:
        Extra chooser parameters (e.g. hotspot fractions).
    """

    name: str = "workload"
    read_proportion: float = 0.5
    update_proportion: float = 0.5
    insert_proportion: float = 0.0
    read_modify_write_proportion: float = 0.0
    record_count: int = 1000
    value_size: int = 1000
    distribution: str = "zipfian"
    distribution_kwargs: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        total = (
            self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.read_modify_write_proportion
        )
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"operation proportions sum to {total}, expected 1.0")
        if self.record_count < 1:
            raise ConfigError(f"record_count must be >= 1, got {self.record_count}")
        if self.value_size <= 0:
            raise ConfigError(f"value_size must be > 0, got {self.value_size}")

    # -- sampling ---------------------------------------------------------------

    def make_chooser(self, rng: "np.random.Generator | int | None" = None) -> KeyChooser:
        """Instantiate this spec's key chooser."""
        return make_chooser(
            self.distribution, self.record_count, rng=rng, **self.distribution_kwargs
        )

    def key_of(self, index: int) -> str:
        """YCSB key naming."""
        return f"user{index}"

    def data_size_bytes(self) -> int:
        """Total logical data size (records x value size), for billing."""
        return self.record_count * self.value_size

    def sample_op(self, rng: np.random.Generator) -> str:
        """Draw an operation type: ``read``/``update``/``insert``/``rmw``."""
        u = rng.random()
        if u < self.read_proportion:
            return "read"
        u -= self.read_proportion
        if u < self.update_proportion:
            return "update"
        u -= self.update_proportion
        if u < self.insert_proportion:
            return "insert"
        return "rmw"

    def scaled(self, record_count: int, name: Optional[str] = None) -> "WorkloadSpec":
        """Copy of this spec at a different population size."""
        return replace(
            self, record_count=record_count, name=name or f"{self.name}@{record_count}"
        )


def heavy_read_update(
    record_count: int = 2000,
    value_size: int = 1000,
    distribution: str = "zipfian",
) -> WorkloadSpec:
    """The paper's evaluation workload: YCSB-A-style 50/50 read/update.

    §IV runs "a heavy read-update workload" (50% reads, 50% updates, zipfian
    key skew) at 3M-10M operations over 14-24 GB. The simulator runs the
    same mix at a configurable scale; EXPERIMENTS.md records the scales used.
    """
    return WorkloadSpec(
        name="heavy-read-update",
        read_proportion=0.5,
        update_proportion=0.5,
        record_count=record_count,
        value_size=value_size,
        distribution=distribution,
    )


def flash_crowd(
    record_count: int = 1000,
    value_size: int = 1000,
    hot_set_fraction: float = 0.05,
    hot_opn_fraction: float = 0.95,
) -> WorkloadSpec:
    """A flash-crowd mix: nearly all traffic slams a tiny hot key set.

    Models the "everyone refreshes the same product page" regime -- a 70/30
    read/update mix where ``hot_opn_fraction`` of operations hit the first
    ``hot_set_fraction`` of keys. Contention on the hot set is what makes
    adaptive consistency interesting here: per-key write rates are far above
    what the global average suggests.
    """
    return WorkloadSpec(
        name="flash-crowd",
        read_proportion=0.7,
        update_proportion=0.3,
        record_count=record_count,
        value_size=value_size,
        distribution="hotspot",
        distribution_kwargs={
            "hot_set_fraction": hot_set_fraction,
            "hot_opn_fraction": hot_opn_fraction,
        },
    )


def read_mostly_latest(
    record_count: int = 1000, value_size: int = 1000
) -> WorkloadSpec:
    """A diurnal-style mix: read-mostly with inserts skewed to recent keys.

    YCSB-D's shape (95% reads, 5% inserts, ``latest`` distribution) -- the
    "users read what was just written" pattern of feeds and timelines; the
    diurnal scenario paces it to an off-peak offered load.
    """
    return replace(
        WORKLOADS["D"],
        name="read-mostly-latest",
        record_count=record_count,
        value_size=value_size,
    )


def _core(name: str, **kw) -> WorkloadSpec:
    return WorkloadSpec(name=name, **kw)


#: The YCSB core workloads (scan-free approximations where YCSB scans:
#: workload E's scans are modelled as reads, which preserves the read/write
#: ratio the consistency study cares about).
WORKLOADS: Dict[str, WorkloadSpec] = {
    "A": _core("ycsb-a", read_proportion=0.5, update_proportion=0.5),
    "B": _core("ycsb-b", read_proportion=0.95, update_proportion=0.05),
    "C": _core("ycsb-c", read_proportion=1.0, update_proportion=0.0),
    "D": _core(
        "ycsb-d",
        read_proportion=0.95,
        update_proportion=0.0,
        insert_proportion=0.05,
        distribution="latest",
    ),
    "E": _core(
        "ycsb-e",
        read_proportion=0.95,
        update_proportion=0.0,
        insert_proportion=0.05,
    ),
    "F": _core(
        "ycsb-f",
        read_proportion=0.5,
        update_proportion=0.0,
        read_modify_write_proportion=0.5,
    ),
}
