"""YCSB key-choice distributions.

Faithful ports of the generators in YCSB's ``com.yahoo.ycsb.generator``:

- :class:`ZipfianChooser` implements Gray et al.'s rejection-free zipfian
  sampler with the benchmark's canonical constant 0.99, including the
  ``eta``/``zeta`` bookkeeping that allows growing item counts;
- :class:`ScrambledZipfianChooser` spreads the zipfian head over the key
  space with an FNV hash (so "popular" keys are not ring neighbours);
- :class:`LatestChooser` skews towards recently inserted items (workload D);
- :class:`HotSpotChooser` draws ``hot_opn_fraction`` of operations from a
  ``hot_set_fraction`` of the items;
- :class:`ExponentialChooser` is YCSB's exponential generator (workload E's
  alternative).

All choosers return integer item indices in ``[0, item_count)``; key strings
are formed by the workload layer (``user<index>`` like YCSB).
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import spawn_rng

__all__ = [
    "KeyChooser",
    "UniformChooser",
    "ZipfianChooser",
    "ScrambledZipfianChooser",
    "LatestChooser",
    "HotSpotChooser",
    "ExponentialChooser",
    "make_chooser",
]

#: YCSB's canonical zipfian skew constant.
ZIPFIAN_CONSTANT = 0.99

#: FNV-1a 64-bit parameters (YCSB's scramble hash).
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _fnv1a64(value: int) -> int:
    """FNV-1a over the 8 little-endian bytes of ``value`` (YCSB's ``fnvhash64``)."""
    h = _FNV_OFFSET
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        h = h ^ octet
        h = (h * _FNV_PRIME) & _MASK64
    return h


class KeyChooser:
    """Abstract integer item chooser over ``[0, item_count)``."""

    item_count: int

    def next_index(self) -> int:
        """Draw one item index."""
        raise NotImplementedError

    def notify_insert(self, new_count: int) -> None:
        """Inform the chooser the item population grew (inserts)."""
        self.item_count = int(new_count)


class UniformChooser(KeyChooser):
    """Uniform over the item population."""

    def __init__(self, item_count: int, rng: "np.random.Generator | int | None" = None):
        if item_count < 1:
            raise ConfigError(f"item_count must be >= 1, got {item_count}")
        self.item_count = int(item_count)
        self.rng = spawn_rng(rng)

    def next_index(self) -> int:
        return int(self.rng.integers(0, self.item_count))


class ZipfianChooser(KeyChooser):
    """Gray et al. zipfian sampler (YCSB ``ZipfianGenerator``).

    Item 0 is the most popular. ``theta`` defaults to YCSB's 0.99. The
    ``zeta`` constant is computed incrementally when the population grows,
    mirroring YCSB's support for insert-heavy workloads.
    """

    def __init__(
        self,
        item_count: int,
        theta: float = ZIPFIAN_CONSTANT,
        rng: "np.random.Generator | int | None" = None,
    ):
        if item_count < 1:
            raise ConfigError(f"item_count must be >= 1, got {item_count}")
        if not (0.0 < theta < 1.0):
            raise ConfigError(f"theta must be in (0, 1), got {theta}")
        self.item_count = int(item_count)
        self.theta = float(theta)
        self.rng = spawn_rng(rng)
        self._alpha = 1.0 / (1.0 - theta)
        self._zeta2 = self._zeta_static(2, theta)
        self._zetan = self._zeta_static(self.item_count, theta)
        self._zetan_for = self.item_count
        self._recompute_eta()

    @staticmethod
    def _zeta_static(n: int, theta: float) -> float:
        # O(n) once at construction; incremental afterwards.
        return float(np.sum(1.0 / np.power(np.arange(1, n + 1, dtype=float), theta)))

    def _recompute_eta(self) -> None:
        n = self.item_count
        # For n <= 2 every draw is resolved by the head shortcuts in
        # next_index (uz < 1 or uz < 1 + 0.5**theta covers the whole unit
        # interval), so eta is never consulted -- and its denominator would
        # be zero at n == 2.
        self._eta = (
            (1.0 - (2.0 / n) ** (1.0 - self.theta))
            / (1.0 - self._zeta2 / self._zetan)
            if n >= 3
            else 0.0
        )

    def notify_insert(self, new_count: int) -> None:
        new_count = int(new_count)
        if new_count > self._zetan_for:
            extra = np.arange(self._zetan_for + 1, new_count + 1, dtype=float)
            self._zetan += float(np.sum(1.0 / np.power(extra, self.theta)))
            self._zetan_for = new_count
        self.item_count = new_count
        self._recompute_eta()

    def next_index(self) -> int:
        n = self.item_count
        if n == 1:
            return 0
        u = float(self.rng.random())
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(n * (self._eta * u - self._eta + 1.0) ** self._alpha)


class ScrambledZipfianChooser(KeyChooser):
    """Zipfian popularity spread uniformly over the key space (YCSB default).

    The underlying zipfian draws from a large fixed universe and the result
    is FNV-hashed modulo the live population, so which concrete keys are hot
    is arbitrary but stable -- exactly YCSB's ``ScrambledZipfianGenerator``.
    """

    #: YCSB uses a fixed large universe so hot-key identity is stable under growth.
    ITEM_UNIVERSE = 10_000_000_000

    def __init__(
        self,
        item_count: int,
        theta: float = ZIPFIAN_CONSTANT,
        rng: "np.random.Generator | int | None" = None,
    ):
        if item_count < 1:
            raise ConfigError(f"item_count must be >= 1, got {item_count}")
        self.item_count = int(item_count)
        # YCSB uses zeta(universe) approximation; we keep the sampler over the
        # live population and scramble, which preserves the popularity *shape*
        # while being exact for any population size.
        self._zipf = ZipfianChooser(self.item_count, theta=theta, rng=rng)

    def notify_insert(self, new_count: int) -> None:
        self.item_count = int(new_count)
        self._zipf.notify_insert(new_count)

    def next_index(self) -> int:
        raw = self._zipf.next_index()
        return _fnv1a64(raw) % self.item_count


class LatestChooser(KeyChooser):
    """Skewed towards recently inserted items (YCSB ``SkewedLatestGenerator``)."""

    def __init__(
        self,
        item_count: int,
        theta: float = ZIPFIAN_CONSTANT,
        rng: "np.random.Generator | int | None" = None,
    ):
        self.item_count = int(item_count)
        self._zipf = ZipfianChooser(self.item_count, theta=theta, rng=rng)

    def notify_insert(self, new_count: int) -> None:
        self.item_count = int(new_count)
        self._zipf.notify_insert(new_count)

    def next_index(self) -> int:
        # newest item = index item_count-1; zipfian rank 0 maps to it.
        return self.item_count - 1 - self._zipf.next_index()


class HotSpotChooser(KeyChooser):
    """``hot_opn_fraction`` of draws hit the first ``hot_set_fraction`` items."""

    def __init__(
        self,
        item_count: int,
        hot_set_fraction: float = 0.2,
        hot_opn_fraction: float = 0.8,
        rng: "np.random.Generator | int | None" = None,
    ):
        if item_count < 1:
            raise ConfigError(f"item_count must be >= 1, got {item_count}")
        if not (0.0 < hot_set_fraction <= 1.0):
            raise ConfigError(f"hot_set_fraction in (0,1], got {hot_set_fraction}")
        if not (0.0 <= hot_opn_fraction <= 1.0):
            raise ConfigError(f"hot_opn_fraction in [0,1], got {hot_opn_fraction}")
        self.item_count = int(item_count)
        self.hot_set_fraction = float(hot_set_fraction)
        self.hot_opn_fraction = float(hot_opn_fraction)
        self.rng = spawn_rng(rng)

    def next_index(self) -> int:
        hot_items = max(1, int(self.item_count * self.hot_set_fraction))
        if self.rng.random() < self.hot_opn_fraction:
            return int(self.rng.integers(0, hot_items))
        if hot_items >= self.item_count:
            return int(self.rng.integers(0, self.item_count))
        return int(self.rng.integers(hot_items, self.item_count))


class ExponentialChooser(KeyChooser):
    """YCSB's exponential generator: item ~ Exp, truncated to the population.

    ``percentile`` of the mass falls in the first ``frac`` of items
    (defaults: 95% of draws in the first 10%, YCSB's defaults).
    """

    def __init__(
        self,
        item_count: int,
        percentile: float = 95.0,
        frac: float = 0.1,
        rng: "np.random.Generator | int | None" = None,
    ):
        if item_count < 1:
            raise ConfigError(f"item_count must be >= 1, got {item_count}")
        self.item_count = int(item_count)
        self.gamma = -math.log(1.0 - percentile / 100.0) / (item_count * frac)
        self.rng = spawn_rng(rng)

    def next_index(self) -> int:
        while True:
            x = self.rng.exponential(1.0 / self.gamma)
            idx = int(x)
            if idx < self.item_count:
                return idx


def make_chooser(
    name: str,
    item_count: int,
    rng: "np.random.Generator | int | None" = None,
    **kwargs,
) -> KeyChooser:
    """Factory by YCSB's ``requestdistribution`` property name."""
    name = name.lower()
    table = {
        "uniform": UniformChooser,
        "zipfian": ScrambledZipfianChooser,  # YCSB's default zipfian is scrambled
        "rawzipfian": ZipfianChooser,
        "latest": LatestChooser,
        "hotspot": HotSpotChooser,
        "exponential": ExponentialChooser,
    }
    if name not in table:
        raise ConfigError(f"unknown distribution {name!r}; choose from {sorted(table)}")
    return table[name](item_count, rng=rng, **kwargs)
