"""Operation traces: recording, replay, and synthetic multi-phase generators.

The behavior-modeling contribution (§III-C) is an *offline* pipeline over
"application data access past traces". This module supplies all three ways
to obtain such traces:

- :class:`TraceRecorder` -- a store listener that captures live operations
  from any simulated run;
- :func:`replay_trace` -- drive a store with a previously captured trace;
- :class:`PhasedTraceGenerator` -- synthesize traces with *planted phases*
  (e.g. a webshop's browse / checkout-rush / nightly-batch regimes), the
  ground truth against which the clustering step is evaluated;
- :func:`save_trace` / :func:`load_trace` -- JSONL persistence so traces
  survive across runs (and can be fed to a cohort population via
  :meth:`repro.workload.cohort.CohortPopulation.from_trace`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import IO, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import spawn_rng
from repro.cluster.coordinator import OpResult

__all__ = [
    "TraceRecord",
    "TraceRecorder",
    "TracePhase",
    "PhasedTraceGenerator",
    "replay_trace",
    "save_trace",
    "load_trace",
]


@dataclass(frozen=True)
class TraceRecord:
    """One operation in a trace.

    ``phase`` carries the *planted* regime label for synthetic traces
    (``None`` for recorded ones); the behavior pipeline never reads it --
    only the evaluation does, to score cluster recovery.
    """

    t: float
    kind: str  # "read" | "write"
    key: str
    latency: float = 0.0
    stale: Optional[bool] = None
    phase: Optional[str] = None


class TraceRecorder:
    """Store listener appending every completed operation to a trace."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def on_op_complete(self, result: OpResult) -> None:
        self.records.append(
            TraceRecord(
                t=result.t_start,
                kind="read" if result.kind == "read" else "write",
                key=result.key,
                latency=result.latency,
                stale=result.stale,
            )
        )

    def __len__(self) -> int:
        return len(self.records)


@dataclass(frozen=True)
class TracePhase:
    """One regime of a synthetic application timeline.

    Attributes
    ----------
    name:
        Ground-truth label (e.g. ``"checkout-rush"``).
    duration:
        Seconds this phase lasts.
    rate:
        Operation arrival rate (ops/sec, Poisson).
    read_fraction:
        Probability an operation is a read.
    key_count / hot_fraction / hot_weight:
        Key population and skew: ``hot_weight`` of accesses hit the first
        ``hot_fraction`` of keys.
    """

    name: str
    duration: float
    rate: float
    read_fraction: float
    key_count: int = 1000
    hot_fraction: float = 0.2
    hot_weight: float = 0.8

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.rate <= 0:
            raise ConfigError("phase duration and rate must be positive")
        if not (0.0 <= self.read_fraction <= 1.0):
            raise ConfigError(f"read_fraction in [0,1], got {self.read_fraction}")


class PhasedTraceGenerator:
    """Synthesize a trace that cycles through explicit phases.

    Examples
    --------
    A webshop timeline (browse-heavy day, checkout rush, nightly batch)::

        gen = PhasedTraceGenerator([
            TracePhase("browse",   300, rate=200, read_fraction=0.95),
            TracePhase("checkout",  60, rate=400, read_fraction=0.55),
            TracePhase("batch",    120, rate=100, read_fraction=0.10),
        ])
        trace = gen.generate(cycles=4, seed=3)
    """

    def __init__(self, phases: Sequence[TracePhase]):
        if not phases:
            raise ConfigError("need at least one phase")
        self.phases = list(phases)

    def generate(self, cycles: int = 1, seed: int | None = 0) -> List[TraceRecord]:
        """Produce ``cycles`` repetitions of the phase sequence."""
        if cycles < 1:
            raise ConfigError(f"cycles must be >= 1, got {cycles}")
        rng = spawn_rng(seed)
        out: List[TraceRecord] = []
        t = 0.0
        for _ in range(cycles):
            for phase in self.phases:
                t = self._generate_phase(phase, t, rng, out)
        return out

    def _generate_phase(
        self,
        phase: TracePhase,
        t0: float,
        rng: np.random.Generator,
        out: List[TraceRecord],
    ) -> float:
        end = t0 + phase.duration
        n_expected = int(phase.rate * phase.duration)
        # Vectorized Poisson arrivals: exponential gaps, trimmed to the phase.
        gaps = rng.exponential(1.0 / phase.rate, size=max(8, int(n_expected * 1.2)))
        times = t0 + np.cumsum(gaps)
        times = times[times < end]
        hot_keys = max(1, int(phase.key_count * phase.hot_fraction))
        for t in times:
            is_read = rng.random() < phase.read_fraction
            if rng.random() < phase.hot_weight:
                idx = int(rng.integers(0, hot_keys))
            else:
                idx = int(rng.integers(0, phase.key_count))
            out.append(
                TraceRecord(
                    t=float(t),
                    kind="read" if is_read else "write",
                    key=f"user{idx}",
                    phase=phase.name,
                )
            )
        return end


def replay_trace(
    store,
    trace: Iterable[TraceRecord],
    policy,
    time_scale: float = 1.0,
) -> int:
    """Schedule a trace's operations against a store.

    Returns the number of operations scheduled; run the store's simulator to
    execute them. ``time_scale`` compresses (<1) or dilates (>1) the trace
    clock, which is how the behavior experiments sweep load intensity
    without regenerating traces.
    """
    if time_scale <= 0:
        raise ConfigError(f"time_scale must be positive, got {time_scale}")
    n = 0
    base = store.sim.now
    for rec in trace:
        t = base + rec.t * time_scale
        if rec.kind == "read":
            store.sim.schedule_at(
                t, _replay_read, store, rec.key, policy
            )
        else:
            store.sim.schedule_at(
                t, _replay_write, store, rec.key, policy
            )
        n += 1
    return n


def _replay_read(store, key: str, policy) -> None:
    store.read(key, policy.read_level(store.sim.now))


def _replay_write(store, key: str, policy) -> None:
    store.write(key, policy.write_level(store.sim.now))


# -- persistence ---------------------------------------------------------------

_VALID_KINDS = ("read", "write")


def save_trace(trace: Iterable[TraceRecord], dest: Union[str, IO[str]]) -> int:
    """Write a trace as JSONL (one record per line); returns the line count.

    ``dest`` is a path or an open text file.  Records serialize all fields
    (``None`` values included) so :func:`load_trace` round-trips exactly.
    """
    if isinstance(dest, str):
        with open(dest, "w", encoding="utf-8") as f:
            return save_trace(trace, f)
    n = 0
    for rec in trace:
        dest.write(json.dumps(asdict(rec), sort_keys=True) + "\n")
        n += 1
    return n


def load_trace(src: Union[str, IO[str]]) -> List[TraceRecord]:
    """Read a JSONL trace written by :func:`save_trace`.

    Malformed input -- invalid JSON, a non-object line, missing required
    fields, an unknown op kind, a negative timestamp -- raises
    :class:`~repro.common.errors.ConfigError` naming the offending line,
    so a truncated or hand-edited trace fails loudly instead of silently
    replaying garbage.
    """
    if isinstance(src, str):
        with open(src, "r", encoding="utf-8") as f:
            return load_trace(f)
    records: List[TraceRecord] = []
    for lineno, line in enumerate(src, start=1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"trace line {lineno}: invalid JSON ({exc.msg})") from None
        if not isinstance(doc, dict):
            raise ConfigError(f"trace line {lineno}: expected an object, got {type(doc).__name__}")
        missing = [k for k in ("t", "kind", "key") if k not in doc]
        if missing:
            raise ConfigError(f"trace line {lineno}: missing fields {missing}")
        if doc["kind"] not in _VALID_KINDS:
            raise ConfigError(
                f"trace line {lineno}: kind must be one of {list(_VALID_KINDS)}, "
                f"got {doc['kind']!r}"
            )
        try:
            t = float(doc["t"])
        except (TypeError, ValueError):
            raise ConfigError(f"trace line {lineno}: t is not a number") from None
        if t < 0 or t != t:
            raise ConfigError(f"trace line {lineno}: t must be >= 0, got {doc['t']}")
        records.append(
            TraceRecord(
                t=t,
                kind=str(doc["kind"]),
                key=str(doc["key"]),
                latency=float(doc.get("latency") or 0.0),
                stale=doc.get("stale"),
                phase=doc.get("phase"),
            )
        )
    return records
