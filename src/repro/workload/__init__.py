"""YCSB-compatible workload generation.

The paper drives Cassandra with the Yahoo! Cloud Serving Benchmark; this
package rebuilds the parts the evaluation needs:

- :mod:`repro.workload.distributions` -- YCSB's key choosers (uniform,
  zipfian with Gray's algorithm and the 0.99 constant, scrambled zipfian,
  latest, hotspot, exponential);
- :mod:`repro.workload.workloads` -- workload mixes: the standard core
  workloads A-F plus the paper's "heavy read-update" mix;
- :mod:`repro.workload.client` -- closed-loop and open-loop clients plus the
  :class:`~repro.workload.client.WorkloadRunner` that deploys clients
  against a store and collects throughput/latency/staleness;
- :mod:`repro.workload.cohort` -- the cohort-mode engine: millions of
  clients per (DC, mix) pooled into one vectorized generator;
- :mod:`repro.workload.traces` -- operation trace recording, replay,
  JSONL persistence, and synthetic multi-phase application traces for
  the behavior-modeling pipeline.
"""

from repro.workload.distributions import (
    KeyChooser,
    UniformChooser,
    ZipfianChooser,
    ScrambledZipfianChooser,
    LatestChooser,
    HotSpotChooser,
    ExponentialChooser,
    make_chooser,
)
from repro.workload.workloads import (
    WorkloadSpec,
    WORKLOADS,
    heavy_read_update,
    TxnWorkloadSpec,
    TXN_WORKLOADS,
    bank_transfer_mix,
    read_modify_write_mix,
    order_checkout_mix,
)
from repro.workload.client import ClosedLoopClient, OpenLoopSource, WorkloadRunner, RunReport
from repro.workload.cohort import CohortPopulation
from repro.workload.traces import (
    TraceRecord,
    TraceRecorder,
    PhasedTraceGenerator,
    save_trace,
    load_trace,
)

__all__ = [
    "KeyChooser",
    "UniformChooser",
    "ZipfianChooser",
    "ScrambledZipfianChooser",
    "LatestChooser",
    "HotSpotChooser",
    "ExponentialChooser",
    "make_chooser",
    "WorkloadSpec",
    "WORKLOADS",
    "heavy_read_update",
    "TxnWorkloadSpec",
    "TXN_WORKLOADS",
    "bank_transfer_mix",
    "read_modify_write_mix",
    "order_checkout_mix",
    "ClosedLoopClient",
    "OpenLoopSource",
    "WorkloadRunner",
    "RunReport",
    "CohortPopulation",
    "TraceRecord",
    "TraceRecorder",
    "PhasedTraceGenerator",
    "save_trace",
    "load_trace",
]
