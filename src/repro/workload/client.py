"""Workload clients and the end-to-end run orchestrator.

Two client shapes, matching the two ways YCSB is run:

- :class:`ClosedLoopClient` -- one outstanding operation per client; the
  next operation is issued when the previous completes (optionally paced to
  a per-client target rate). Throughput then *depends on latency*, which is
  exactly how stronger consistency levels depress throughput in the paper's
  §IV-A numbers.
- :class:`OpenLoopSource` -- Poisson arrivals at a fixed offered rate,
  independent of completions (used by the staleness-model validation where
  the analytical model assumes Poisson reads/writes).

:class:`WorkloadRunner` deploys N clients against a store, runs the
simulation and returns a :class:`RunReport` with the throughput / latency /
staleness / traffic numbers every experiment consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import RngFactory
from repro.cluster.coordinator import OpResult
from repro.cluster.store import ReplicatedStore
from repro.policy import ConsistencyPolicy, StaticPolicy
from repro.workload.workloads import WorkloadSpec

__all__ = [
    "ClosedLoopClient",
    "OpenLoopSource",
    "WorkloadRunner",
    "RunReport",
    "LevelUsage",
]


class LevelUsage:
    """Store listener counting operations per consistency-level label.

    Shared by the single-op and transactional runners -- the per-level
    read mix is how reports show what an adaptive policy actually did.
    """

    __slots__ = ("read_levels", "write_levels")

    def __init__(self) -> None:
        self.read_levels: Dict[str, int] = {}
        self.write_levels: Dict[str, int] = {}

    def on_op_complete(self, result: OpResult) -> None:
        table = self.read_levels if result.kind == "read" else self.write_levels
        table[result.level_label] = table.get(result.level_label, 0) + 1


#: Backwards-compatible private alias (pre-existing internal name).
_LevelUsage = LevelUsage


class ClosedLoopClient:
    """One-outstanding-op client bound to a coordinator datacenter.

    Parameters
    ----------
    store, spec, policy:
        The deployment, the workload mix, and the consistency policy.
    ops:
        Number of operations this client will issue.
    target_rate:
        Optional per-client pacing (ops/sec); ``None`` = as fast as
        completions allow.
    dc:
        Datacenter whose nodes this client uses as coordinators (clients are
        colocated with a datacenter, as YCSB clients are in the paper).
    """

    __slots__ = (
        "store",
        "spec",
        "policy",
        "remaining",
        "rng",
        "interval",
        "_deadline",
        "chooser",
        "inserted",
        "on_finished",
        "issued",
        "_dc",
    )

    #: Pacing weight relative to a single client (cohorts report their
    #: member count here); the elastic re-pacer splits total rate by it.
    weight = 1

    def __init__(
        self,
        store: ReplicatedStore,
        spec: WorkloadSpec,
        policy: ConsistencyPolicy,
        ops: int,
        rng: np.random.Generator,
        target_rate: Optional[float] = None,
        dc: Optional[int] = None,
        on_finished=None,
    ):
        if ops < 0:
            raise ConfigError(f"ops must be >= 0, got {ops}")
        self.store = store
        self.spec = spec
        self.policy = policy
        self.remaining = int(ops)
        self.rng = rng
        self.interval = 1.0 / target_rate if target_rate else 0.0
        self._deadline = 0.0
        self.chooser = spec.make_chooser(rng=rng)
        self.inserted = 0
        self.on_finished = on_finished
        self.issued = 0
        self._dc = dc

    def start(self) -> None:
        """Begin issuing operations (call before ``sim.run``)."""
        self._deadline = self.store.sim.now
        if self.remaining == 0:
            self._finish()
            return
        self.store.sim.schedule(0.0, self._issue_next)

    # -- internals ---------------------------------------------------------------

    def _coordinator(self) -> Optional[int]:
        # Drawn from the store's live pool per operation (not a list frozen
        # at construction) so elastic membership reshapes coordinator load.
        if self._dc is None:
            return None
        coords = self.store.coordinator_pool(self._dc)
        if not coords:
            return None
        return coords[int(self.rng.integers(0, len(coords)))]

    def _issue_next(self) -> None:
        if self.remaining <= 0:
            self._finish()
            return
        self.remaining -= 1
        self.issued += 1
        now = self.store.sim.now
        op = self.spec.sample_op(self.rng)
        if op == "insert":
            index = self.spec.record_count + self.inserted
            self.inserted += 1
            self.chooser.notify_insert(self.spec.record_count + self.inserted)
        else:
            index = self.chooser.next_index()
        key = self.spec.key_of(index)

        if op == "read":
            self.store.read(
                key, self.policy.read_level(now), self._op_done,
                coordinator=self._coordinator(),
            )
        elif op in ("update", "insert"):
            self.store.write(
                key, self.policy.write_level(now), self._op_done,
                value_size=self.spec.value_size,
                coordinator=self._coordinator(),
            )
        else:  # rmw: read, then write the same key
            self.store.read(
                key, self.policy.read_level(now), self._rmw_read_done(key),
                coordinator=self._coordinator(),
            )

    def _rmw_read_done(self, key: str):
        def then_write(result: OpResult) -> None:
            now = self.store.sim.now
            self.store.write(
                key, self.policy.write_level(now), self._op_done,
                value_size=self.spec.value_size,
                coordinator=self._coordinator(),
            )

        return then_write

    def set_rate(self, target_rate: Optional[float]) -> None:
        """Re-pace this client mid-run (diurnal load shapes).

        The next operation honors the new rate; the pacing deadline is
        clamped to now so a rate drop never produces a catch-up burst.
        """
        self.interval = 1.0 / target_rate if target_rate else 0.0
        self._deadline = max(self._deadline, self.store.sim.now)

    def _op_done(self, result: OpResult) -> None:
        now = self.store.sim.now
        if self.interval > 0.0:
            self._deadline = max(now, self._deadline + self.interval)
            delay = self._deadline - now
        else:
            delay = 0.0
        self.store.sim.schedule(delay, self._issue_next)

    def _finish(self) -> None:
        if self.on_finished is not None:
            cb, self.on_finished = self.on_finished, None
            cb(self)


class OpenLoopSource:
    """Poisson operation arrivals at a fixed offered rate.

    Unlike the closed-loop client, arrivals do not wait for completions, so
    the store can be driven into overload -- and the Poisson-arrivals
    assumption of the analytical staleness model holds by construction.
    """

    __slots__ = ("store", "spec", "policy", "rate", "remaining", "rng", "chooser", "_dc")

    def __init__(
        self,
        store: ReplicatedStore,
        spec: WorkloadSpec,
        policy: ConsistencyPolicy,
        rate: float,
        ops: int,
        rng: np.random.Generator,
        dc: Optional[int] = None,
    ):
        if rate <= 0:
            raise ConfigError(f"rate must be positive, got {rate}")
        if ops < 0:
            raise ConfigError(f"ops must be >= 0, got {ops}")
        self.store = store
        self.spec = spec
        self.policy = policy
        self.rate = float(rate)
        self.remaining = int(ops)
        self.rng = rng
        self.chooser = spec.make_chooser(rng=rng)
        self._dc = dc

    def start(self) -> None:
        """Schedule all arrivals up front (exact Poisson process).

        The inter-arrival gaps are drawn as one vectorized batch: numpy's
        generators produce bit-identical doubles for ``exponential(s, n)``
        and ``n`` scalar calls, so batching changes nothing observable while
        removing ``n - 1`` generator round-trips from the schedule loop.
        """
        sim = self.store.sim
        schedule_at = sim.schedule_at
        issue = self._issue_one
        t = sim.now
        if self.remaining:
            for gap in self.rng.exponential(1.0 / self.rate, size=self.remaining):
                t += float(gap)
                schedule_at(t, issue)
        self.remaining = 0

    def _coordinator(self) -> Optional[int]:
        if self._dc is None:
            return None
        coords = self.store.coordinator_pool(self._dc)
        if not coords:
            return None
        return coords[int(self.rng.integers(0, len(coords)))]

    def _issue_one(self) -> None:
        now = self.store.sim.now
        op = self.spec.sample_op(self.rng)
        key = self.spec.key_of(self.chooser.next_index())
        if op == "read":
            self.store.read(
                key, self.policy.read_level(now), coordinator=self._coordinator()
            )
        else:
            self.store.write(
                key, self.policy.write_level(now),
                value_size=self.spec.value_size, coordinator=self._coordinator(),
            )


@dataclass
class RunReport:
    """Results of one workload run (the row every experiment table prints)."""

    policy: str
    workload: str
    ops_completed: int
    duration: float
    throughput: float
    read_latency_mean: float
    read_latency_p99: float
    write_latency_mean: float
    write_latency_p99: float
    stale_rate: float
    stale_rate_strict: float
    failures: Dict[str, int]
    billable_bytes: int
    total_bytes: int
    read_levels: Dict[str, int] = field(default_factory=dict)
    write_levels: Dict[str, int] = field(default_factory=dict)
    mean_propagation: float = 0.0
    #: transactional metrics (commit/abort/in-doubt counts, commit latency
    #: percentiles) when the run was driven by the txn harness; ``None``
    #: for plain single-op runs.
    txn: Optional[Dict[str, Any]] = None
    #: elasticity metrics (scale events, ranges moved, bytes streamed) when
    #: the run was driven by the elastic harness; ``None`` otherwise.
    elastic: Optional[Dict[str, Any]] = None
    #: how clients were modelled: ``per_client`` objects or pooled
    #: ``cohort`` generators (one per datacenter).
    client_mode: str = "per_client"
    #: how many clients the run stood in for (cohort members included).
    n_clients: int = 0
    #: aggregate per-cohort accounting blocks (cohort mode only).
    cohorts: Optional[List[Dict[str, Any]]] = None

    def level_mix(self) -> str:
        """Compact ``label:count`` summary of read levels used (for reports)."""
        total = sum(self.read_levels.values()) or 1
        parts = [
            f"{label}:{100.0 * n / total:.0f}%"
            for label, n in sorted(self.read_levels.items(), key=lambda kv: -kv[1])
        ]
        return " ".join(parts)


class WorkloadRunner:
    """Deploy clients against a store, run to completion, report.

    Parameters
    ----------
    store:
        A freshly constructed deployment (the runner preloads it).
    spec:
        Workload mix.
    policy:
        Consistency policy shared by all clients (adaptive policies see the
        whole cluster through the monitor they were built with).
    n_clients:
        Client count.  In ``per_client`` mode every client is a
        :class:`ClosedLoopClient` object (spread round-robin over
        datacenters); in ``cohort`` mode the same population is pooled
        into one :class:`~repro.workload.cohort.CohortPopulation` per
        datacenter, which is what lets ``n_clients`` reach 10^6+.
    ops_total:
        Total operations across clients.
    target_throughput:
        Optional total offered rate cap (split evenly across clients).
    max_time:
        Simulated-seconds safety stop.
    client_mode:
        ``"per_client"`` (default) or ``"cohort"``.
    """

    def __init__(
        self,
        store: ReplicatedStore,
        spec: WorkloadSpec,
        policy: Optional[ConsistencyPolicy] = None,
        n_clients: int = 8,
        ops_total: int = 10_000,
        target_throughput: Optional[float] = None,
        max_time: float = 3600.0,
        seed: int = 7,
        preload: bool = True,
        warmup_fraction: float = 0.0,
        biller=None,
        client_mode: str = "per_client",
    ):
        if n_clients < 1:
            raise ConfigError(f"n_clients must be >= 1, got {n_clients}")
        if client_mode not in ("per_client", "cohort"):
            raise ConfigError(
                f"client_mode must be 'per_client' or 'cohort', got {client_mode!r}"
            )
        if client_mode == "per_client" and ops_total < n_clients:
            raise ConfigError("ops_total must be >= n_clients")
        if ops_total < 1:
            raise ConfigError(f"ops_total must be >= 1, got {ops_total}")
        self.client_mode = client_mode
        self.store = store
        self.spec = spec
        self.policy = policy or StaticPolicy(1, 1, name="one")
        self.n_clients = int(n_clients)
        self.ops_total = int(ops_total)
        self.target_throughput = target_throughput
        self.max_time = float(max_time)
        self.seed = int(seed)
        if not (0.0 <= warmup_fraction < 1.0):
            raise ConfigError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        self.do_preload = preload
        self.warmup_fraction = float(warmup_fraction)
        #: optional repro.cost.Biller re-armed at the warmup boundary so the
        #: bill covers exactly the measurement phase.
        self.biller = biller
        self._usage = _LevelUsage()
        self._finished_clients = 0
        self._units = 0
        self._t_last_op = 0.0
        self._warmup_remaining = int(self.ops_total * self.warmup_fraction)
        self._t_measure_start = 0.0
        #: the live client units of the current run (populated by
        #: :meth:`run`): ClosedLoopClients in per-client mode, one
        #: CohortPopulation per datacenter in cohort mode.  The elastic
        #: harness re-paces them mid-run (weighted by ``.weight``).
        self.clients: List[Any] = []

    def run(self) -> RunReport:
        """Execute the workload and return the report."""
        store, spec = self.store, self.spec
        if self.do_preload:
            store.preload(
                [spec.key_of(i) for i in range(spec.record_count)], spec.value_size
            )
        store.add_listener(self._usage)
        if self._warmup_remaining > 0:
            store.add_listener(self)

        rngs = RngFactory(self.seed)
        n_dcs = len(store.topology.datacenters)
        t_start = store.sim.now
        clients = self.clients
        if self.client_mode == "cohort":
            self._start_cohorts(rngs, n_dcs)
        else:
            per_client = self.ops_total // self.n_clients
            extra = self.ops_total - per_client * self.n_clients
            rate = (
                self.target_throughput / self.n_clients
                if self.target_throughput
                else None
            )
            self._units = self.n_clients
            for i in range(self.n_clients):
                ops = per_client + (1 if i < extra else 0)
                client = ClosedLoopClient(
                    store,
                    spec,
                    self.policy,
                    ops=ops,
                    rng=rngs.stream(f"client.{i}"),
                    target_rate=rate,
                    dc=i % n_dcs,
                    on_finished=self._client_finished,
                )
                clients.append(client)
                client.start()

        store.sim.run(until=t_start + self.max_time)
        # Duration is measured from the end of warmup to the last client
        # completion, not to the safety horizon (background chatter may keep
        # the queue non-empty).
        t_end = self._t_last_op if self._finished_clients == self._units else store.sim.now
        duration = max(t_end - max(t_start, self._t_measure_start), 1e-9)

        summary = store.summary()
        return RunReport(
            policy=self.policy.name,
            workload=spec.name,
            ops_completed=store.ops_completed(),
            duration=duration,
            throughput=store.ops_completed() / duration,
            read_latency_mean=summary["read_latency_mean"],
            read_latency_p99=summary["read_latency_p99"],
            write_latency_mean=summary["write_latency_mean"],
            write_latency_p99=summary["write_latency_p99"],
            stale_rate=summary["stale_rate"],
            stale_rate_strict=store.oracle.stale_rate_strict,
            failures=summary["failures"],
            billable_bytes=summary["billable_bytes"],
            total_bytes=summary["total_bytes"],
            read_levels=dict(self._usage.read_levels),
            write_levels=dict(self._usage.write_levels),
            mean_propagation=summary["mean_propagation"],
            client_mode=self.client_mode,
            n_clients=self.n_clients,
            cohorts=(
                [c.summary() for c in self.clients]
                if self.client_mode == "cohort"
                else None
            ),
        )

    def _start_cohorts(self, rngs: RngFactory, n_dcs: int) -> None:
        """Deploy one pooled cohort per datacenter.

        The ``n_clients`` population is split round-robin over datacenters
        exactly as per-client mode spreads client objects; operations and
        any offered-rate cap are split proportionally to cohort size
        (largest-remainder rounding keeps the totals exact).
        """
        from repro.workload.cohort import CohortPopulation

        n_units = min(n_dcs, self.n_clients)
        base, extra = divmod(self.n_clients, n_units)
        members = [base + (1 if i < extra else 0) for i in range(n_units)]
        ops = [self.ops_total * m // self.n_clients for m in members]
        for i in range(self.ops_total - sum(ops)):
            ops[i % n_units] += 1
        self._units = n_units
        for i in range(n_units):
            cohort = CohortPopulation(
                self.store,
                self.spec,
                self.policy,
                members=members[i],
                ops=ops[i],
                rng=rngs.stream(f"cohort.{i}"),
                arrival_rng=rngs.stream(f"cohort.{i}.arrivals"),
                target_rate=(
                    self.target_throughput * members[i] / self.n_clients
                    if self.target_throughput
                    else None
                ),
                dc=i,
                on_finished=self._client_finished,
            )
            self.clients.append(cohort)
            cohort.start()

    def on_op_complete(self, result: OpResult) -> None:
        """Warmup bookkeeping: reset all measurement state at the boundary."""
        if self._warmup_remaining <= 0:
            return
        self._warmup_remaining -= 1
        if self._warmup_remaining == 0:
            self.store.reset_metrics()
            self._usage.read_levels.clear()
            self._usage.write_levels.clear()
            self._t_measure_start = self.store.sim.now
            if self.biller is not None:
                self.biller.arm()

    def _client_finished(self, client) -> None:
        self._finished_clients += 1
        self._t_last_op = self.store.sim.now
        if self._finished_clients == self._units:
            # All workload ops done: stop simulating background chatter
            # (monitor ticks, repair sweeps) so runs end promptly.
            self.store.sim.stop()
