"""Per-node write-ahead logs for two-phase commit.

Each node keeps one append-only log shared by its two transaction roles
(participant and transaction manager). The log is the *durable* half of a
node: when the failure injector crashes a node, every in-memory structure
(prepare locks, vote state, the TM's in-flight table) is wiped, and the
recovery pass rebuilds exactly what the log proves -- which is what makes
the crash-window tests meaningful rather than trivial.

Record kinds (presumed-abort 2PC):

==============  =====================================================
``prepare``     participant voted YES; payload carries the buffered
                writes so a recovered node can still apply them
``commit``      participant learned COMMIT and applied its writes
``abort``       participant learned ABORT and discarded its writes
``tm-begin``    TM started a commit round; payload carries the
                participant list (the recovery pass needs it)
``tm-commit``   TM's forced commit decision -- the transaction's
                one-record commit point
``tm-abort``    TM's abort decision (not strictly required under
                presumed abort, logged for observability)
``tm-end``      every participant acknowledged the decision; the
                transaction needs no further recovery work
==============  =====================================================

A participant is **in doubt** when its log holds a ``prepare`` without a
matching ``commit``/``abort``; a TM round is **unfinished** when it holds a
``tm-begin`` without ``tm-end``. Both queries iterate in LSN order, so
recovery actions replay in a deterministic sequence.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "WalRecord",
    "WriteAheadLog",
    "REC_PREPARE",
    "REC_COMMIT",
    "REC_ABORT",
    "REC_TM_BEGIN",
    "REC_TM_COMMIT",
    "REC_TM_ABORT",
    "REC_TM_END",
]

REC_PREPARE = "prepare"
REC_COMMIT = "commit"
REC_ABORT = "abort"
REC_TM_BEGIN = "tm-begin"
REC_TM_COMMIT = "tm-commit"
REC_TM_ABORT = "tm-abort"
REC_TM_END = "tm-end"

#: Participant-side records that resolve an in-doubt ``prepare``.
_DECISIONS = (REC_COMMIT, REC_ABORT)
#: TM-side decision records.
_TM_DECISIONS = (REC_TM_COMMIT, REC_TM_ABORT)


class WalRecord:
    """One durable log entry."""

    __slots__ = ("lsn", "txn_id", "kind", "time", "data")

    def __init__(self, lsn: int, txn_id: int, kind: str, time: float, data: Dict[str, Any]):
        self.lsn = lsn
        self.txn_id = txn_id
        self.kind = kind
        self.time = time
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WalRecord(lsn={self.lsn}, txn={self.txn_id}, {self.kind})"


class WriteAheadLog:
    """Append-only per-node log with per-transaction indexing.

    ``append`` is the only mutator; there is no truncation (simulated runs
    are bounded, and keeping every record makes the end-of-run audit --
    counting transactions still in doubt -- a pure log scan).
    """

    def __init__(self, node_id: int):
        self.node_id = int(node_id)
        self.records: List[WalRecord] = []
        self._by_txn: Dict[int, List[WalRecord]] = {}

    def append(self, kind: str, txn_id: int, time: float, **data: Any) -> WalRecord:
        """Durably append one record and return it."""
        rec = WalRecord(len(self.records), int(txn_id), kind, float(time), data)
        self.records.append(rec)
        self._by_txn.setdefault(rec.txn_id, []).append(rec)
        return rec

    def records_for(self, txn_id: int) -> List[WalRecord]:
        """All records of one transaction, in LSN order."""
        return list(self._by_txn.get(int(txn_id), ()))

    def kinds_for(self, txn_id: int) -> Tuple[str, ...]:
        """The record kinds logged for one transaction, in LSN order."""
        return tuple(r.kind for r in self._by_txn.get(int(txn_id), ()))

    def prepare_record(self, txn_id: int) -> Optional[WalRecord]:
        """The ``prepare`` record of a transaction, if one was logged."""
        for rec in self._by_txn.get(int(txn_id), ()):
            if rec.kind == REC_PREPARE:
                return rec
        return None

    def in_doubt(self) -> List[int]:
        """Transactions prepared here but never decided, in prepare order."""
        out: List[int] = []
        for rec in self.records:
            if rec.kind != REC_PREPARE:
                continue
            kinds = self.kinds_for(rec.txn_id)
            if not any(k in _DECISIONS for k in kinds):
                out.append(rec.txn_id)
        return out

    def tm_decision(self, txn_id: int) -> Optional[str]:
        """``"commit"``/``"abort"`` if this node's TM decided, else ``None``."""
        for rec in self._by_txn.get(int(txn_id), ()):
            if rec.kind == REC_TM_COMMIT:
                return "commit"
            if rec.kind == REC_TM_ABORT:
                return "abort"
        return None

    def tm_unfinished(self) -> List[WalRecord]:
        """``tm-begin`` records without a matching ``tm-end``, in LSN order."""
        out: List[WalRecord] = []
        for rec in self.records:
            if rec.kind != REC_TM_BEGIN:
                continue
            if REC_TM_END not in self.kinds_for(rec.txn_id):
                out.append(rec)
        return out

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WriteAheadLog(node={self.node_id}, records={len(self.records)})"
