"""Per-node write-ahead logs for the atomic-commit protocols.

Each node keeps one append-only log shared by its two transaction roles
(participant and transaction manager). The log is the *durable* half of a
node: when the failure injector crashes a node, every in-memory structure
(prepare locks, vote state, the TM's in-flight table) is wiped, and the
recovery pass rebuilds exactly what the log proves -- which is what makes
the crash-window tests meaningful rather than trivial.

Record kinds (presumed-abort 2PC, plus the 3PC pre-commit phase):

==================  =====================================================
``prepare``         participant voted YES; payload carries the buffered
                    writes *and the co-participant list* so a recovered
                    node can still apply them and run the cooperative
                    termination protocol
``precommit``       participant learned PRE-COMMIT (3PC only): every
                    participant voted YES, commit is now inevitable
                    unless the whole round dies
``commit``          participant learned COMMIT and applied its writes
``abort``           participant learned ABORT and discarded its writes
                    (also logged as a *refusal pledge* by an unprepared
                    peer answering a termination query -- it guarantees
                    the peer can never vote YES afterwards)
``tm-begin``        TM started a commit round; payload carries the
                    participant list (the recovery pass needs it)
``tm-precommit``    TM collected all YES votes under 3PC and entered the
                    pre-commit phase; recovery drives the round forward
``tm-commit``       TM's forced commit decision -- the transaction's
                    one-record commit point
``tm-abort``        TM's abort decision (not strictly required under
                    presumed abort, logged for observability)
``tm-end``          every participant acknowledged the decision; the
                    transaction needs no further recovery work
==================  =====================================================

A participant is **in doubt** when its log holds a ``prepare`` without a
matching ``commit``/``abort``; a TM round is **unfinished** when it holds a
``tm-begin`` without ``tm-end``. Both queries used to be full log scans,
which made :meth:`~repro.txn.api.TransactionalStore.in_doubt_now` (called
once per report and per sampler tick in observed runs) O(log size). The
log now maintains **incremental pending sets** updated in :meth:`append`;
the scan variants (:meth:`in_doubt_scan`, :meth:`tm_unfinished_scan`)
remain as the executable specification the tests assert against. Both
views iterate in first-record LSN order, so recovery actions replay in a
deterministic sequence either way.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "WalRecord",
    "WriteAheadLog",
    "REC_PREPARE",
    "REC_PRECOMMIT",
    "REC_COMMIT",
    "REC_ABORT",
    "REC_TM_BEGIN",
    "REC_TM_PRECOMMIT",
    "REC_TM_COMMIT",
    "REC_TM_ABORT",
    "REC_TM_END",
]

REC_PREPARE = "prepare"
REC_PRECOMMIT = "precommit"
REC_COMMIT = "commit"
REC_ABORT = "abort"
REC_TM_BEGIN = "tm-begin"
REC_TM_PRECOMMIT = "tm-precommit"
REC_TM_COMMIT = "tm-commit"
REC_TM_ABORT = "tm-abort"
REC_TM_END = "tm-end"

#: Participant-side records that resolve an in-doubt ``prepare``.
_DECISIONS = (REC_COMMIT, REC_ABORT)
#: TM-side decision records.
_TM_DECISIONS = (REC_TM_COMMIT, REC_TM_ABORT)


class WalRecord:
    """One durable log entry."""

    __slots__ = ("lsn", "txn_id", "kind", "time", "data")

    def __init__(self, lsn: int, txn_id: int, kind: str, time: float, data: Dict[str, Any]):
        self.lsn = lsn
        self.txn_id = txn_id
        self.kind = kind
        self.time = time
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WalRecord(lsn={self.lsn}, txn={self.txn_id}, {self.kind})"


class WriteAheadLog:
    """Append-only per-node log with per-transaction indexing.

    ``append`` is the only mutator; there is no truncation (simulated runs
    are bounded, and keeping every record makes the end-of-run audit --
    counting transactions still in doubt -- exact). The pending sets below
    are pure derived state: every update happens inside ``append`` and the
    scan methods recompute them from the records alone.
    """

    def __init__(self, node_id: int):
        self.node_id = int(node_id)
        self.records: List[WalRecord] = []
        self._by_txn: Dict[int, List[WalRecord]] = {}
        #: txn_id -> None; prepared-here-but-undecided, in prepare LSN order
        #: (dict preserves insertion order).
        self._in_doubt: Dict[int, None] = {}
        #: txn_id -> its ``tm-begin`` record, without ``tm-end``, in order.
        self._tm_pending: Dict[int, WalRecord] = {}

    def append(self, kind: str, txn_id: int, time: float, **data: Any) -> WalRecord:
        """Durably append one record and return it."""
        rec = WalRecord(len(self.records), int(txn_id), kind, float(time), data)
        self.records.append(rec)
        self._by_txn.setdefault(rec.txn_id, []).append(rec)
        if kind == REC_PREPARE:
            if not any(r.kind in _DECISIONS for r in self._by_txn[rec.txn_id]):
                self._in_doubt.setdefault(rec.txn_id, None)
        elif kind in _DECISIONS:
            self._in_doubt.pop(rec.txn_id, None)
        elif kind == REC_TM_BEGIN:
            if REC_TM_END not in self.kinds_for(rec.txn_id)[:-1]:
                self._tm_pending.setdefault(rec.txn_id, rec)
        elif kind == REC_TM_END:
            self._tm_pending.pop(rec.txn_id, None)
        return rec

    def records_for(self, txn_id: int) -> List[WalRecord]:
        """All records of one transaction, in LSN order."""
        return list(self._by_txn.get(int(txn_id), ()))

    def kinds_for(self, txn_id: int) -> Tuple[str, ...]:
        """The record kinds logged for one transaction, in LSN order."""
        return tuple(r.kind for r in self._by_txn.get(int(txn_id), ()))

    def prepare_record(self, txn_id: int) -> Optional[WalRecord]:
        """The ``prepare`` record of a transaction, if one was logged."""
        for rec in self._by_txn.get(int(txn_id), ()):
            if rec.kind == REC_PREPARE:
                return rec
        return None

    def decision_for(self, txn_id: int) -> Optional[str]:
        """``"commit"``/``"abort"`` if this *participant* decided, else ``None``.

        This is the authoritative answer a peer may give to a cooperative
        termination query: a logged participant decision can only have come
        from the TM's (or a previously terminated peer's) verdict.
        """
        for rec in self._by_txn.get(int(txn_id), ()):
            if rec.kind == REC_COMMIT:
                return "commit"
            if rec.kind == REC_ABORT:
                return "abort"
        return None

    def precommitted(self, txn_id: int) -> bool:
        """True if this participant logged a 3PC ``precommit``."""
        return REC_PRECOMMIT in self.kinds_for(txn_id)

    def in_doubt(self) -> List[int]:
        """Transactions prepared here but never decided, in prepare order.

        O(pending) from the incremental set; equal to :meth:`in_doubt_scan`
        by construction (asserted in the tests).
        """
        return list(self._in_doubt)

    def in_doubt_scan(self) -> List[int]:
        """The full-scan specification of :meth:`in_doubt` (tests only)."""
        out: List[int] = []
        for rec in self.records:
            if rec.kind != REC_PREPARE:
                continue
            kinds = self.kinds_for(rec.txn_id)
            if not any(k in _DECISIONS for k in kinds) and rec.txn_id not in out:
                out.append(rec.txn_id)
        return out

    def tm_decision(self, txn_id: int) -> Optional[str]:
        """``"commit"``/``"abort"`` if this node's TM decided, else ``None``."""
        for rec in self._by_txn.get(int(txn_id), ()):
            if rec.kind == REC_TM_COMMIT:
                return "commit"
            if rec.kind == REC_TM_ABORT:
                return "abort"
        return None

    def tm_precommitted(self, txn_id: int) -> bool:
        """True if this node's TM logged a 3PC ``tm-precommit``."""
        return REC_TM_PRECOMMIT in self.kinds_for(txn_id)

    def tm_unfinished(self) -> List[WalRecord]:
        """``tm-begin`` records without a matching ``tm-end``, in LSN order.

        O(pending) from the incremental set; equal to
        :meth:`tm_unfinished_scan` by construction (asserted in the tests).
        """
        return list(self._tm_pending.values())

    def tm_unfinished_scan(self) -> List[WalRecord]:
        """The full-scan specification of :meth:`tm_unfinished` (tests only)."""
        out: List[WalRecord] = []
        for rec in self.records:
            if rec.kind != REC_TM_BEGIN:
                continue
            if REC_TM_END not in self.kinds_for(rec.txn_id):
                out.append(rec)
        return out

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WriteAheadLog(node={self.node_id}, records={len(self.records)})"
