"""The replica-side state machine of presumed-abort two-phase commit.

One :class:`TxnParticipant` per storage node. The participant's job per
transaction:

``PREPARE`` -- decide a vote. YES requires (a) every written key free of a
conflicting prepare lock and (b), when commit-time validation is on, the
local replica's version of every written-and-read key no newer than the
version the transaction read (optimistic concurrency control graded
against *this replica's* state -- a stale replica can wave a doomed
transaction through, which is exactly how stale reads leak into abort and
anomaly rates). A YES vote force-logs the buffered writes to the WAL and
takes per-key locks; a NO vote logs nothing (presumed abort).

``COMMIT``/``ABORT`` -- log the decision, apply (last-write-wins) or
discard the buffered writes, release locks, acknowledge the TM.

**Crash/recovery** -- a crash wipes the lock table, the prepared-state
mirror and the status-poll timers; only the WAL survives. Recovery
rebuilds prepared state and locks from in-doubt ``prepare`` records (LSN
order) and asks each transaction's TM for the verdict. While in doubt the
participant also polls the TM periodically, which resolves lost decision
messages and TM crash windows without any global observer.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.cluster.versions import Version
from repro.txn.wal import (
    REC_ABORT,
    REC_COMMIT,
    REC_PREPARE,
    WriteAheadLog,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.txn.api import TransactionalStore

__all__ = ["TxnParticipant"]


class _Prepared:
    """Volatile mirror of one in-doubt transaction (rebuilt from WAL)."""

    __slots__ = ("txn_id", "tm_node", "writes")

    def __init__(self, txn_id: int, tm_node: int, writes: Dict[str, Version]):
        self.txn_id = txn_id
        self.tm_node = tm_node
        self.writes = writes


class TxnParticipant:
    """Per-node prepare/commit state machine."""

    def __init__(self, owner: "TransactionalStore", node_id: int, wal: WriteAheadLog):
        self.owner = owner
        self.node_id = int(node_id)
        self.wal = wal
        #: key -> txn_id holding the prepare lock.
        self.locks: Dict[str, int] = {}
        #: txn_id -> prepared state awaiting a decision.
        self.prepared: Dict[int, _Prepared] = {}
        self._poll_events: Dict[int, Any] = {}
        # counters (never reset by a crash -- they are measurement surfaces)
        self.prepares_seen = 0
        self.votes_yes = 0
        self.votes_no = 0
        self.commits_applied = 0
        self.aborts_applied = 0
        self.in_doubt_recovered = 0

    # -- plumbing -----------------------------------------------------------------

    def _node(self):
        return self.owner.store.nodes[self.node_id]

    def _sim(self):
        return self.owner.store.sim

    # -- message handlers ---------------------------------------------------------

    def on_prepare(
        self,
        txn_id: int,
        tm_node: int,
        writes: Dict[str, Version],
        read_versions: Dict[str, Optional[Version]],
    ) -> None:
        """PREPARE from the TM: vote, and on YES make the writes durable."""
        if not self._node().up:
            return  # message lost at a dead node; the TM's timeout handles it
        self.prepares_seen += 1
        if txn_id in self.prepared:
            self._send_vote(tm_node, txn_id, True)  # duplicate (TM retry)
            return
        kinds = self.wal.kinds_for(txn_id)
        if REC_COMMIT in kinds or REC_ABORT in kinds:
            return  # stale duplicate of an already-decided transaction
        vote = self._evaluate(txn_id, writes, read_versions)
        if vote:
            self.votes_yes += 1
            self.wal.append(
                REC_PREPARE, txn_id, self._sim().now, tm_node=tm_node, writes=dict(writes)
            )
            for key in writes:
                self.locks[key] = txn_id
            self.prepared[txn_id] = _Prepared(txn_id, tm_node, dict(writes))
            self._schedule_poll(txn_id)
            obs = self.owner.obs
            if obs is not None:
                obs.on_txn_prepared(self.node_id, txn_id, self._sim().now)
        else:
            self.votes_no += 1
        self._send_vote(tm_node, txn_id, vote)

    def _evaluate(
        self,
        txn_id: int,
        writes: Dict[str, Version],
        read_versions: Dict[str, Optional[Version]],
    ) -> bool:
        """The YES/NO decision: lock conflicts, then read validation."""
        for key in writes:
            holder = self.locks.get(key)
            if holder is not None and holder != txn_id:
                return False
        node = self._node()
        for key in sorted(read_versions):
            seen = read_versions[key]
            local = node.data.get(key)
            if local is None:
                continue
            if seen is None or local.newer_than(seen):
                # The local replica holds a version the transaction never
                # read: someone committed underneath it.
                return False
        return True

    def on_decision(self, txn_id: int, tm_node: int, commit: bool) -> None:
        """COMMIT/ABORT from the TM (possibly a retry or a recovery reply)."""
        if not self._node().up:
            return  # lost; the TM keeps retrying until acknowledged
        p = self.prepared.get(txn_id)
        if p is None:
            # Never prepared here (presumed abort: nothing to undo) or
            # already decided (duplicate retry). Ack so the TM stops.
            self._send_ack(tm_node, txn_id)
            return
        self.wal.append(REC_COMMIT if commit else REC_ABORT, txn_id, self._sim().now)
        if commit:
            self._apply(p)
            self.commits_applied += 1
        else:
            self.aborts_applied += 1
        for key in p.writes:
            if self.locks.get(key) == txn_id:
                del self.locks[key]
        self._cancel_poll(txn_id)
        del self.prepared[txn_id]
        obs = self.owner.obs
        if obs is not None:
            obs.on_txn_doubt_resolved(self.node_id, txn_id, self._sim().now)
        self._send_ack(tm_node, txn_id)

    def _apply(self, p: _Prepared) -> None:
        """Install the prepared writes (last-write-wins, oracle-visible)."""
        node = self._node()
        now = self._sim().now
        oracle = self.owner.store.oracle
        for key in sorted(p.writes):
            version = p.writes[key]
            current = node.data.get(key)
            if current is None or version.newer_than(current):
                node.data[key] = version
            node.writes_applied += 1
            oracle.note_replica_applied(version, now)

    # -- crash / recovery ---------------------------------------------------------

    def on_crash(self) -> None:
        """Volatile state is lost; the WAL is all that survives."""
        for ev in self._poll_events.values():
            ev.cancel()
        self._poll_events.clear()
        self.locks.clear()
        self.prepared.clear()

    def on_recover(self) -> None:
        """Rebuild prepared state from the WAL and chase down decisions."""
        for txn_id in self.wal.in_doubt():
            rec = self.wal.prepare_record(txn_id)
            if rec is None:  # pragma: no cover - in_doubt implies a record
                continue
            p = _Prepared(txn_id, int(rec.data["tm_node"]), dict(rec.data["writes"]))
            self.prepared[txn_id] = p
            for key in p.writes:
                self.locks[key] = txn_id
            self.in_doubt_recovered += 1
            obs = self.owner.obs
            if obs is not None:
                # Re-register with the WAL's original prepare time so the
                # dwell clock spans the crash window, not just the restart.
                obs.on_txn_prepared(self.node_id, txn_id, rec.time)
            self._query_status(txn_id)
            self._schedule_poll(txn_id)

    # -- in-doubt polling ---------------------------------------------------------

    def _schedule_poll(self, txn_id: int) -> None:
        self._poll_events[txn_id] = self._sim().schedule(
            self.owner.config.status_interval, self._poll, txn_id
        )

    def _cancel_poll(self, txn_id: int) -> None:
        ev = self._poll_events.pop(txn_id, None)
        if ev is not None:
            ev.cancel()

    def _poll(self, txn_id: int) -> None:
        if txn_id not in self.prepared or not self._node().up:
            self._poll_events.pop(txn_id, None)
            return
        self._query_status(txn_id)
        self._schedule_poll(txn_id)

    def _query_status(self, txn_id: int) -> None:
        """Ask the transaction's TM for the verdict (presumed-abort reply)."""
        p = self.prepared.get(txn_id)
        if p is None:
            return
        st = self.owner.store
        st.network.send(
            self.node_id,
            p.tm_node,
            st.sizes.digest,
            self.owner.tms[p.tm_node].on_status_query,
            txn_id,
            self.node_id,
        )

    # -- outbound messages --------------------------------------------------------

    def _send_vote(self, tm_node: int, txn_id: int, vote: bool) -> None:
        st = self.owner.store
        st.network.send(
            self.node_id,
            tm_node,
            st.sizes.ack,
            self.owner.tms[tm_node].on_vote,
            txn_id,
            self.node_id,
            vote,
        )

    def _send_ack(self, tm_node: int, txn_id: int) -> None:
        st = self.owner.store
        st.network.send(
            self.node_id,
            tm_node,
            st.sizes.ack,
            self.owner.tms[tm_node].on_ack,
            txn_id,
            self.node_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TxnParticipant(node={self.node_id}, prepared={len(self.prepared)}, "
            f"yes={self.votes_yes}, no={self.votes_no})"
        )
