"""The replica-side state machines of the atomic-commit protocols.

One :class:`TxnParticipant` per storage node. The participant's job per
transaction:

``PREPARE`` -- decide a vote. YES requires (a) every written key free of a
conflicting prepare lock and (b), when commit-time validation is on, the
local replica's version of every written-and-read key no newer than the
version the transaction read (optimistic concurrency control graded
against *this replica's* state -- a stale replica can wave a doomed
transaction through, which is exactly how stale reads leak into abort and
anomaly rates). A YES vote force-logs the buffered writes -- and the
co-participant list, which the termination protocol needs -- to the WAL
and takes per-key locks; a NO vote logs nothing (presumed abort).

``PRE-COMMIT`` (3PC only) -- every participant voted YES; log the fact and
acknowledge. A pre-committed participant knows commit is inevitable
unless the whole round dies, which is what makes 3PC non-blocking under
a coordinator crash.

``COMMIT``/``ABORT`` -- log the decision, apply (last-write-wins) or
discard the buffered writes, release locks, acknowledge the TM.

**In-doubt polling** -- while prepared-without-decision the participant
polls the TM for the verdict on a deterministic exponential-backoff
schedule with derived jitter (:meth:`~repro.txn.api.TxnConfig.poll_delay`),
so crash storms don't synchronize status-query bursts. A live TM always
answers (verdict or "working"), and a "working" reply resets the backoff.

**Cooperative termination** (``2pc-coop`` and ``3pc``) -- when
``termination_after`` consecutive polls go unanswered, the participant
queries its co-participants. A peer holding a commit/abort record answers
authoritatively; an unprepared peer logs an abort *pledge* (it can never
vote YES afterwards) and answers abort; a pre-committed peer answers
pre-commit (drive to commit). When every peer answers "uncertain" -- or
the round's reply window times out with peers silent (dead peers never
reply; a dead peer holding a decision record would imply the fan-out
already reached this live node) -- the round aborts unilaterally *if this
participant has been continuously up since it voted*: under the
fail-stop model a silent TM is a dead TM, and a dead TM that never
logged a decision can only presumed-abort on recovery -- so abort is the
unique safe outcome. A participant that crashed after voting loses that
inference (the COMMIT fan-out may have been dropped at it while down and
acked by peers that later died), so after recovery it never aborts
unilaterally: it stays blocked, polling TM and peers, until an
authoritative commit/abort/pre-commit/pledge answer arrives -- the
classical blocking case of termination protocols.
(Partitions can violate the fail-stop assumption too; that is the
classical limit of termination protocols and of 3PC itself, see
docs/ARCHITECTURE.md.)

**Crash/recovery** -- a crash wipes the lock table, the prepared-state
mirror, the poll timers and the termination bookkeeping; only the WAL
survives. Recovery rebuilds prepared state (including pre-commit status
and the co-participant list) from in-doubt ``prepare`` records in LSN
order and asks each transaction's TM for the verdict.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, TYPE_CHECKING

from repro.cluster.versions import Version
from repro.txn.wal import (
    REC_ABORT,
    REC_COMMIT,
    REC_PRECOMMIT,
    REC_PREPARE,
    WriteAheadLog,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.txn.api import TransactionalStore

__all__ = ["TxnParticipant"]


class _Prepared:
    """Volatile mirror of one in-doubt transaction (rebuilt from WAL)."""

    __slots__ = (
        "txn_id",
        "tm_node",
        "writes",
        "co_participants",
        "precommitted",
        "recovered",
        "t_registered",
    )

    def __init__(
        self,
        txn_id: int,
        tm_node: int,
        writes: Dict[str, Version],
        co_participants: List[int],
        precommitted: bool = False,
        recovered: bool = False,
        t_registered: float = 0.0,
    ):
        self.txn_id = txn_id
        self.tm_node = tm_node
        self.writes = writes
        self.co_participants = co_participants
        self.precommitted = precommitted
        #: True once this entry has been rebuilt from the WAL after a
        #: crash: the node was NOT continuously up since voting YES, so
        #: it may have missed a decision fan-out entirely -- which
        #: forfeits the TM-silence inference (see ``_unilateral_abort``).
        self.recovered = recovered
        #: When this live stretch of in-doubt dwell started: the prepare
        #: instant, or the recovery instant after a crash (downtime is
        #: dead, not blocked -- same rule as the in-doubt-dwell oracle).
        self.t_registered = t_registered


class TxnParticipant:
    """Per-node prepare/pre-commit/commit state machine."""

    def __init__(self, owner: "TransactionalStore", node_id: int, wal: WriteAheadLog):
        self.owner = owner
        self.node_id = int(node_id)
        self.wal = wal
        #: key -> txn_id holding the prepare lock.
        self.locks: Dict[str, int] = {}
        #: txn_id -> prepared state awaiting a decision.
        self.prepared: Dict[int, _Prepared] = {}
        self._poll_events: Dict[int, Any] = {}
        #: txn_id -> unanswered status polls since the last sign of TM life.
        self._poll_attempts: Dict[int, int] = {}
        #: txn_id -> peers that answered "uncertain" in the current round.
        self._term_uncertain: Dict[int, Set[int]] = {}
        #: txn_id -> token of the open termination round; any sign of TM
        #: life (or a resolution) invalidates the round and its timeout.
        self._term_round: Dict[int, int] = {}
        # counters (never reset by a crash -- they are measurement surfaces)
        self.prepares_seen = 0
        self.votes_yes = 0
        self.votes_no = 0
        self.commits_applied = 0
        self.aborts_applied = 0
        self.in_doubt_recovered = 0
        #: in-doubt entries resolved by the termination protocol (peer
        #: verdicts, pledges driving rounds dry, and unilateral aborts).
        self.termination_resolved = 0
        #: total prepared-without-decision dwell accrued here while the
        #: node was *up* (crash downtime is dead, not blocked -- the same
        #: semantics as the in-doubt-dwell oracle's recovery-restart rule).
        self.blocked_time = 0.0

    # -- plumbing -----------------------------------------------------------------

    def _node(self):
        return self.owner.store.nodes[self.node_id]

    def _transport(self):
        return self.owner.transport

    def _protocol(self) -> str:
        return self.owner.config.commit_protocol

    # -- message handlers ---------------------------------------------------------

    def on_prepare(
        self,
        txn_id: int,
        tm_node: int,
        writes: Dict[str, Version],
        read_versions: Dict[str, Optional[Version]],
        co_participants: Any = (),
    ) -> None:
        """PREPARE from the TM: vote, and on YES make the writes durable."""
        if not self._node().up:
            return  # message lost at a dead node; the TM's timeout handles it
        self.prepares_seen += 1
        if txn_id in self.prepared:
            self._send_vote(tm_node, txn_id, True)  # duplicate (TM retry)
            return
        kinds = self.wal.kinds_for(txn_id)
        if REC_COMMIT in kinds or REC_ABORT in kinds:
            # Already decided here -- or abort-pledged to a termination
            # query, in which case voting YES now would break the pledge.
            return
        vote = self._evaluate(txn_id, writes, read_versions)
        if vote:
            self.votes_yes += 1
            self.wal.append(
                REC_PREPARE,
                txn_id,
                self._transport().now,
                tm_node=tm_node,
                writes=dict(writes),
                co=list(co_participants),
            )
            for key in writes:
                self.locks[key] = txn_id
            self.prepared[txn_id] = _Prepared(
                txn_id,
                tm_node,
                dict(writes),
                [int(c) for c in co_participants],
                t_registered=self._transport().now,
            )
            self._schedule_poll(txn_id)
            obs = self.owner.obs
            if obs is not None:
                obs.on_txn_prepared(self.node_id, txn_id, self._transport().now)
        else:
            self.votes_no += 1
        self._send_vote(tm_node, txn_id, vote)

    def _evaluate(
        self,
        txn_id: int,
        writes: Dict[str, Version],
        read_versions: Dict[str, Optional[Version]],
    ) -> bool:
        """The YES/NO decision: lock conflicts, then read validation."""
        for key in writes:
            holder = self.locks.get(key)
            if holder is not None and holder != txn_id:
                return False
        node = self._node()
        for key in sorted(read_versions):
            seen = read_versions[key]
            local = node.data.get(key)
            if local is None:
                continue
            if seen is None or local.newer_than(seen):
                # The local replica holds a version the transaction never
                # read: someone committed underneath it.
                return False
        return True

    def on_precommit(self, txn_id: int, tm_node: int) -> None:
        """PRE-COMMIT from a 3PC TM: log it and acknowledge."""
        if not self._node().up:
            return  # lost; the TM re-sends until acknowledged
        p = self.prepared.get(txn_id)
        if p is None:
            # Already resolved here (or never prepared); ack so a
            # recovering TM can close its pre-commit barrier and move on.
            self._send_precommit_ack(tm_node, txn_id)
            return
        if not p.precommitted:
            p.precommitted = True
            self.wal.append(REC_PRECOMMIT, txn_id, self._transport().now)
        # A pre-commit is proof of TM life: restart the backoff schedule.
        self._poll_attempts[txn_id] = 0
        self._term_uncertain.pop(txn_id, None)
        self._term_round.pop(txn_id, None)
        self._send_precommit_ack(tm_node, txn_id)

    def on_decision(self, txn_id: int, tm_node: int, commit: bool) -> None:
        """COMMIT/ABORT from the TM (possibly a retry or a recovery reply)."""
        if not self._node().up:
            return  # lost; the TM keeps retrying until acknowledged
        p = self.prepared.get(txn_id)
        if p is None:
            # Never prepared here (presumed abort: nothing to undo) or
            # already decided (duplicate retry). Ack so the TM stops.
            self._send_ack(tm_node, txn_id)
            return
        self._resolve(p, commit)
        self._send_ack(tm_node, txn_id)

    def _resolve(self, p: _Prepared, commit: bool) -> None:
        """Log the verdict, apply or discard, release, account the dwell."""
        now = self._transport().now
        self.wal.append(REC_COMMIT if commit else REC_ABORT, p.txn_id, now)
        if commit:
            self._apply(p)
            self.commits_applied += 1
        else:
            self.aborts_applied += 1
        self.blocked_time += now - p.t_registered
        for key in p.writes:
            if self.locks.get(key) == p.txn_id:
                del self.locks[key]
        self._cancel_poll(p.txn_id)
        self._poll_attempts.pop(p.txn_id, None)
        self._term_uncertain.pop(p.txn_id, None)
        self._term_round.pop(p.txn_id, None)
        del self.prepared[p.txn_id]
        obs = self.owner.obs
        if obs is not None:
            obs.on_txn_doubt_resolved(self.node_id, p.txn_id, now)

    def _apply(self, p: _Prepared) -> None:
        """Install the prepared writes (last-write-wins, oracle-visible)."""
        node = self._node()
        now = self._transport().now
        oracle = self.owner.store.oracle
        for key in sorted(p.writes):
            version = p.writes[key]
            current = node.data.get(key)
            if current is None or version.newer_than(current):
                node.data[key] = version
            node.writes_applied += 1
            oracle.note_replica_applied(version, now)

    # -- crash / recovery ---------------------------------------------------------

    def on_crash(self) -> None:
        """Volatile state is lost; the WAL is all that survives."""
        # Close out the live in-doubt dwell of every prepared entry: the
        # node is dead from here until recovery, and dead is not blocked.
        now = self._transport().now
        for p in self.prepared.values():
            self.blocked_time += now - p.t_registered
        for ev in self._poll_events.values():
            ev.cancel()
        self._poll_events.clear()
        self._poll_attempts.clear()
        self._term_uncertain.clear()
        self._term_round.clear()
        self.locks.clear()
        self.prepared.clear()

    def on_recover(self) -> None:
        """Rebuild prepared state from the WAL and chase down decisions."""
        for txn_id in self.wal.in_doubt():
            rec = self.wal.prepare_record(txn_id)
            if rec is None:  # pragma: no cover - in_doubt implies a record
                continue
            p = _Prepared(
                txn_id,
                int(rec.data["tm_node"]),
                dict(rec.data["writes"]),
                [int(c) for c in rec.data.get("co", ())],
                precommitted=self.wal.precommitted(txn_id),
                # Rebuilt from the WAL = not continuously up since voting:
                # a decision fan-out may have been dropped at this node
                # while it was down, so the TM-silence inference is off
                # the table for this entry forever (sticky across any
                # number of further crashes -- every rebuild re-sets it).
                recovered=True,
                t_registered=self._transport().now,
            )
            self.prepared[txn_id] = p
            for key in p.writes:
                self.locks[key] = txn_id
            self.in_doubt_recovered += 1
            obs = self.owner.obs
            if obs is not None:
                # Re-register at the recovery instant: the node was dead,
                # not blocked, while down -- the dwell oracle's clock
                # measures how long a *live* participant stays stuck.
                # ``restart=True`` overwrites the pre-crash start time even
                # when the crash+recovery fell between two sampler ticks.
                obs.on_txn_prepared(
                    self.node_id, txn_id, self._transport().now, restart=True
                )
            self._query_status(txn_id)
            self._schedule_poll(txn_id)

    # -- in-doubt polling (deterministic backoff) ---------------------------------

    def _schedule_poll(self, txn_id: int) -> None:
        delay = self.owner.config.poll_delay(
            self.owner.store.config.seed,
            self.node_id,
            txn_id,
            self._poll_attempts.get(txn_id, 0),
        )
        self._poll_events[txn_id] = self._transport().set_timer(delay, self._poll, txn_id)

    def _cancel_poll(self, txn_id: int) -> None:
        ev = self._poll_events.pop(txn_id, None)
        if ev is not None:
            ev.cancel()

    def _poll(self, txn_id: int) -> None:
        if txn_id not in self.prepared or not self._node().up:
            self._poll_events.pop(txn_id, None)
            return
        self._poll_attempts[txn_id] = self._poll_attempts.get(txn_id, 0) + 1
        self._query_status(txn_id)
        if (
            self._protocol() in ("2pc-coop", "3pc")
            and self._poll_attempts[txn_id] >= self.owner.config.termination_after
        ):
            self._terminate(txn_id)
            if txn_id not in self.prepared:
                # Termination resolved the transaction (3PC pre-committed
                # self-commit or unilateral abort): ``_resolve`` already
                # cleaned the poll state -- don't recreate it.
                return
        self._schedule_poll(txn_id)

    def _query_status(self, txn_id: int) -> None:
        """Ask the transaction's TM for the verdict (presumed-abort reply)."""
        p = self.prepared.get(txn_id)
        if p is None:
            return
        st = self.owner.store
        self.owner.send(
            self.node_id,
            p.tm_node,
            st.sizes.digest,
            self.owner.tms[p.tm_node].on_status_query,
            txn_id,
            self.node_id,
        )

    def on_tm_working(self, txn_id: int) -> None:
        """The TM answered "still deciding": proof of life, reset backoff."""
        if not self._node().up or txn_id not in self.prepared:
            return
        self._poll_attempts[txn_id] = 0
        self._term_uncertain.pop(txn_id, None)
        self._term_round.pop(txn_id, None)

    # -- cooperative termination --------------------------------------------------

    def _terminate(self, txn_id: int) -> None:
        """One termination round: ask every co-participant for the verdict."""
        p = self.prepared.get(txn_id)
        if p is None:
            return
        if self._protocol() == "3pc" and p.precommitted:
            # Pre-commit is proof every participant voted YES and the TM
            # passed its commit point barrier's threshold; after sustained
            # TM silence the round drives itself to commit (the 3PC
            # non-blocking rule under a single coordinator failure).
            self.termination_resolved += 1
            self._resolve(p, commit=True)
            self._send_ack(p.tm_node, txn_id)
            return
        peers = [c for c in p.co_participants if c != self.node_id]
        if not peers:
            # Sole participant: the sustained poll silence that brought us
            # here is itself the evidence -- a live TM always answers, and
            # a dead TM that never logged a decision presumes abort. (If
            # this entry was rebuilt after a crash the TM may well have
            # logged a commit we never saw; ``_unilateral_abort`` keeps a
            # recovered entry blocked.)
            self._unilateral_abort(p)
            return
        token = self._term_round.get(txn_id, 0) + 1
        self._term_round[txn_id] = token
        self._term_uncertain[txn_id] = set()
        st = self.owner.store
        for peer in peers:
            self.owner.send(
                self.node_id,
                peer,
                st.sizes.digest,
                self.owner.participants[peer].on_termination_query,
                txn_id,
                self.node_id,
            )
        # Backstop for dead peers (which never reply): conclude the round
        # after a full timeout, counting non-repliers as uncertain. For a
        # participant continuously up since its vote this is safe under
        # fail-stop with atomic log+fan-out events: a dead peer that held
        # a commit (or pre-commit) record implies the TM's fan-out was
        # already sent, hence delivered to this live node -- contradiction
        # with still being prepared (resp. not pre-committed) here. A
        # *recovered* participant gets no such contradiction (it may have
        # been down for the fan-out), so ``_unilateral_abort`` keeps it
        # blocked instead.
        cfg = self.owner.config
        window = (
            cfg.termination_timeout
            if cfg.termination_timeout is not None
            else cfg.prepare_timeout
        )
        self._transport().set_timer(window, self._termination_timeout, txn_id, token)

    def _termination_timeout(self, txn_id: int, token: int) -> None:
        """The round's reply window closed: missing peers count uncertain."""
        if not self._node().up or self._term_round.get(txn_id) != token:
            return  # superseded by a newer round or a sign of TM life
        p = self.prepared.get(txn_id)
        if p is None:
            return
        self._unilateral_abort(p)

    def _unilateral_abort(self, p: _Prepared) -> None:
        """Every reachable party is uncertain and the TM is silent: abort.

        Sound only for a participant **continuously up since it voted**:
        for such a node, TM silence plus all-uncertain/silent peers really
        does prove no decision was ever fanned out (a commit fan-out would
        have reached this live node). A *recovered* participant has no
        such proof -- ``on_decision`` drops messages at a down node, so
        the TM may have durably committed, delivered COMMIT to peers that
        applied it and later died, and then died itself. Aborting here
        would diverge from those committed replicas. Classical cooperative
        termination **blocks** in that case, and so do we: the entry stays
        prepared and keeps polling until the TM or a peer answers
        authoritatively (TM recovery replay, a peer's WAL verdict, a
        pre-commit, or an abort pledge).
        """
        if p.recovered:
            return
        self.termination_resolved += 1
        self._resolve(p, commit=False)
        self._send_ack(p.tm_node, p.txn_id)

    def on_termination_query(self, txn_id: int, from_node: int) -> None:
        """A blocked co-participant asks what this node knows."""
        if not self._node().up:
            return
        decision = self.wal.decision_for(txn_id)
        if decision is None:
            p = self.prepared.get(txn_id)
            if p is not None:
                verdict = "precommit" if p.precommitted else "uncertain"
            elif self.wal.prepare_record(txn_id) is not None:
                # Prepared in the WAL but not in memory: this node is down
                # in all reachable cases, so we cannot be here -- kept for
                # safety as "uncertain".
                verdict = "uncertain"  # pragma: no cover
            else:
                # Never voted YES (and, having pledged, never will): the TM
                # cannot have decided commit without this vote, so abort is
                # authoritative. The pledge is the logged abort record.
                self.wal.append(
                    REC_ABORT, txn_id, self._transport().now, pledge=True
                )
                verdict = "abort"
        else:
            verdict = decision
        st = self.owner.store
        self.owner.send(
            self.node_id,
            from_node,
            st.sizes.digest,
            self.owner.participants[from_node].on_termination_reply,
            txn_id,
            self.node_id,
            verdict,
        )

    def on_termination_reply(self, txn_id: int, from_node: int, verdict: str) -> None:
        """A co-participant's answer to this node's termination query."""
        if not self._node().up:
            return
        p = self.prepared.get(txn_id)
        if p is None:
            return  # resolved meanwhile (TM retry or an earlier reply)
        if verdict == "commit" or (verdict == "precommit" and self._protocol() == "3pc"):
            self.termination_resolved += 1
            self._resolve(p, commit=True)
            self._send_ack(p.tm_node, txn_id)
            return
        if verdict == "abort":
            self.termination_resolved += 1
            self._resolve(p, commit=False)
            self._send_ack(p.tm_node, txn_id)
            return
        # "uncertain" (or a precommit report under plain 2pc-coop, where it
        # cannot occur): when every peer of the round is uncertain and the
        # TM has been silent the whole backoff window, the fail-stop model
        # says the TM is dead and undecided -- its own recovery would
        # presume abort, so aborting now is the unique consistent outcome
        # for a participant continuously up since its vote (a recovered
        # one stays blocked; see ``_unilateral_abort``).
        pending = self._term_uncertain.get(txn_id)
        if pending is None:
            return  # a stale reply from a superseded round
        pending.add(from_node)
        peers = {c for c in p.co_participants if c != self.node_id}
        if peers and pending >= peers:
            self._unilateral_abort(p)

    # -- outbound messages --------------------------------------------------------

    def _send_vote(self, tm_node: int, txn_id: int, vote: bool) -> None:
        st = self.owner.store
        self.owner.send(
            self.node_id,
            tm_node,
            st.sizes.ack,
            self.owner.tms[tm_node].on_vote,
            txn_id,
            self.node_id,
            vote,
        )

    def _send_precommit_ack(self, tm_node: int, txn_id: int) -> None:
        st = self.owner.store
        self.owner.send(
            self.node_id,
            tm_node,
            st.sizes.ack,
            self.owner.tms[tm_node].on_precommit_ack,
            txn_id,
            self.node_id,
        )

    def _send_ack(self, tm_node: int, txn_id: int) -> None:
        st = self.owner.store
        self.owner.send(
            self.node_id,
            tm_node,
            st.sizes.ack,
            self.owner.tms[tm_node].on_ack,
            txn_id,
            self.node_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TxnParticipant(node={self.node_id}, prepared={len(self.prepared)}, "
            f"yes={self.votes_yes}, no={self.votes_no})"
        )
