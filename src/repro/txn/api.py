"""The transactional client facade: ``begin / read / write / commit``.

:class:`TransactionalStore` wraps a :class:`~repro.cluster.store.ReplicatedStore`
with per-node write-ahead logs, participants and transaction managers, and
exposes the client API:

    txn = tstore.begin()
    txn.read("user1", on_read)        # routed through the active policy
    txn.write("user1", value_size)    # buffered until commit
    txn.commit(on_outcome)            # presumed-abort 2PC

Transactional **reads go through the store's normal read path at whatever
level the active consistency policy (Harmony/Bismar/static) dials** -- that
is the experiment: the policy's stale-read probability feeds directly into
commit-time validation failures (aborts) and, when validation is off,
into lost-update anomalies, which the store grades via the oracle.

Writes are buffered client-side: no replica applies anything before the
TM's logged decision, and a crashed participant re-drives its prepared
writes from the WAL, so the **settled state is always all-or-nothing** --
a partial transaction can never persist. (During the commit fan-out
itself replicas apply as the decision reaches them, so a concurrent weak
read may see the new versions arrive key by key -- the same propagation
window every write has in an eventually-consistent store, and exactly
what the staleness metrics measure.)

The store registers for node crash/recovery events, wiping volatile 2PC
state on crash and running the WAL recovery passes on recovery, so
:class:`~repro.cluster.failures.FailureInjector` scripts exercise the full
in-doubt machinery.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.common.errors import ConfigError, SimulationError
from repro.common.stats import Histogram
from repro.cluster.coordinator import OpResult
from repro.cluster.store import ReplicatedStore
from repro.cluster.versions import NONE_VERSION, Version
from repro.txn.participant import TxnParticipant
from repro.txn.tm import TransactionManager
from repro.txn.wal import WriteAheadLog

__all__ = [
    "PROTOCOLS",
    "TxnConfig",
    "TxnOutcome",
    "Transaction",
    "TransactionalStore",
]

#: The commit protocols the transaction subsystem implements.
#:
#: ``2pc``
#:     Classic presumed-abort two-phase commit. Prepared participants
#:     poll only the TM for the verdict: a crashed coordinator blocks
#:     them until it recovers -- the textbook 2PC blocking window.
#: ``2pc-coop``
#:     2PC plus the cooperative termination protocol: a prepared
#:     participant whose TM polls go unanswered queries its
#:     co-participants, any of whom holding a commit/abort record
#:     answers authoritatively, so blocked time no longer depends on TM
#:     recovery (fail-stop model).
#: ``3pc``
#:     Three-phase commit with a pre-commit phase between vote
#:     collection and the commit point; non-blocking under a single
#:     coordinator failure (fail-stop, no partitions -- the classical
#:     3PC guarantee).
PROTOCOLS = ("2pc", "2pc-coop", "3pc")


@dataclass
class TxnConfig:
    """Transaction-subsystem tunables.

    Attributes
    ----------
    prepare_timeout:
        TM-side vote-collection timeout (seconds); expiry aborts the round.
    client_timeout:
        Client-side outcome timeout; expiry reports the transaction as
        in-doubt to the caller (recovery may still commit it later --
        exactly the 2PC blocking window, surfaced honestly).
    retry_interval:
        TM decision re-send period until all participants acknowledge.
    status_interval:
        Base delay before a prepared participant's *first* status poll;
        subsequent polls back off exponentially (below).
    status_backoff:
        Multiplier applied to the poll delay after every unanswered
        attempt (>= 1.0; 1.0 restores the legacy fixed interval).
    status_interval_max:
        Cap on the backed-off poll delay, so a long-dead TM is still
        probed at a bounded period.
    status_jitter:
        Fractional jitter added to each poll delay, derived
        deterministically from ``(seed, node, txn, attempt)`` -- crash
        storms stop synchronizing status-query bursts while runs stay
        byte-identical for a fixed seed. In ``[0, 1)``.
    termination_after:
        Unanswered TM polls before a ``2pc-coop``/``3pc`` participant
        starts querying its co-participants (cooperative termination).
    termination_timeout:
        Reply window of one termination round; when it closes, peers
        that never answered (dead, under fail-stop) count as uncertain
        and the round concludes. ``None`` reuses ``prepare_timeout``.
    commit_protocol:
        One of :data:`PROTOCOLS`; selects the atomic-commit state
        machines every TM and participant of this store run.
    validate_reads:
        Commit-time optimistic validation of read-then-written keys
        against each replica's local state. Off = eventual-style blind
        commits (lost updates become observable).
    grade_anomalies:
        Oracle-side lost-update grading of commits (measurement only;
        never feeds back into protocol decisions).
    """

    prepare_timeout: float = 5.0
    client_timeout: float = 10.0
    retry_interval: float = 0.5
    status_interval: float = 0.5
    status_backoff: float = 2.0
    status_interval_max: float = 5.0
    status_jitter: float = 0.25
    termination_after: int = 2
    termination_timeout: Optional[float] = None
    commit_protocol: str = "2pc"
    validate_reads: bool = True
    grade_anomalies: bool = True

    def __post_init__(self) -> None:
        for name in (
            "prepare_timeout",
            "client_timeout",
            "retry_interval",
            "status_interval",
            "status_interval_max",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive, got {getattr(self, name)}")
        if self.status_backoff < 1.0:
            raise ConfigError(
                f"status_backoff must be >= 1.0, got {self.status_backoff}"
            )
        if not 0.0 <= self.status_jitter < 1.0:
            raise ConfigError(
                f"status_jitter must be in [0, 1), got {self.status_jitter}"
            )
        if self.termination_after < 1:
            raise ConfigError(
                f"termination_after must be >= 1, got {self.termination_after}"
            )
        if self.termination_timeout is not None and self.termination_timeout <= 0:
            raise ConfigError(
                f"termination_timeout must be positive, got "
                f"{self.termination_timeout}"
            )
        if self.commit_protocol not in PROTOCOLS:
            raise ConfigError(
                f"unknown commit_protocol {self.commit_protocol!r}; "
                f"choose from {', '.join(PROTOCOLS)}"
            )

    def poll_delay(self, seed: int, node_id: int, txn_id: int, attempt: int) -> float:
        """The ``attempt``-th status-poll delay for one prepared transaction.

        Deterministic exponential backoff with derived jitter: the base
        delay doubles (``status_backoff``) per attempt up to
        ``status_interval_max``, and the jitter fraction comes from a
        CRC32 hash of the ``(seed, node, txn, attempt)`` identity -- the
        same derivation style as :class:`~repro.common.rng.RngFactory`
        stream names, so no shared RNG state is consumed and event order
        is a pure function of the seed.
        """
        base = min(
            self.status_interval * self.status_backoff ** attempt,
            self.status_interval_max,
        )
        if self.status_jitter <= 0.0:
            return base
        tag = f"txnpoll.{seed}.{node_id}.{txn_id}.{attempt}".encode()
        frac = zlib.crc32(tag) / 2**32
        return base * (1.0 + self.status_jitter * frac)


class TxnOutcome:
    """What the client learns about one transaction."""

    __slots__ = (
        "txn_id",
        "status",
        "reason",
        "t_begin",
        "t_commit",
        "t_end",
        "n_reads",
        "n_writes",
        "stale_reads",
    )

    def __init__(self, txn_id: int, status: str, reason: Optional[str], txn: "Transaction", t_end: float):
        self.txn_id = txn_id
        self.status = status  # "committed" | "aborted" | "in-doubt"
        self.reason = reason
        self.t_begin = txn.t_begin
        self.t_commit = txn.t_commit
        self.t_end = t_end
        self.n_reads = txn.n_reads
        self.n_writes = len(txn.writes)
        self.stale_reads = txn.stale_reads

    @property
    def committed(self) -> bool:
        return self.status == "committed"

    @property
    def commit_latency(self) -> float:
        """Seconds from the commit request to the client-visible outcome."""
        return self.t_end - self.t_commit

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f"({self.reason})" if self.reason else ""
        return f"TxnOutcome(#{self.txn_id} {self.status}{tag}, {self.commit_latency * 1e3:.2f}ms)"


class Transaction:
    """One client transaction handle (single use)."""

    __slots__ = (
        "owner",
        "txn_id",
        "coordinator",
        "read_versions",
        "stale_keys",
        "writes",
        "t_begin",
        "t_commit",
        "pending_reads",
        "commit_requested",
        "state",
        "delivered",
        "done",
        "read_failed",
        "stale_reads",
        "n_reads",
        "timeout_event",
    )

    def __init__(self, owner: "TransactionalStore", txn_id: int, coordinator: Optional[int]):
        self.owner = owner
        self.txn_id = txn_id
        self.coordinator = coordinator
        self.read_versions: Dict[str, Version] = {}
        self.stale_keys: set = set()
        self.writes: Dict[str, int] = {}
        self.t_begin = owner.transport.now
        self.t_commit = self.t_begin
        self.pending_reads = 0
        self.commit_requested = False
        self.state = "active"
        self.delivered = False
        self.done: Optional[Callable[[TxnOutcome], Any]] = None
        self.read_failed = False
        self.stale_reads = 0
        self.n_reads = 0
        self.timeout_event: Any = None

    # -- operations ---------------------------------------------------------------

    def read(self, key: str, done: Optional[Callable[[OpResult], Any]] = None) -> None:
        """Read ``key`` at the active policy's level, recording the version."""
        if self.state != "active":
            raise SimulationError(f"read on a {self.state} transaction")
        self.pending_reads += 1
        self.n_reads += 1

        def _done(result: OpResult) -> None:
            self.pending_reads -= 1
            if result.ok:
                self.read_versions[key] = (
                    result.version if result.version is not None else NONE_VERSION
                )
                if result.stale:
                    self.stale_reads += 1
                    self.stale_keys.add(key)
            else:
                self.read_failed = True
            if done is not None:
                done(result)
            if self.commit_requested and self.pending_reads == 0:
                self.owner._start_commit(self)

        self.owner.store.read(
            key, self.owner.read_level(), _done, coordinator=self.coordinator
        )

    def write(self, key: str, value_size: Optional[int] = None) -> None:
        """Buffer a write; nothing reaches any replica before commit."""
        if self.state != "active":
            raise SimulationError(f"write on a {self.state} transaction")
        size = value_size if value_size is not None else self.owner.store.default_value_size
        self.writes[key] = int(size)

    def commit(self, done: Optional[Callable[[TxnOutcome], Any]] = None) -> None:
        """Request commit; ``done(outcome)`` fires with the verdict."""
        if self.state != "active" or self.commit_requested:
            raise SimulationError(f"commit on a {self.state} transaction")
        self.done = done
        self.commit_requested = True
        if self.pending_reads == 0:
            self.owner._start_commit(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Transaction(#{self.txn_id}, {self.state}, reads={self.n_reads}, "
            f"writes={len(self.writes)})"
        )


class TransactionalStore:
    """Atomic multi-key transactions over a replicated store.

    Parameters
    ----------
    store:
        The deployment to transact against.
    policy:
        The consistency policy transactional reads consult (``None`` =
        level ONE, the eventual baseline).
    config:
        Protocol tunables.
    wal_factory:
        ``node_id -> WriteAheadLog`` constructor. The sim backend keeps
        the default in-memory logs (durability is modeled, not real); the
        asyncio backend passes a file-backed factory so crash recovery
        replays actual disk state. Same protocol classes either way.
    """

    def __init__(
        self,
        store: ReplicatedStore,
        policy: Any = None,
        config: Optional[TxnConfig] = None,
        wal_factory: Optional[Callable[[int], WriteAheadLog]] = None,
    ):
        self.store = store
        self.policy = policy
        self.config = config or TxnConfig()
        n = len(store.nodes)
        make_wal = wal_factory or WriteAheadLog
        self.wals: List[WriteAheadLog] = [make_wal(i) for i in range(n)]
        self.participants: List[TxnParticipant] = [
            TxnParticipant(self, i, self.wals[i]) for i in range(n)
        ]
        self.tms: List[TransactionManager] = [
            TransactionManager(self, i, self.wals[i]) for i in range(n)
        ]
        store.add_node_listener(self)
        #: observability sink for 2PC phase transitions; ``None`` (the
        #: default) keeps every TM hook a single attribute-load + branch.
        self.obs = None

        self._txn_seq = 0
        self._inflight: Dict[int, Transaction] = {}
        self._register_wire_handlers()
        self._reset_counters()

    @property
    def transport(self):
        """The deployment's transport (clock, messaging, timers)."""
        return self.store.transport

    def _register_wire_handlers(self) -> None:
        """Name every protocol handler on the transport.

        The sim backend delivers callbacks by direct reference and only
        records these; a wire backend (asyncio) uses the registry to name
        each handler on the wire and to dispatch decoded frames. Keeping
        the registration here -- not in any backend harness -- is what
        guarantees both backends run the *same* wiring.
        """
        tr = self.store.transport
        for p in self.participants:
            i = p.node_id
            tr.register(f"p{i}.on_prepare", p.on_prepare)
            tr.register(f"p{i}.on_precommit", p.on_precommit)
            tr.register(f"p{i}.on_decision", p.on_decision)
            tr.register(f"p{i}.on_tm_working", p.on_tm_working)
            tr.register(f"p{i}.on_termination_query", p.on_termination_query)
            tr.register(f"p{i}.on_termination_reply", p.on_termination_reply)
        for tm in self.tms:
            i = tm.node_id
            tr.register(f"tm{i}.on_vote", tm.on_vote)
            tr.register(f"tm{i}.on_precommit_ack", tm.on_precommit_ack)
            tr.register(f"tm{i}.on_ack", tm.on_ack)
            tr.register(f"tm{i}.on_status_query", tm.on_status_query)

    def _reset_counters(self) -> None:
        self.txns_begun = 0
        self.commits = 0
        self.aborts: Dict[str, int] = {}
        self.in_doubt_client = 0
        self.in_doubt_resolved = 0
        self.lost_updates = 0
        self.txn_stale_reads = 0
        self.txn_msgs = 0
        self.txn_msg_bytes = 0
        self.commit_latency = Histogram(lo=1e-5, hi=60.0)
        # The WAL is append-only and the recovery counters are cumulative by
        # design (they are protocol state, not measurement surfaces), so the
        # summary reports them as deltas from this baseline -- keeping every
        # number in txn_summary() scoped to the same measurement interval.
        self._wal_records0 = sum(len(w) for w in self.wals)
        self._in_doubt_recovered0 = sum(
            p.in_doubt_recovered for p in self.participants
        )
        self._tm_recovery_resolved0 = sum(t.recovery_resolved for t in self.tms)
        self._termination_resolved0 = sum(
            p.termination_resolved for p in self.participants
        )
        self._blocked_time0 = sum(p.blocked_time for p in self.participants)

    # -- protocol messaging -------------------------------------------------------

    def send(self, src: int, dst: int, nbytes: int, fn: Callable[..., Any], *args: Any):
        """Send one protocol message, counted toward the run's message cost.

        Every TM/participant message (prepare, vote, pre-commit, decision,
        ack, status query/reply, termination query/reply) goes through
        here, so ``txn_summary()['msgs']``/``['msg_bytes']`` is the exact
        per-protocol message bill the shootout compares.
        """
        self.txn_msgs += 1
        self.txn_msg_bytes += int(nbytes)
        return self.store.transport.send(src, dst, nbytes, fn, *args)

    # -- client API ---------------------------------------------------------------

    def begin(self, coordinator: Optional[int] = None) -> Transaction:
        """Open a transaction coordinated by ``coordinator`` (or a live node)."""
        self._txn_seq += 1
        coord: Optional[int] = None
        if coordinator is not None and self.store.nodes[coordinator].up:
            coord = int(coordinator)
        else:
            picked = self.store._pick_coordinator(None)
            coord = picked.node_id if picked is not None else None
        self.txns_begun += 1
        return Transaction(self, self._txn_seq, coord)

    def read_level(self):
        """The read level the active policy dials right now."""
        if self.policy is None:
            return 1
        return self.policy.read_level(self.transport.now)

    # -- commit orchestration -----------------------------------------------------

    def _start_commit(self, txn: Transaction) -> None:
        tr = self.transport
        txn.state = "committing"
        txn.t_commit = tr.now
        if txn.read_failed:
            self.aborts["read-failed"] = self.aborts.get("read-failed", 0) + 1
            self._deliver(txn, "aborted", "read-failed")
            return
        if not txn.writes:
            # Read-only: nothing to make atomic, commit locally.
            self.commits += 1
            self.commit_latency.add(1e-9)
            self._deliver(txn, "committed", None)
            return
        coord = txn.coordinator
        if coord is None or not self.store.nodes[coord].up:
            live = self.store._any_live_node()
            if live is None:
                self.aborts["unavailable"] = self.aborts.get("unavailable", 0) + 1
                self._deliver(txn, "aborted", "unavailable")
                return
            coord = live
            txn.coordinator = coord
        self._inflight[txn.txn_id] = txn
        txn.timeout_event = tr.set_timer(
            self.config.client_timeout, self._client_timeout, txn.txn_id
        )
        self.tms[coord].begin_commit(txn)

    def _client_timeout(self, txn_id: int) -> None:
        txn = self._inflight.get(txn_id)
        if txn is None or txn.delivered:
            return
        self.in_doubt_client += 1
        self._deliver(txn, "in-doubt", "client-timeout")

    def txn_decided(self, txn_id: int, commit: bool, reason: Optional[str]) -> None:
        """TM callback at the decision point (or at recovery resolution)."""
        txn = self._inflight.pop(txn_id, None)
        if txn is None:
            return
        if txn.timeout_event is not None:
            txn.timeout_event.cancel()
            txn.timeout_event = None
        latency = self.transport.now - txn.t_commit
        if commit:
            self.commits += 1
            self.commit_latency.add(max(latency, 1e-9))
            self.txn_stale_reads += txn.stale_reads
        else:
            label = reason or "aborted"
            self.aborts[label] = self.aborts.get(label, 0) + 1
        if txn.delivered:
            # The client timed out into "in-doubt" earlier; the protocol has
            # now resolved it (the blocking window closed after the fact).
            # Listeners still hear the late verdict -- monitors must not
            # count the transaction as in-doubt forever -- but the client
            # callback, already answered, is not re-fired.
            self.in_doubt_resolved += 1
            txn.state = "finished"
            self._notify_listeners(
                TxnOutcome(
                    txn.txn_id,
                    "committed" if commit else "aborted",
                    "resolved-in-doubt",
                    txn,
                    self.transport.now,
                )
            )
            return
        self._deliver(txn, "committed" if commit else "aborted", reason)

    def grade_commit(self, txn_id: int, writes_by_key: Dict[str, Version]) -> None:
        """Oracle-side lost-update grading at the TM's commit point.

        A committing transaction that overwrites a key whose in-transaction
        read was **stale** (the oracle judged it older than the committed
        version at read time) has destroyed an update it never saw -- the
        classic lost-update anomaly, attributed precisely to staleness.
        Write-write races past a *fresh* read are not counted here; they
        are the prepare-lock conflicts' and validation's job. Pure
        measurement: the verdict never feeds back into the protocol.
        """
        if not self.config.grade_anomalies:
            return
        txn = self._inflight.get(txn_id)
        if txn is None:
            return
        for key in sorted(writes_by_key):
            if key in txn.stale_keys:
                self.lost_updates += 1
                break

    def _notify_listeners(self, outcome: TxnOutcome) -> None:
        for listener in self.store._listeners:
            hook = getattr(listener, "on_txn_complete", None)
            if hook is not None:
                hook(outcome)

    def _deliver(self, txn: Transaction, status: str, reason: Optional[str]) -> None:
        txn.delivered = True
        if status != "in-doubt":
            txn.state = "finished"
        outcome = TxnOutcome(txn.txn_id, status, reason, txn, self.transport.now)
        self._notify_listeners(outcome)
        if txn.done is not None:
            txn.done(outcome)

    # -- node lifecycle hooks (called by the store) -------------------------------

    def on_node_crash(self, node_id: int) -> None:
        """Volatile 2PC state dies with the node; the WAL survives."""
        self.participants[node_id].on_crash()
        self.tms[node_id].on_crash()

    def on_node_recover(self, node_id: int) -> None:
        """WAL recovery: rebuild prepared state, resolve unfinished rounds."""
        self.participants[node_id].on_recover()
        self.tms[node_id].on_recover()

    # -- metrics ------------------------------------------------------------------

    def in_doubt_now(self) -> int:
        """Transactions currently prepared-but-undecided somewhere.

        Derived from the WALs' incremental pending sets, not volatile
        state: a transaction held prepared in a *crashed* node's log is
        exactly as in doubt as one in a live node's memory -- recovery
        will have to resolve it either way, and the end-of-run audit must
        count it.
        """
        pending = set()
        for wal in self.wals:
            pending.update(wal.in_doubt())
        return len(pending)

    def blocked_participant_time(self) -> float:
        """Total prepared-without-decision dwell across all participants.

        The sum, over every (participant, transaction) pair, of the
        simulated seconds the pair spent prepared-without-decision **while
        the node was up** -- still-unresolved entries of live nodes accrue
        up to the current clock. Crash downtime is excluded: a crashed
        participant is dead, not blocked, and its dwell clock restarts at
        the recovery instant -- the same semantics the in-doubt-dwell
        oracle and the ``blocked_txn_time`` SLO apply, integrated exactly
        instead of per sampler tick (a pre-crash live stretch still
        counts here; the oracle's budget only watches the current one).
        """
        now = self.transport.now
        open_dwell = 0.0
        for p in self.participants:
            if not self.store.nodes[p.node_id].up:
                continue  # accrued into p.blocked_time at crash time
            for prep in p.prepared.values():
                open_dwell += now - prep.t_registered
        resolved = sum(p.blocked_time for p in self.participants)
        return (resolved - self._blocked_time0) + open_dwell

    def abort_count(self) -> int:
        return sum(self.aborts.values())

    def reset_metrics(self) -> None:
        """Zero txn and store measurement surfaces (warmup boundary)."""
        self._reset_counters()
        self.store.reset_metrics()

    def txn_summary(self) -> Dict[str, Any]:
        """One-shot transactional metrics snapshot (JSON-safe scalars).

        Every number covers the interval since the last
        :meth:`reset_metrics` (the warmup boundary in harness runs);
        cumulative protocol counters are converted to deltas.

        ``blocked_time`` is :meth:`blocked_participant_time`: the exact
        integral of live in-doubt dwell over *every* (participant, txn)
        pair, including the one-RTT prepared window each healthy commit
        round has. The ``blocked_txn_time`` SLO measures something
        stricter -- wall-clock time with any pair held past the dwell
        oracle's budget -- so the two share the dead-not-blocked crash
        semantics but are not the same number.
        """
        decided = self.commits + self.abort_count()
        return {
            "txns": decided,
            "commits": self.commits,
            "aborts": dict(sorted(self.aborts.items())),
            "abort_rate": self.abort_count() / decided if decided else 0.0,
            "commit_protocol": self.config.commit_protocol,
            "in_doubt_client": self.in_doubt_client,
            "in_doubt_resolved": self.in_doubt_resolved,
            "in_doubt_end": self.in_doubt_now(),
            "blocked_time": self.blocked_participant_time(),
            "lost_updates": self.lost_updates,
            "stale_txn_reads": self.txn_stale_reads,
            "msgs": self.txn_msgs,
            "msg_bytes": self.txn_msg_bytes,
            "commit_latency_mean_ms": self.commit_latency.mean * 1e3,
            "commit_latency_p99_ms": self.commit_latency.percentile(99) * 1e3,
            "wal_records": sum(len(w) for w in self.wals) - self._wal_records0,
            "in_doubt_recovered": (
                sum(p.in_doubt_recovered for p in self.participants)
                - self._in_doubt_recovered0
            ),
            "tm_recovery_resolved": (
                sum(t.recovery_resolved for t in self.tms)
                - self._tm_recovery_resolved0
            ),
            "termination_resolved": (
                sum(p.termination_resolved for p in self.participants)
                - self._termination_resolved0
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransactionalStore(nodes={len(self.store.nodes)}, "
            f"commits={self.commits}, aborts={self.abort_count()})"
        )
