"""Atomic multi-key transactions over the replicated store.

The paper's engines (Harmony/Bismar) tune *per-read* consistency; this
package layers *multi-key atomicity* on top, so the reproduction can study
how adaptive consistency interacts with transactions -- the regime where
staleness bites hardest (a transaction that reads stale replicas can
commit an inconsistent snapshot, or abort when commit-time validation
catches it).

The design is classic presumed-abort two-phase commit, simulated on the
same deterministic event loop as everything else:

- :mod:`repro.txn.wal` -- per-node write-ahead logs whose records survive
  simulated crashes (volatile state does not);
- :mod:`repro.txn.participant` -- the replica-side prepare/commit state
  machine (prepare locks, commit-time read validation, WAL recovery);
- :mod:`repro.txn.tm` -- the transaction-manager state machine (vote
  collection, decision logging, decision retry, recovery pass);
- :mod:`repro.txn.api` -- :class:`TransactionalStore`, the client facade
  exposing ``begin/read/write/commit`` with reads routed through the
  active consistency policy;
- :mod:`repro.txn.runner` -- closed-loop transactional clients and the
  deploy-run-bill harness the scenario registry uses.
"""

from repro.txn.api import Transaction, TransactionalStore, TxnConfig, TxnOutcome
from repro.txn.runner import TxnRunner, deploy_and_run_txn
from repro.txn.wal import WalRecord, WriteAheadLog

__all__ = [
    "Transaction",
    "TransactionalStore",
    "TxnConfig",
    "TxnOutcome",
    "TxnRunner",
    "deploy_and_run_txn",
    "WalRecord",
    "WriteAheadLog",
]
