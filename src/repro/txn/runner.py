"""Closed-loop transactional clients and the deploy-run-bill harness.

Mirrors :class:`~repro.workload.client.WorkloadRunner` for multi-key
transactions: N closed-loop clients each keep one transaction in flight
(begin, fan out the mix's reads at the active policy's level, buffer the
writes, commit via 2PC, repeat). :func:`deploy_and_run_txn` is the
scenario registry's entry point -- same build/run/bill sequence as
:func:`repro.experiments.runner.deploy_and_run`, with the store wrapped
in a :class:`~repro.txn.api.TransactionalStore`.

The resulting :class:`~repro.workload.client.RunReport` carries the usual
read-side metrics (the transactional reads go through the normal read
path) plus a ``txn`` dict: commit/abort/in-doubt counts, lost-update
anomalies, and commit-latency percentiles.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Any, Callable, Optional

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import RngFactory
from repro.cluster.coordinator import OpResult
from repro.cluster.failures import FailureInjector
from repro.cluster.store import ReplicatedStore
from repro.cost.billing import Bill, Biller
from repro.obs.recorder import ObsConfig, RunObserver
from repro.txn.api import TransactionalStore, TxnConfig, TxnOutcome
from repro.workload.client import LevelUsage, RunReport
from repro.workload.workloads import TxnWorkloadSpec

__all__ = ["TxnClient", "TxnRunner", "TxnRunOutcome", "deploy_and_run_txn"]


class TxnClient:
    """One-outstanding-transaction client bound to a coordinator datacenter."""

    def __init__(
        self,
        tstore: TransactionalStore,
        spec: TxnWorkloadSpec,
        txns: int,
        rng: np.random.Generator,
        target_rate: Optional[float] = None,
        dc: Optional[int] = None,
        on_finished: Optional[Callable[["TxnClient"], Any]] = None,
    ):
        if txns < 0:
            raise ConfigError(f"txns must be >= 0, got {txns}")
        self.tstore = tstore
        self.spec = spec
        self.remaining = int(txns)
        self.rng = rng
        self.interval = 1.0 / target_rate if target_rate else 0.0
        self._deadline = 0.0
        self.chooser = spec.make_chooser(rng=rng)
        self.on_finished = on_finished
        self.issued = 0
        self._dc = dc

    def start(self) -> None:
        """Begin issuing transactions (call before ``sim.run``)."""
        self._deadline = self.tstore.store.sim.now
        if self.remaining == 0:
            self._finish()
            return
        self.tstore.store.sim.schedule(0.0, self._issue_next)

    # -- internals ---------------------------------------------------------------

    def _coordinator(self) -> Optional[int]:
        if self._dc is None:
            return None
        coords = self.tstore.store.coordinator_pool(self._dc)
        if not coords:
            return None
        return coords[int(self.rng.integers(0, len(coords)))]

    def _issue_next(self) -> None:
        if self.remaining <= 0:
            self._finish()
            return
        self.remaining -= 1
        self.issued += 1
        spec = self.spec
        keys = spec.sample_keys(self.chooser)
        txn = self.tstore.begin(coordinator=self._coordinator())
        for slot in spec.read_slots:
            txn.read(keys[slot])
        for slot in spec.write_slots:
            txn.write(keys[slot], spec.value_size)
        txn.commit(self._txn_done)

    def _txn_done(self, outcome: TxnOutcome) -> None:
        now = self.tstore.store.sim.now
        if self.interval > 0.0:
            self._deadline = max(now, self._deadline + self.interval)
            delay = self._deadline - now
        else:
            delay = 0.0
        self.tstore.store.sim.schedule(delay, self._issue_next)

    def _finish(self) -> None:
        if self.on_finished is not None:
            cb, self.on_finished = self.on_finished, None
            cb(self)


class TxnRunner:
    """Deploy transactional clients, run to completion, report.

    Parameters mirror :class:`~repro.workload.client.WorkloadRunner`, with
    ``txns_total`` transactions spread across ``n_clients`` closed-loop
    clients (round-robin over datacenters).
    """

    def __init__(
        self,
        tstore: TransactionalStore,
        spec: TxnWorkloadSpec,
        n_clients: int = 8,
        txns_total: int = 1_000,
        target_throughput: Optional[float] = None,
        max_time: float = 3600.0,
        seed: int = 7,
        preload: bool = True,
        warmup_fraction: float = 0.0,
        biller: Optional[Biller] = None,
    ):
        if n_clients < 1:
            raise ConfigError(f"n_clients must be >= 1, got {n_clients}")
        if txns_total < n_clients:
            raise ConfigError("txns_total must be >= n_clients")
        if not (0.0 <= warmup_fraction < 1.0):
            raise ConfigError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        self.tstore = tstore
        self.spec = spec
        self.n_clients = int(n_clients)
        self.txns_total = int(txns_total)
        self.target_throughput = target_throughput
        self.max_time = float(max_time)
        self.seed = int(seed)
        self.do_preload = preload
        self.warmup_fraction = float(warmup_fraction)
        self.biller = biller
        self._usage = LevelUsage()
        self._finished_clients = 0
        self._t_last = 0.0
        self._warmup_remaining = int(self.txns_total * self.warmup_fraction)
        self._t_measure_start = 0.0

    def run(self) -> RunReport:
        """Execute the transactional workload and return the report."""
        tstore, spec = self.tstore, self.spec
        store = tstore.store
        if self.do_preload:
            store.preload(
                [spec.key_of(i) for i in range(spec.record_count)], spec.value_size
            )
        store.add_listener(self._usage)
        store.add_listener(self)

        rngs = RngFactory(self.seed)
        per_client = self.txns_total // self.n_clients
        extra = self.txns_total - per_client * self.n_clients
        rate = (
            self.target_throughput / self.n_clients if self.target_throughput else None
        )
        n_dcs = len(store.topology.datacenters)
        t_start = store.sim.now
        for i in range(self.n_clients):
            txns = per_client + (1 if i < extra else 0)
            TxnClient(
                tstore,
                spec,
                txns=txns,
                rng=rngs.stream(f"txnclient.{i}"),
                target_rate=rate,
                dc=i % n_dcs,
                on_finished=self._client_finished,
            ).start()

        store.sim.run(until=t_start + self.max_time)
        t_end = (
            self._t_last if self._finished_clients == self.n_clients else store.sim.now
        )
        duration = max(t_end - max(t_start, self._t_measure_start), 1e-9)

        summary = store.summary()
        txn = tstore.txn_summary()
        decided = txn["txns"]
        # Client-visible completed operations: every single-op read plus
        # every decided transaction outcome.
        ops = store.ops_completed() + decided
        txn["txns_per_s"] = decided / duration
        return RunReport(
            policy=tstore.policy.name if tstore.policy is not None else "one",
            workload=spec.name,
            ops_completed=ops,
            duration=duration,
            throughput=ops / duration,
            read_latency_mean=summary["read_latency_mean"],
            read_latency_p99=summary["read_latency_p99"],
            write_latency_mean=summary["write_latency_mean"],
            write_latency_p99=summary["write_latency_p99"],
            stale_rate=summary["stale_rate"],
            stale_rate_strict=store.oracle.stale_rate_strict,
            failures=summary["failures"],
            billable_bytes=summary["billable_bytes"],
            total_bytes=summary["total_bytes"],
            read_levels=dict(self._usage.read_levels),
            mean_propagation=summary["mean_propagation"],
            txn=txn,
        )

    # -- store listener interface -------------------------------------------------

    def on_op_complete(self, result: OpResult) -> None:
        """Single-op completions need no runner bookkeeping."""

    def on_txn_complete(self, outcome: TxnOutcome) -> None:
        """Warmup bookkeeping: reset all measurement state at the boundary."""
        if outcome.reason == "resolved-in-doubt":
            return  # a late verdict for an outcome already counted
        if self._warmup_remaining <= 0:
            return
        self._warmup_remaining -= 1
        if self._warmup_remaining == 0:
            self.tstore.reset_metrics()
            self._usage.read_levels.clear()
            self._t_measure_start = self.tstore.store.sim.now
            if self.biller is not None:
                self.biller.arm()

    def _client_finished(self, client: TxnClient) -> None:
        self._finished_clients += 1
        self._t_last = self.tstore.store.sim.now
        if self._finished_clients == self.n_clients:
            self.tstore.store.sim.stop()


@dataclass
class TxnRunOutcome:
    """Everything one transactional deployment run produced."""

    report: RunReport
    bill: Bill
    policy: Any
    store: ReplicatedStore
    tstore: TransactionalStore
    obs: Optional[RunObserver] = None


def deploy_and_run_txn(*args: Any, **kwargs: Any) -> TxnRunOutcome:
    """Deprecated spelling of the transactional path of :func:`repro.run`.

    Same signature and behaviour as before; new code should build a
    :class:`repro.RunSpec` with ``txn_workload=`` and call
    :func:`repro.run`.
    """
    warnings.warn(
        "deploy_and_run_txn() is deprecated; build a repro.RunSpec with "
        "txn_workload= and call repro.run()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _deploy_and_run_txn(*args, **kwargs)


def _deploy_and_run_txn(
    platform,
    policy_factory: Callable[[ReplicatedStore], Any],
    spec: TxnWorkloadSpec,
    txns: Optional[int] = None,
    clients: Optional[int] = None,
    seed: int = 11,
    warmup_fraction: float = 0.2,
    target_throughput: Optional[float] = None,
    failure_script: Optional[Callable[[FailureInjector], Any]] = None,
    txn_config: Optional[TxnConfig] = None,
    commit_protocol: Optional[str] = None,
    obs: Optional[ObsConfig] = None,
) -> TxnRunOutcome:
    """One full transactional experiment run on a fresh deployment.

    Same sequence as :func:`repro.experiments.runner.deploy_and_run`:
    build the platform, attach the policy, wrap the store in a
    :class:`TransactionalStore`, optionally schedule a failure script,
    run the transactional workload with warmup, and bill the measurement
    phase. ``commit_protocol`` (when given) overrides the protocol of
    ``txn_config`` -- the knob scenario sweeps and the CLI turn without
    rebuilding the whole config. An :class:`ObsConfig` additionally
    attaches a :class:`RunObserver` wired into the commit phase hooks.
    """
    sim, store = platform.build(seed=seed)
    policy = policy_factory(store)
    if commit_protocol is not None:
        txn_config = replace(
            txn_config or TxnConfig(), commit_protocol=str(commit_protocol)
        )
    tstore = TransactionalStore(store, policy=policy, config=txn_config)
    biller = Biller(store, platform.prices, spec.data_size_bytes())
    if failure_script is not None:
        failure_script(FailureInjector(store))
    observer = None
    if obs is not None:
        observer = RunObserver(store, obs, policy=policy, run_meta={"seed": seed})
        tstore.obs = observer
    runner = TxnRunner(
        tstore,
        spec,
        n_clients=clients if clients is not None else platform.default_clients,
        txns_total=txns if txns is not None else max(platform.default_ops // 10, 100),
        seed=seed,
        warmup_fraction=warmup_fraction,
        target_throughput=target_throughput,
        biller=biller,
    )
    report = runner.run()
    if observer is not None:
        observer.finish()
    return TxnRunOutcome(
        report=report,
        bill=biller.bill(),
        policy=policy,
        store=store,
        tstore=tstore,
        obs=observer,
    )
