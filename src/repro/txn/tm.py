"""The transaction-manager (coordinator-side) state machines.

One :class:`TransactionManager` per node; a transaction is managed by the
TM of the node that coordinated it. The manager runs whichever protocol
``TxnConfig.commit_protocol`` selects:

**Presumed-abort 2PC** (``2pc``, ``2pc-coop``), as in the classic R*
protocol:

1. ``begin_commit`` assigns write versions, logs ``tm-begin`` (with the
   participant list -- the recovery pass needs it), and sends PREPARE to
   every replica of every written key; the prepare payload carries the
   co-participant list so prepared nodes can run cooperative termination;
2. all-YES votes force-log ``tm-commit`` -- the transaction's commit point
   -- after which the client is answered and COMMIT fans out; any NO vote
   or a prepare timeout logs ``tm-abort`` and fans out ABORT;
3. decisions are re-sent on a timer until every participant acknowledges,
   then ``tm-end`` closes the round.

**3PC** (``3pc``) inserts a pre-commit barrier between vote collection
and the commit point: all-YES votes log ``tm-precommit`` and fan out
PRE-COMMIT; the TM force-logs ``tm-commit`` and proceeds as above once
every participant acknowledged the pre-commit -- or when the ack window
(``prepare_timeout``) closes with a straggler missing, because once
``tm-precommit`` is logged the round can never abort: a crashed
participant cannot change the outcome and learns COMMIT from its
decision query on recovery. That same invariant lets blocked
participants drive themselves to commit when they hold a pre-commit
record and the TM is gone.

**Crash/recovery** -- a TM crash wipes the in-flight table, *including the
acks already collected*. Recovery scans the WAL for ``tm-begin`` without
``tm-end`` and resumes each round where the log proves it stood: a logged
``tm-commit`` is re-driven forward (resend COMMIT and collect a fresh ack
set -- participants that already decided re-ack immediately -- until
``tm-end`` is durable); a logged ``tm-precommit`` without ``tm-commit``
re-drives the pre-commit barrier forward to commit; an undecided round is
resolved to abort (presumed abort -- no participant can have received a
commit) and driven to ``tm-end`` the same way. Participants polling an
unknown transaction get an abort reply for the same reason, and polls for
a round still in flight get an explicit "working" reply (proof of TM
life, resetting the poller's termination countdown).

Everything is deterministic: participants are contacted in sorted node
order, retries iterate sorted un-acked sets, and all timing flows from
the owner's :class:`~repro.runtime.interface.Transport` clock -- the TM
never touches a simulator or network object directly, so the identical
state machine runs on the discrete-event and asyncio backends.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, TYPE_CHECKING

from repro.cluster.versions import Version
from repro.txn.wal import (
    REC_TM_ABORT,
    REC_TM_BEGIN,
    REC_TM_COMMIT,
    REC_TM_END,
    REC_TM_PRECOMMIT,
    WriteAheadLog,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.txn.api import Transaction, TransactionalStore

__all__ = ["TransactionManager"]


class _TmTxn:
    """Volatile state of one commit round this TM is driving."""

    __slots__ = (
        "txn_id",
        "participants",
        "writes_by_node",
        "writes_by_key",
        "votes",
        "acks",
        "precommit_acks",
        "precommitted",
        "decision",
        "timeout_event",
        "retry_event",
        "t_start",
    )

    def __init__(self, txn_id: int, participants: List[int]):
        self.txn_id = txn_id
        self.participants = participants
        self.writes_by_node: Dict[int, Dict[str, Version]] = {}
        self.writes_by_key: Dict[str, Version] = {}
        self.votes: Dict[int, bool] = {}
        self.acks: Set[int] = set()
        self.precommit_acks: Set[int] = set()
        self.precommitted = False
        self.decision: Optional[str] = None  # None until decided
        self.timeout_event: Any = None
        self.retry_event: Any = None
        self.t_start = 0.0


class TransactionManager:
    """Per-node atomic-commit coordinator (2PC or 3PC)."""

    def __init__(self, owner: "TransactionalStore", node_id: int, wal: WriteAheadLog):
        self.owner = owner
        self.node_id = int(node_id)
        self.wal = wal
        self._active: Dict[int, _TmTxn] = {}
        # counters
        self.rounds_started = 0
        self.commits_decided = 0
        self.aborts_decided = 0
        self.recovery_resolved = 0

    # -- plumbing -----------------------------------------------------------------

    def _node(self):
        return self.owner.store.nodes[self.node_id]

    def _transport(self):
        return self.owner.transport

    def _three_phase(self) -> bool:
        return self.owner.config.commit_protocol == "3pc"

    # -- the commit round ---------------------------------------------------------

    def begin_commit(self, txn: "Transaction") -> None:
        """Run the commit protocol for ``txn``'s buffered writes."""
        st = self.owner.store
        tr = self._transport()
        now = tr.now
        writes_by_key: Dict[str, Version] = {}
        for key in sorted(txn.writes):
            st.write_seq += 1
            writes_by_key[key] = Version(now, st.write_seq, txn.writes[key])

        writes_by_node: Dict[int, Dict[str, Version]] = {}
        for key, version in writes_by_key.items():
            # Authoritative owners plus any incoming owners of a pending
            # migration: 2PC applies must land on both sides of a hand-off.
            for r in st.all_replicas(key):
                writes_by_node.setdefault(r, {})[key] = version
        participants = sorted(writes_by_node)

        self.rounds_started += 1
        self.wal.append(
            REC_TM_BEGIN, txn.txn_id, now, participants=list(participants)
        )
        t = _TmTxn(txn.txn_id, participants)
        t.writes_by_node = writes_by_node
        t.writes_by_key = writes_by_key
        t.t_start = now
        self._active[txn.txn_id] = t
        obs = self.owner.obs
        if obs is not None:
            obs.on_txn_phase(
                txn.txn_id,
                "prepare",
                now,
                node=self.node_id,
                participants=len(participants),
            )

        validate = self.owner.config.validate_reads
        for r in participants:
            node_writes = writes_by_node[r]
            read_versions = (
                {k: txn.read_versions[k] for k in sorted(node_writes) if k in txn.read_versions}
                if validate
                else {}
            )
            payload = st.sizes.request_overhead + sum(
                v.size for v in node_writes.values()
            )
            self.owner.send(
                self.node_id,
                r,
                payload,
                self.owner.participants[r].on_prepare,
                txn.txn_id,
                self.node_id,
                node_writes,
                read_versions,
                participants,
            )
        t.timeout_event = tr.set_timer(
            self.owner.config.prepare_timeout, self._on_prepare_timeout, txn.txn_id
        )

    def on_vote(self, txn_id: int, node_id: int, vote: bool) -> None:
        """A participant's YES/NO vote."""
        if not self._node().up:
            return
        t = self._active.get(txn_id)
        if t is None or t.decision is not None or t.precommitted:
            return  # decided already (timeout or earlier NO); late vote
        t.votes[node_id] = vote
        if not vote:
            self._decide(t, commit=False, reason="conflict")
        elif len(t.votes) == len(t.participants) and all(t.votes.values()):
            if self._three_phase():
                self._precommit(t)
            else:
                self._decide(t, commit=True)

    def _on_prepare_timeout(self, txn_id: int) -> None:
        t = self._active.get(txn_id)
        if t is None or t.decision is not None or not self._node().up:
            return
        if t.precommitted:
            return  # pragma: no cover - timeout is canceled at pre-commit
        self._decide(t, commit=False, reason="timeout")

    # -- the 3PC pre-commit barrier -----------------------------------------------

    def _precommit(self, t: _TmTxn) -> None:
        """All voted YES under 3PC: log the barrier and fan out PRE-COMMIT."""
        tr = self._transport()
        t.precommitted = True
        if t.timeout_event is not None:
            t.timeout_event.cancel()
            t.timeout_event = None
        self.wal.append(REC_TM_PRECOMMIT, t.txn_id, tr.now)
        obs = self.owner.obs
        if obs is not None:
            obs.on_txn_phase(
                t.txn_id, "precommit", tr.now, node=self.node_id,
                participants=len(t.participants),
            )
        self._send_precommits(t)
        t.retry_event = tr.set_timer(
            self.owner.config.retry_interval, self._retry_precommit, t.txn_id
        )
        t.timeout_event = tr.set_timer(
            self.owner.config.prepare_timeout, self._on_precommit_timeout, t.txn_id
        )

    def _send_precommits(self, t: _TmTxn) -> None:
        st = self.owner.store
        for r in t.participants:
            if r in t.precommit_acks:
                continue
            self.owner.send(
                self.node_id,
                r,
                st.sizes.digest,
                self.owner.participants[r].on_precommit,
                t.txn_id,
                self.node_id,
            )

    def _retry_precommit(self, txn_id: int) -> None:
        t = self._active.get(txn_id)
        if t is None or not t.precommitted or t.decision is not None:
            return
        if self._node().up:
            self._send_precommits(t)
        t.retry_event = self._transport().set_timer(
            self.owner.config.retry_interval, self._retry_precommit, txn_id
        )

    def _on_precommit_timeout(self, txn_id: int) -> None:
        """Ack window closed with a participant missing: commit anyway.

        A logged ``tm-precommit`` means the round can never abort, so a
        crashed participant cannot change the outcome -- it learns COMMIT
        from its decision query on recovery. Deciding now unblocks every
        live pre-committed participant instead of holding their locks for
        the straggler's whole downtime.
        """
        t = self._active.get(txn_id)
        if t is None or not t.precommitted or t.decision is not None:
            return
        if not self._node().up:
            return
        if t.retry_event is not None:
            t.retry_event.cancel()
            t.retry_event = None
        self._decide(t, commit=True)

    def on_precommit_ack(self, txn_id: int, node_id: int) -> None:
        """A participant acknowledged the 3PC pre-commit."""
        if not self._node().up:
            return
        t = self._active.get(txn_id)
        if t is None or not t.precommitted or t.decision is not None:
            return
        t.precommit_acks.add(node_id)
        if len(t.precommit_acks) == len(t.participants):
            if t.retry_event is not None:
                t.retry_event.cancel()
                t.retry_event = None
            self._decide(t, commit=True)

    # -- the decision point -------------------------------------------------------

    def _decide(self, t: _TmTxn, commit: bool, reason: Optional[str] = None) -> None:
        """The decision point: force-log, answer the client, fan out."""
        tr = self._transport()
        t.decision = "commit" if commit else "abort"
        if t.timeout_event is not None:
            t.timeout_event.cancel()
            t.timeout_event = None
        self.wal.append(
            REC_TM_COMMIT if commit else REC_TM_ABORT, t.txn_id, tr.now
        )
        if commit:
            self.commits_decided += 1
            oracle = self.owner.store.oracle
            self.owner.grade_commit(t.txn_id, t.writes_by_key)
            for key in sorted(t.writes_by_key):
                version = t.writes_by_key[key]
                oracle.note_write_start(
                    key, version, n_replicas=self._replica_count(key)
                )
                oracle.note_write_acked(key, version)
        else:
            self.aborts_decided += 1
        obs = self.owner.obs
        if obs is not None:
            obs.on_txn_phase(
                t.txn_id,
                "decide",
                tr.now,
                node=self.node_id,
                outcome=t.decision,
                reason=reason,
            )
        self.owner.txn_decided(t.txn_id, commit, reason)
        self._send_decisions(t)
        t.retry_event = tr.set_timer(
            self.owner.config.retry_interval, self._retry_decision, t.txn_id
        )

    def _replica_count(self, key: str) -> int:
        st = self.owner.store
        return len(st.replica_sets(key)[0])

    def _send_decisions(self, t: _TmTxn) -> None:
        st = self.owner.store
        commit = t.decision == "commit"
        for r in t.participants:
            if r in t.acks:
                continue
            self.owner.send(
                self.node_id,
                r,
                st.sizes.digest,
                self.owner.participants[r].on_decision,
                t.txn_id,
                self.node_id,
                commit,
            )

    def _retry_decision(self, txn_id: int) -> None:
        t = self._active.get(txn_id)
        if t is None or t.decision is None:
            return
        if self._node().up:
            self._send_decisions(t)
        t.retry_event = self._transport().set_timer(
            self.owner.config.retry_interval, self._retry_decision, txn_id
        )

    def on_ack(self, txn_id: int, node_id: int) -> None:
        """A participant acknowledged the decision."""
        if not self._node().up:
            return
        t = self._active.get(txn_id)
        if t is None or t.decision is None:
            return
        t.acks.add(node_id)
        if len(t.acks) == len(t.participants):
            if t.retry_event is not None:
                t.retry_event.cancel()
            now = self._transport().now
            self.wal.append(REC_TM_END, txn_id, now)
            del self._active[txn_id]
            obs = self.owner.obs
            if obs is not None:
                obs.on_txn_phase(txn_id, "end", now, node=self.node_id)

    # -- in-doubt resolution ------------------------------------------------------

    def on_status_query(self, txn_id: int, from_node: int) -> None:
        """A prepared participant asks for the verdict (presumed abort)."""
        if not self._node().up:
            return
        st = self.owner.store
        decision = self.wal.tm_decision(txn_id)
        if decision is None:
            if txn_id in self._active:
                # Still collecting votes or pre-commit acks: answer with an
                # explicit proof of life so the poller resets its backoff
                # and never starts the termination protocol against a live
                # TM.
                self.owner.send(
                    self.node_id,
                    from_node,
                    st.sizes.ack,
                    self.owner.participants[from_node].on_tm_working,
                    txn_id,
                )
                return
            decision = "abort"  # no knowledge of the transaction: abort
        self.owner.send(
            self.node_id,
            from_node,
            st.sizes.digest,
            self.owner.participants[from_node].on_decision,
            txn_id,
            self.node_id,
            decision == "commit",
        )

    # -- crash / recovery ---------------------------------------------------------

    def on_crash(self) -> None:
        """Volatile state is lost; undecided rounds will presumed-abort."""
        for t in self._active.values():
            if t.timeout_event is not None:
                t.timeout_event.cancel()
            if t.retry_event is not None:
                t.retry_event.cancel()
        self._active.clear()

    def on_recover(self) -> None:
        """Resume every unfinished WAL round until ``tm-end`` is durable."""
        tr = self._transport()
        for rec in self.wal.tm_unfinished():
            txn_id = rec.txn_id
            if txn_id in self._active:
                continue  # pragma: no cover - active implies pre-crash state
            decision = self.wal.tm_decision(txn_id)
            participants = [int(p) for p in rec.data["participants"]]
            t = _TmTxn(txn_id, participants)
            if decision is None and self.wal.tm_precommitted(txn_id):
                # 3PC: the pre-commit barrier was logged, so the round can
                # never abort -- re-drive the barrier forward: resend
                # PRE-COMMIT, collect a fresh ack set (already-decided or
                # already-pre-committed participants re-ack immediately),
                # then commit.
                t.precommitted = True
                self.recovery_resolved += 1
                obs = self.owner.obs
                if obs is not None:
                    obs.on_txn_phase(
                        txn_id, "recover", tr.now, node=self.node_id,
                        outcome="precommit",
                    )
                self._active[txn_id] = t
                self._send_precommits(t)
                t.retry_event = tr.set_timer(
                    self.owner.config.retry_interval, self._retry_precommit, txn_id
                )
                t.timeout_event = tr.set_timer(
                    self.owner.config.prepare_timeout,
                    self._on_precommit_timeout,
                    txn_id,
                )
                continue
            if decision is None:
                # Crashed before deciding: no participant can hold a commit,
                # so the round resolves to abort (the presumed-abort rule).
                self.wal.append(REC_TM_ABORT, txn_id, tr.now)
                self.aborts_decided += 1
                self.owner.txn_decided(txn_id, False, "tm-crash")
                t.decision = "abort"
            else:
                t.decision = decision
            self.recovery_resolved += 1
            obs = self.owner.obs
            if obs is not None:
                obs.on_txn_phase(
                    txn_id, "recover", tr.now, node=self.node_id, outcome=t.decision
                )
            # Ack collection resumes from zero -- the pre-crash ack set was
            # volatile -- and runs until every participant (re-)acks and
            # ``tm-end`` finally lands in the log.
            self._active[txn_id] = t
            self._send_decisions(t)
            t.retry_event = tr.set_timer(
                self.owner.config.retry_interval, self._retry_decision, txn_id
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransactionManager(node={self.node_id}, active={len(self._active)}, "
            f"commits={self.commits_decided}, aborts={self.aborts_decided})"
        )
