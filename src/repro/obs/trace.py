"""Span collection and Chrome trace-event export.

Spans are recorded in the Chrome trace-event format directly (the
`traceEvents` array Perfetto and chrome://tracing consume) rather than an
intermediate model -- every span source in the simulator already knows
its begin/end instants, so there is nothing to reconstruct.

Concurrent operations and transactions overlap freely on the simulated
timeline, so spans use **async** begin/end pairs (``ph: "b"`` / ``"e"``),
which Chrome correlates by ``(cat, id)``. Duration-complete ``"X"``
events on a single track would render overlapping ops as nonsense.
Nested children (per-rank replica acks under a coordinator fan-out,
2PC phases under a transaction) reuse the parent's ``(cat, id)`` -- the
viewer stacks same-key async events by nesting depth. Point-in-time
markers (crashes, partitions, scale events, policy explains) are
instant events (``ph: "i"``) with global scope.

Timestamps are simulated seconds scaled to microseconds (the unit the
format mandates), rounded to whole nanosecond-of-a-microsecond ticks so
serialization never depends on float formatting edge cases.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = ["Tracer"]

#: Artifact schema tag, bumped on breaking layout changes.
TRACE_SCHEMA = "repro.trace/1"


def _us(t: float) -> float:
    """Simulated seconds -> trace microseconds, on a stable 1e-3 us grid."""
    return round(t * 1e6, 3)


class Tracer:
    """Accumulates trace events; bounded by ``max_events``.

    All record methods are cheap appends of small dicts. The cap exists
    so a long run with tracing on cannot grow memory without bound --
    once hit, further spans are counted in ``dropped`` and the artifact
    says so in its metadata.
    """

    __slots__ = ("_events", "max_events", "dropped")

    def __init__(self, max_events: int = 200_000):
        self._events: List[Dict[str, object]] = []
        self.max_events = max_events
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def _push(self, event: Dict[str, object]) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(event)

    def begin(
        self,
        cat: str,
        span_id: str,
        name: str,
        t: float,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        ev: Dict[str, object] = {
            "ph": "b",
            "cat": cat,
            "id": span_id,
            "name": name,
            "pid": 1,
            "tid": 1,
            "ts": _us(t),
        }
        if args:
            ev["args"] = args
        self._push(ev)

    def end(
        self,
        cat: str,
        span_id: str,
        name: str,
        t: float,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        ev: Dict[str, object] = {
            "ph": "e",
            "cat": cat,
            "id": span_id,
            "name": name,
            "pid": 1,
            "tid": 1,
            "ts": _us(t),
        }
        if args:
            ev["args"] = args
        self._push(ev)

    def span(
        self,
        cat: str,
        span_id: str,
        name: str,
        t_start: float,
        t_end: float,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record a closed begin/end pair in one call."""
        self.begin(cat, span_id, name, t_start, args)
        self.end(cat, span_id, name, t_end)

    def instant(
        self,
        name: str,
        t: float,
        cat: str = "marker",
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        ev: Dict[str, object] = {
            "ph": "i",
            "cat": cat,
            "name": name,
            "pid": 1,
            "tid": 1,
            "ts": _us(t),
            "s": "g",
        }
        if args:
            ev["args"] = args
        self._push(ev)

    def to_chrome(self, meta: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """Full artifact dict: ``traceEvents`` plus schema/run metadata."""
        otherData: Dict[str, object] = {
            "schema": TRACE_SCHEMA,
            "recorded": len(self._events),
            "dropped": self.dropped,
        }
        if meta:
            otherData.update(meta)
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": otherData,
        }

    def to_json(self, meta: Optional[Dict[str, object]] = None) -> str:
        """Deterministic serialization (sorted keys, no wall-clock state)."""
        return json.dumps(self.to_chrome(meta), sort_keys=True, indent=None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer({len(self._events)} events, {self.dropped} dropped)"
