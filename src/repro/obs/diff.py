"""Cross-run timeline diff: metric deltas and anomaly presence changes.

``repro diff RUN_A RUN_B`` aligns two ``timeline.jsonl`` artifacts on the
simulated clock and reports, as deterministic tables,

- **metric deltas** -- for every numeric sample column present in either
  run: time-weighted mean and final value on each side, truncated to the
  common sim-time horizon so a longer run does not skew the comparison;
- **anomaly changes** -- detections per oracle (``start``/``point``
  phases) on each side, with ``appeared``/``resolved`` notes when an
  oracle fires in only one run;
- **event changes** -- run-event counts per kind (crashes, partitions,
  migrations, level switches).

Both arguments may be files or directories: directories are walked like
``repro report`` and timelines are paired by their artifact directory
name (the sweep's deterministic ``{scenario}-{digest}`` naming), so two
sweep output trees diff run-for-run. Everything is plain arithmetic over
already-written records -- byte-stable output for identical inputs.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.tables import Table
from repro.obs.report import find_timelines, load_timeline

__all__ = ["diff_paths", "diff_timelines", "pair_timelines", "render_diff"]

#: sample keys that are identifiers, not comparable metrics
_NON_METRIC = ("type", "t", "level")


def pair_timelines(
    path_a: str, path_b: str
) -> Tuple[List[Tuple[str, str, str]], List[str], List[str]]:
    """Match timelines under two paths: ``(pairs, only_a, only_b)``.

    Files pair directly; directories pair by the timeline's parent
    directory name (the per-run artifact dir). Pairs are sorted by label.
    """
    found_a = find_timelines(path_a)
    found_b = find_timelines(path_b)
    if not found_a:
        raise ConfigError(f"no timeline.jsonl found under {path_a}")
    if not found_b:
        raise ConfigError(f"no timeline.jsonl found under {path_b}")
    if len(found_a) == 1 and len(found_b) == 1:
        return [("run", found_a[0], found_b[0])], [], []

    def by_label(paths: List[str]) -> Dict[str, str]:
        return {os.path.basename(os.path.dirname(p)): p for p in paths}

    map_a, map_b = by_label(found_a), by_label(found_b)
    pairs = [
        (label, map_a[label], map_b[label])
        for label in sorted(set(map_a) & set(map_b))
    ]
    only_a = sorted(set(map_a) - set(map_b))
    only_b = sorted(set(map_b) - set(map_a))
    if not pairs:
        raise ConfigError(
            f"no matching run directories between {path_a} and {path_b}"
        )
    return pairs, only_a, only_b


def _samples(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [r for r in records if r.get("type") == "sample"]


def _numeric_columns(samples: List[Dict[str, Any]]) -> List[str]:
    columns = set()
    for sample in samples:
        for key, value in sample.items():
            if key in _NON_METRIC:
                continue
            if isinstance(value, bool) or isinstance(value, (int, float)):
                columns.add(key)
    return sorted(columns)


def _column_stats(
    samples: List[Dict[str, Any]], column: str, horizon: float
) -> Optional[Tuple[float, float]]:
    """Time-weighted mean and final value up to ``horizon`` (None = absent)."""
    weighted = 0.0
    total_dt = 0.0
    final: Optional[float] = None
    prev_t = 0.0
    for sample in samples:
        t = float(sample.get("t", 0.0))
        if t > horizon + 1e-12:
            break
        dt = max(t - prev_t, 0.0)
        prev_t = t
        if column not in sample:
            continue
        value = float(sample[column])
        weighted += value * dt
        total_dt += dt
        final = value
    if final is None:
        return None
    mean = weighted / total_dt if total_dt > 0 else final
    return mean, final


def _anomaly_counts(records: List[Dict[str, Any]]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for r in records:
        if r.get("type") == "anomaly" and r.get("phase") in ("start", "point"):
            name = str(r.get("oracle", "?"))
            counts[name] = counts.get(name, 0) + 1
    return counts


def _event_counts(records: List[Dict[str, Any]]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for r in records:
        if r.get("type") == "event":
            kind = str(r.get("kind", "?"))
            counts[kind] = counts.get(kind, 0) + 1
    return counts


def diff_timelines(
    records_a: List[Dict[str, Any]], records_b: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Structured diff of two loaded timelines (JSON-safe, deterministic)."""
    samples_a, samples_b = _samples(records_a), _samples(records_b)
    last_a = float(samples_a[-1]["t"]) if samples_a else 0.0
    last_b = float(samples_b[-1]["t"]) if samples_b else 0.0
    horizon = min(last_a, last_b)

    metrics: List[Dict[str, Any]] = []
    columns = sorted(
        set(_numeric_columns(samples_a)) | set(_numeric_columns(samples_b))
    )
    for column in columns:
        stats_a = _column_stats(samples_a, column, horizon)
        stats_b = _column_stats(samples_b, column, horizon)
        row: Dict[str, Any] = {"metric": column}
        row["mean_a"] = stats_a[0] if stats_a else None
        row["mean_b"] = stats_b[0] if stats_b else None
        row["final_a"] = stats_a[1] if stats_a else None
        row["final_b"] = stats_b[1] if stats_b else None
        if stats_a and stats_b:
            row["delta_mean"] = stats_b[0] - stats_a[0]
        else:
            row["delta_mean"] = None
        metrics.append(row)

    anom_a, anom_b = _anomaly_counts(records_a), _anomaly_counts(records_b)
    anomalies: List[Dict[str, Any]] = []
    for oracle in sorted(set(anom_a) | set(anom_b)):
        a, b = anom_a.get(oracle, 0), anom_b.get(oracle, 0)
        note = ""
        if a == 0 and b > 0:
            note = "appeared"
        elif a > 0 and b == 0:
            note = "resolved"
        anomalies.append(
            {"oracle": oracle, "a": a, "b": b, "delta": b - a, "note": note}
        )

    ev_a, ev_b = _event_counts(records_a), _event_counts(records_b)
    events: List[Dict[str, Any]] = []
    for kind in sorted(set(ev_a) | set(ev_b)):
        a, b = ev_a.get(kind, 0), ev_b.get(kind, 0)
        events.append({"kind": kind, "a": a, "b": b, "delta": b - a})

    return {
        "horizon": horizon,
        "duration_a": last_a,
        "duration_b": last_b,
        "metrics": metrics,
        "anomalies": anomalies,
        "events": events,
    }


def _cell(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_diff(diff: Dict[str, Any], label: str = "run") -> str:
    """The diff as aligned text tables (metrics, anomalies, events)."""
    lines: List[str] = []
    lines.append(
        f"diff {label}: aligned to t<={_cell(diff['horizon'])} "
        f"(A ran {_cell(diff['duration_a'])}s, B ran {_cell(diff['duration_b'])}s)"
    )
    table = Table(
        "sample metrics (time-weighted mean and final value over the "
        "common horizon)",
        ["metric", "mean_a", "mean_b", "delta_mean", "final_a", "final_b"],
    )
    for row in diff["metrics"]:
        table.add_row(
            [
                row["metric"],
                _cell(row["mean_a"]),
                _cell(row["mean_b"]),
                _cell(row["delta_mean"]),
                _cell(row["final_a"]),
                _cell(row["final_b"]),
            ]
        )
    lines.append(table.render())
    if diff["anomalies"]:
        table = Table(
            "anomaly detections per oracle",
            ["oracle", "a", "b", "delta", "note"],
        )
        for row in diff["anomalies"]:
            table.add_row(
                [row["oracle"], row["a"], row["b"], row["delta"], row["note"]]
            )
        lines.append(table.render())
    else:
        lines.append("anomalies: none in either run")
    if diff["events"]:
        table = Table("run events per kind", ["kind", "a", "b", "delta"])
        for row in diff["events"]:
            table.add_row([row["kind"], row["a"], row["b"], row["delta"]])
        lines.append(table.render())
    return "\n\n".join(lines)


def diff_paths(path_a: str, path_b: str) -> Dict[str, Any]:
    """Diff every matched timeline pair under two paths.

    Returns ``{"pairs": [{"label", "diff"}, ...], "only_a": [...],
    "only_b": [...]}`` -- JSON-safe and deterministic.
    """
    pairs, only_a, only_b = pair_timelines(path_a, path_b)
    out: List[Dict[str, Any]] = []
    for label, file_a, file_b in pairs:
        out.append(
            {
                "label": label,
                "diff": diff_timelines(
                    load_timeline(file_a), load_timeline(file_b)
                ),
            }
        )
    return {"pairs": out, "only_a": only_a, "only_b": only_b}
