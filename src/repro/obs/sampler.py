"""Periodic time-series snapshots on the simulated clock.

The sampler schedules itself every ``interval`` simulated seconds and
asks a caller-supplied ``collect(now)`` function for a flat JSON-safe
dict, which it stamps into a ``{"type": "sample", "t": ...}`` record.
It owns none of the semantics -- the run observer decides *what* to
snapshot -- it only owns the cadence and the self-termination rules.

Determinism notes: sampler ticks are read-only (the collect function
must not mutate store state, draw randomness, or trigger lazy policy
refreshes), and although each tick consumes a simulator sequence number,
relative ordering between all *other* events is preserved, so the run's
results are identical with sampling on or off. ``max_samples`` bounds
self-perpetuation so the sampler can never keep an otherwise-drained
simulation alive indefinitely.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigError

__all__ = ["TimeSeriesSampler"]


class TimeSeriesSampler:
    """Re-arming sim event that appends one sample record per tick."""

    __slots__ = ("sim", "interval", "collect", "max_samples", "samples", "_running")

    def __init__(
        self,
        sim,
        interval: float,
        collect: Callable[[float], Dict[str, object]],
        max_samples: int = 20_000,
    ):
        if interval <= 0:
            raise ConfigError(f"sample interval must be > 0, got {interval}")
        if max_samples < 1:
            raise ConfigError(f"max_samples must be >= 1, got {max_samples}")
        self.sim = sim
        self.interval = float(interval)
        self.collect = collect
        self.max_samples = int(max_samples)
        self.samples: List[Dict[str, object]] = []
        self._running = False

    def start(self, at: Optional[float] = None) -> None:
        """Arm the sampler; first tick at ``at`` (default: now + interval)."""
        if self._running:
            return
        self._running = True
        first = at if at is not None else self.sim.now + self.interval
        self.sim.schedule_at(first, self._tick)

    def stop(self) -> None:
        """Disarm; an already-queued tick becomes a no-op."""
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        record: Dict[str, object] = {"type": "sample", "t": now}
        record.update(self.collect(now))
        self.samples.append(record)
        if len(self.samples) >= self.max_samples:
            self._running = False
            return
        self.sim.schedule_at(now + self.interval, self._tick)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimeSeriesSampler(interval={self.interval}, "
            f"{len(self.samples)} samples, running={self._running})"
        )
