"""The run observer: one object wiring metrics, events, traces, samples.

A :class:`RunObserver` attaches to a deployed store (and optionally its
policy and transactional layer) and records three streams into one
chronological timeline:

- **samples** -- periodic cluster snapshots (staleness, per-DC latency
  and arrival rate, consistency level in force, hint/repair backlog,
  live membership, txn/elastic counters);
- **events** -- structured run happenings from the store's event bus and
  elastic notifications (crashes, recoveries, partitions, heals, scale
  events, migrations) plus level switches;
- **explains** -- Harmony decision records (observed rates, per-level
  staleness estimates, tolerance, chosen level): the *why* behind every
  level switch;
- **anomalies** -- streaming oracle verdicts (stale bursts, in-doubt
  dwell, rebalance stalls, quorum loss, monotonic-read violations) from
  :class:`~repro.obs.oracles.AnomalyOracles`, edge-triggered and
  interleaved at their exact simulated time.

With ``trace`` enabled it also builds spans: coordinator fan-outs with
per-rank ack children (every ``trace_sample_every``-th operation,
counter-based so the choice is deterministic), all 2PC phase transitions,
rebalance streams, and instants for every marker.

The observer is strictly read-only with respect to the simulation: it
never draws randomness, never calls ``policy.read_level`` (that would
trigger a lazy refresh and perturb the decision schedule -- levels are
tracked via the engine's ``on_decision`` hook instead), and its sampler
ticks only read state. A run therefore produces byte-identical results
with the observer attached or not.

Transaction and elastic counters in samples come from an attached
:class:`~repro.monitor.collector.ClusterMonitor`'s registry when one is
listening (the monitor already folds those hooks; reading its instruments
avoids double-counting), and from the observer's own registry otherwise.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.common.errors import ConfigError
from repro.obs.events import ObsEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.oracles import AnomalyOracles, OracleConfig
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.trace import Tracer

__all__ = ["ObsConfig", "RunObserver", "TIMELINE_SCHEMA"]

#: Timeline artifact schema tag, bumped on breaking record-layout changes.
#: ``/2`` adds ``anomaly`` records (streaming oracle verdicts), per-sample
#: ground-truth read windows, and header truncation/anomaly counters; the
#: report loader still accepts ``/1`` artifacts.
TIMELINE_SCHEMA = "repro.obs/2"


@dataclass(frozen=True)
class ObsConfig:
    """Observability knobs for one run.

    Attributes
    ----------
    sample_interval:
        Simulated seconds between time-series samples.
    max_samples:
        Hard cap on samples (bounds memory and self-perpetuation).
    trace:
        Record spans and markers into a Chrome trace.
    trace_sample_every:
        Trace every N-th client operation's fan-out (1 = all). The
        counter-based choice keeps the selection deterministic.
    max_trace_events:
        Hard cap on trace events; overflow is counted, not stored.
    oracles:
        Run the streaming anomaly oracles (stale bursts, in-doubt dwell,
        rebalance stalls, quorum loss, monotonic reads) and interleave
        their ``anomaly`` records with the timeline.
    oracle_config:
        Detection budgets and thresholds for the oracles.
    out_dir:
        When set, :meth:`RunObserver.finish` writes ``timeline.jsonl``
        (and ``trace.json`` if tracing) into this directory.
    """

    sample_interval: float = 0.25
    max_samples: int = 20_000
    trace: bool = True
    trace_sample_every: int = 16
    max_trace_events: int = 200_000
    oracles: bool = True
    oracle_config: OracleConfig = field(default_factory=OracleConfig)
    out_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.sample_interval <= 0:
            raise ConfigError(
                f"sample_interval must be > 0, got {self.sample_interval}"
            )
        if self.trace_sample_every < 1:
            raise ConfigError(
                f"trace_sample_every must be >= 1, got {self.trace_sample_every}"
            )


def _initial_level(policy: Any) -> str:
    """Level label without calling ``read_level`` (no refresh side effects)."""
    if policy is None:
        return "n/a"
    current = getattr(policy, "_current", None)
    if current is not None:
        return f"r={current}"
    read = getattr(policy, "_read", None)
    if read is not None:
        return str(read)
    return str(getattr(policy, "name", "n/a"))


class RunObserver:
    """Records one run's metrics, events and spans. See the module doc."""

    def __init__(
        self,
        store,
        config: ObsConfig,
        policy: Any = None,
        run_meta: Optional[Dict[str, Any]] = None,
    ):
        self.store = store
        self.config = config
        self.policy = policy
        self.run_meta = dict(run_meta) if run_meta else {}
        self.metrics = MetricsRegistry()
        self.tracer: Optional[Tracer] = (
            Tracer(max_events=config.max_trace_events) if config.trace else None
        )
        #: chronological record stream (samples, events, explains), in the
        #: order they occurred on the simulated clock.
        self._records: List[Dict[str, Any]] = []
        self._level = _initial_level(policy)

        # per-DC accumulators since the last sample tick: dc -> [count, sum]
        self._dc_read: Dict[int, List[float]] = {}
        self._dc_write: Dict[int, List[float]] = {}
        self._ops_since_tick = 0
        self._ops_seen = 0
        self._trace_every = config.trace_sample_every
        self._last_tick_t = store.sim.now

        # ground-truth read/stale counters at the last tick, for windowed
        # deltas (feeds the per-sample window fields and the burst oracle)
        self._last_oracle_reads = store.oracle.reads
        self._last_oracle_stale = store.oracle.stale_reads
        self.oracles: Optional[AnomalyOracles] = (
            AnomalyOracles(store, config.oracle_config, self._records.append)
            if config.oracles
            else None
        )

        # own txn counters; used for samples only when no monitor listens
        self._own_commits = self.metrics.counter("txn_commits")
        self._own_aborts = self.metrics.counter("txn_aborts")
        self._own_in_doubt = self.metrics.counter("txn_in_doubt")

        # open trace bookkeeping
        self._open_txn_phase: Dict[int, str] = {}
        self._open_migrations: List[str] = []
        self._mig_seq = 0

        # wiring: bus, store listener hooks, policy decisions
        store.events.subscribe(self._on_bus_event)
        store.add_listener(self)
        if policy is not None and hasattr(policy, "on_decision"):
            policy.on_decision = self._on_decision
        self._monitor_metrics = self._find_monitor_metrics()

        self.sampler = TimeSeriesSampler(
            store.sim,
            config.sample_interval,
            self._collect,
            max_samples=config.max_samples,
        )
        self.sampler.start()
        self._finished = False

    def _find_monitor_metrics(self) -> Optional[MetricsRegistry]:
        """Registry of an already-attached monitor (else ``None``).

        Duck-typed on the ``metrics`` attribute so this module never
        imports the monitor package (the store imports us).
        """
        for listener in self.store._listeners:
            if listener is self:
                continue
            registry = getattr(listener, "metrics", None)
            if isinstance(registry, MetricsRegistry):
                return registry
        return None

    # -- store listener interface ------------------------------------------------

    def on_op_complete(self, result) -> None:
        self._ops_seen += 1
        self._ops_since_tick += 1
        if self.oracles is not None and result.kind == "read":
            self.oracles.on_read(result)
        if result.ok:
            acc = self._dc_read if result.kind == "read" else self._dc_write
            cell = acc.get(result.dc)
            if cell is None:
                acc[result.dc] = [1, result.latency]
            else:
                cell[0] += 1
                cell[1] += result.latency
        tracer = self.tracer
        if tracer is not None and self._ops_seen % self._trace_every == 0:
            op_id = f"op{self._ops_seen}"
            args: Dict[str, Any] = {"key": result.key, "dc": result.dc}
            if not result.ok:
                args["error"] = result.error
            if result.stale is not None:
                args["stale"] = result.stale
            tracer.span(
                "op",
                op_id,
                f"{result.kind}@{result.level_label}",
                result.t_start,
                result.t_end,
                args,
            )
            if result.kind == "write" and result.ack_delays:
                for rank, delay in enumerate(sorted(result.ack_delays)):
                    tracer.span(
                        "op",
                        f"{op_id}/ack{rank}",
                        f"ack[{rank}]",
                        result.t_start,
                        result.t_start + delay,
                    )

    def on_txn_complete(self, outcome) -> None:
        if outcome.reason == "resolved-in-doubt" and self._own_in_doubt.value > 0:
            self._own_in_doubt.inc(-1)
        if outcome.status == "committed":
            self._own_commits.inc()
        elif outcome.status == "aborted":
            self._own_aborts.inc()
        else:
            self._own_in_doubt.inc()

    def on_elastic_event(self, event: Dict[str, Any]) -> None:
        kind = event.get("kind")
        t = float(event.get("t", self.store.sim.now))
        record: Dict[str, Any] = {"type": "event", "t": t, "kind": kind}
        for k, v in event.items():
            if k not in ("kind", "t"):
                record[k] = v
        self._records.append(record)
        if self.oracles is not None:
            self.oracles.on_elastic_event(str(kind), t)
        tracer = self.tracer
        if tracer is None:
            return
        if kind == "migration-start":
            self._mig_seq += 1
            mig_id = f"mig{self._mig_seq}"
            self._open_migrations.append(mig_id)
            tracer.begin(
                "rebalance",
                mig_id,
                "migration",
                t,
                {
                    "ranges": event.get("ranges", 0),
                    "keys": event.get("keys", 0),
                    "joining": event.get("joining"),
                    "leaving": event.get("leaving"),
                },
            )
        elif kind == "migration-complete":
            # the rebalancer settles every outstanding stream at once
            for mig_id in self._open_migrations:
                tracer.end("rebalance", mig_id, "migration", t)
            self._open_migrations = []
        else:
            tracer.instant(str(kind), t, cat="elastic", args=record)

    # -- bus / policy / txn hooks ---------------------------------------------------

    def _on_bus_event(self, event: ObsEvent) -> None:
        self._records.append(event.to_record())
        if self.oracles is not None:
            self.oracles.on_bus_event(event)
        if self.tracer is not None:
            self.tracer.instant(event.kind, event.t, cat="failure", args=event.data)

    def _on_decision(self, engine, decision) -> None:
        record: Dict[str, Any] = {
            "type": "explain",
            "t": decision.t,
            "policy": engine.name,
            "read_level": decision.read_level,
            "estimates": [float(e) for e in decision.estimates],
            "tolerance": engine.tolerance,
            "write_rate": decision.write_rate,
            "read_rate": decision.read_rate,
        }
        self._records.append(record)
        new_level = f"r={decision.read_level}"
        if new_level != self._level:
            switch: Dict[str, Any] = {
                "type": "event",
                "t": decision.t,
                "kind": "level-switch",
                "from": self._level,
                "to": new_level,
            }
            self._records.append(switch)
            if self.tracer is not None:
                self.tracer.instant(
                    "level-switch",
                    decision.t,
                    cat="policy",
                    args={"from": self._level, "to": new_level},
                )
        self._level = new_level
        if self.tracer is not None:
            self.tracer.instant("explain", decision.t, cat="policy", args=record)

    def on_txn_phase(self, txn_id: int, phase: str, t: float, **info) -> None:
        """Commit-protocol phase transition from a transaction manager."""
        tracer = self.tracer
        if tracer is None:
            return
        span_id = f"txn{txn_id}"
        if phase == "prepare":
            self._open_txn_phase[txn_id] = "prepare"
            tracer.begin("txn", span_id, "prepare", t, info or None)
        elif phase == "precommit":
            # The 3PC barrier: an instant mark inside the open prepare span
            # (the round is still on its way to the commit point).
            tracer.instant("precommit", t, cat="txn", args=info)
        elif phase == "decide":
            if self._open_txn_phase.get(txn_id) == "prepare":
                tracer.end("txn", span_id, "prepare", t)
            tracer.instant(
                f"decide:{info.get('outcome', '?')}", t, cat="txn", args=info
            )
            self._open_txn_phase[txn_id] = "resolve"
            tracer.begin("txn", span_id, "resolve", t)
        elif phase == "recover":
            tracer.instant("recover", t, cat="txn", args=info)
            if self._open_txn_phase.get(txn_id) != "resolve":
                self._open_txn_phase[txn_id] = "resolve"
                tracer.begin("txn", span_id, "resolve", t)
        elif phase == "end":
            if self._open_txn_phase.pop(txn_id, None) == "resolve":
                tracer.end("txn", span_id, "resolve", t)

    def on_txn_prepared(
        self, node_id: int, txn_id: int, t: float, restart: bool = False
    ) -> None:
        """A participant voted YES and holds prepared (in-doubt) state.

        ``restart=True`` marks a recovery re-registration: the dwell clock
        restarts at ``t`` even if the crash fell between sampler ticks.
        """
        if self.oracles is not None:
            self.oracles.on_txn_prepared(node_id, txn_id, t, restart=restart)

    def on_txn_doubt_resolved(self, node_id: int, txn_id: int, t: float) -> None:
        """A participant's prepared state was resolved by a decision."""
        if self.oracles is not None:
            self.oracles.on_txn_doubt_resolved(node_id, txn_id, t)

    # -- sampling --------------------------------------------------------------------

    def _collect(self, now: float) -> Dict[str, Any]:
        store = self.store
        # The actual window since the previous sample: equals the configured
        # interval on regular ticks, shorter for the closing partial sample.
        interval = max(now - self._last_tick_t, 1e-9)
        self._last_tick_t = now
        window_reads = store.oracle.reads - self._last_oracle_reads
        window_stale = store.oracle.stale_reads - self._last_oracle_stale
        self._last_oracle_reads = store.oracle.reads
        self._last_oracle_stale = store.oracle.stale_reads
        sample: Dict[str, Any] = {
            "stale_rate": store.oracle.stale_rate,
            "stale_reads": store.oracle.stale_reads,
            "window_reads": window_reads,
            "window_stale": window_stale,
            "level": self._level,
            "ops_per_s": self._ops_since_tick / interval,
            "hint_backlog": store.hints.pending_total() if store.hints else 0,
            "repairs_issued": store.repairs_issued,
            "live_nodes": sum(
                1 for n in store.nodes if n.up and not n.retired
            ),
            "rebalance_active": bool(
                store.rebalancer is not None and store.rebalancer.active
            ),
        }
        for dc in sorted(self._dc_read):
            count, total = self._dc_read[dc]
            sample[f"dc{dc}_read_lat"] = total / count if count else 0.0
            sample[f"dc{dc}_reads_per_s"] = count / interval
        for dc in sorted(self._dc_write):
            count, total = self._dc_write[dc]
            sample[f"dc{dc}_write_lat"] = total / count if count else 0.0
            sample[f"dc{dc}_writes_per_s"] = count / interval
        self._dc_read = {}
        self._dc_write = {}
        self._ops_since_tick = 0

        registry = (
            self._monitor_metrics
            if self._monitor_metrics is not None
            else self.metrics
        )
        for name in ("txn_commits", "txn_aborts", "txn_in_doubt"):
            sample[name] = registry.counter(name).value
        if self.oracles is not None:
            # Participant-side blocked state straight from the in-doubt
            # dwell oracle: (node, txn) pairs held prepared-without-decision
            # past the dwell budget right now. The SLO engine integrates
            # this signal over the sampler windows into ``blocked_txn_time``.
            sample["txn_blocked"] = self.oracles.blocked_now
        if self._monitor_metrics is not None:
            sample["scale_outs"] = registry.counter("scale_outs").value
            sample["scale_ins"] = registry.counter("scale_ins").value

        self._records.append({"type": "sample", "t": now, **sample})
        # Oracles evaluate after the sample lands so their anomaly records
        # follow it at the same timestamp (stable interleaving).
        if self.oracles is not None:
            self.oracles.on_tick(now, window_reads, window_stale)
        return sample

    # -- artifacts -------------------------------------------------------------------

    def header(self) -> Dict[str, Any]:
        head: Dict[str, Any] = {
            "type": "header",
            "schema": TIMELINE_SCHEMA,
            "sample_interval": self.config.sample_interval,
            "trace": self.config.trace,
            "trace_sample_every": self.config.trace_sample_every,
            # truncation surfaces: a capped trace or sampler is flagged
            # here instead of silently missing records
            "samples": sum(1 for r in self._records if r["type"] == "sample"),
            "max_samples": self.config.max_samples,
            "trace_events": len(self.tracer) if self.tracer is not None else 0,
            "trace_dropped": self.tracer.dropped if self.tracer is not None else 0,
        }
        if self.oracles is not None:
            head["anomalies"] = {
                k: self.oracles.counts[k] for k in sorted(self.oracles.counts)
            }
            head["anomalies_suppressed"] = self.oracles.suppressed
        for k in sorted(self.run_meta):
            head[f"meta_{k}"] = self.run_meta[k]
        return head

    def timeline_records(self) -> List[Dict[str, Any]]:
        """Header + chronological record stream (samples/events/explains)."""
        return [self.header()] + list(self._records)

    def finish(self, out_dir: Optional[str] = None) -> None:
        """Stop sampling, take a closing sample, write artifacts if asked."""
        if self._finished:
            return
        self._finished = True
        self.sampler.stop()
        now = self.store.sim.now
        last_t = self._records[-1]["t"] if self._records else -1.0
        if now > last_t or not any(
            r["type"] == "sample" for r in self._records
        ):
            self._collect(now)
        if self.oracles is not None:
            self.oracles.finish(now)
        if self.tracer is not None:
            # Close spans still open at the cutoff (in-flight transactions,
            # unfinished migrations) so every begin has a matching end.
            for txn_id in sorted(self._open_txn_phase):
                phase = self._open_txn_phase[txn_id]
                self.tracer.end("txn", f"txn{txn_id}", phase, now)
            self._open_txn_phase = {}
            for mig_id in self._open_migrations:
                self.tracer.end("rebalance", mig_id, "migration", now)
            self._open_migrations = []
        target = out_dir if out_dir is not None else self.config.out_dir
        if target is not None:
            self.write(target)

    def write(self, out_dir: str) -> None:
        """Write ``timeline.jsonl`` (+ ``trace.json``) deterministically."""
        os.makedirs(out_dir, exist_ok=True)
        timeline_path = os.path.join(out_dir, "timeline.jsonl")
        with open(timeline_path, "w") as fh:
            for record in self.timeline_records():
                fh.write(json.dumps(record, sort_keys=True))
                fh.write("\n")
        if self.tracer is not None:
            trace_path = os.path.join(out_dir, "trace.json")
            meta = {f"meta_{k}": v for k, v in sorted(self.run_meta.items())}
            with open(trace_path, "w") as fh:
                fh.write(self.tracer.to_json(meta))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        spans = len(self.tracer) if self.tracer is not None else 0
        return (
            f"RunObserver({len(self._records)} records, {spans} trace events, "
            f"level={self._level})"
        )
