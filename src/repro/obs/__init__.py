"""Run observability: metrics, structured events, traces and timelines.

Harmony's loop is *observe -> estimate -> adapt*; this package makes every
run inspectable the same way: a :class:`~repro.obs.metrics.MetricsRegistry`
holds labelled counters/gauges/histograms, an
:class:`~repro.obs.events.EventBus` carries structured run events
(crashes, partitions, scale events, level switches), a
:class:`~repro.obs.trace.Tracer` builds spans from the existing listener
surfaces, and a :class:`~repro.obs.sampler.TimeSeriesSampler` snapshots
the cluster state on the simulated clock. The
:class:`~repro.obs.recorder.RunObserver` wires all of it to one deployment
and writes two schema-versioned artifacts per run:

- ``timeline.jsonl`` -- header + samples + events + policy "explain"
  records + streaming-oracle ``anomaly`` records (rendered by
  ``repro report``);
- ``trace.json`` -- Chrome trace-event JSON, viewable in Perfetto.

On top of the passive recording sit the *active* pieces: streaming
:class:`~repro.obs.oracles.AnomalyOracles` judge invariants online
(stale bursts, 2PC in-doubt dwell, rebalance stalls, quorum loss,
monotonic reads), :mod:`repro.obs.slo` grades timelines against
declarative :class:`~repro.obs.slo.SLOSpec` objectives with error-budget
burn, and :mod:`repro.obs.diff` aligns two runs on sim-time for
metric/anomaly deltas (``repro diff``).

The whole package is **opt-in and zero-overhead when disabled**: no
harness constructs any observer object unless an
:class:`~repro.obs.recorder.ObsConfig` is passed, the hot-path hooks are
``None``-guarded attribute probes, and the event bus short-circuits when
nobody subscribed. The sampler and tracer only *read* simulation state --
no RNG draws, no behavioural feedback -- so a run's results are
byte-identical with observability on or off.
"""

from repro.obs.events import EventBus, ObsEvent
from repro.obs.metrics import Counter, Gauge, HistogramMetric, MetricsRegistry
from repro.obs.oracles import AnomalyOracles, OracleConfig
from repro.obs.recorder import ObsConfig, RunObserver
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.slo import SLOSpec
from repro.obs.trace import Tracer

__all__ = [
    "AnomalyOracles",
    "Counter",
    "EventBus",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "ObsConfig",
    "ObsEvent",
    "OracleConfig",
    "RunObserver",
    "SLOSpec",
    "TimeSeriesSampler",
    "Tracer",
]
