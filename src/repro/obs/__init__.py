"""Run observability: metrics, structured events, traces and timelines.

Harmony's loop is *observe -> estimate -> adapt*; this package makes every
run inspectable the same way: a :class:`~repro.obs.metrics.MetricsRegistry`
holds labelled counters/gauges/histograms, an
:class:`~repro.obs.events.EventBus` carries structured run events
(crashes, partitions, scale events, level switches), a
:class:`~repro.obs.trace.Tracer` builds spans from the existing listener
surfaces, and a :class:`~repro.obs.sampler.TimeSeriesSampler` snapshots
the cluster state on the simulated clock. The
:class:`~repro.obs.recorder.RunObserver` wires all of it to one deployment
and writes two schema-versioned artifacts per run:

- ``timeline.jsonl`` -- header + samples + events + policy "explain"
  records (rendered by ``repro report``);
- ``trace.json`` -- Chrome trace-event JSON, viewable in Perfetto.

The whole package is **opt-in and zero-overhead when disabled**: no
harness constructs any observer object unless an
:class:`~repro.obs.recorder.ObsConfig` is passed, the hot-path hooks are
``None``-guarded attribute probes, and the event bus short-circuits when
nobody subscribed. The sampler and tracer only *read* simulation state --
no RNG draws, no behavioural feedback -- so a run's results are
byte-identical with observability on or off.
"""

from repro.obs.events import EventBus, ObsEvent
from repro.obs.metrics import Counter, Gauge, HistogramMetric, MetricsRegistry
from repro.obs.recorder import ObsConfig, RunObserver
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.trace import Tracer

__all__ = [
    "Counter",
    "EventBus",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "ObsConfig",
    "ObsEvent",
    "RunObserver",
    "TimeSeriesSampler",
    "Tracer",
]
