"""Declarative SLOs evaluated over a run's timeline with error budgets.

An :class:`SLOSpec` states service-level objectives for one scenario --
stale-read rate, per-DC read p99 latency, transaction abort rate, total
blocked-transaction (in-doubt) time, run cost, anomaly count -- and this
module grades a recorded ``timeline.jsonl`` against it. Objectives over
time-varying signals (staleness, in-doubt time) are evaluated per sampler
window with **error-budget burn** accounting: the objective passes while
the fraction of run time spent in breach stays within ``error_budget``,
and the report shows how much of that budget each objective burned
(burn >= 1.0 is a breach).

Specs travel with the runs that produced them: a scenario's SLO is
stamped into the timeline header (``meta_slo``) by
:meth:`repro.experiments.scenarios.ScenarioSpec.run`, so ``repro report
PATH --slo`` can grade artifacts long after the run -- and CI gates chaos
scenarios on oracle silence with documented exit codes (0 = all pass,
1 = breach, 2 = no SLO resolvable / bad input).

Evaluation is pure and deterministic: plain arithmetic over the already
written records, exact sorted-order percentiles, no RNG, no clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError

__all__ = ["SLOSpec", "SLOResult", "SLOReport", "evaluate_slo"]


@dataclass(frozen=True)
class SLOSpec:
    """Service-level objectives for one scenario (all optional).

    Attributes
    ----------
    stale_rate_max:
        Per-window ground-truth stale-read rate objective; graded with
        the error budget (windows without reads are not counted).
    read_p99_ms_max:
        Exact p99 over per-window mean read latencies, per datacenter;
        every DC must meet it.
    abort_rate_max:
        Final aborts / (commits + aborts); vacuously met without
        transactions.
    blocked_txn_time_max:
        Total simulated seconds with any participant *blocked* in doubt:
        prepared without a decision past the dwell oracle's budget, per
        the ``txn_blocked`` sample signal (older timelines fall back to
        the client-visible in-doubt counter).
    cost_ceiling_usd:
        Total run cost ceiling (needs ``meta_cost_total_usd`` in the
        header, stamped by the scenario harness).
    anomalies_max:
        Cap on anomaly records (``start``/``point`` phases, i.e. distinct
        detections) across all oracles; 0 = gate on oracle silence.
    error_budget:
        Tolerated fraction of run time in breach for the windowed
        objectives (0 = any breaching window fails).
    """

    stale_rate_max: Optional[float] = None
    read_p99_ms_max: Optional[float] = None
    abort_rate_max: Optional[float] = None
    blocked_txn_time_max: Optional[float] = None
    cost_ceiling_usd: Optional[float] = None
    anomalies_max: Optional[int] = None
    error_budget: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_budget < 1.0:
            raise ConfigError(
                f"error_budget must be in [0, 1), got {self.error_budget}"
            )
        if all(
            getattr(self, f.name) is None
            for f in fields(self)
            if f.name != "error_budget"
        ):
            raise ConfigError("an SLOSpec needs at least one objective")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe mapping (``None`` objectives omitted)."""
        doc: Dict[str, Any] = {"error_budget": self.error_budget}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name != "error_budget" and value is not None:
                doc[f.name] = value
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "SLOSpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ConfigError(f"unknown SLO objective(s): {', '.join(unknown)}")
        return cls(**doc)


@dataclass
class SLOResult:
    """Verdict for one objective."""

    objective: str
    target: float
    observed: Optional[float]
    breached: bool
    #: error-budget burn for windowed objectives (>= 1.0 means breached);
    #: ``None`` for point-in-time objectives.
    burn: Optional[float] = None
    detail: str = ""

    def line(self) -> str:
        status = "FAIL" if self.breached else "PASS"
        if self.observed is None:
            body = "n/a"
        else:
            cmp = ">" if self.breached else "<="
            body = f"observed {_fmt(self.observed)} {cmp} {_fmt(self.target)}"
        if self.burn is not None:
            body += f" (budget burn {_fmt_burn(self.burn)})"
        if self.detail:
            body += f"  [{self.detail}]"
        return f"{status} {self.objective:<18s} {body}"


@dataclass
class SLOReport:
    """All objective verdicts for one timeline."""

    spec: SLOSpec
    results: List[SLOResult]

    @property
    def ok(self) -> bool:
        return not any(r.breached for r in self.results)

    def render(self, source: str = "") -> str:
        title = "SLO verdict" + (f" — {source}" if source else "")
        lines = [title]
        lines += [f"  {r.line()}" for r in self.results]
        failed = sum(1 for r in self.results if r.breached)
        verdict = "BREACH" if failed else "OK"
        lines.append(
            f"  verdict: {verdict} ({failed}/{len(self.results)} objectives failed)"
        )
        return "\n".join(lines)


def _fmt(value: float) -> str:
    return f"{value:.4g}"


def _fmt_burn(burn: float) -> str:
    return "inf" if math.isinf(burn) else f"{burn:.2f}"


def _percentile(values: List[float], pct: float) -> float:
    """Exact nearest-rank percentile over a non-empty list."""
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _windows(
    records: List[Dict[str, Any]],
) -> List[Tuple[float, Dict[str, Any]]]:
    """``(duration, sample)`` pairs; duration is the gap since the last tick."""
    out: List[Tuple[float, Dict[str, Any]]] = []
    prev_t = 0.0
    for record in records:
        if record.get("type") != "sample":
            continue
        t = float(record.get("t", 0.0))
        dt = t - prev_t
        prev_t = t
        if dt > 0.0:
            out.append((dt, record))
    return out


def _window_reads(sample: Dict[str, Any], dt: float) -> Optional[float]:
    """Reads in this window; estimated from per-DC rates for ``/1`` samples."""
    if "window_reads" in sample:
        return float(sample["window_reads"])
    rates = [v for k, v in sample.items() if k.endswith("_reads_per_s")]
    if not rates:
        return None
    return sum(float(r) for r in rates) * dt


def _burn(breach_time: float, exposed_time: float, budget: float) -> Tuple[bool, float]:
    """(breached, burn) for time-in-breach vs an error budget."""
    if exposed_time <= 0.0:
        return False, 0.0
    frac = breach_time / exposed_time
    if budget > 0.0:
        return frac > budget, frac / budget
    return frac > 0.0, (math.inf if frac > 0.0 else 0.0)


def evaluate_slo(records: List[Dict[str, Any]], spec: SLOSpec) -> SLOReport:
    """Grade one loaded timeline against ``spec``."""
    head = records[0] if records and records[0].get("type") == "header" else {}
    windows = _windows(records)
    samples = [s for _, s in windows]
    results: List[SLOResult] = []

    if spec.stale_rate_max is not None:
        breach_time = exposed = 0.0
        worst = 0.0
        for dt, sample in windows:
            reads = _window_reads(sample, dt)
            if reads is not None and reads <= 0.0:
                continue  # no reads this window: no staleness exposure
            if reads is not None and "window_stale" in sample:
                rate = float(sample["window_stale"]) / reads
            elif "stale_rate" in sample:
                # /1 sample (no per-window stale count): fall back to the
                # cumulative ground-truth rate at this tick.
                rate = float(sample["stale_rate"])
            else:
                continue
            exposed += dt
            worst = max(worst, rate)
            if rate > spec.stale_rate_max:
                breach_time += dt
        breached, burn = _burn(breach_time, exposed, spec.error_budget)
        results.append(
            SLOResult(
                "stale_rate",
                spec.stale_rate_max,
                worst if exposed else None,
                breached,
                burn=burn,
                detail=f"{breach_time:.3g}s of {exposed:.3g}s in breach",
            )
        )

    if spec.read_p99_ms_max is not None:
        by_dc: Dict[int, List[float]] = {}
        for _, sample in windows:
            for key, value in sample.items():
                if key.startswith("dc") and key.endswith("_read_lat"):
                    dc = int(key[2:-len("_read_lat")])
                    by_dc.setdefault(dc, []).append(float(value) * 1e3)
        if by_dc:
            per_dc = {dc: _percentile(vals, 99.0) for dc, vals in by_dc.items()}
            observed = max(per_dc.values())
            breached = observed > spec.read_p99_ms_max
            detail = " ".join(
                f"dc{dc}={per_dc[dc]:.3g}ms" for dc in sorted(per_dc)
            )
        else:
            observed, breached, detail = None, False, "no read samples"
        results.append(
            SLOResult(
                "read_p99_ms", spec.read_p99_ms_max, observed, breached,
                detail=detail,
            )
        )

    if spec.abort_rate_max is not None:
        commits = aborts = 0
        if samples:
            commits = int(samples[-1].get("txn_commits", 0))
            aborts = int(samples[-1].get("txn_aborts", 0))
        total = commits + aborts
        if total:
            observed = aborts / total
            breached = observed > spec.abort_rate_max
            detail = f"{aborts} aborts / {total} decided"
        else:
            observed, breached, detail = None, False, "no transactions"
        results.append(
            SLOResult(
                "abort_rate", spec.abort_rate_max, observed, breached,
                detail=detail,
            )
        )

    if spec.blocked_txn_time_max is not None:
        # Prefer the participant-side blocked count the dwell oracle feeds
        # into samples (``txn_blocked``: prepared-without-decision pairs);
        # older timelines without it fall back to the client-visible
        # in-doubt counter.
        blocked = sum(
            dt
            for dt, s in windows
            if int(s.get("txn_blocked", s.get("txn_in_doubt", 0))) > 0
        )
        detail = (
            "windows with blocked participants"
            if any("txn_blocked" in s for _, s in windows)
            else "windows with in-doubt transactions"
        )
        results.append(
            SLOResult(
                "blocked_txn_time",
                spec.blocked_txn_time_max,
                blocked,
                blocked > spec.blocked_txn_time_max,
                detail=detail,
            )
        )

    if spec.cost_ceiling_usd is not None:
        cost = head.get("meta_cost_total_usd")
        if cost is None:
            results.append(
                SLOResult(
                    "cost_ceiling_usd",
                    spec.cost_ceiling_usd,
                    None,
                    False,
                    detail="cost not recorded in header",
                )
            )
        else:
            results.append(
                SLOResult(
                    "cost_ceiling_usd",
                    spec.cost_ceiling_usd,
                    float(cost),
                    float(cost) > spec.cost_ceiling_usd,
                )
            )

    if spec.anomalies_max is not None:
        detections = [
            r
            for r in records
            if r.get("type") == "anomaly" and r.get("phase") in ("start", "point")
        ]
        per_oracle: Dict[str, int] = {}
        for r in detections:
            name = str(r.get("oracle", "?"))
            per_oracle[name] = per_oracle.get(name, 0) + 1
        detail = (
            " ".join(f"{k}={per_oracle[k]}" for k in sorted(per_oracle))
            or "oracle silence"
        )
        results.append(
            SLOResult(
                "anomalies",
                float(spec.anomalies_max),
                float(len(detections)),
                len(detections) > spec.anomalies_max,
                detail=detail,
            )
        )

    return SLOReport(spec=spec, results=results)
