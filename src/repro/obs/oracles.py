"""Streaming anomaly oracles: online invariant checking over a live run.

Where the rest of the observability layer *records* what happened, the
oracles *judge* it as it happens: a set of small deterministic state
machines fed by the same read-only hooks the :class:`RunObserver` already
taps (the store event bus, elastic notifications, the per-op listener and
the sampler tick) that flag invariant violations as structured ``anomaly``
records interleaved with the timeline stream (schema ``repro.obs/2``).

Five invariants are watched:

- **stale-burst** -- the windowed stale-read rate (ground truth from the
  staleness oracle, not the client estimate) exceeds a threshold over a
  rolling window of sampler ticks;
- **in-doubt-dwell** -- a 2PC participant holds a prepared transaction
  without a decision for longer than a dwell budget (the blocked-state
  window presumed-abort is supposed to keep short);
- **rebalance-stall** -- a migration is active but none of the streaming
  progress counters advanced for a budget of simulated seconds;
- **quorum-loss** -- crashes and/or WAN partitions leave no connected
  component of the cluster with a majority of the non-retired nodes;
- **monotonic-read** -- a sampled key's reads return a version older than
  one previously returned for that key (session monotonicity broken).

Interval anomalies are edge-triggered: one ``phase: "start"`` record when
the condition first holds, one ``phase: "end"`` when it clears (or at
``finish()`` with ``unresolved: true``). Point anomalies (monotonic-read)
emit a single ``phase: "point"`` record per violation.

Determinism: the oracles never draw randomness, never schedule simulator
events of their own (interval conditions are evaluated on the existing
sampler ticks and on the triggering bus events), and sample keys by
``zlib.crc32`` so the choice is stable across interpreters regardless of
``PYTHONHASHSEED``. Every record is built from simulation state only, so
anomaly streams are byte-identical across ``--jobs`` layouts and repeat
runs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.obs.events import ObsEvent

__all__ = ["OracleConfig", "AnomalyOracles"]


@dataclass(frozen=True)
class OracleConfig:
    """Detection budgets and thresholds for the anomaly oracles.

    Attributes
    ----------
    stale_window_ticks:
        Rolling window length, in sampler ticks, for the stale-burst rate.
    stale_rate_threshold:
        Windowed stale/read ratio above which a burst starts.
    stale_min_reads:
        Minimum reads in the window before the ratio is meaningful.
    in_doubt_dwell:
        Simulated seconds a participant may hold a prepared transaction
        without a decision before it is flagged.
    rebalance_stall:
        Simulated seconds of zero streaming progress (while a migration
        is active) before a stall starts.
    monotonic_sample_every:
        Watch keys whose ``crc32(key) % N == 0`` (1 = every key). The
        modulus keeps the sampled set hash-seed independent.
    max_anomalies:
        Per-oracle cap on emitted records; overflow is counted in the
        header (``anomalies_suppressed``), not stored.
    """

    stale_window_ticks: int = 4
    stale_rate_threshold: float = 0.5
    stale_min_reads: int = 16
    in_doubt_dwell: float = 1.0
    rebalance_stall: float = 0.5
    monotonic_sample_every: int = 8
    max_anomalies: int = 200

    def __post_init__(self) -> None:
        if self.stale_window_ticks < 1:
            raise ConfigError(
                f"stale_window_ticks must be >= 1, got {self.stale_window_ticks}"
            )
        if not 0.0 < self.stale_rate_threshold <= 1.0:
            raise ConfigError(
                "stale_rate_threshold must be in (0, 1], got "
                f"{self.stale_rate_threshold}"
            )
        if self.in_doubt_dwell <= 0 or self.rebalance_stall <= 0:
            raise ConfigError("dwell/stall budgets must be positive")
        if self.monotonic_sample_every < 1:
            raise ConfigError(
                f"monotonic_sample_every must be >= 1, got "
                f"{self.monotonic_sample_every}"
            )


#: ``emit(oracle, phase, t, **data)`` -- the sink the engine gives oracles.
_Emit = Callable[..., None]


class _StaleBurstOracle:
    """Windowed ground-truth stale-read rate over rolling sampler ticks."""

    name = "stale-burst"

    def __init__(self, config: OracleConfig, emit: _Emit):
        self._config = config
        self._emit = emit
        self._window: List[Tuple[int, int]] = []  # (reads, stale) per tick
        self._open_since: Optional[float] = None

    def on_tick(self, now: float, window_reads: int, window_stale: int) -> None:
        self._window.append((window_reads, window_stale))
        if len(self._window) > self._config.stale_window_ticks:
            self._window.pop(0)
        reads = sum(r for r, _ in self._window)
        stale = sum(s for _, s in self._window)
        rate = stale / reads if reads else 0.0
        burst = (
            reads >= self._config.stale_min_reads
            and rate > self._config.stale_rate_threshold
        )
        if burst and self._open_since is None:
            self._open_since = now
            self._emit(
                self.name,
                "start",
                now,
                window_rate=rate,
                window_reads=reads,
                threshold=self._config.stale_rate_threshold,
            )
        elif not burst and self._open_since is not None:
            self._emit(
                self.name, "end", now, duration=now - self._open_since
            )
            self._open_since = None

    def finish(self, now: float) -> None:
        if self._open_since is not None:
            self._emit(
                self.name,
                "end",
                now,
                duration=now - self._open_since,
                unresolved=True,
            )
            self._open_since = None


class _InDoubtDwellOracle:
    """Prepared-without-decision transactions held past the dwell budget."""

    name = "in-doubt-dwell"

    def __init__(self, config: OracleConfig, emit: _Emit, store=None):
        self._config = config
        self._emit = emit
        self._store = store
        #: (node, txn) -> earliest prepare time seen while the node is up
        #: (recovery re-registers at the recovery instant, restarting the
        #: clock: a crashed participant is dead, not blocked).
        self._prepared: Dict[Tuple[int, int], float] = {}
        self._open: Dict[Tuple[int, int], float] = {}

    def on_prepared(
        self, node_id: int, txn_id: int, t: float, restart: bool = False
    ) -> None:
        key = (node_id, txn_id)
        if restart:
            # Recovery re-registration: the node just came back from a
            # crash, so the dwell clock restarts at ``t`` even when the
            # whole crash+recovery fell between two sampler ticks (the
            # tick-granularity crash sweep below would otherwise never
            # have dropped the pre-crash start time). Downtime is dead,
            # not blocked; an anomaly left open across the crash closes.
            if key in self._open:
                del self._open[key]
                self._emit(
                    self.name, "end", t, node=node_id, txn=txn_id, crashed=True
                )
            self._prepared[key] = t
            return
        prev = self._prepared.get(key)
        # Duplicate registrations while up keep the earliest time.
        if prev is None or t < prev:
            self._prepared[key] = t

    def _node_down(self, node_id: int) -> bool:
        if self._store is None:
            return False
        nodes = self._store.nodes
        if not 0 <= node_id < len(nodes):
            return False
        return not nodes[node_id].up

    def on_resolved(self, node_id: int, txn_id: int, t: float) -> None:
        key = (node_id, txn_id)
        self._prepared.pop(key, None)
        if key in self._open:
            del self._open[key]
            self._emit(
                self.name, "end", t, node=node_id, txn=txn_id
            )

    def on_tick(self, now: float) -> None:
        budget = self._config.in_doubt_dwell
        for key in sorted(self._prepared):
            if self._node_down(key[0]):
                # A crashed participant is dead, not blocked: drop its
                # dwell (recovery re-registers the pair at the recovery
                # instant, restarting the clock).
                del self._prepared[key]
                if key in self._open:
                    del self._open[key]
                    self._emit(
                        self.name, "end", now, node=key[0], txn=key[1],
                        crashed=True,
                    )
                continue
            if key in self._open:
                continue
            waited = now - self._prepared[key]
            if waited >= budget:
                self._open[key] = now
                self._emit(
                    self.name,
                    "start",
                    now,
                    node=key[0],
                    txn=key[1],
                    waited=waited,
                    budget=budget,
                )

    @property
    def pending(self) -> int:
        """(node, txn) pairs currently prepared without a decision."""
        return len(self._prepared)

    @property
    def overdue(self) -> int:
        """(node, txn) pairs held past the dwell budget (open anomalies).

        The *blocked* signal: ordinary in-flight prepares (one commit
        round trip of dwell) don't count, only transactions a participant
        has been stuck on beyond ``in_doubt_dwell`` simulated seconds.
        """
        return len(self._open)

    def finish(self, now: float) -> None:
        for key in sorted(self._open):
            self._emit(
                self.name,
                "end",
                now,
                node=key[0],
                txn=key[1],
                unresolved=True,
            )
        self._open.clear()


class _RebalanceStallOracle:
    """Active migration with no streaming progress for too long."""

    name = "rebalance-stall"

    def __init__(self, config: OracleConfig, emit: _Emit, store):
        self._config = config
        self._emit = emit
        self._store = store
        self._last_sig: Optional[Tuple[int, ...]] = None
        self._last_progress_t = 0.0
        self._open_since: Optional[float] = None

    def on_migration_start(self, t: float) -> None:
        # restart the stall clock: a fresh migration is allowed the full
        # budget before its first pump lands.
        self._last_progress_t = t
        self._last_sig = None

    def on_tick(self, now: float) -> None:
        reb = getattr(self._store, "rebalancer", None)
        if reb is None or not reb.active:
            if self._open_since is not None:
                self._emit(
                    self.name, "end", now, duration=now - self._open_since
                )
                self._open_since = None
            self._last_sig = None
            return
        sig = reb.progress_signature()
        if sig != self._last_sig:
            self._last_sig = sig
            self._last_progress_t = now
            if self._open_since is not None:
                self._emit(
                    self.name, "end", now, duration=now - self._open_since
                )
                self._open_since = None
            return
        stalled = now - self._last_progress_t
        if stalled >= self._config.rebalance_stall and self._open_since is None:
            self._open_since = now
            self._emit(
                self.name,
                "start",
                now,
                stalled_for=stalled,
                pending_keys=reb.pending_keys(),
            )

    def finish(self, now: float) -> None:
        if self._open_since is not None:
            self._emit(
                self.name,
                "end",
                now,
                duration=now - self._open_since,
                unresolved=True,
            )
            self._open_since = None


class _QuorumLossOracle:
    """No connected component holds a majority of the non-retired nodes.

    Node up/retired state is read from the store (the source of truth the
    failure injector and elastic layer both mutate); partition state is
    tracked from the ``partition``/``heal`` bus events. Connectivity is
    per-datacenter: a partition cuts every node pair across the named DCs.
    """

    name = "quorum-loss"

    def __init__(self, config: OracleConfig, emit: _Emit, store):
        self._emit = emit
        self._store = store
        self._partitions: set = set()
        self._open_since: Optional[float] = None

    def on_bus_event(self, event: ObsEvent) -> None:
        if event.kind == "partition":
            self._partitions.add(
                frozenset((event.data["dc_a"], event.data["dc_b"]))
            )
        elif event.kind == "heal":
            self._partitions.discard(
                frozenset((event.data["dc_a"], event.data["dc_b"]))
            )
        elif event.kind not in ("node-crash", "node-recover"):
            return
        self.evaluate(event.t)

    def evaluate(self, now: float) -> None:
        store = self._store
        topo = store.topology
        n_dcs = len(topo.datacenters)
        live_by_dc = [0] * n_dcs
        total = 0
        for node in store.nodes:
            if node.retired:
                continue
            total += 1
            if node.up:
                live_by_dc[topo.dc_of(node.node_id)] += 1
        needed = total // 2 + 1
        # Union-find over datacenters; edges are the un-partitioned pairs.
        parent = list(range(n_dcs))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a in range(n_dcs):
            for b in range(a + 1, n_dcs):
                if frozenset((a, b)) not in self._partitions:
                    parent[find(a)] = find(b)
        component_live: Dict[int, int] = {}
        for dc in range(n_dcs):
            root = find(dc)
            component_live[root] = component_live.get(root, 0) + live_by_dc[dc]
        best = max(component_live.values()) if component_live else 0
        lost = total > 0 and best < needed
        if lost and self._open_since is None:
            self._open_since = now
            self._emit(
                self.name, "start", now, live=best, needed=needed, total=total
            )
        elif not lost and self._open_since is not None:
            self._emit(
                self.name, "end", now, duration=now - self._open_since
            )
            self._open_since = None

    def on_tick(self, now: float) -> None:
        # membership can change without a bus event (elastic joins/retires)
        self.evaluate(now)

    def finish(self, now: float) -> None:
        if self._open_since is not None:
            self._emit(
                self.name,
                "end",
                now,
                duration=now - self._open_since,
                unresolved=True,
            )
            self._open_since = None


class _MonotonicReadOracle:
    """Sampled keys whose reads return an older version than already seen."""

    name = "monotonic-read"

    def __init__(self, config: OracleConfig, emit: _Emit):
        self._config = config
        self._emit = emit
        self._seen: Dict[str, Any] = {}  # key -> newest Version returned

    def _sampled(self, key: str) -> bool:
        every = self._config.monotonic_sample_every
        if every == 1:
            return True
        return zlib.crc32(key.encode("utf-8")) % every == 0

    def on_read(self, result) -> None:
        version = result.version
        if version is None or not result.ok or result.kind != "read":
            return
        key = result.key
        if not self._sampled(key):
            return
        prev = self._seen.get(key)
        if prev is None:
            self._seen[key] = version
            return
        if prev.newer_than(version):
            self._emit(
                self.name,
                "point",
                result.t_end,
                key=key,
                expected=prev.write_id,
                got=version.write_id,
            )
        else:
            self._seen[key] = version

    def on_tick(self, now: float) -> None:  # pragma: no cover - no-op
        pass

    def finish(self, now: float) -> None:  # pragma: no cover - no-op
        pass


class AnomalyOracles:
    """The oracle engine: owns the five oracles and the anomaly sink.

    ``sink`` is called with each finished anomaly record (a plain dict);
    the :class:`~repro.obs.recorder.RunObserver` passes its chronological
    record list's ``append`` so anomalies interleave with samples/events
    at their exact simulated time.
    """

    def __init__(self, store, config: OracleConfig, sink: Callable[[Dict[str, Any]], None]):
        self.config = config
        self._sink = sink
        #: records emitted per oracle (suppressed overflow counted apart).
        self.counts: Dict[str, int] = {}
        self.suppressed = 0
        emit = self._emit
        self.stale_burst = _StaleBurstOracle(config, emit)
        self.in_doubt = _InDoubtDwellOracle(config, emit, store)
        self.rebalance = _RebalanceStallOracle(config, emit, store)
        self.quorum = _QuorumLossOracle(config, emit, store)
        self.monotonic = _MonotonicReadOracle(config, emit)
        self._all = (
            self.stale_burst,
            self.in_doubt,
            self.rebalance,
            self.quorum,
            self.monotonic,
        )
        self._finished = False

    def _emit(self, oracle: str, phase: str, t: float, **data: Any) -> None:
        count = self.counts.get(oracle, 0)
        if count >= self.config.max_anomalies:
            self.suppressed += 1
            return
        self.counts[oracle] = count + 1
        record: Dict[str, Any] = {
            "type": "anomaly",
            "t": t,
            "oracle": oracle,
            "phase": phase,
        }
        record.update(data)
        self._sink(record)

    # -- hook surface (called by the RunObserver) ----------------------------------

    def on_read(self, result) -> None:
        self.monotonic.on_read(result)

    def on_bus_event(self, event: ObsEvent) -> None:
        self.quorum.on_bus_event(event)

    def on_elastic_event(self, kind: str, t: float) -> None:
        if kind == "migration-start":
            self.rebalance.on_migration_start(t)

    def on_txn_prepared(
        self, node_id: int, txn_id: int, t: float, restart: bool = False
    ) -> None:
        self.in_doubt.on_prepared(node_id, txn_id, t, restart=restart)

    def on_txn_doubt_resolved(self, node_id: int, txn_id: int, t: float) -> None:
        self.in_doubt.on_resolved(node_id, txn_id, t)

    @property
    def blocked_now(self) -> int:
        """Participants blocked in doubt right now (dwell-oracle state).

        Counts only pairs held past the configured dwell budget, so the
        signal discriminates protocol blocking from the healthy prepared
        window every commit round necessarily has.
        """
        return self.in_doubt.overdue

    def on_tick(self, now: float, window_reads: int, window_stale: int) -> None:
        self.stale_burst.on_tick(now, window_reads, window_stale)
        self.in_doubt.on_tick(now)
        self.rebalance.on_tick(now)
        self.quorum.on_tick(now)

    def finish(self, now: float) -> None:
        """Close every still-open interval anomaly (``unresolved: true``)."""
        if self._finished:
            return
        self._finished = True
        for oracle in self._all:
            oracle.finish(now)

    def total(self) -> int:
        """Total anomaly records emitted across all oracles."""
        return sum(self.counts.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AnomalyOracles({self.total()} anomalies, {self.suppressed} suppressed)"
