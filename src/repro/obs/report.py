"""Timeline artifact loading, validation and rendering.

Consumed by the ``repro report`` CLI: loads a ``timeline.jsonl`` written
by :class:`~repro.obs.recorder.RunObserver`, checks it against the
timeline schema, and renders it as an annotated text report (samples
interleaved with event/explain/anomaly markers) or a CSV of the sample
series. Kept out of ``repro.obs.__init__`` so the hot path never pays
for report-only imports.

The loader accepts both schema generations: ``repro.obs/2`` (current;
adds ``anomaly`` records and header truncation counters) and the
``repro.obs/1`` artifacts older runs wrote -- those still validate and
render, they simply carry no anomaly stream.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from repro.common.errors import ConfigError
from repro.obs.recorder import TIMELINE_SCHEMA

__all__ = [
    "SUPPORTED_SCHEMAS",
    "find_timelines",
    "load_timeline",
    "render_text",
    "samples_csv",
    "validate_timeline",
]

#: every schema generation the loader understands, oldest first.
SUPPORTED_SCHEMAS = ("repro.obs/1", TIMELINE_SCHEMA)

_RECORD_TYPES = ("sample", "event", "explain", "anomaly")
_SAMPLE_REQUIRED = ("stale_rate", "level", "ops_per_s")
_ANOMALY_PHASES = ("start", "end", "point")


def find_timelines(path: str) -> List[str]:
    """``timeline.jsonl`` files under ``path`` (a file or a directory)."""
    if os.path.isfile(path):
        return [path]
    if not os.path.isdir(path):
        raise ConfigError(f"no such file or directory: {path}")
    found: List[str] = []
    for root, dirs, files in os.walk(path):
        dirs.sort()
        if "timeline.jsonl" in files:
            found.append(os.path.join(root, "timeline.jsonl"))
    return sorted(found)


def load_timeline(path: str) -> List[Dict[str, Any]]:
    """Parse one timeline.jsonl; loud ConfigError on malformed input."""
    records: List[Dict[str, Any]] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(f"{path}:{lineno}: invalid JSON ({exc})") from exc
            if not isinstance(record, dict):
                raise ConfigError(f"{path}:{lineno}: record is not an object")
            records.append(record)
    return records


def validate_timeline(records: List[Dict[str, Any]]) -> List[str]:
    """Schema check; returns a list of human-readable problems (empty = ok)."""
    problems: List[str] = []
    if not records:
        return ["timeline is empty"]
    head = records[0]
    schema = head.get("schema")
    if head.get("type") != "header":
        problems.append("first record must be the header")
    elif schema not in SUPPORTED_SCHEMAS:
        problems.append(
            f"unknown schema {schema!r} (supported: {', '.join(SUPPORTED_SCHEMAS)})"
        )
    last_t = float("-inf")
    for i, record in enumerate(records[1:], start=2):
        rtype = record.get("type")
        if rtype not in _RECORD_TYPES:
            problems.append(f"record {i}: unknown type {rtype!r}")
            continue
        if rtype == "anomaly" and schema == "repro.obs/1":
            problems.append(
                f"record {i}: anomaly records are not part of repro.obs/1"
            )
            continue
        t = record.get("t")
        if not isinstance(t, (int, float)):
            problems.append(f"record {i}: missing numeric 't'")
            continue
        if t < last_t:
            problems.append(f"record {i}: time goes backwards ({t} < {last_t})")
        last_t = t
        if rtype == "sample":
            for key in _SAMPLE_REQUIRED:
                if key not in record:
                    problems.append(f"record {i}: sample missing {key!r}")
        elif rtype == "event" and "kind" not in record:
            problems.append(f"record {i}: event missing 'kind'")
        elif rtype == "explain" and "read_level" not in record:
            problems.append(f"record {i}: explain missing 'read_level'")
        elif rtype == "anomaly":
            if "oracle" not in record:
                problems.append(f"record {i}: anomaly missing 'oracle'")
            if record.get("phase") not in _ANOMALY_PHASES:
                problems.append(
                    f"record {i}: anomaly phase must be one of "
                    f"{_ANOMALY_PHASES}, got {record.get('phase')!r}"
                )
    return problems


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _event_line(record: Dict[str, Any]) -> str:
    kind = record.get("kind", "?")
    detail = " ".join(
        f"{k}={_fmt(record[k])}"
        for k in sorted(record)
        if k not in ("type", "t", "kind")
    )
    return f"** {kind}{(' ' + detail) if detail else ''} **"


def _explain_line(record: Dict[str, Any]) -> str:
    estimates = ", ".join(f"{e:.4f}" for e in record.get("estimates", []))
    return (
        f"explain {record.get('policy', '?')}: chose r={record.get('read_level')}"
        f" (estimates [{estimates}] vs tolerance {_fmt(record.get('tolerance', 0))},"
        f" write_rate={_fmt(record.get('write_rate', 0))}/s,"
        f" read_rate={_fmt(record.get('read_rate', 0))}/s)"
    )


def _anomaly_line(record: Dict[str, Any]) -> str:
    oracle = record.get("oracle", "?")
    phase = record.get("phase", "?")
    detail = " ".join(
        f"{k}={_fmt(record[k])}"
        for k in sorted(record)
        if k not in ("type", "t", "oracle", "phase")
    )
    return f"!! anomaly {oracle} {phase}{(' ' + detail) if detail else ''} !!"


def _sample_line(record: Dict[str, Any]) -> str:
    parts = [
        f"level={record.get('level')}",
        f"stale_rate={_fmt(record.get('stale_rate', 0))}",
        f"ops/s={_fmt(record.get('ops_per_s', 0))}",
        f"live={record.get('live_nodes', '?')}",
    ]
    if record.get("hint_backlog"):
        parts.append(f"hints={record['hint_backlog']}")
    if record.get("rebalance_active"):
        parts.append("rebalancing")
    if record.get("txn_commits") or record.get("txn_aborts"):
        parts.append(
            f"txn={record.get('txn_commits', 0)}c/{record.get('txn_aborts', 0)}a"
        )
    return " ".join(parts)


def render_text(records: List[Dict[str, Any]], source: str = "") -> str:
    """Annotated timeline: one line per record, markers highlighted."""
    lines: List[str] = []
    head = records[0] if records and records[0].get("type") == "header" else {}
    title = f"run timeline — {head.get('schema', 'unversioned')}"
    if source:
        title += f" — {source}"
    lines.append(title)
    meta = {
        k[len("meta_"):]: v for k, v in sorted(head.items()) if k.startswith("meta_")
    }
    slo = meta.pop("slo", None)
    if meta:
        lines.append("meta: " + " ".join(f"{k}={v}" for k, v in meta.items()))
    if isinstance(slo, dict):
        lines.append(
            "slo: " + " ".join(f"{k}={_fmt(slo[k])}" for k in sorted(slo))
        )
    status = f"sample_interval={head.get('sample_interval', '?')} "
    status += f"trace={'on' if head.get('trace') else 'off'}"
    if "samples" in head:
        status += f" samples={head['samples']}"
        if head.get("max_samples") and head["samples"] >= head["max_samples"]:
            status += " (SAMPLER CAPPED)"
    if "trace_events" in head:
        status += f" trace_events={head['trace_events']}"
    if head.get("trace_dropped"):
        status += f" trace_dropped={head['trace_dropped']} (TRACE TRUNCATED)"
    lines.append(status)
    lines.append("")
    counts = {"sample": 0, "event": 0, "explain": 0, "anomaly": 0}
    for record in records:
        rtype = record.get("type")
        if rtype not in counts:
            continue
        counts[rtype] += 1
        t = record.get("t", 0.0)
        if rtype == "event":
            body = _event_line(record)
        elif rtype == "explain":
            body = _explain_line(record)
        elif rtype == "anomaly":
            body = _anomaly_line(record)
        else:
            body = _sample_line(record)
        lines.append(f"t={t:10.4f}  {body}")
    lines.append("")
    summary = (
        f"{counts['sample']} samples, {counts['event']} events, "
        f"{counts['explain']} explains"
    )
    summary += f", {counts['anomaly']} anomalies"
    if head.get("anomalies_suppressed"):
        summary += f" ({head['anomalies_suppressed']} suppressed by cap)"
    lines.append(summary)
    return "\n".join(lines)


def samples_csv(records: List[Dict[str, Any]]) -> str:
    """The sample series as CSV (t first, remaining columns sorted)."""
    samples = [r for r in records if r.get("type") == "sample"]
    columns: List[str] = ["t"]
    extra = set()
    for sample in samples:
        for key in sample:
            if key not in ("type", "t"):
                extra.add(key)
    columns += sorted(extra)
    lines = [",".join(columns)]
    for sample in samples:
        lines.append(
            ",".join(_csv_cell(sample.get(col, "")) for col in columns)
        )
    return "\n".join(lines) + "\n"


def _csv_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)
