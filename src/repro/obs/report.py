"""Timeline artifact loading, validation and rendering.

Consumed by the ``repro report`` CLI: loads a ``timeline.jsonl`` written
by :class:`~repro.obs.recorder.RunObserver`, checks it against the
``repro.obs/1`` schema, and renders it as an annotated text report
(samples interleaved with event/explain markers) or a CSV of the sample
series. Kept out of ``repro.obs.__init__`` so the hot path never pays
for report-only imports.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from repro.common.errors import ConfigError
from repro.obs.recorder import TIMELINE_SCHEMA

__all__ = [
    "find_timelines",
    "load_timeline",
    "render_text",
    "samples_csv",
    "validate_timeline",
]

_RECORD_TYPES = ("sample", "event", "explain")
_SAMPLE_REQUIRED = ("stale_rate", "level", "ops_per_s")


def find_timelines(path: str) -> List[str]:
    """``timeline.jsonl`` files under ``path`` (a file or a directory)."""
    if os.path.isfile(path):
        return [path]
    if not os.path.isdir(path):
        raise ConfigError(f"no such file or directory: {path}")
    found: List[str] = []
    for root, dirs, files in os.walk(path):
        dirs.sort()
        if "timeline.jsonl" in files:
            found.append(os.path.join(root, "timeline.jsonl"))
    return sorted(found)


def load_timeline(path: str) -> List[Dict[str, Any]]:
    """Parse one timeline.jsonl; loud ConfigError on malformed input."""
    records: List[Dict[str, Any]] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(f"{path}:{lineno}: invalid JSON ({exc})") from exc
            if not isinstance(record, dict):
                raise ConfigError(f"{path}:{lineno}: record is not an object")
            records.append(record)
    return records


def validate_timeline(records: List[Dict[str, Any]]) -> List[str]:
    """Schema check; returns a list of human-readable problems (empty = ok)."""
    problems: List[str] = []
    if not records:
        return ["timeline is empty"]
    head = records[0]
    if head.get("type") != "header":
        problems.append("first record must be the header")
    elif head.get("schema") != TIMELINE_SCHEMA:
        problems.append(
            f"unknown schema {head.get('schema')!r} (expected {TIMELINE_SCHEMA!r})"
        )
    last_t = float("-inf")
    for i, record in enumerate(records[1:], start=2):
        rtype = record.get("type")
        if rtype not in _RECORD_TYPES:
            problems.append(f"record {i}: unknown type {rtype!r}")
            continue
        t = record.get("t")
        if not isinstance(t, (int, float)):
            problems.append(f"record {i}: missing numeric 't'")
            continue
        if t < last_t:
            problems.append(f"record {i}: time goes backwards ({t} < {last_t})")
        last_t = t
        if rtype == "sample":
            for key in _SAMPLE_REQUIRED:
                if key not in record:
                    problems.append(f"record {i}: sample missing {key!r}")
        elif rtype == "event" and "kind" not in record:
            problems.append(f"record {i}: event missing 'kind'")
        elif rtype == "explain" and "read_level" not in record:
            problems.append(f"record {i}: explain missing 'read_level'")
    return problems


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _event_line(record: Dict[str, Any]) -> str:
    kind = record.get("kind", "?")
    detail = " ".join(
        f"{k}={_fmt(record[k])}"
        for k in sorted(record)
        if k not in ("type", "t", "kind")
    )
    return f"** {kind}{(' ' + detail) if detail else ''} **"


def _explain_line(record: Dict[str, Any]) -> str:
    estimates = ", ".join(f"{e:.4f}" for e in record.get("estimates", []))
    return (
        f"explain {record.get('policy', '?')}: chose r={record.get('read_level')}"
        f" (estimates [{estimates}] vs tolerance {_fmt(record.get('tolerance', 0))},"
        f" write_rate={_fmt(record.get('write_rate', 0))}/s,"
        f" read_rate={_fmt(record.get('read_rate', 0))}/s)"
    )


def _sample_line(record: Dict[str, Any]) -> str:
    parts = [
        f"level={record.get('level')}",
        f"stale_rate={_fmt(record.get('stale_rate', 0))}",
        f"ops/s={_fmt(record.get('ops_per_s', 0))}",
        f"live={record.get('live_nodes', '?')}",
    ]
    if record.get("hint_backlog"):
        parts.append(f"hints={record['hint_backlog']}")
    if record.get("rebalance_active"):
        parts.append("rebalancing")
    if record.get("txn_commits") or record.get("txn_aborts"):
        parts.append(
            f"txn={record.get('txn_commits', 0)}c/{record.get('txn_aborts', 0)}a"
        )
    return " ".join(parts)


def render_text(records: List[Dict[str, Any]], source: str = "") -> str:
    """Annotated timeline: one line per record, markers highlighted."""
    lines: List[str] = []
    head = records[0] if records and records[0].get("type") == "header" else {}
    title = f"run timeline — {head.get('schema', 'unversioned')}"
    if source:
        title += f" — {source}"
    lines.append(title)
    meta = {
        k[len("meta_"):]: v for k, v in sorted(head.items()) if k.startswith("meta_")
    }
    if meta:
        lines.append("meta: " + " ".join(f"{k}={v}" for k, v in meta.items()))
    lines.append(
        f"sample_interval={head.get('sample_interval', '?')} "
        f"trace={'on' if head.get('trace') else 'off'}"
    )
    lines.append("")
    counts = {"sample": 0, "event": 0, "explain": 0}
    for record in records:
        rtype = record.get("type")
        if rtype not in counts:
            continue
        counts[rtype] += 1
        t = record.get("t", 0.0)
        if rtype == "event":
            body = _event_line(record)
        elif rtype == "explain":
            body = _explain_line(record)
        else:
            body = _sample_line(record)
        lines.append(f"t={t:10.4f}  {body}")
    lines.append("")
    lines.append(
        f"{counts['sample']} samples, {counts['event']} events, "
        f"{counts['explain']} explains"
    )
    return "\n".join(lines)


def samples_csv(records: List[Dict[str, Any]]) -> str:
    """The sample series as CSV (t first, remaining columns sorted)."""
    samples = [r for r in records if r.get("type") == "sample"]
    columns: List[str] = ["t"]
    extra = set()
    for sample in samples:
        for key in sample:
            if key not in ("type", "t"):
                extra.add(key)
    columns += sorted(extra)
    lines = [",".join(columns)]
    for sample in samples:
        lines.append(
            ",".join(_csv_cell(sample.get(col, "")) for col in columns)
        )
    return "\n".join(lines) + "\n"


def _csv_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)
