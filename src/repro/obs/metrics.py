"""The metrics registry: labelled counters, gauges and histograms.

One :class:`MetricsRegistry` per owner (the cluster monitor, a run
observer). Instruments are created once via the get-or-create accessors
and then updated through plain attribute methods -- no string lookup on
the hot path. ``snapshot()`` renders everything as a JSON-safe dict with
deterministic (sorted) ordering, which is what keeps the timeline and
sweep artifacts byte-identical across worker layouts.

Counters accept negative increments: a few protocol signals are
*net* counts (e.g. transactions currently in doubt, which a late verdict
decrements), and modelling them as two counters everywhere they are read
would push bookkeeping onto every consumer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.stats import Histogram

__all__ = ["Counter", "Gauge", "HistogramMetric", "MetricsRegistry"]

#: Canonical instrument key: name plus sorted label items.
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Optional[Dict[str, str]]) -> _Key:
    if not name:
        raise ConfigError("metric name must be non-empty")
    if not labels:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


class Counter:
    """Monotonic-by-convention event count (negative deltas allowed)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}{dict(self.labels)}={self.value})"


class Gauge:
    """Last-assigned value (backlogs, node counts, streamed-bytes snapshots)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name}{dict(self.labels)}={self.value})"


class HistogramMetric:
    """Distribution instrument backed by the shared log-bucket histogram."""

    __slots__ = ("name", "labels", "hist", "total")

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        lo: float = 1e-5,
        hi: float = 100.0,
    ):
        self.name = name
        self.labels = labels
        self.hist = Histogram(lo=lo, hi=hi)
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.total += value
        self.hist.add(max(value, self.hist.lo))

    @property
    def count(self) -> int:
        return self.hist.n

    @property
    def mean(self) -> float:
        return self.total / self.hist.n if self.hist.n else 0.0

    def percentile(self, p: float) -> float:
        return self.hist.percentile(p)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HistogramMetric({self.name}{dict(self.labels)}, "
            f"n={self.count}, mean={self.mean:.6g})"
        )


class MetricsRegistry:
    """Get-or-create home for a family of instruments.

    The same ``(name, labels)`` pair always returns the same instrument,
    so independent subsystems can share counts without double-registering
    -- the property the monitor/observer wiring relies on to never count
    one hook twice.
    """

    def __init__(self) -> None:
        self._instruments: Dict[_Key, object] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> HistogramMetric:
        return self._get(HistogramMetric, name, labels)

    def _get(self, cls, name: str, labels: Dict[str, str]):
        key = _key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1])
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise ConfigError(
                f"metric {name!r}{dict(key[1])} already registered as "
                f"{type(instrument).__name__}"
            )
        return instrument

    def instruments(self) -> List[object]:
        """All instruments in canonical (sorted-key) order."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe dump: ``name{label=value,...}`` -> scalar or summary.

        Ordering is canonical, so two registries fed the same updates
        serialize to identical bytes regardless of insertion order.
        """
        out: Dict[str, object] = {}
        for key in sorted(self._instruments):
            name, labels = key
            rendered = name
            if labels:
                rendered += "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
            instrument = self._instruments[key]
            if isinstance(instrument, Counter):
                out[rendered] = int(instrument.value)
            elif isinstance(instrument, Gauge):
                out[rendered] = float(instrument.value)
            else:
                hist: HistogramMetric = instrument  # type: ignore[assignment]
                out[rendered] = {
                    "count": int(hist.count),
                    "mean": float(hist.mean),
                    "p50": float(hist.percentile(50)),
                    "p99": float(hist.percentile(99)),
                }
        return out

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsRegistry({len(self._instruments)} instruments)"
