"""Structured run events and the bus that carries them.

The bus is the one channel for discrete run happenings -- crashes,
recoveries, partitions, heals, scale events, level switches. Emitters
(the failure injector, the run observer) publish :class:`ObsEvent`
records; subscribers receive them synchronously in emission order.

``emit`` is called from simulation callbacks, so the no-subscriber case
must cost one attribute load and one truthiness check -- nothing is
allocated and nothing is formatted unless somebody is listening.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

__all__ = ["EventBus", "ObsEvent"]


class ObsEvent:
    """One structured run event at simulated time ``t``.

    ``kind`` is a short machine-readable tag ("node-crash", "partition",
    "scale-out", "level-switch", ...); ``data`` holds the kind-specific
    payload with JSON-safe values only.
    """

    __slots__ = ("t", "kind", "data")

    def __init__(self, t: float, kind: str, data: Optional[Dict[str, object]] = None):
        self.t = t
        self.kind = kind
        self.data = data if data is not None else {}

    def to_record(self) -> Dict[str, object]:
        """Flat JSON-safe dict (``type``/``t``/``kind`` + payload keys)."""
        rec: Dict[str, object] = {"type": "event", "t": self.t, "kind": self.kind}
        for k, v in self.data.items():
            rec[k] = v
        return rec

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ObsEvent(t={self.t:.6g}, kind={self.kind!r}, data={self.data})"


class EventBus:
    """Synchronous fan-out of :class:`ObsEvent` to subscribers.

    Subscribers are plain callables ``fn(event)`` invoked in subscription
    order. With no subscribers, ``emit`` is a single ``if not`` on an
    empty list -- the zero-overhead contract for disabled observability.
    """

    __slots__ = ("_subscribers",)

    def __init__(self) -> None:
        self._subscribers: List[Callable[[ObsEvent], None]] = []

    def subscribe(self, fn: Callable[[ObsEvent], None]) -> None:
        self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[ObsEvent], None]) -> None:
        if fn in self._subscribers:
            self._subscribers.remove(fn)

    @property
    def active(self) -> bool:
        """True when at least one subscriber is attached."""
        return bool(self._subscribers)

    def emit(self, event: ObsEvent) -> None:
        subs = self._subscribers
        if not subs:
            return
        for fn in subs:
            fn(event)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventBus({len(self._subscribers)} subscribers)"
