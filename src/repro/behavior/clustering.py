"""K-means clustering, from scratch (the pipeline's "machine learning step").

Implemented directly on NumPy (no sklearn in the dependency set):

- deterministic **k-means++** seeding from a caller-supplied generator;
- vectorized Lloyd iterations (distance matrix via the
  ``|x|^2 - 2xy + |y|^2`` expansion, no Python-level loops over points);
- empty-cluster repair (respawn on the farthest point);
- :func:`silhouette_score` and :func:`choose_k` for model selection -- the
  paper does not fix the number of application states, so the pipeline
  selects k by silhouette over a candidate range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import spawn_rng

__all__ = ["KMeansResult", "KMeans", "silhouette_score", "choose_k"]


def _pairwise_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, (len(a), len(b)), fully vectorized."""
    a2 = np.einsum("ij,ij->i", a, a)[:, None]
    b2 = np.einsum("ij,ij->i", b, b)[None, :]
    d = a2 - 2.0 * (a @ b.T) + b2
    np.maximum(d, 0.0, out=d)
    return d


@dataclass
class KMeansResult:
    """Fitted clustering: centroids, assignments and inertia."""

    centroids: np.ndarray  # (k, n_features)
    labels: np.ndarray  # (n_points,)
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self.centroids.shape[0]

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Nearest-centroid labels for new points."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        return np.argmin(_pairwise_sq_dists(points, self.centroids), axis=1)


class KMeans:
    """Lloyd's algorithm with k-means++ seeding.

    Parameters
    ----------
    k:
        Cluster count.
    max_iter / tol:
        Convergence controls (centroid-shift tolerance).
    n_init:
        Independent restarts; the lowest-inertia fit wins.
    rng:
        Seed or generator (deterministic by default).
    """

    def __init__(
        self,
        k: int,
        max_iter: int = 100,
        tol: float = 1e-7,
        n_init: int = 4,
        rng: "np.random.Generator | int | None" = None,
    ):
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        if max_iter < 1:
            raise ConfigError(f"max_iter must be >= 1, got {max_iter}")
        if n_init < 1:
            raise ConfigError(f"n_init must be >= 1, got {n_init}")
        self.k = int(k)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.n_init = int(n_init)
        self.rng = spawn_rng(rng)

    # -- seeding -----------------------------------------------------------------

    def _seed_plus_plus(self, points: np.ndarray) -> np.ndarray:
        n = points.shape[0]
        centroids = np.empty((self.k, points.shape[1]), dtype=float)
        first = int(self.rng.integers(0, n))
        centroids[0] = points[first]
        closest = _pairwise_sq_dists(points, centroids[0:1]).ravel()
        for i in range(1, self.k):
            total = closest.sum()
            if total <= 0:
                # all points identical to chosen centroids: any choice works
                idx = int(self.rng.integers(0, n))
            else:
                probs = closest / total
                idx = int(self.rng.choice(n, p=probs))
            centroids[i] = points[idx]
            d_new = _pairwise_sq_dists(points, centroids[i : i + 1]).ravel()
            np.minimum(closest, d_new, out=closest)
        return centroids

    # -- fitting --------------------------------------------------------------------

    def _fit_once(self, points: np.ndarray) -> KMeansResult:
        centroids = self._seed_plus_plus(points)
        labels = np.zeros(points.shape[0], dtype=np.int64)
        for iteration in range(1, self.max_iter + 1):
            dists = _pairwise_sq_dists(points, centroids)
            labels = np.argmin(dists, axis=1)
            new_centroids = np.empty_like(centroids)
            for c in range(self.k):
                members = points[labels == c]
                if members.shape[0] == 0:
                    # empty cluster: respawn on the globally farthest point
                    far = int(np.argmax(np.min(dists, axis=1)))
                    new_centroids[c] = points[far]
                else:
                    new_centroids[c] = members.mean(axis=0)
            shift = float(np.max(np.abs(new_centroids - centroids)))
            centroids = new_centroids
            if shift <= self.tol:
                break
        dists = _pairwise_sq_dists(points, centroids)
        labels = np.argmin(dists, axis=1)
        inertia = float(dists[np.arange(points.shape[0]), labels].sum())
        return KMeansResult(
            centroids=centroids, labels=labels, inertia=inertia, iterations=iteration
        )

    def fit(self, points: np.ndarray) -> KMeansResult:
        """Fit on (n_points, n_features); best of ``n_init`` restarts."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ConfigError(f"points must be 2-D, got shape {points.shape}")
        if points.shape[0] < self.k:
            raise ConfigError(
                f"cannot make {self.k} clusters from {points.shape[0]} points"
            )
        best: Optional[KMeansResult] = None
        for _ in range(self.n_init):
            result = self._fit_once(points)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient (vectorized, O(n^2) memory).

    Returns 0.0 for degenerate cases (single cluster, singleton clusters
    only) rather than raising -- model selection treats those as "no
    structure".
    """
    points = np.asarray(points, dtype=float)
    labels = np.asarray(labels)
    uniq = np.unique(labels)
    if uniq.size < 2 or points.shape[0] != labels.shape[0]:
        return 0.0
    d = np.sqrt(_pairwise_sq_dists(points, points))
    n = points.shape[0]
    sil = np.zeros(n)
    for i in range(n):
        own = labels[i]
        mask_own = labels == own
        n_own = mask_own.sum()
        if n_own <= 1:
            sil[i] = 0.0
            continue
        a = d[i, mask_own].sum() / (n_own - 1)
        b = np.inf
        for c in uniq:
            if c == own:
                continue
            mask = labels == c
            b = min(b, d[i, mask].mean())
        denom = max(a, b)
        sil[i] = (b - a) / denom if denom > 0 else 0.0
    return float(sil.mean())


def choose_k(
    points: np.ndarray,
    k_range: Sequence[int] = (2, 3, 4, 5, 6),
    rng: "np.random.Generator | int | None" = None,
) -> KMeansResult:
    """Fit every k in ``k_range`` and keep the best silhouette.

    The paper leaves the number of application states open; silhouette
    selection recovers it from the data (verified on planted-phase traces
    in the tests and the E5 benchmark).
    """
    if not k_range:
        raise ConfigError("k_range must not be empty")
    base = spawn_rng(rng)
    best_result: Optional[KMeansResult] = None
    best_score = -np.inf
    for k in k_range:
        if k >= np.asarray(points).shape[0]:
            continue
        result = KMeans(k, rng=base).fit(points)
        score = silhouette_score(points, result.labels)
        if score > best_score:
            best_score = score
            best_result = result
    if best_result is None:
        raise ConfigError("no feasible k in k_range for this data size")
    return best_result
