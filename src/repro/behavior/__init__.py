"""Application behavior modeling (contribution C, §III-C).

The paper's offline pipeline, mechanized end to end:

1. **feature extraction** (:mod:`features`): "several predefined metrics are
   collected based on application data access past traces ... per time
   period in order to build the application timeline";
2. **timeline** (:mod:`timeline`): the per-window feature matrix;
3. **clustering** (:mod:`clustering`): "processed by machine learning
   techniques in order to identify the different states" -- k-means (from
   scratch, deterministic k-means++ seeding) with silhouette-based model
   selection;
4. **states** (:mod:`states`): state statistics and the empirical state
   transition (evolvement) matrix;
5. **rules** (:mod:`rules`): "each state is then automatically associated
   with a consistency policy ... based on a set of both generic predefined
   rules and customized rules";
6. **classifier** (:mod:`classifier`): "at runtime, the application state is
   identified by the application classifier and accordingly, it chooses the
   consistency policy associated with that state" -- a nearest-centroid
   classifier over the live monitor's window features;
7. **manager** (:mod:`manager`): the runtime policy object tying 1-6 into a
   :class:`~repro.policy.ConsistencyPolicy`.
"""

from repro.behavior.features import WindowFeatures, extract_features
from repro.behavior.timeline import Timeline, build_timeline
from repro.behavior.clustering import KMeans, KMeansResult, silhouette_score, choose_k
from repro.behavior.states import StateModel, StateSummary
from repro.behavior.rules import Rule, RuleBook, default_rulebook, PolicyAssignment
from repro.behavior.classifier import StateClassifier
from repro.behavior.manager import BehaviorModel, BehaviorPolicy

__all__ = [
    "WindowFeatures",
    "extract_features",
    "Timeline",
    "build_timeline",
    "KMeans",
    "KMeansResult",
    "silhouette_score",
    "choose_k",
    "StateModel",
    "StateSummary",
    "Rule",
    "RuleBook",
    "default_rulebook",
    "PolicyAssignment",
    "StateClassifier",
    "BehaviorModel",
    "BehaviorPolicy",
]
