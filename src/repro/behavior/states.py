"""Application states and their evolvement.

After clustering, each cluster is an application *state*. This module
summarizes states in raw (un-standardized) feature terms -- so rules can be
written against meaningful quantities like "write rate above 50/s" -- and
estimates the empirical state-transition matrix ("states evolvements of the
application during its lifetime", §III-C), which the evaluation uses to
check that recovered dynamics match the planted phase schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.common.errors import ConfigError
from repro.behavior.clustering import KMeansResult
from repro.behavior.features import FEATURE_NAMES
from repro.behavior.timeline import Timeline

__all__ = ["StateSummary", "StateModel"]


@dataclass(frozen=True)
class StateSummary:
    """One state's profile in raw feature units."""

    state_id: int
    n_windows: int
    time_fraction: float
    features: Dict[str, float]  # mean raw feature values

    def __getitem__(self, feature: str) -> float:
        return self.features[feature]


class StateModel:
    """States + transitions extracted from a clustered timeline."""

    def __init__(self, timeline: Timeline, clustering: KMeansResult):
        if clustering.labels.shape[0] != timeline.n_windows:
            raise ConfigError("clustering does not match the timeline")
        self.timeline = timeline
        self.clustering = clustering
        self.k = clustering.k
        self._summaries = self._summarize()
        self.transition_matrix = self._transitions()

    # -- construction ------------------------------------------------------------

    def _summarize(self) -> List[StateSummary]:
        raw = self.timeline.raw_matrix()
        labels = self.clustering.labels
        n = len(labels)
        out: List[StateSummary] = []
        for state in range(self.k):
            mask = labels == state
            count = int(mask.sum())
            means = (
                raw[mask].mean(axis=0) if count else np.zeros(raw.shape[1])
            )
            out.append(
                StateSummary(
                    state_id=state,
                    n_windows=count,
                    time_fraction=count / n,
                    features=dict(zip(FEATURE_NAMES, map(float, means))),
                )
            )
        return out

    def _transitions(self) -> np.ndarray:
        """Row-stochastic empirical transition matrix between states."""
        labels = self.clustering.labels
        mat = np.zeros((self.k, self.k), dtype=float)
        for a, b in zip(labels[:-1], labels[1:]):
            mat[a, b] += 1.0
        sums = mat.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            mat = np.where(sums > 0, mat / sums, 0.0)
        return mat

    # -- queries --------------------------------------------------------------------

    @property
    def summaries(self) -> List[StateSummary]:
        """Per-state profiles, indexed by state id."""
        return self._summaries

    def summary(self, state_id: int) -> StateSummary:
        """Profile of one state."""
        return self._summaries[state_id]

    def dwell_expectation(self, state_id: int) -> float:
        """Expected consecutive windows spent in a state (geometric estimate)."""
        p_stay = float(self.transition_matrix[state_id, state_id])
        if p_stay >= 1.0:
            return float("inf")
        return 1.0 / (1.0 - p_stay)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"s{s.state_id}:{s.time_fraction:.0%}" for s in self._summaries
        )
        return f"StateModel(k={self.k}, {parts})"
