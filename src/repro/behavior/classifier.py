"""The runtime application-state classifier.

§III-C: "At runtime, the application state is identified by the application
classifier and accordingly, it chooses the consistency policy associated
with that state."

The classifier is nearest-centroid over the *offline* timeline's
standardization and centroids: live monitor windows are featurized exactly
like trace windows, scaled with the frozen training statistics, and mapped
to the nearest state centroid.
"""

from __future__ import annotations


import numpy as np

from repro.behavior.clustering import KMeansResult
from repro.behavior.features import WindowFeatures
from repro.behavior.timeline import Timeline
from repro.monitor.collector import ClusterMonitor

__all__ = ["StateClassifier", "features_from_monitor"]


def features_from_monitor(monitor: ClusterMonitor, now: float) -> WindowFeatures:
    """Build the live feature vector from a cluster monitor.

    Mirrors :func:`repro.behavior.features.extract_features` semantics over
    the monitor's sliding window instead of a trace slice.
    """
    read_rate = monitor.read_rate.rate(now)
    write_rate = monitor.write_rate.rate(now)
    op_rate = read_rate + write_rate
    read_fraction = read_rate / op_rate if op_rate > 0 else 0.0

    write_shares = monitor.keys.write_shares()
    read_shares = monitor.keys.read_shares()
    if write_shares:
        s2 = sum(v * v for v in write_shares.values())
        k_eff = 1.0 / s2 if s2 > 0 else float(len(write_shares))
        skew = 1.0 - k_eff / max(len(write_shares), 1)
        hot_rate = max(write_shares.values()) * write_rate
    else:
        skew = 0.0
        hot_rate = 0.0
    rk, wk = set(read_shares), set(write_shares)
    union = rk | wk
    overlap = len(rk & wk) / len(union) if union else 0.0

    return WindowFeatures(
        t_start=now - monitor.window,
        t_end=now,
        op_rate=op_rate,
        read_fraction=read_fraction,
        write_rate=write_rate,
        key_skew=skew,
        hot_write_rate=hot_rate,
        rw_overlap=overlap,
    )


class StateClassifier:
    """Nearest-centroid state identification with the frozen training scaling."""

    def __init__(self, timeline: Timeline, clustering: KMeansResult):
        self.timeline = timeline
        self.clustering = clustering

    def classify_features(self, features: WindowFeatures) -> int:
        """State id for one raw feature vector."""
        scaled = self.timeline.standardize(features.vector())
        return int(self.clustering.predict(scaled[None, :])[0])

    def classify_monitor(self, monitor: ClusterMonitor, now: float) -> int:
        """State id for the monitor's current window."""
        return self.classify_features(features_from_monitor(monitor, now))

    def classify_matrix(self, raw: np.ndarray) -> np.ndarray:
        """Vectorized classification of raw feature rows (offline eval)."""
        scaled = self.timeline.standardize(np.atleast_2d(raw))
        return self.clustering.predict(scaled)
