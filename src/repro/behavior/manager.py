"""The customized-consistency runtime: offline model + live policy switcher.

- :class:`BehaviorModel` -- the *offline* artifact: trace -> timeline ->
  clustering -> states -> per-state policy recipes (one call:
  :meth:`BehaviorModel.fit`);
- :class:`BehaviorPolicy` -- the *runtime* object: a
  :class:`~repro.policy.ConsistencyPolicy` that periodically classifies the
  application's current state from the monitor and delegates every
  operation to the state's assigned policy (instantiating Harmony engines
  and static policies on first use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.cluster.consistency import ConsistencyLevel, LevelSpec
from repro.behavior.classifier import StateClassifier
from repro.behavior.clustering import KMeansResult, choose_k, KMeans
from repro.behavior.rules import PolicyAssignment, RuleBook, default_rulebook
from repro.behavior.states import StateModel
from repro.behavior.timeline import Timeline, build_timeline
from repro.harmony.engine import HarmonyEngine
from repro.monitor.collector import ClusterMonitor
from repro.policy import StaticPolicy
from repro.workload.traces import TraceRecord

__all__ = ["BehaviorModel", "BehaviorPolicy"]


@dataclass
class BehaviorModel:
    """The fitted offline model: everything the runtime needs."""

    timeline: Timeline
    clustering: KMeansResult
    states: StateModel
    assignments: Dict[int, PolicyAssignment]

    @classmethod
    def fit(
        cls,
        trace: Sequence[TraceRecord],
        window: float = 10.0,
        rulebook: Optional[RuleBook] = None,
        k: Optional[int] = None,
        k_range: Sequence[int] = (2, 3, 4, 5, 6),
        rng: int = 0,
    ) -> "BehaviorModel":
        """Run the full offline pipeline on a trace.

        ``k=None`` selects the state count by silhouette over ``k_range``.
        """
        timeline = build_timeline(trace, window)
        if k is not None:
            clustering = KMeans(k, rng=rng).fit(timeline.matrix)
        else:
            clustering = choose_k(timeline.matrix, k_range=k_range, rng=rng)
        states = StateModel(timeline, clustering)
        book = rulebook or default_rulebook()
        assignments = book.assign_all(states)
        return cls(
            timeline=timeline,
            clustering=clustering,
            states=states,
            assignments=assignments,
        )

    @property
    def k(self) -> int:
        """Number of identified application states."""
        return self.clustering.k

    def classifier(self) -> StateClassifier:
        """Runtime classifier bound to this model."""
        return StateClassifier(self.timeline, self.clustering)

    def describe(self) -> str:
        """Readable multi-line summary (states, profiles, recipes)."""
        lines = [f"BehaviorModel: {self.k} states"]
        for s in self.states.summaries:
            recipe = self.assignments[s.state_id]
            lines.append(
                f"  state {s.state_id}: {s.time_fraction:5.1%} of time, "
                f"rate={s['op_rate']:.0f}/s, reads={s['read_fraction']:.0%}, "
                f"skew={s['key_skew']:.2f} -> {recipe.label()} [{recipe.rule_name}]"
            )
        return "\n".join(lines)


class BehaviorPolicy:
    """Per-state policy switching at runtime.

    Parameters
    ----------
    model:
        A fitted :class:`BehaviorModel`.
    monitor:
        Live cluster monitor (attached to the target store by the caller).
    rf:
        Replication factor (needed to instantiate Harmony recipes).
    update_interval:
        Seconds between state re-classifications.
    """

    def __init__(
        self,
        model: BehaviorModel,
        monitor: ClusterMonitor,
        rf: int,
        update_interval: float = 5.0,
        harmony_update_interval: float = 1.0,
    ):
        if rf < 1:
            raise ConfigError(f"rf must be >= 1, got {rf}")
        if update_interval <= 0:
            raise ConfigError(f"update_interval must be positive, got {update_interval}")
        self.model = model
        self.monitor = monitor
        self.rf = int(rf)
        self.update_interval = float(update_interval)
        self.harmony_update_interval = float(harmony_update_interval)
        self._classifier = model.classifier()
        self._policies: Dict[int, object] = {}
        self._state = -1
        self._active: Optional[object] = None
        self._last_update = -float("inf")
        #: (time, state) history of classifications, for post-run analysis.
        self.state_history: List[Tuple[float, int]] = []

    # -- recipe instantiation ------------------------------------------------------

    def _instantiate(self, assignment: PolicyAssignment):
        kind = assignment.kind
        if kind == "eventual":
            return StaticPolicy(ConsistencyLevel.ONE, ConsistencyLevel.ONE, name="eventual")
        if kind == "quorum":
            return StaticPolicy(
                ConsistencyLevel.QUORUM, ConsistencyLevel.QUORUM, name="quorum"
            )
        if kind == "strong":
            return StaticPolicy(ConsistencyLevel.ALL, ConsistencyLevel.ALL, name="strong")
        if kind == "geographic":
            # Geographical policy: coordinate within the local datacenter only
            # (low-latency quorum in the client's own region).
            return StaticPolicy(
                ConsistencyLevel.LOCAL_QUORUM,
                ConsistencyLevel.LOCAL_QUORUM,
                name="geographic",
            )
        if kind == "harmony":
            tolerance = assignment.params.get("tolerance", 0.10)
            return HarmonyEngine(
                self.monitor,
                tolerance=tolerance,
                rf=self.rf,
                update_interval=self.harmony_update_interval,
            )
        raise ConfigError(f"unknown recipe kind {kind!r}")  # pragma: no cover

    def _policy_for(self, state: int):
        got = self._policies.get(state)
        if got is None:
            got = self._instantiate(self.model.assignments[state])
            self._policies[state] = got
        return got

    def _maybe_reclassify(self, now: float) -> None:
        if now - self._last_update < self.update_interval:
            return
        self._last_update = now
        state = self._classifier.classify_monitor(self.monitor, now)
        if state != self._state:
            self._state = state
            self._active = self._policy_for(state)
        self.state_history.append((now, state))

    # -- ConsistencyPolicy interface ---------------------------------------------------

    @property
    def name(self) -> str:
        return f"behavior(k={self.model.k})"

    @property
    def current_state(self) -> int:
        """Most recently classified state (-1 before the first decision)."""
        return self._state

    def read_level(self, now: float) -> LevelSpec:
        self._maybe_reclassify(now)
        if self._active is None:
            return 1
        return self._active.read_level(now)

    def write_level(self, now: float) -> LevelSpec:
        self._maybe_reclassify(now)
        if self._active is None:
            return 1
        return self._active.write_level(now)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BehaviorPolicy(k={self.model.k}, state={self._state}, "
            f"switches={len(self.state_history)})"
        )
