"""Rule-based state-to-policy assignment.

§III-C: "Each state is then automatically associated with a consistency
policy (policies include geographical policies, Harmony, and static
eventual and strong policies) based on a set of both generic predefined
rules and customized rules (integrated by application' administrator)
specific for the application."

A :class:`Rule` is a predicate over a :class:`~repro.behavior.states.StateSummary`
plus a policy *recipe* (a factory name and parameters -- recipes rather
than live policy objects, because adaptive policies like Harmony must be
instantiated against the runtime store/monitor, not at rule-authoring
time). A :class:`RuleBook` evaluates rules in priority order; the first
match wins; a default recipe backs the book.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigError
from repro.behavior.states import StateModel, StateSummary

__all__ = ["PolicyAssignment", "Rule", "RuleBook", "default_rulebook"]


@dataclass(frozen=True)
class PolicyAssignment:
    """A policy recipe bound to a state.

    ``kind`` is one of the recipe names the runtime manager knows how to
    instantiate: ``"eventual"``, ``"quorum"``, ``"strong"``,
    ``"harmony"`` (params: ``tolerance``), ``"geographic"`` (params:
    ``local_level``, the local-DC-quorum style policy).
    """

    kind: str
    params: Dict[str, float] = field(default_factory=dict)
    rule_name: str = ""

    _KNOWN = ("eventual", "quorum", "strong", "harmony", "geographic")

    def __post_init__(self) -> None:
        if self.kind not in self._KNOWN:
            raise ConfigError(
                f"unknown policy recipe {self.kind!r}; expected one of {self._KNOWN}"
            )

    def label(self) -> str:
        """Readable recipe label for reports."""
        if self.params:
            inner = ",".join(f"{k}={v:g}" for k, v in sorted(self.params.items()))
            return f"{self.kind}({inner})"
        return self.kind


@dataclass(frozen=True)
class Rule:
    """One prioritized predicate -> recipe rule."""

    name: str
    predicate: Callable[[StateSummary], bool]
    assignment: PolicyAssignment
    priority: int = 0  # lower evaluates first

    def matches(self, summary: StateSummary) -> bool:
        """Whether this rule fires for the state."""
        return bool(self.predicate(summary))


class RuleBook:
    """Prioritized rules plus a default assignment.

    Generic rules ship with :func:`default_rulebook`; administrators add
    application-specific ones with :meth:`add_custom` (custom rules get
    priority below every generic rule by default, i.e. they are checked
    *first* -- the administrator knows the application better than the
    generic heuristics do).
    """

    def __init__(self, default: Optional[PolicyAssignment] = None):
        self.rules: List[Rule] = []
        self.default = default or PolicyAssignment("harmony", {"tolerance": 0.10})

    def add(self, rule: Rule) -> None:
        """Add a rule (stable-sorted by priority)."""
        self.rules.append(rule)
        self.rules.sort(key=lambda r: r.priority)

    def add_custom(
        self,
        name: str,
        predicate: Callable[[StateSummary], bool],
        assignment: PolicyAssignment,
    ) -> None:
        """Add an administrator rule that outranks all generic rules."""
        min_priority = min((r.priority for r in self.rules), default=0)
        self.add(Rule(name, predicate, assignment, priority=min_priority - 1))

    def assign(self, summary: StateSummary) -> PolicyAssignment:
        """First matching rule's recipe (or the default)."""
        for rule in self.rules:
            if rule.matches(summary):
                return PolicyAssignment(
                    rule.assignment.kind, rule.assignment.params, rule.name
                )
        return PolicyAssignment(
            self.default.kind, self.default.params, "default"
        )

    def assign_all(self, model: StateModel) -> Dict[int, PolicyAssignment]:
        """Recipe per state id."""
        return {s.state_id: self.assign(s) for s in model.summaries}


def default_rulebook() -> RuleBook:
    """The generic predefined rules of the reproduction.

    Heuristics over raw state features, ordered from most to least
    specific:

    1. write-heavy reconciliation phases (read fraction < 0.4) keep QUORUM:
       their reads are usually read-modify-write and must be fresh;
    2. contended hot phases (high write rate on overlapping keys with
       skew) run Harmony with a tight 5% tolerance;
    3. read-mostly phases whose reads rarely touch written keys tolerate
       eventual consistency outright;
    4. everything else runs Harmony at a moderate 15% tolerance (the
       default).
    """
    book = RuleBook(default=PolicyAssignment("harmony", {"tolerance": 0.15}))
    book.add(
        Rule(
            name="write-heavy-needs-quorum",
            predicate=lambda s: s["read_fraction"] < 0.4,
            assignment=PolicyAssignment("quorum"),
            priority=10,
        )
    )
    book.add(
        Rule(
            name="hot-contended-tight-harmony",
            predicate=lambda s: s["write_rate"] > 50.0
            and s["rw_overlap"] > 0.3
            and s["key_skew"] > 0.3,
            assignment=PolicyAssignment("harmony", {"tolerance": 0.05}),
            priority=20,
        )
    )
    book.add(
        Rule(
            name="read-mostly-cold-eventual",
            predicate=lambda s: s["read_fraction"] > 0.9 and s["rw_overlap"] < 0.1,
            assignment=PolicyAssignment("eventual"),
            priority=30,
        )
    )
    return book
