"""Per-window feature extraction from access traces.

The paper's "predefined metrics ... collected per time period". Each window
of the trace yields one :class:`WindowFeatures` vector capturing the
signals that determine consistency requirements:

- operation rate (load intensity);
- read fraction (read-mostly phases tolerate weaker read consistency than
  write-heavy reconciliation phases);
- write rate (the direct staleness driver of the Figure-1 model);
- key-skew (inverse-Simpson effective key count, normalized): concentrated
  write traffic makes stale reads far more likely;
- hot-key write rate (the peak per-key write rate, the worst-case input to
  the staleness model);
- read-write key overlap (Jaccard): phases whose reads touch what they
  write need freshness, phases reading cold data do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.common.errors import ConfigError
from repro.workload.traces import TraceRecord

__all__ = ["WindowFeatures", "extract_features", "FEATURE_NAMES"]


@dataclass(frozen=True)
class WindowFeatures:
    """Feature vector of one time window of the application timeline."""

    t_start: float
    t_end: float
    op_rate: float
    read_fraction: float
    write_rate: float
    key_skew: float
    hot_write_rate: float
    rw_overlap: float

    def vector(self) -> np.ndarray:
        """Numeric features (time bounds excluded), in FEATURE_NAMES order."""
        return np.array(
            [
                self.op_rate,
                self.read_fraction,
                self.write_rate,
                self.key_skew,
                self.hot_write_rate,
                self.rw_overlap,
            ],
            dtype=float,
        )


#: Order of the numeric features in :meth:`WindowFeatures.vector`.
FEATURE_NAMES = [
    "op_rate",
    "read_fraction",
    "write_rate",
    "key_skew",
    "hot_write_rate",
    "rw_overlap",
]


def _window_features(
    t0: float, t1: float, records: Sequence[TraceRecord]
) -> WindowFeatures:
    span = max(t1 - t0, 1e-9)
    n = len(records)
    reads = [r for r in records if r.kind == "read"]
    writes = [r for r in records if r.kind == "write"]

    write_counts: Dict[str, int] = {}
    for r in writes:
        write_counts[r.key] = write_counts.get(r.key, 0) + 1
    read_keys = {r.key for r in reads}
    write_keys = set(write_counts)

    n_writes = len(writes)
    if n_writes:
        shares2 = sum((c / n_writes) ** 2 for c in write_counts.values())
        k_eff = 1.0 / shares2 if shares2 > 0 else float(len(write_counts))
        # normalized skew in [0, 1): 0 = uniform over observed keys, ->1 = one key
        skew = 1.0 - k_eff / max(len(write_counts), 1)
        hot_rate = max(write_counts.values()) / span
    else:
        skew = 0.0
        hot_rate = 0.0

    union = read_keys | write_keys
    overlap = len(read_keys & write_keys) / len(union) if union else 0.0

    return WindowFeatures(
        t_start=t0,
        t_end=t1,
        op_rate=n / span,
        read_fraction=len(reads) / n if n else 0.0,
        write_rate=n_writes / span,
        key_skew=skew,
        hot_write_rate=hot_rate,
        rw_overlap=overlap,
    )


def extract_features(
    trace: Sequence[TraceRecord], window: float
) -> List[WindowFeatures]:
    """Slice a time-ordered trace into fixed windows and featurize each.

    Empty windows are kept (all-zero features): an idle phase *is* a state,
    and dropping it would stitch unrelated regimes together.
    """
    if window <= 0:
        raise ConfigError(f"window must be positive, got {window}")
    if not trace:
        return []
    t_begin = trace[0].t
    t_final = trace[-1].t
    out: List[WindowFeatures] = []
    i = 0
    n = len(trace)
    t0 = t_begin
    while t0 <= t_final:
        t1 = t0 + window
        j = i
        while j < n and trace[j].t < t1:
            j += 1
        out.append(_window_features(t0, t1, trace[i:j]))
        i = j
        t0 = t1
    return out
