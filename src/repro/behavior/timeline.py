"""The application timeline: the per-window feature matrix.

A thin, explicit container between feature extraction and clustering:
rows are windows (time-ordered), columns are the features of
:data:`repro.behavior.features.FEATURE_NAMES`. Standardization (z-scoring
with frozen statistics) lives here because both the offline clustering and
the *runtime classifier* must apply exactly the same transform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.common.errors import ConfigError
from repro.behavior.features import FEATURE_NAMES, WindowFeatures, extract_features
from repro.workload.traces import TraceRecord

__all__ = ["Timeline", "build_timeline"]


@dataclass
class Timeline:
    """Feature matrix plus the scaling statistics used to standardize it."""

    windows: List[WindowFeatures]
    matrix: np.ndarray  # (n_windows, n_features), standardized
    mean: np.ndarray
    std: np.ndarray

    @property
    def n_windows(self) -> int:
        """Number of time windows."""
        return len(self.windows)

    def raw_matrix(self) -> np.ndarray:
        """Un-standardized feature matrix."""
        return self.matrix * self.std + self.mean

    def standardize(self, raw: np.ndarray) -> np.ndarray:
        """Apply the timeline's frozen scaling to new raw feature vectors.

        This is what the runtime classifier calls: live windows must be
        scaled by the *training* statistics, never their own.
        """
        raw = np.asarray(raw, dtype=float)
        return (raw - self.mean) / self.std

    def window_times(self) -> np.ndarray:
        """Midpoint time of each window (plot axis / transition analysis)."""
        return np.array([(w.t_start + w.t_end) / 2.0 for w in self.windows])


def build_timeline(
    trace: Sequence[TraceRecord], window: float
) -> Timeline:
    """Extract features from a trace and standardize them.

    Constant features (zero variance) are scaled by 1.0 instead of 0 --
    they simply contribute nothing to distances, rather than NaNs.
    """
    feats = extract_features(trace, window)
    if not feats:
        raise ConfigError("trace produced no windows")
    raw = np.stack([f.vector() for f in feats])
    mean = raw.mean(axis=0)
    std = raw.std(axis=0)
    std = np.where(std < 1e-12, 1.0, std)
    return Timeline(
        windows=feats,
        matrix=(raw - mean) / std,
        mean=mean,
        std=std,
    )
