"""Command-line entry points: regenerate any paper experiment from a shell.

Usage::

    python -m repro.cli list
    python -m repro.cli e1-g5k [--ops 24000] [--seed 11]
    python -m repro.cli e2-cost
    python -m repro.cli e4-bismar --ops 40000
    python -m repro.cli fig1
    python -m repro.cli e5-behavior
    python -m repro.cli scenarios
    python -m repro.cli txn --mix bank-transfer --policy all
    python -m repro.cli sweep --grid tolerance=0.2,0.4 --jobs 4 --out results/
    python -m repro.cli sweep --scenario node-failure-storm --obs --out results/
    python -m repro.cli report results/obs [--csv] [--validate] [--slo]
    python -m repro.cli diff results_a/obs results_b/obs [--json]

Each experiment command builds the matching platform preset, runs the
experiment harness, and prints the same table the paper's evaluation
reports (plus the measured claim lines). This is the no-pytest path to the
results; the benchmark suite wraps the same functions with assertions.

``sweep`` runs the declarative scenario registry instead: it expands the
``--grid`` axes over every registered (or ``--scenario``-selected)
scenario, fans the runs out over ``--jobs`` worker processes with
deterministic per-run seeds, and writes aggregated JSON/CSV result tables
to ``--out``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.common.errors import ConfigError


def _e1_g5k(args) -> None:
    from repro.experiments.harmony_eval import run_harmony_eval
    from repro.experiments.platforms import grid5000_harmony_platform

    res = run_harmony_eval(
        grid5000_harmony_platform(), tolerances=(0.2, 0.4), ops=args.ops, seed=args.seed
    )
    print(res.table())
    for claim in res.claims():
        print(" ", claim)


def _e1_ec2(args) -> None:
    from repro.experiments.harmony_eval import run_harmony_eval
    from repro.experiments.platforms import ec2_harmony_platform
    from repro.workload.workloads import heavy_read_update

    res = run_harmony_eval(
        ec2_harmony_platform(),
        tolerances=(0.4, 0.6),
        spec=heavy_read_update(record_count=200),
        ops=args.ops,
        seed=args.seed,
    )
    print(res.table())
    for claim in res.claims():
        print(" ", claim)


def _e2_cost(args) -> None:
    from repro.experiments.cost_eval import run_cost_eval
    from repro.experiments.platforms import ec2_cost_platform

    res = run_cost_eval(ec2_cost_platform(), ops=args.ops, seed=args.seed)
    print(res.table())
    for claim in res.claims():
        print(" ", claim)


def _e3_efficiency(args) -> None:
    from repro.experiments.bismar_eval import efficiency_table, run_efficiency_samples
    from repro.experiments.platforms import grid5000_bismar_platform

    samples = run_efficiency_samples(
        grid5000_bismar_platform(), ops=args.ops, seed=args.seed
    )
    print(efficiency_table(samples))


def _e4_bismar(args) -> None:
    from repro.experiments.bismar_eval import run_bismar_eval
    from repro.experiments.platforms import grid5000_bismar_platform

    res = run_bismar_eval(grid5000_bismar_platform(), ops=args.ops, seed=args.seed)
    print(res.table())
    for claim in res.claims():
        print(" ", claim)


def _fig1(args) -> None:
    from repro.experiments.model_eval import fig1_table, run_fig1_validation
    from repro.experiments.platforms import grid5000_harmony_platform

    rows = run_fig1_validation(grid5000_harmony_platform(), seed=args.seed)
    print(fig1_table(rows))


def _e5_behavior(args) -> None:
    from repro.experiments.model_eval import run_behavior_eval
    from repro.experiments.platforms import ec2_harmony_platform

    res = run_behavior_eval(ec2_harmony_platform(), seed=args.seed)
    print(res.table())


def _scenarios(args) -> None:
    from repro.experiments import scenarios

    if getattr(args, "json", False):
        import json

        doc = []
        for name in scenarios.names():
            spec = scenarios.get(name)
            doc.append(
                {
                    "name": name,
                    "description": spec.description,
                    "params": {k: spec.defaults[k] for k in sorted(spec.defaults)},
                    "tags": sorted(spec.tags),
                    "kind": (
                        "elastic"
                        if spec.elastic is not None
                        else "txn"
                        if spec.txn_workload is not None
                        else "plain"
                    ),
                    "client_mode": spec.client_mode,
                    "clients": spec.clients,
                    "commit_protocol": spec.defaults.get("commit_protocol"),
                    "slo": spec.slo.to_dict() if spec.slo is not None else None,
                }
            )
        print(json.dumps(doc, indent=2, sort_keys=True))
        return
    for name in scenarios.names():
        spec = scenarios.get(name)
        defaults = " ".join(f"{k}={v}" for k, v in sorted(spec.defaults.items()))
        mode = "" if spec.client_mode == "per_client" else f" <{spec.client_mode}:{spec.clients}>"
        print(f"{name:22s} {spec.description}  [{defaults}]{mode}")


def _txn(args) -> None:
    from dataclasses import replace

    from repro.common.tables import Table
    from repro.experiments.platforms import ec2_harmony_platform
    from repro.experiments.runner import named_policy_factory
    from repro.facade import RunSpec, run
    from repro.workload.workloads import TXN_WORKLOADS

    try:
        spec = TXN_WORKLOADS[args.mix].scaled(2000)
    except KeyError:
        raise ConfigError(
            f"unknown mix {args.mix!r}; choose from {sorted(TXN_WORKLOADS)}"
        ) from None
    if spec.distribution == "zipfian":
        # YCSB's theta=0.99 keeps the hottest keys permanently prepare-locked
        # at this concurrency; temper the skew so the table shows policy
        # differences rather than wall-to-wall lock conflicts.
        spec = replace(spec, distribution_kwargs={"theta": 0.6})
    names = ["eventual", "quorum", "strong", "harmony"]
    selected = names if args.policy == "all" else [args.policy]
    factories = {name: named_policy_factory(name) for name in selected}

    txns = args.ops if args.ops is not None else 2000
    protocol = getattr(args, "protocol", None)
    label = (protocol or "2pc").upper().replace("COOP", "coop")
    table = Table(
        f"atomic {spec.name} transactions, {label} over two EC2 AZs ({txns} txns)",
        [
            "policy",
            "commits",
            "aborts",
            "abort_rate",
            "lost_updates",
            "stale_rate",
            "commit_p50_ms",
            "commit_p99_ms",
        ],
    )
    for name, factory in factories.items():
        outcome = run(
            RunSpec(
                platform=ec2_harmony_platform(),
                policy=factory,
                txn_workload=spec,
                ops=txns,
                clients=min(16, txns),
                seed=args.seed,
                commit_protocol=protocol,
            )
        )
        t = outcome.report.txn
        lat = outcome.tstore.commit_latency
        table.add_row(
            [
                outcome.report.policy,
                t["commits"],
                sum(t["aborts"].values()),
                f"{t['abort_rate']:.3f}",
                t["lost_updates"],
                f"{outcome.report.stale_rate:.4f}",
                f"{lat.percentile(50) * 1e3:.2f}",
                f"{t['commit_latency_p99_ms']:.2f}",
            ]
        )
    print(table.render())


def _elastic(args) -> None:
    from repro.common.tables import Table
    from repro.experiments import scenarios

    name = args.scenario
    spec = scenarios.get(name)
    if spec.elastic is None:
        elastic_names = [
            n for n in scenarios.names() if scenarios.get(n).elastic is not None
        ]
        raise ConfigError(
            f"{name!r} is not an elastic scenario; choose from {elastic_names}"
        )
    run = spec.run(seed=args.seed, ops=args.ops)
    m = run.metrics()
    e = m["elastic"]

    table = Table(
        f"{name}: {spec.description}",
        ["metric", "value"],
    )
    table.add_row(["policy", m["policy"]])
    table.add_row(["ops completed", m["ops_completed"]])
    table.add_row(["throughput (ops/s)", f"{m['throughput_ops_s']:.0f}"])
    table.add_row(["read p99 (ms)", f"{m['read_latency_p99_ms']:.2f}"])
    table.add_row(["stale rate", f"{m['stale_rate']:.4f}"])
    table.add_row(["cost per kop ($)", f"{m['cost_per_kop_usd']:.6f}"])
    table.add_row(["nodes initial -> final", f"{e['nodes_initial']} -> {e['nodes_final']}"])
    table.add_row(["scale-outs / scale-ins", f"{e['scale_outs']} / {e['scale_ins']}"])
    table.add_row(["token ranges moved", e["ranges_moved"]])
    table.add_row(["keys streamed", e["keys_streamed"]])
    table.add_row(["bytes streamed", e["bytes_streamed"]])
    table.add_row(["re-streams (retries)", e["restreams"]])
    table.add_row(["pending at end", e["pending_final"]])
    print(table.render())

    events = e.get("events", [])
    # Autoscaler decisions annotate the same membership events with the
    # observed utilization that triggered them (matched by time + node).
    utils = {
        (d["t"], d["node"]): d.get("util")
        for d in (e.get("autoscaler") or {}).get("decisions", [])
    }
    if events:
        print("\nmembership timeline:")
        for ev in events:
            util = utils.get((ev["t"], ev["node"]))
            detail = ev["reason"] + (f", util={util:.2f}" if util is not None else "")
            print(
                f"  t={ev['t']:8.3f}s  {ev['kind']:<10s} node {ev['node']}  ({detail})"
            )


def _bench(args) -> None:
    from repro.perf.compare import compare_reports, load_report
    from repro.perf.runner import BenchRunner
    from repro.perf.specs import REGISTRY, names

    if args.list:
        for name in names():
            spec = REGISTRY[name]
            tags = ",".join(spec.tags)
            print(f"{name:22s} {spec.description}  [{tags}]")
        return

    runner = BenchRunner(repeats=args.repeat, quick=args.quick, seed=args.seed)
    report = runner.run(
        args.filter,
        progress=lambda spec: print(f"  running {spec.name} ...", flush=True),
    )
    print(report.table().render())
    paths = report.write(args.out)
    print(f"wrote {paths['json']} and {paths['csv']}")
    if args.baseline:
        print(f"wrote baseline {report.write_baseline(args.baseline)}")
    if args.compare:
        comparison = compare_reports(
            load_report(args.compare),
            report,
            tolerance=args.tolerance,
            require_all=not args.filter,
        )
        print(comparison.table().render())
        if not comparison.ok:
            failed = comparison.regressions + comparison.missing
            print(
                f"perf gate FAILED: {', '.join(failed)} "
                f"(tolerance ±{args.tolerance:.0%})",
                file=sys.stderr,
            )
            raise SystemExit(1)
        print("perf gate ok")


def _report(args) -> None:
    import os

    from repro.obs.report import (
        find_timelines,
        load_timeline,
        render_text,
        samples_csv,
        validate_timeline,
    )

    paths = find_timelines(args.path)
    if not paths:
        raise ConfigError(f"no timeline.jsonl found under {args.path}")
    if args.slo:
        _report_slo(args, paths)
        return
    failed = False
    for i, path in enumerate(paths):
        records = load_timeline(path)
        problems = validate_timeline(records)
        if args.validate:
            status = "ok" if not problems else "INVALID"
            print(f"{path}: {status} ({len(records)} records)")
            for problem in problems:
                print(f"  - {problem}")
            failed = failed or bool(problems)
            continue
        source = os.path.relpath(path, args.path) if path != args.path else path
        if args.csv:
            print(samples_csv(records), end="")
        else:
            if i:
                print()
            print(render_text(records, source=source))
    if failed:
        raise SystemExit(1)


def _report_slo(args, paths) -> None:
    """Grade each timeline against its SLO; exit 1 on any breach.

    The spec comes from the artifact itself (``meta_slo`` in the header,
    stamped by the scenario harness) or, failing that, from the scenario
    registry via ``meta_scenario``. Exit codes: 0 = every graded timeline
    passed, 1 = at least one breach, 2 = no timeline carries or maps to
    an SLO (or other bad input).
    """
    import os

    from repro.obs.report import load_timeline
    from repro.obs.slo import SLOSpec, evaluate_slo

    graded = 0
    breached = False
    for i, path in enumerate(paths):
        records = load_timeline(path)
        head = records[0] if records and records[0].get("type") == "header" else {}
        spec = None
        if isinstance(head.get("meta_slo"), dict):
            spec = SLOSpec.from_dict(head["meta_slo"])
        else:
            scenario = head.get("meta_scenario")
            if scenario:
                from repro.experiments import scenarios

                try:
                    spec = scenarios.get(str(scenario)).slo
                except ConfigError:
                    spec = None
        source = os.path.relpath(path, args.path) if path != args.path else path
        if i:
            print()
        if spec is None:
            print(f"{source}: no SLO (none in header, none in registry)")
            continue
        report = evaluate_slo(records, spec)
        print(report.render(source))
        graded += 1
        breached = breached or not report.ok
    if not graded:
        raise ConfigError(
            f"no timeline under {args.path} carries or maps to an SLO spec"
        )
    if breached:
        raise SystemExit(1)


def _diff(args) -> None:
    from repro.obs.diff import diff_paths, render_diff

    result = diff_paths(args.run_a, args.run_b)
    if args.json:
        import json

        print(json.dumps(result, indent=2, sort_keys=True))
        return
    for i, pair in enumerate(result["pairs"]):
        if i:
            print()
        print(render_diff(pair["diff"], label=pair["label"]))
    for side, runs in (("A", result["only_a"]), ("B", result["only_b"])):
        if runs:
            print(f"\nonly in {side}: {', '.join(runs)}")


def _xval(args) -> None:
    """Cross-validate the sim backend against the asyncio localhost runtime."""
    from dataclasses import replace

    from repro.common.tables import Table
    from repro.runtime.xval import cross_validate, default_xval_spec
    from repro.txn.api import TxnConfig

    spec = default_xval_spec(
        txns=args.txns,
        clients=args.clients,
        seed=args.seed,
        time_scale=args.time_scale,
        wall_timeout=args.timeout,
    )
    if args.protocol:
        spec = replace(
            spec, txn_config=replace(TxnConfig(), commit_protocol=args.protocol)
        )
    try:
        levels = tuple(float(x) for x in args.levels.split(","))
    except ValueError:
        raise ConfigError(
            f"--levels must be comma-separated floats, got {args.levels!r}"
        ) from None
    report = cross_validate(spec, hot_fractions=levels)

    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        table = Table(
            f"sim vs asyncio cross-validation "
            f"({spec.txn_config.commit_protocol}, {args.txns} txns/level)",
            [
                "hot_frac",
                "abort sim",
                "abort aio",
                "stale sim",
                "stale aio",
                "commit sim ms",
                "commit aio ms",
                "verdict",
            ],
        )
        for c in report.checks:
            table.add_row(
                [
                    f"{c.hot_fraction:.2f}",
                    f"{c.sim_abort_rate:.3f}",
                    f"{c.aio_abort_rate:.3f}",
                    f"{c.sim_stale_rate:.3f}",
                    f"{c.aio_stale_rate:.3f}",
                    f"{c.sim_commit_ms:.1f}",
                    f"{c.aio_commit_ms:.1f}",
                    "ok" if c.ok else "; ".join(c.failures),
                ]
            )
        print(table.render())
        for failure in report.trend_failures:
            print(f"  trend: {failure}")
        print(
            f"tolerances: abort ±{report.abort_tolerance}, "
            f"stale ±{report.stale_tolerance}, "
            f"trend deadband {report.trend_deadband}"
        )
        print("cross-validation " + ("PASSED" if report.passed else "FAILED"))
    if not report.passed:
        raise SystemExit(1)


def _sweep(args) -> None:
    import os

    from repro.experiments.sweep import SweepRunner, parse_grid, plan_sweep

    if args.obs and not args.out:
        raise ConfigError("--obs needs --out (the artifact directory root)")
    grid = parse_grid(args.grid or [])
    plan = plan_sweep(
        scenario_names=args.scenario or None,
        grid=grid,
        root_seed=args.seed,
        ops=args.ops,
        client_mode=args.client_mode,
        obs_dir=os.path.join(args.out, "obs") if args.obs else None,
        backend=args.backend,
    )
    print(f"sweep: {len(plan)} runs over {args.jobs} worker(s)")
    result = SweepRunner(jobs=args.jobs).run(plan)
    print(result.table().render())
    if args.out:
        paths = result.write(args.out)
        print(f"wrote {paths['json']} and {paths['csv']}")


COMMANDS: Dict[str, Callable] = {
    "e1-g5k": _e1_g5k,
    "e1-ec2": _e1_ec2,
    "e2-cost": _e2_cost,
    "e3-efficiency": _e3_efficiency,
    "e4-bismar": _e4_bismar,
    "e5-behavior": _e5_behavior,
    "fig1": _fig1,
    "scenarios": _scenarios,
    "txn": _txn,
    "elastic": _elastic,
    "sweep": _sweep,
    "xval": _xval,
    "bench": _bench,
    "report": _report,
    "diff": _diff,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Self-Adaptive Cost-Efficient "
        "Consistency Management in the Cloud' (IPDPS 2013 PhD Forum).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    helps = {
        "scenarios": "list the registered sweep scenarios",
        "txn": "run an atomic multi-key transaction mix under 2PC",
        "elastic": "run an elastic scenario and print its membership timeline",
        "sweep": "run registered scenarios over a parameter grid in parallel",
        "xval": "cross-validate sim predictions against the asyncio "
        "localhost runtime (exit 1 on tolerance breach)",
        "bench": "run the performance benchmark suite (perf trajectory + gate)",
        "report": "render a run's observability timeline (text, CSV, "
        "validate, SLO verdicts)",
        "diff": "diff two runs' timelines: metric deltas and anomaly changes",
    }
    for name in COMMANDS:
        p = sub.add_parser(name, help=helps.get(name, f"run experiment {name}"))
        p.add_argument("--ops", type=int, default=None, help="operation count")
        p.add_argument("--seed", type=int, default=11, help="root seed")
        if name == "txn":
            p.add_argument(
                "--mix",
                default="bank-transfer",
                metavar="NAME",
                help="transaction mix: bank-transfer, read-modify-write, "
                "order-checkout",
            )
            p.add_argument(
                "--policy",
                default="all",
                metavar="NAME",
                help="read-level policy: eventual, quorum, strong, harmony, "
                "or all (compare)",
            )
            p.add_argument(
                "--protocol",
                default=None,
                metavar="NAME",
                help="commit protocol: 2pc, 2pc-coop, or 3pc "
                "(default: the TxnConfig default, 2pc)",
            )
        if name == "scenarios":
            p.add_argument(
                "--json",
                action="store_true",
                help="machine-readable listing (name, params, description, "
                "tags, kind)",
            )
        if name == "elastic":
            p.add_argument(
                "--scenario",
                default="elastic-flash-crowd",
                metavar="NAME",
                help="elastic scenario to run (default: elastic-flash-crowd)",
            )
        if name == "bench":
            p.add_argument(
                "--quick",
                action="store_true",
                help="seconds-scale variant of every benchmark (the CI gate)",
            )
            p.add_argument(
                "--filter",
                action="append",
                default=None,
                metavar="TERM",
                help="select benchmarks whose name/tags contain TERM (repeatable)",
            )
            p.add_argument(
                "--repeat", type=int, default=3,
                help="wall-clock samples per benchmark (best-of-N, default 3)",
            )
            p.add_argument(
                "--out", default="benchmarks", metavar="DIR",
                help="perf-trajectory directory for BENCH_<n>.json/.csv "
                "(default: benchmarks)",
            )
            p.add_argument(
                "--baseline", default=None, metavar="PATH",
                help="also write this run as the comparison baseline at PATH",
            )
            p.add_argument(
                "--compare", default=None, metavar="PATH",
                help="gate against the baseline at PATH (non-zero exit on "
                "regression)",
            )
            p.add_argument(
                "--tolerance", type=float, default=0.25,
                help="allowed relative throughput loss before the gate trips "
                "(default 0.25)",
            )
            p.add_argument(
                "--list",
                action="store_true",
                help="list registered benchmarks and exit",
            )
        if name == "report":
            p.add_argument(
                "path",
                metavar="PATH",
                help="a timeline.jsonl file, or a directory to search "
                "(e.g. a sweep's --out)",
            )
            p.add_argument(
                "--csv",
                action="store_true",
                help="emit the sample series as CSV instead of the "
                "annotated text timeline",
            )
            p.add_argument(
                "--validate",
                action="store_true",
                help="schema-check every timeline; non-zero exit on problems",
            )
            p.add_argument(
                "--slo",
                action="store_true",
                help="grade each timeline against its SLO spec (header "
                "meta_slo, else the scenario registry); exit 0 = pass, "
                "1 = breach, 2 = no SLO resolvable",
            )
        if name == "diff":
            p.add_argument(
                "run_a",
                metavar="RUN_A",
                help="baseline: a timeline.jsonl or a directory of runs",
            )
            p.add_argument(
                "run_b",
                metavar="RUN_B",
                help="candidate: a timeline.jsonl or a directory of runs",
            )
            p.add_argument(
                "--json",
                action="store_true",
                help="emit the structured diff as JSON instead of tables",
            )
        if name == "xval":
            p.add_argument(
                "--txns", type=int, default=40,
                help="transactions per contention level per backend (default 40)",
            )
            p.add_argument(
                "--clients", type=int, default=6,
                help="concurrent closed-loop clients (default 6)",
            )
            p.add_argument(
                "--levels", default="0.0,0.5,0.95", metavar="F1,F2,...",
                help="hot_fraction contention levels to sweep "
                "(default 0.0,0.5,0.95)",
            )
            p.add_argument(
                "--protocol", default=None, metavar="NAME",
                help="commit protocol: 2pc, 2pc-coop, or 3pc (default 2pc)",
            )
            p.add_argument(
                "--time-scale", type=float, default=0.25, dest="time_scale",
                help="wall seconds per protocol second on the asyncio side "
                "(default 0.25)",
            )
            p.add_argument(
                "--timeout", type=float, default=120.0,
                help="hard wall-clock cap per asyncio run in seconds "
                "(default 120)",
            )
            p.add_argument(
                "--json",
                action="store_true",
                help="emit the structured report as JSON",
            )
        if name == "sweep":
            p.add_argument(
                "--obs",
                action="store_true",
                help="record per-run observability artifacts "
                "(timeline.jsonl + trace.json under OUT/obs; needs --out)",
            )
            p.add_argument(
                "--scenario",
                action="append",
                default=None,
                metavar="NAME",
                help="scenario to run (repeatable; default: all registered)",
            )
            p.add_argument(
                "--grid",
                action="append",
                default=None,
                metavar="KEY=V1,V2",
                help="sweep axis (repeatable), e.g. --grid tolerance=0.2,0.4",
            )
            p.add_argument(
                "--jobs", type=int, default=1, help="worker process count"
            )
            p.add_argument(
                "--client-mode",
                choices=("per_client", "cohort"),
                default=None,
                dest="client_mode",
                help="force every run's client model (default: each "
                "scenario's declared mode; txn scenarios always per-client)",
            )
            p.add_argument(
                "--backend",
                choices=("sim", "asyncio"),
                default=None,
                help="force every run's execution engine (default: sim; "
                "asyncio runs txn scenarios on the localhost runtime)",
            )
            p.add_argument(
                "--out", default=None, metavar="DIR",
                help="directory for results.json / results.csv",
            )
    return parser


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in COMMANDS:
            print(name)
        return 0
    try:
        COMMANDS[args.command](args)
    except ConfigError as exc:
        # User-input problems (bad --grid axis, unknown scenario, --jobs 0)
        # deserve the message, not the traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # `repro report ... | head` closing the pipe is not an error.
        sys.stderr.close()
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
