"""The asyncio localhost :class:`Transport`: real timers, a real wire.

``AsyncioTransport`` runs the *same* protocol classes the simulator runs
-- the TM, participant and coordinator state machines are imported once
and never forked -- but executes them on an asyncio event loop:

- **clock** -- ``loop.time()``, rebased to 0 at :meth:`start` and divided
  by ``time_scale``, so protocol-visible seconds match the scenario's
  configured timeouts while the wall-clock run can be uniformly sped up;
- **messages** -- every registered protocol handler crosses a JSON wire
  codec (:mod:`repro.runtime.codec`): the frame is encoded at the sender,
  scheduled after a sampled link delay, and decoded into fresh objects at
  the receiver. Unregistered callables (client completion callbacks,
  coordinator closures) deliver as local closures -- they are the
  client-side half of the run, not protocol traffic;
- **link model** -- delays are sampled from the same
  :class:`~repro.net.topology.Topology` latency models the simulator
  uses, and delivery per (src, dst) link is FIFO (a message never
  overtakes an earlier one on the same link -- the TCP-like guarantee the
  conformance suite asserts for both backends);
- **timers** -- ``loop.call_later`` handles, cancellable exactly like sim
  events;
- **partitions** -- dropped at send time by datacenter pair, mirroring
  :meth:`repro.net.transport.Network.send`.

What asyncio does *not* guarantee (and the sim does): determinism.
Callback interleavings depend on the OS scheduler, so two runs with one
seed differ in timing. Cross-backend comparison therefore happens at the
*trend* level -- see :mod:`repro.runtime.xval`.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Optional, Tuple

from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import spawn_rng
from repro.net.topology import Topology
from repro.net.transport import TrafficMatrix
from repro.runtime import codec
from repro.runtime.interface import Transport

__all__ = ["AsyncioTransport"]


class AsyncioTransport(Transport):
    """Localhost asyncio transport over a topology's latency models.

    Parameters
    ----------
    topology:
        Datacenters, node placement and per-link-class latency models --
        the identical object a sim deployment would use.
    rng:
        Seed or generator for link-delay sampling (protocol timing on this
        backend is wall-clock, so the seed shapes delays but cannot make
        the run deterministic).
    time_scale:
        Wall seconds per protocol second. ``0.1`` runs the deployment 10x
        faster than real time -- message delays *and* timer delays shrink
        uniformly, so relative protocol behaviour (timeout-to-RTT ratios,
        abort windows) is preserved while wall time stays bounded.
    """

    def __init__(
        self,
        topology: Topology,
        rng: Any = None,
        time_scale: float = 1.0,
    ):
        if time_scale <= 0:
            raise ConfigError(f"time_scale must be positive, got {time_scale}")
        self.topology = topology
        self.rng = spawn_rng(rng)
        self.time_scale = float(time_scale)
        self.traffic = TrafficMatrix()
        self.dropped = 0
        self.delivered = 0
        self._handlers: Dict[str, Callable[..., Any]] = {}
        self._names: Dict[Callable[..., Any], str] = {}
        self._partitioned: set = set()
        #: per-(src, dst) protocol time of the latest scheduled arrival:
        #: the FIFO floor that stops a later frame overtaking an earlier
        #: one on the same link.
        self._link_clock: Dict[Tuple[int, int], float] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = 0.0
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        """Bind to the running loop and rebase the protocol clock to 0."""
        self._loop = loop or asyncio.get_event_loop()
        self._t0 = self._loop.time()
        self._closed = False

    def close(self) -> None:
        """Stop delivering; in-flight ``call_later`` callbacks become no-ops."""
        self._closed = True

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise SimulationError("AsyncioTransport.start() was never called")
        return self._loop

    # -- clock -------------------------------------------------------------------

    @property
    def now(self) -> float:
        if self._loop is None:
            return 0.0
        return (self._loop.time() - self._t0) / self.time_scale

    # -- messaging ---------------------------------------------------------------

    def register(self, name: str, deliver: Callable[..., Any]) -> None:
        if name in self._handlers:
            raise ConfigError(f"handler {name!r} registered twice")
        self._handlers[name] = deliver
        self._names[deliver] = name

    def send(
        self,
        src: int,
        dst: int,
        nbytes: int,
        deliver: Callable[..., Any],
        *args: Any,
    ) -> Optional[float]:
        loop = self._require_loop()
        cls = self.topology.link_class(src, dst)
        src_dc = self.topology.dc_of(src)
        dst_dc = self.topology.dc_of(dst)
        if self._is_cut(src_dc, dst_dc):
            self.dropped += 1
            return None
        self.traffic.record(cls, int(nbytes))
        delay = float(self.topology.latency_models[cls].sample(self.rng))

        name = self._names.get(deliver)
        if name is not None:
            # Registered protocol handler: genuinely cross the wire codec.
            frame = codec.encode(name, args)
            dispatch: Callable[[], None] = lambda: self._dispatch(frame)
        else:
            # Client-side closure (operation callbacks): local delivery.
            dispatch = lambda: self._local(deliver, args)

        # FIFO per link: a frame arrives no earlier than its predecessor.
        link = (src, dst)
        arrival = max(self.now + delay, self._link_clock.get(link, 0.0))
        self._link_clock[link] = arrival
        loop.call_later(
            max(0.0, (arrival - self.now)) * self.time_scale, dispatch
        )
        return delay

    def _dispatch(self, frame: bytes) -> None:
        if self._closed:
            return
        name, args = codec.decode(frame)
        self._handlers[name](*args)

    def _local(self, deliver: Callable[..., Any], args: tuple) -> None:
        if self._closed:
            return
        deliver(*args)

    def sample_delay(self, src: int, dst: int) -> float:
        return float(self.topology.latency_model(src, dst).sample(self.rng))

    # -- timers ------------------------------------------------------------------

    def set_timer(self, delay: float, fn: Callable[..., Any], *args: Any) -> Any:
        if delay < 0:
            raise SimulationError(f"cannot set a timer in the past ({delay})")
        loop = self._require_loop()
        return loop.call_later(
            delay * self.time_scale, self._fire, fn, args
        )

    def set_timer_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Any:
        return self.set_timer(max(0.0, when - self.now), fn, *args)

    def _fire(self, fn: Callable[..., Any], args: tuple) -> None:
        if self._closed:
            return
        fn(*args)

    # -- fault injection -----------------------------------------------------------

    def _is_cut(self, dc_a: int, dc_b: int) -> bool:
        if not self._partitioned:
            return False
        pair = (dc_a, dc_b) if dc_a <= dc_b else (dc_b, dc_a)
        return pair in self._partitioned

    def partition_dcs(self, dc_a: int, dc_b: int) -> None:
        if dc_a == dc_b:
            raise ConfigError(f"cannot partition datacenter {dc_a} from itself")
        pair = (dc_a, dc_b) if dc_a <= dc_b else (dc_b, dc_a)
        self._partitioned.add(pair)

    def heal_partition(self, dc_a: int, dc_b: int) -> None:
        pair = (dc_a, dc_b) if dc_a <= dc_b else (dc_b, dc_a)
        self._partitioned.discard(pair)

    def heal_all(self) -> None:
        self._partitioned.clear()

    def is_partitioned(self, dc_a: int, dc_b: int) -> bool:
        return self._is_cut(dc_a, dc_b)
