"""The transport/clock/timer contract the protocol core speaks.

Everything the commit protocols, the coordinator fan-out and the failure
hooks need from their environment is five capabilities:

- a **monotonic clock** (:attr:`Transport.now`),
- **message send** with a per-message delivery callback
  (:meth:`Transport.send`),
- **deliver-callback registration** (:meth:`Transport.register`) so
  backends that cross a wire codec can name a handler on the wire,
- **delay sampling** (:meth:`Transport.sample_delay`) for estimators that
  want a latency draw without sending,
- **timers** (:meth:`Transport.set_timer` / :meth:`Transport.set_timer_at`)
  returning cancellable handles.

The state machines in :mod:`repro.txn` and :mod:`repro.cluster` hold no
reference to a :class:`~repro.simcore.simulator.Simulator` or a
:class:`~repro.net.transport.Network` directly -- they go through a
:class:`Transport`, which is what lets the *same* classes run inside the
discrete-event engine (:class:`~repro.runtime.sim.SimTransport`) or as
asyncio tasks over a real wire codec
(:class:`~repro.runtime.aio.AsyncioTransport`).

What the sim backend guarantees that asyncio does not:

- **determinism** -- same seed, same event order, byte-identical output;
- **zero-cost time** -- ``now`` advances only through the event queue;
- **global ordering** -- ties broken by a deterministic sequence number.

Both backends guarantee the conformance contract asserted in
``tests/test_transport_conformance.py``: per-link FIFO delivery under a
constant-latency model, partition drops at send time, cancelled timers
never fire, and messages to a crashed node have no effect.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Optional

__all__ = ["TimerHandle", "Transport"]


class TimerHandle:
    """The handle contract for :meth:`Transport.set_timer`.

    Only :meth:`cancel` is part of the contract; a cancelled timer never
    fires and cancelling twice is harmless. Backends return their native
    handle type (a sim :class:`~repro.simcore.simulator.Event`, an asyncio
    ``TimerHandle``) -- both already satisfy this.
    """

    __slots__ = ()

    def cancel(self) -> None:  # pragma: no cover - structural stub
        raise NotImplementedError


class Transport(ABC):
    """Abstract transport: clock + messaging + timers for one deployment.

    One instance serves every node of a deployment; ``src``/``dst`` are the
    dense node ids the topology assigns. All callbacks fire on the backend's
    single logical thread (the event loop), so protocol code never needs
    locks on either backend.
    """

    # -- clock -------------------------------------------------------------------

    @property
    @abstractmethod
    def now(self) -> float:
        """Monotonic deployment time in seconds (sim time or scaled wall time)."""

    # -- messaging ---------------------------------------------------------------

    @abstractmethod
    def send(
        self,
        src: int,
        dst: int,
        nbytes: int,
        deliver: Callable[..., Any],
        *args: Any,
    ) -> Optional[float]:
        """Send ``nbytes`` from ``src`` to ``dst``; ``deliver(*args)`` fires on arrival.

        Returns the sampled one-way delay, or ``None`` when the message is
        dropped (a partition). Backends that serialize across a wire codec
        require ``deliver`` to have been :meth:`register`-ed so it can be
        named on the wire; unregistered callables are delivered as local
        closures (the client-side completion path).
        """

    @abstractmethod
    def register(self, name: str, deliver: Callable[..., Any]) -> None:
        """Declare ``deliver`` as a wire-addressable handler called ``name``.

        Names must be unique per deployment (convention:
        ``"p{node}.on_prepare"``). The sim backend ignores registration --
        callbacks are plain function references inside one process -- but
        protocol harnesses register anyway so the same wiring code drives
        every backend.
        """

    @abstractmethod
    def sample_delay(self, src: int, dst: int) -> float:
        """Draw one link delay without sending (estimator support)."""

    # -- timers ------------------------------------------------------------------

    @abstractmethod
    def set_timer(self, delay: float, fn: Callable[..., Any], *args: Any) -> Any:
        """Call ``fn(*args)`` after ``delay`` seconds; returns a cancellable handle."""

    @abstractmethod
    def set_timer_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Any:
        """Call ``fn(*args)`` at absolute deployment time ``when``."""

    # -- fault injection -----------------------------------------------------------

    @abstractmethod
    def partition_dcs(self, dc_a: int, dc_b: int) -> None:
        """Symmetrically drop all future traffic between two datacenters."""

    @abstractmethod
    def heal_partition(self, dc_a: int, dc_b: int) -> None:
        """Restore traffic between two datacenters (no-op if not partitioned)."""

    @abstractmethod
    def heal_all(self) -> None:
        """Remove every active partition."""

    @abstractmethod
    def is_partitioned(self, dc_a: int, dc_b: int) -> bool:
        """Whether traffic between the two datacenters is currently dropped."""
