"""Cross-validation: the simulator's predictions vs. the asyncio runtime.

The repository's claims rest on the discrete-event simulator; this module
checks that the *same protocol classes* produce the *same qualitative
behaviour* when executed on real asyncio timers and a real wire codec.
Both sides of the comparison share everything except the execution
engine:

- one :class:`~repro.runtime.localhost.LocalhostSpec` (workload, keyspace
  hotspot, topology, protocol config, seed);
- one :class:`~repro.runtime.localhost.LocalhostStore` facade (placement,
  liveness, the staleness oracle, the level-ONE read path);
- one :class:`~repro.txn.api.TransactionalStore` with the shared TM and
  participant state machines.

:func:`run_sim_twin` drives that stack over a
:class:`~repro.runtime.sim.SimTransport` (deterministic virtual time);
:func:`~repro.runtime.localhost.run_localhost` drives it over an
:class:`~repro.runtime.aio.AsyncioTransport` (wall clock). The asyncio
side is **not deterministic** -- OS scheduling jitters every delivery --
so the comparison is a *trend contract*, not an equality check:

**Tolerance contract** (documented in ``docs/ARCHITECTURE.md``; the
defaults below are the contract's numbers):

1. *Pointwise*: at every contention level, ``|abort_rate_sim -
   abort_rate_aio| <= abort_tolerance`` (default **0.20**) and
   ``|stale_rate_sim - stale_rate_aio| <= stale_tolerance`` (default
   **0.25**).
2. *Trend*: between consecutive contention levels, whenever the sim's
   metric moves by more than ``trend_deadband`` (default **0.05**), the
   asyncio metric must not move the *opposite* way by more than the
   deadband. (Moves inside the deadband are noise on either side.)

The asyncio runtime schedules callbacks with ~0.1-1 ms wall jitter, which
``time_scale`` multiplies into protocol time; specs whose link delays
dwarf that jitter (multi-DC topologies, ``time_scale >= 0.2``) keep the
distortion second-order, which is why :func:`default_xval_spec` uses a
2-datacenter WAN topology rather than a single-DC one.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.common.rng import spawn_rng
from repro.net.transport import Network
from repro.runtime.localhost import LocalhostSpec, LocalhostStore, run_localhost
from repro.runtime.sim import SimTransport
from repro.simcore.simulator import Simulator
from repro.txn.api import TransactionalStore

__all__ = [
    "run_sim_twin",
    "default_xval_spec",
    "XvalCheck",
    "XvalReport",
    "cross_validate",
]


def run_sim_twin(spec: LocalhostSpec) -> Dict[str, Any]:
    """Run ``spec`` on the deterministic sim backend; same result shape.

    The exact stack :func:`~repro.runtime.localhost.run_localhost` builds,
    with :class:`~repro.runtime.sim.SimTransport` swapped in for the
    asyncio transport and a callback-driven closed loop standing in for
    the client coroutines. In-memory WALs (the sim models durability; the
    asyncio side's files are the real thing).
    """
    topology = spec.build_topology()
    sim = Simulator()
    network = Network(sim, topology, rng=spec.seed)
    transport = SimTransport(sim, network)
    store = LocalhostStore(
        topology,
        transport,
        replication_factor=min(spec.replication_factor, topology.n_nodes),
        seed=spec.seed,
        default_value_size=spec.value_size,
    )
    tstore = TransactionalStore(store, policy=None, config=spec.txn_config)
    for at, node_id, duration in spec.crashes:
        transport.set_timer_at(at, store.crash_node, node_id)
        if duration is not None:
            transport.set_timer_at(at + duration, store.recover_node, node_id)

    rng = spawn_rng(spec.seed + 1)
    state = {"remaining": spec.txns, "outcomes": 0, "running": spec.clients}

    def issue_next() -> None:
        if state["remaining"] <= 0:
            state["running"] -= 1
            if state["running"] == 0:
                sim.stop()
            return
        state["remaining"] -= 1
        txn = tstore.begin()
        keys = sorted({spec.sample_key(rng) for _ in range(spec.writes_per_txn)})
        for _ in range(spec.reads_per_txn):
            txn.read(spec.sample_key(rng))
        for key in keys:
            txn.write(key, spec.value_size)

        def done(outcome) -> None:
            state["outcomes"] += 1
            sim.schedule(0.0, issue_next)

        txn.commit(done)

    for _ in range(spec.clients):
        sim.schedule(0.0, issue_next)
    # The protocol-time analogue of the asyncio side's wall cap.
    sim.run(until=spec.wall_timeout / spec.time_scale)

    return {
        "txn": tstore.txn_summary(),
        "stale_rate": store.oracle.stale_rate,
        "reads": store.oracle.reads,
        "mean_propagation_s": store.oracle.mean_propagation_time(),
        "outcomes": state["outcomes"],
        "protocol_seconds": sim.now,
        "dropped_msgs": network.dropped,
        "wal_dir": None,
        "timed_out": state["running"] > 0,
    }


def default_xval_spec(**overrides: Any) -> LocalhostSpec:
    """The stock cross-validation scenario: a 2-DC WAN transactional mix.

    Inter-region link delays (40 ms one-way) dominate asyncio scheduling
    jitter, so protocol-visible timing distortion stays second-order; the
    contention dial (``hot_fraction``) is what :func:`cross_validate`
    sweeps.
    """
    base = dict(
        n_dcs=2,
        nodes_per_dc=3,
        replication_factor=3,
        txns=40,
        clients=6,
        writes_per_txn=2,
        reads_per_txn=1,
        n_keys=60,
        hot_keys=3,
        hot_fraction=0.5,
        value_size=200,
        seed=13,
        time_scale=0.25,
        wall_timeout=120.0,
    )
    base.update(overrides)
    return LocalhostSpec(**base)


@dataclass
class XvalCheck:
    """Sim-vs-asyncio comparison at one contention level."""

    hot_fraction: float
    sim_abort_rate: float
    aio_abort_rate: float
    sim_stale_rate: float
    aio_stale_rate: float
    sim_commit_ms: float
    aio_commit_ms: float
    aio_timed_out: bool
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class XvalReport:
    """Verdict of one cross-validation sweep."""

    checks: List[XvalCheck]
    abort_tolerance: float
    stale_tolerance: float
    trend_deadband: float
    trend_failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.trend_failures and all(c.ok for c in self.checks)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "abort_tolerance": self.abort_tolerance,
            "stale_tolerance": self.stale_tolerance,
            "trend_deadband": self.trend_deadband,
            "trend_failures": list(self.trend_failures),
            "levels": [
                {
                    "hot_fraction": c.hot_fraction,
                    "sim_abort_rate": c.sim_abort_rate,
                    "aio_abort_rate": c.aio_abort_rate,
                    "sim_stale_rate": c.sim_stale_rate,
                    "aio_stale_rate": c.aio_stale_rate,
                    "sim_commit_ms": c.sim_commit_ms,
                    "aio_commit_ms": c.aio_commit_ms,
                    "aio_timed_out": c.aio_timed_out,
                    "failures": list(c.failures),
                }
                for c in self.checks
            ],
        }


def _trend_failures(
    label: str,
    levels: Sequence[float],
    sim_series: Sequence[float],
    aio_series: Sequence[float],
    deadband: float,
) -> List[str]:
    """Direction disagreements between consecutive contention levels."""
    out: List[str] = []
    for i in range(1, len(levels)):
        d_sim = sim_series[i] - sim_series[i - 1]
        d_aio = aio_series[i] - aio_series[i - 1]
        if abs(d_sim) <= deadband:
            continue  # the sim calls this step flat; any aio move is noise
        if abs(d_aio) > deadband and (d_sim > 0) != (d_aio > 0):
            out.append(
                f"{label} trend disagrees on hot_fraction "
                f"{levels[i - 1]:.2f}->{levels[i]:.2f}: "
                f"sim moved {d_sim:+.3f}, asyncio moved {d_aio:+.3f}"
            )
    return out


def cross_validate(
    spec: Optional[LocalhostSpec] = None,
    hot_fractions: Sequence[float] = (0.0, 0.5, 0.95),
    abort_tolerance: float = 0.20,
    stale_tolerance: float = 0.25,
    trend_deadband: float = 0.05,
) -> XvalReport:
    """Sweep the contention dial on both backends and check the contract.

    For each ``hot_fraction`` the same spec runs once per backend; the
    report carries per-level metrics, pointwise tolerance verdicts and
    trend-direction verdicts (see the module docstring for the contract).
    """
    if len(hot_fractions) < 2:
        raise ConfigError("cross-validation needs at least 2 contention levels")
    base = spec or default_xval_spec()
    checks: List[XvalCheck] = []
    for hf in hot_fractions:
        level_spec = replace(base, hot_fraction=float(hf))
        sim_result = run_sim_twin(level_spec)
        aio_result = run_localhost(level_spec)
        check = XvalCheck(
            hot_fraction=float(hf),
            sim_abort_rate=sim_result["txn"]["abort_rate"],
            aio_abort_rate=aio_result["txn"]["abort_rate"],
            sim_stale_rate=sim_result["stale_rate"],
            aio_stale_rate=aio_result["stale_rate"],
            sim_commit_ms=sim_result["txn"]["commit_latency_mean_ms"],
            aio_commit_ms=aio_result["txn"]["commit_latency_mean_ms"],
            aio_timed_out=bool(aio_result["timed_out"]),
        )
        if check.aio_timed_out:
            check.failures.append(
                f"asyncio run hit the {level_spec.wall_timeout}s wall timeout"
            )
        d_abort = abs(check.sim_abort_rate - check.aio_abort_rate)
        if d_abort > abort_tolerance:
            check.failures.append(
                f"abort_rate gap {d_abort:.3f} exceeds tolerance "
                f"{abort_tolerance} (sim {check.sim_abort_rate:.3f}, "
                f"asyncio {check.aio_abort_rate:.3f})"
            )
        d_stale = abs(check.sim_stale_rate - check.aio_stale_rate)
        if d_stale > stale_tolerance:
            check.failures.append(
                f"stale_rate gap {d_stale:.3f} exceeds tolerance "
                f"{stale_tolerance} (sim {check.sim_stale_rate:.3f}, "
                f"asyncio {check.aio_stale_rate:.3f})"
            )
        checks.append(check)

    levels = [c.hot_fraction for c in checks]
    trend = _trend_failures(
        "abort_rate",
        levels,
        [c.sim_abort_rate for c in checks],
        [c.aio_abort_rate for c in checks],
        trend_deadband,
    )
    trend += _trend_failures(
        "stale_rate",
        levels,
        [c.sim_stale_rate for c in checks],
        [c.aio_stale_rate for c in checks],
        trend_deadband,
    )
    return XvalReport(
        checks=checks,
        abort_tolerance=abort_tolerance,
        stale_tolerance=stale_tolerance,
        trend_deadband=trend_deadband,
        trend_failures=trend,
    )
