"""Runtime backends: one protocol core, two execution engines.

- :class:`~repro.runtime.interface.Transport` -- the clock/send/timer
  contract the protocol state machines speak;
- :class:`~repro.runtime.sim.SimTransport` -- the deterministic
  discrete-event backend (a pure view over ``Simulator`` + ``Network``);
- :class:`~repro.runtime.aio.AsyncioTransport` -- the localhost asyncio
  backend: real timers, a JSON wire codec, file-backed WALs.

``BACKENDS`` lists the valid values of the ``backend=`` knob threaded
through :class:`repro.RunSpec`, scenarios, sweeps and the CLI.
"""

from repro.runtime.interface import TimerHandle, Transport
from repro.runtime.sim import SimTransport
from repro.runtime.aio import AsyncioTransport

__all__ = [
    "BACKENDS",
    "TimerHandle",
    "Transport",
    "SimTransport",
    "AsyncioTransport",
    "FileWriteAheadLog",
    "LocalhostSpec",
    "LocalhostStore",
    "LocalhostDeployment",
    "deploy_localhost",
    "run_localhost",
]

#: Valid values of the ``backend`` knob.
BACKENDS = ("sim", "asyncio")

#: Lazily-resolved exports: the localhost harness (and its file-backed
#: WAL) import the txn package, which imports the cluster package, which
#: imports :mod:`repro.runtime.sim` -- eager imports here would close
#: that cycle. PEP 562 attribute access keeps this package importable
#: from anywhere in the stack.
_LAZY = {
    "FileWriteAheadLog": "repro.runtime.wal",
    "LocalhostSpec": "repro.runtime.localhost",
    "LocalhostStore": "repro.runtime.localhost",
    "LocalhostDeployment": "repro.runtime.localhost",
    "deploy_localhost": "repro.runtime.localhost",
    "run_localhost": "repro.runtime.localhost",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
