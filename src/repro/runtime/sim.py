"""Discrete-event :class:`Transport`: a pure view over ``(Simulator, Network)``.

``SimTransport`` owns nothing and adds nothing: every method is a direct
delegation to the simulator or the network object the store already built.
That makes the transport refactor *observably pure* -- a run through
``SimTransport`` performs exactly the same ``Network.send`` and
``Simulator.schedule`` calls in exactly the same order as the pre-refactor
code, so seeded sweeps stay byte-identical (asserted by the determinism
check in CI).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.runtime.interface import Transport

__all__ = ["SimTransport"]


class SimTransport(Transport):
    """The simulator-backed transport (the default everywhere).

    Parameters
    ----------
    sim:
        The simulator that owns the clock and event queue.
    network:
        The latency/partition/traffic model messages travel through.
    """

    __slots__ = ("sim", "network", "_handlers")

    def __init__(self, sim: Any, network: Any):
        self.sim = sim
        self.network = network
        #: name -> handler, kept for introspection/conformance only; sim
        #: delivery never consults it (callbacks are direct references).
        self._handlers: Dict[str, Callable[..., Any]] = {}

    # -- clock -------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    # -- messaging ---------------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        nbytes: int,
        deliver: Callable[..., Any],
        *args: Any,
    ) -> Optional[float]:
        return self.network.send(src, dst, nbytes, deliver, *args)

    def register(self, name: str, deliver: Callable[..., Any]) -> None:
        self._handlers[name] = deliver

    def sample_delay(self, src: int, dst: int) -> float:
        return self.network.sample_delay(src, dst)

    # -- timers ------------------------------------------------------------------

    def set_timer(self, delay: float, fn: Callable[..., Any], *args: Any) -> Any:
        return self.sim.schedule(delay, fn, *args)

    def set_timer_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Any:
        return self.sim.schedule_at(when, fn, *args)

    # -- fault injection -----------------------------------------------------------

    def partition_dcs(self, dc_a: int, dc_b: int) -> None:
        self.network.partition_dcs(dc_a, dc_b)

    def heal_partition(self, dc_a: int, dc_b: int) -> None:
        self.network.heal_partition(dc_a, dc_b)

    def heal_all(self) -> None:
        self.network.heal_all()

    def is_partitioned(self, dc_a: int, dc_b: int) -> bool:
        # Not Network.is_partitioned, which takes *node* ids: the Transport
        # contract (and the asyncio backend) speak datacenter indices.
        return self.network.dcs_partitioned(dc_a, dc_b)
