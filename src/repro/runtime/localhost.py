"""The asyncio localhost deployment: real protocol classes, real clock.

This module is the asyncio backend's answer to
:func:`repro.txn.runner.deploy_txn`: it stands up the *unmodified*
:class:`~repro.txn.api.TransactionalStore` --- the same
:class:`~repro.txn.tm.TransactionManager` and
:class:`~repro.txn.participant.TxnParticipant` state machines the
simulator runs, imported from the same modules --- on an
:class:`~repro.runtime.aio.AsyncioTransport`:

- protocol messages cross a JSON wire codec with sampled link delays and
  per-link FIFO delivery;
- timers are ``loop.call_later`` handles on the wall clock;
- per-node write-ahead logs are real files
  (:class:`~repro.runtime.wal.FileWriteAheadLog`) under ``wal_dir``;
- staleness is judged by the same global
  :class:`~repro.cluster.staleness.StalenessOracle`.

What stands in for the simulator's :class:`~repro.cluster.store.ReplicatedStore`
is :class:`LocalhostStore`, a deliberately thin node/placement facade: it
owns node liveness, hash placement, the oracle and a local read path, but
contains **no protocol logic** --- every prepare/vote/decision/recovery
rule executes inside the shared txn classes. (The simulator's storage
nodes model service-time queues, which are meaningless on a wall clock;
the facade reads straight from replica state after a sampled round trip.)

:func:`run_localhost` drives a closed-loop transactional workload over
the deployment and returns the same ``txn_summary()`` surface sim runs
report, which is what :mod:`repro.runtime.xval` compares across backends.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import spawn_rng
from repro.cluster.coordinator import MessageSizes, OpResult
from repro.cluster.staleness import StalenessOracle
from repro.cluster.versions import Version
from repro.net.topology import Datacenter, Topology
from repro.runtime.aio import AsyncioTransport
from repro.runtime.wal import FileWriteAheadLog
from repro.txn.api import TransactionalStore, TxnConfig, TxnOutcome

__all__ = [
    "LocalhostStore",
    "LocalhostSpec",
    "LocalhostDeployment",
    "deploy_localhost",
    "run_localhost",
]


class _RuntimeNode:
    """One storage replica of the localhost facade: liveness plus state."""

    __slots__ = ("node_id", "up", "retired", "data", "writes_applied")

    def __init__(self, node_id: int):
        self.node_id = int(node_id)
        self.up = True
        self.retired = False
        self.data: Dict[str, Version] = {}
        self.writes_applied = 0


class _StoreKnobs:
    """The slice of ``StoreConfig`` the transaction classes consult."""

    __slots__ = ("seed",)

    def __init__(self, seed: int):
        self.seed = int(seed)


class LocalhostStore:
    """Node, placement and read facade backing a real ``TransactionalStore``.

    Exposes exactly the surface the shared protocol classes touch on a
    deployment: ``transport``, ``nodes``, ``sizes``, ``oracle``,
    ``write_seq``, ``config.seed``, replica placement, coordinator
    picking, node-event fan-out and a read path. No commit-protocol logic
    lives here.
    """

    def __init__(
        self,
        topology: Topology,
        transport: AsyncioTransport,
        replication_factor: int = 3,
        seed: int = 0,
        default_value_size: int = 1000,
    ):
        if replication_factor < 1:
            raise ConfigError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        n = topology.n_nodes
        if replication_factor > n:
            raise ConfigError(
                f"replication_factor {replication_factor} exceeds cluster size {n}"
            )
        self.topology = topology
        self.transport = transport
        self.rf = int(replication_factor)
        self.config = _StoreKnobs(seed)
        self.rng = spawn_rng(seed)
        self.sizes = MessageSizes()
        self.oracle = StalenessOracle()
        self.default_value_size = int(default_value_size)
        self.nodes: List[_RuntimeNode] = [_RuntimeNode(i) for i in range(n)]
        self.write_seq = 0
        self.reads_ok = 0
        self.read_failures = 0
        self._listeners: List[Any] = []
        self._node_listeners: List[Any] = []

    # -- placement ----------------------------------------------------------------

    def replica_sets(self, key: str) -> Tuple[List[int], Tuple[int, ...]]:
        """``(authoritative, extra)`` replicas; static hash placement.

        The localhost runtime has no elastic membership, so ``extra`` (the
        in-migration owners the sim store reports) is always empty.
        """
        import zlib

        n = len(self.nodes)
        start = zlib.crc32(key.encode()) % n
        return [(start + i) % n for i in range(self.rf)], ()

    def all_replicas(self, key: str) -> List[int]:
        authoritative, extra = self.replica_sets(key)
        return list(authoritative) + list(extra)

    # -- coordinator picking ------------------------------------------------------

    def _pick_coordinator(self, preferred: Optional[int]):
        """A live node to front a transaction (``None`` = cluster down)."""
        if preferred is not None and not self.nodes[preferred].retired:
            return self.nodes[preferred]
        for _ in range(4):
            idx = int(self.rng.integers(0, len(self.nodes)))
            if self.nodes[idx].up:
                return self.nodes[idx]
        live = self._any_live_node()
        return self.nodes[live] if live is not None else None

    def _any_live_node(self) -> Optional[int]:
        for node in self.nodes:
            if node.up:
                return node.node_id
        return None

    # -- node lifecycle -----------------------------------------------------------

    def add_listener(self, listener: Any) -> None:
        self._listeners.append(listener)

    def add_node_listener(self, listener: Any) -> None:
        self._node_listeners.append(listener)

    def crash_node(self, node_id: int) -> None:
        """Fail-stop ``node_id``: volatile state dies, handlers go silent."""
        node = self.nodes[node_id]
        if not node.up:
            return
        node.up = False
        for listener in self._node_listeners:
            listener.on_node_crash(node_id)

    def recover_node(self, node_id: int) -> None:
        """Bring ``node_id`` back; listeners run their WAL recovery passes."""
        node = self.nodes[node_id]
        if node.up:
            return
        node.up = True
        for listener in self._node_listeners:
            listener.on_node_recover(node_id)

    # -- read path ----------------------------------------------------------------

    def read(
        self,
        key: str,
        level: Any,
        done: Optional[Callable[[OpResult], Any]] = None,
        coordinator: Optional[int] = None,
    ) -> None:
        """Read ``key`` from one live replica after a sampled round trip.

        Level-ONE semantics (one replica answers), which is the level
        transactional reads dial with no policy installed --- and the only
        read level the localhost runtime offers: quorum assembly lives in
        the sim coordinator, whose service-queue model has no wall-clock
        counterpart here. The oracle captures the freshness bar at read
        *start* and judges the returned version at completion, exactly as
        the sim read path does.
        """
        tr = self.transport
        t_start = tr.now
        expected = self.oracle.expected_version(key)
        result = OpResult("read", key, t_start, "ONE")

        replicas = [r for r in self.replica_sets(key)[0] if self.nodes[r].up]
        src = coordinator if coordinator is not None else self._any_live_node()
        if not replicas or src is None:
            result.error = "unavailable"
            self.read_failures += 1
            if done is not None:
                tr.set_timer(0.0, done, result)
            return
        # Nearest live replica (by mean link latency), as a snitch would route.
        replica = min(
            replicas, key=lambda r: (self.topology.latency_model(src, r).mean(), r)
        )
        result.dc = self.topology.dc_of(src)

        def _respond() -> None:
            version = self.nodes[replica].data.get(key)
            result.version = version
            result.value_size = version.size if version is not None else 0
            result.replicas_contacted = 1
            result.ok = True
            result.stale = self.oracle.note_read(expected, version)
            result.t_end = tr.now
            self.reads_ok += 1
            if done is not None:
                done(result)

        # Request out, response back: two sampled one-way delays.
        delay = tr.sample_delay(src, replica) + tr.sample_delay(replica, src)
        tr.set_timer(delay, _respond)

    # -- metrics ------------------------------------------------------------------

    def reset_metrics(self) -> None:
        self.oracle.reset_counters()
        self.reads_ok = 0
        self.read_failures = 0


@dataclass
class LocalhostSpec:
    """One closed-loop transactional run on the asyncio backend.

    Attributes
    ----------
    topology:
        Node placement and link latency models (the same object a sim run
        would deploy); ``None`` builds ``n_dcs`` x ``nodes_per_dc``.
    txns:
        Transactions to complete (across all clients).
    clients:
        Concurrent closed-loop clients; more clients on fewer hot keys is
        the contention dial cross-validation sweeps.
    writes_per_txn / reads_per_txn:
        Operations per transaction; reads go through the oracle-judged
        local read path, writes buffer until commit.
    n_keys / hot_keys / hot_fraction:
        Keyspace size and hotspot shape: with probability ``hot_fraction``
        a key is drawn from the first ``hot_keys`` keys.
    time_scale:
        Wall seconds per protocol second (see
        :class:`~repro.runtime.aio.AsyncioTransport`).
    wall_timeout:
        Hard cap on the run's wall-clock seconds; expiry cancels the
        clients and reports whatever completed (the CI smoke guard).
    wal_dir:
        Directory for per-node WAL files (``None`` = fresh temp dir).
    crashes:
        ``(at, node_id, duration)`` failure script on the protocol clock;
        ``duration None`` crashes forever.
    """

    topology: Optional[Topology] = None
    n_dcs: int = 1
    nodes_per_dc: int = 3
    replication_factor: int = 3
    txns: int = 50
    clients: int = 4
    writes_per_txn: int = 2
    reads_per_txn: int = 1
    n_keys: int = 100
    hot_keys: int = 4
    hot_fraction: float = 0.5
    value_size: int = 200
    seed: int = 0
    time_scale: float = 0.05
    wall_timeout: float = 60.0
    wal_dir: Optional[str] = None
    txn_config: TxnConfig = field(default_factory=TxnConfig)
    crashes: Tuple[Tuple[float, int, Optional[float]], ...] = ()

    def __post_init__(self) -> None:
        for name in ("txns", "clients", "writes_per_txn", "n_keys"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.reads_per_txn < 0:
            raise ConfigError(f"reads_per_txn must be >= 0, got {self.reads_per_txn}")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigError(
                f"hot_fraction must be in [0, 1], got {self.hot_fraction}"
            )
        if self.wall_timeout <= 0:
            raise ConfigError(
                f"wall_timeout must be positive, got {self.wall_timeout}"
            )

    def sample_key(self, rng: Any) -> str:
        """Draw one key from the hotspot mix.

        Shared by the asyncio driver and the sim twin
        (:func:`repro.runtime.xval.run_sim_twin`): both backends sample
        the workload through this one method, so cross-validation compares
        execution engines, not workload generators.
        """
        if self.hot_keys and float(rng.random()) < self.hot_fraction:
            return f"key{int(rng.integers(0, min(self.hot_keys, self.n_keys)))}"
        return f"key{int(rng.integers(0, self.n_keys))}"

    def build_topology(self) -> Topology:
        """The run's topology: explicit, or ``n_dcs`` x ``nodes_per_dc``."""
        if self.topology is not None:
            return self.topology
        return Topology(
            [Datacenter(f"dc{i}", f"region{i}") for i in range(self.n_dcs)],
            [self.nodes_per_dc] * self.n_dcs,
        )


class LocalhostDeployment:
    """A wired localhost deployment: transport + facade store + txn store."""

    def __init__(self, spec: LocalhostSpec):
        self.spec = spec
        self.topology = spec.build_topology()
        self.transport = AsyncioTransport(
            self.topology, rng=spec.seed, time_scale=spec.time_scale
        )
        self.wal_dir = spec.wal_dir or tempfile.mkdtemp(prefix="repro-wal-")
        self.store = LocalhostStore(
            self.topology,
            self.transport,
            replication_factor=min(spec.replication_factor, self.topology.n_nodes),
            seed=spec.seed,
            default_value_size=spec.value_size,
        )
        self.tstore = TransactionalStore(
            self.store,
            policy=None,
            config=spec.txn_config,
            wal_factory=lambda i: FileWriteAheadLog(
                i, os.path.join(self.wal_dir, f"node{i}.wal")
            ),
        )

    def close(self) -> None:
        self.transport.close()
        for wal in self.tstore.wals:
            close = getattr(wal, "close", None)
            if close is not None:
                close()


def deploy_localhost(spec: LocalhostSpec) -> LocalhostDeployment:
    """Build (but do not start) a localhost deployment for ``spec``."""
    return LocalhostDeployment(spec)


async def _run_clients(dep: LocalhostDeployment) -> Dict[str, Any]:
    spec = dep.spec
    loop = asyncio.get_event_loop()
    dep.transport.start(loop)
    for at, node_id, duration in spec.crashes:
        dep.transport.set_timer_at(at, dep.store.crash_node, node_id)
        if duration is not None:
            dep.transport.set_timer_at(
                at + duration, dep.store.recover_node, node_id
            )

    rng = spawn_rng(spec.seed + 1)
    remaining = spec.txns
    outcomes: List[TxnOutcome] = []

    async def one_txn() -> None:
        txn = dep.tstore.begin()
        keys = sorted({spec.sample_key(rng) for _ in range(spec.writes_per_txn)})
        for _ in range(spec.reads_per_txn):
            txn.read(spec.sample_key(rng))
        for key in keys:
            txn.write(key, spec.value_size)
        fut: asyncio.Future = loop.create_future()
        txn.commit(lambda outcome: fut.done() or fut.set_result(outcome))
        outcomes.append(await fut)

    async def client() -> None:
        nonlocal remaining
        while remaining > 0:
            remaining -= 1
            await one_txn()

    await asyncio.gather(*(client() for _ in range(spec.clients)))
    return {
        "txn": dep.tstore.txn_summary(),
        "stale_rate": dep.store.oracle.stale_rate,
        "reads": dep.store.oracle.reads,
        "mean_propagation_s": dep.store.oracle.mean_propagation_time(),
        "outcomes": len(outcomes),
        "protocol_seconds": dep.transport.now,
        "dropped_msgs": dep.transport.dropped,
        "wal_dir": dep.wal_dir,
    }


def run_localhost(spec: LocalhostSpec) -> Dict[str, Any]:
    """Run ``spec`` on the asyncio backend and return its metrics.

    Synchronous entry point: owns the event loop, enforces
    ``spec.wall_timeout`` as a hard wall-clock cap (on expiry the clients
    are cancelled and the partial run is reported with
    ``"timed_out": True``), and always closes the transport so stray
    ``call_later`` callbacks cannot outlive the run.
    """
    dep = deploy_localhost(spec)
    try:
        async def _main() -> Dict[str, Any]:
            try:
                result = await asyncio.wait_for(
                    _run_clients(dep), timeout=spec.wall_timeout
                )
                result["timed_out"] = False
            except asyncio.TimeoutError:
                result = {
                    "txn": dep.tstore.txn_summary(),
                    "stale_rate": dep.store.oracle.stale_rate,
                    "reads": dep.store.oracle.reads,
                    "mean_propagation_s": dep.store.oracle.mean_propagation_time(),
                    "outcomes": dep.tstore.commits + dep.tstore.abort_count(),
                    "protocol_seconds": dep.transport.now,
                    "dropped_msgs": dep.transport.dropped,
                    "wal_dir": dep.wal_dir,
                    "timed_out": True,
                }
            return result

        return asyncio.run(_main())
    finally:
        dep.close()
