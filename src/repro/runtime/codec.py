"""The wire codec of the asyncio backend: JSON frames with tagged types.

Protocol messages between TM and participants carry Python values --
transaction ids, node ids, vote booleans, and (in prepare payloads)
``{key: Version}`` maps. The asyncio backend serializes every registered
protocol message through this codec so the run genuinely crosses a wire
boundary: a frame is ``encode``-d at the sender, carried as ``bytes``,
and ``decode``-d at the receiver into fresh objects (no shared references
between sender and receiver state machines).

The format is JSON (msgpack would work identically; the repository image
carries no msgpack, and frames here are small control messages, not data
planes). Non-JSON-native types are tagged:

- :class:`~repro.cluster.versions.Version` ->
  ``{"__v__": [timestamp, seq, size]}``;
- ``None`` inside dict *values* survives natively; tuples decode as lists
  (every protocol handler normalizes with ``list()``/``dict()`` already).

Dict keys are strings on the wire; integer-keyed protocol dicts do not
occur in registered messages (writes and read-version maps are keyed by
the string row key).
"""

from __future__ import annotations

import json
from typing import Any, List, Tuple

from repro.common.errors import SimulationError
from repro.cluster.versions import Version

__all__ = ["encode", "decode", "to_wire", "from_wire"]

_VERSION_TAG = "__v__"


def to_wire(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serializable wire data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Version):
        return {_VERSION_TAG: [value.timestamp, value.write_id, value.size]}
    if isinstance(value, (list, tuple)):
        return [to_wire(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return [to_wire(v) for v in sorted(value)]
    if isinstance(value, dict):
        return {str(k): to_wire(v) for k, v in value.items()}
    raise SimulationError(
        f"cannot encode {type(value).__name__} on the wire: {value!r}"
    )


def from_wire(value: Any) -> Any:
    """Invert :func:`to_wire` (lists stay lists; tagged Versions revive)."""
    if isinstance(value, list):
        return [from_wire(v) for v in value]
    if isinstance(value, dict):
        tagged = value.get(_VERSION_TAG)
        if tagged is not None and len(value) == 1:
            t, seq, size = tagged
            return Version(float(t), int(seq), int(size))
        return {k: from_wire(v) for k, v in value.items()}
    return value


def encode(name: str, args: Tuple[Any, ...]) -> bytes:
    """One wire frame: the registered handler name plus its arguments."""
    return json.dumps(
        {"h": name, "a": [to_wire(a) for a in args]},
        separators=(",", ":"),
    ).encode("utf-8")


def decode(frame: bytes) -> Tuple[str, List[Any]]:
    """Parse a frame back into ``(handler_name, args)`` with fresh objects."""
    obj = json.loads(frame.decode("utf-8"))
    return obj["h"], [from_wire(a) for a in obj["a"]]
