"""File-backed write-ahead logs for the asyncio backend.

The simulator models durability by keeping
:class:`~repro.txn.wal.WriteAheadLog` records in memory across simulated
crashes. On the asyncio backend durability is real:
:class:`FileWriteAheadLog` appends every record as one JSON line to a
per-node log file (flushed at append time -- the force-write the commit
protocols assume), and :meth:`FileWriteAheadLog.replay` rebuilds a log
from disk exactly the way a restarted daemon would, re-deriving the
in-doubt and unfinished-TM-round sets from the records alone.

Record payloads pass through the wire codec's type tagging
(:func:`repro.runtime.codec.to_wire`), so ``{key: Version}`` write maps
survive the disk round-trip as real :class:`~repro.cluster.versions.Version`
objects.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.runtime.codec import from_wire, to_wire
from repro.txn.wal import WalRecord, WriteAheadLog

__all__ = ["FileWriteAheadLog"]


class FileWriteAheadLog(WriteAheadLog):
    """A :class:`WriteAheadLog` that also persists each record to disk."""

    def __init__(self, node_id: int, path: str):
        super().__init__(node_id)
        self.path = path
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._fh = open(path, "a", encoding="utf-8")

    def append(self, kind: str, txn_id: int, time: float, **data: Any) -> WalRecord:
        rec = super().append(kind, txn_id, time, **data)
        self._fh.write(
            json.dumps(
                {
                    "lsn": rec.lsn,
                    "txn": rec.txn_id,
                    "kind": rec.kind,
                    "t": rec.time,
                    "data": to_wire(rec.data),
                },
                separators=(",", ":"),
            )
            + "\n"
        )
        self._fh.flush()
        return rec

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    @classmethod
    def replay(cls, node_id: int, path: str) -> "FileWriteAheadLog":
        """Rebuild a log from its file (the daemon-restart recovery path).

        Records re-append through the normal indexing machinery, so the
        incremental in-doubt / unfinished-round sets come out identical to
        the pre-crash log's -- asserted by the runtime tests.
        """
        wal = cls(node_id, path)
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
            # Re-appending below would double-write the file; rebuild the
            # in-memory index only, the file already holds the records.
            for line in lines:
                if not line.strip():
                    continue
                obj = json.loads(line)
                rec = WalRecord(
                    len(wal.records),
                    int(obj["txn"]),
                    obj["kind"],
                    float(obj["t"]),
                    from_wire(obj["data"]),
                )
                wal._index(rec)
        return wal

    def _index(self, rec: WalRecord) -> None:
        """Install one replayed record into the in-memory index (no disk IO).

        Mirrors :meth:`WriteAheadLog.append`'s indexing without re-persisting.
        """
        from repro.txn.wal import (
            REC_PREPARE,
            REC_TM_BEGIN,
            REC_TM_END,
            _DECISIONS,
        )

        self.records.append(rec)
        self._by_txn.setdefault(rec.txn_id, []).append(rec)
        if rec.kind == REC_PREPARE:
            if not any(r.kind in _DECISIONS for r in self._by_txn[rec.txn_id]):
                self._in_doubt.setdefault(rec.txn_id, None)
        elif rec.kind in _DECISIONS:
            self._in_doubt.pop(rec.txn_id, None)
        elif rec.kind == REC_TM_BEGIN:
            if REC_TM_END not in self.kinds_for(rec.txn_id)[:-1]:
                self._tm_pending.setdefault(rec.txn_id, rec)
        elif rec.kind == REC_TM_END:
            self._tm_pending.pop(rec.txn_id, None)
