"""The cost-aware autoscaler: capacity tracking load and the bill.

A control loop on the simulation clock that polls the observable cluster
state -- the :class:`~repro.monitor.collector.ClusterMonitor`'s arrival
rates and latency EWMAs, plus per-node service-stage utilization and queue
depth -- and decides scale-out / scale-in through an
:class:`~repro.elastic.cluster.ElasticCluster`.

The decision logic is deliberately asymmetric, the way production
autoscalers are:

- **scale out** on *observed* pressure: measured stage utilization or queue
  depth above threshold for several consecutive polls;
- **scale in** on *projected* headroom: you cannot observe a smaller
  cluster, so the counterfactual is modelled with the same
  :meth:`~repro.cost.provisioning.ProvisioningAdvisor.stage_utilization`
  check the provisioning sweep uses -- shrink only when the smaller cluster
  would still sit comfortably under the scale-out threshold, and annotate
  the decision with the Bismar-style $/op saving.

Hysteresis is threefold: breaches must persist for ``consecutive`` polls, a
``cooldown`` follows every membership change, and no decision fires while a
migration is still streaming (one capacity change at a time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.common.errors import ConfigError
from repro.cluster.consistency import quorum
from repro.cost.pricing import PriceBook
from repro.cost.provisioning import ProvisioningAdvisor, WorkloadEnvelope
from repro.elastic.cluster import ElasticCluster
from repro.monitor.collector import ClusterMonitor

__all__ = ["AutoscalerConfig", "CostAwareAutoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Control-loop tunables.

    Attributes
    ----------
    interval:
        Poll period (simulated seconds).
    scale_out_util / scale_in_util:
        Stage-utilization thresholds. Observed utilization above the first
        arms a scale-out; below the second (with a feasible projection)
        arms a scale-in. Keep them apart -- the gap is the deadband that
        prevents flapping.
    queue_depth_high:
        Mean queued requests per live node that forces a scale-out even if
        utilization looks acceptable (queues are the leading indicator).
    consecutive:
        Polls a breach must persist before acting.
    cooldown:
        Seconds after any membership change during which no new decision
        fires.
    min_nodes / max_nodes:
        Hard capacity bounds (``min_nodes`` is additionally floored at the
        replication factor).
    headroom:
        Scale-in safety margin: the projected utilization of the smaller
        cluster must stay under ``scale_out_util * headroom``.
    """

    interval: float = 0.25
    scale_out_util: float = 0.70
    scale_in_util: float = 0.30
    queue_depth_high: float = 4.0
    consecutive: int = 3
    cooldown: float = 1.5
    min_nodes: int = 0
    max_nodes: int = 256
    headroom: float = 0.8

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigError(f"interval must be positive, got {self.interval}")
        if not (0.0 < self.scale_in_util < self.scale_out_util <= 1.5):
            raise ConfigError(
                "need 0 < scale_in_util < scale_out_util "
                f"(got {self.scale_in_util}, {self.scale_out_util})"
            )
        if self.consecutive < 1:
            raise ConfigError("consecutive must be >= 1")
        if self.cooldown < 0:
            raise ConfigError("cooldown must be >= 0")
        if not (0.0 < self.headroom <= 1.0):
            raise ConfigError(f"headroom must be in (0, 1], got {self.headroom}")


class CostAwareAutoscaler:
    """Polls the monitor, scales the cluster, logs every decision."""

    def __init__(
        self,
        cluster: ElasticCluster,
        monitor: ClusterMonitor,
        prices: PriceBook,
        config: Optional[AutoscalerConfig] = None,
    ):
        self.cluster = cluster
        self.monitor = monitor
        self.config = config or AutoscalerConfig()
        store = cluster.store
        self.advisor = ProvisioningAdvisor(
            prices,
            [[0.0]],  # utilization/pricing only; no WAN consistency sweep
            service=store.config.service,
            servers_per_node=store.config.servers_per_node,
            mutation_servers_per_node=store.config.mutation_servers_per_node,
        )
        self.min_nodes = max(self.config.min_nodes, store.strategy.rf_total)
        self._streak_out = 0
        self._streak_in = 0
        self._last_change_t = -1e18
        self._last_busy = 0.0
        self._last_tick_t: Optional[float] = None
        self._started = False
        self._stopped = False
        #: decision log: one JSON-safe dict per scale action.
        self.decisions: List[Dict[str, Any]] = []
        self.ticks = 0

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Begin polling (call once, before or during the run)."""
        if self._started:
            raise ConfigError("autoscaler already started")
        self._started = True
        self._stopped = False
        self.cluster.store.sim.schedule(self.config.interval, self._tick)

    def stop(self) -> None:
        """Stop polling (the workload ended; no more capacity decisions)."""
        self._stopped = True

    # -- signals -------------------------------------------------------------------

    def observed_utilization(self) -> float:
        """Measured busy fraction of live nodes since the previous poll.

        The ratio of server-seconds actually worked to server-seconds
        available across both service stages -- a direct observation, no
        model involved.
        """
        st = self.cluster.store
        now = st.sim.now
        busy = 0.0
        capacity_rate = 0.0
        for node_id in st.ring.members:
            node = st.nodes[node_id]
            busy += node.resource.busy_seconds() + node.mutation_resource.busy_seconds()
            capacity_rate += node.resource.servers + node.mutation_resource.servers
        if self._last_tick_t is None:
            self._last_busy = busy
            return 0.0
        dt = now - self._last_tick_t
        delta = busy - self._last_busy
        self._last_busy = busy
        if dt <= 0 or capacity_rate <= 0:
            return 0.0
        return delta / (dt * capacity_rate)

    def mean_queue_depth(self) -> float:
        """Mean queued requests per live node (both stages)."""
        st = self.cluster.store
        members = st.ring.members
        if not members:
            return 0.0
        queued = sum(
            st.nodes[n].resource.queued + st.nodes[n].mutation_resource.queued
            for n in members
        )
        return queued / len(members)

    def _envelope(self, snapshot) -> WorkloadEnvelope:
        """The monitor's view of offered load, as a provisioning envelope."""
        return WorkloadEnvelope(
            read_rate=max(snapshot.read_rate, 0.0),
            write_rate=max(snapshot.write_rate, 0.0),
            hot_key_write_rate=max(snapshot.write_rate, 0.0) * 0.01,
            data_size_bytes=1,  # capacity check only; storage priced elsewhere
            max_utilization=self.config.scale_out_util,
        )

    def cost_per_kop(self, n_nodes: int, snapshot) -> float:
        """Bismar-style $/kop of running ``n_nodes`` at the observed rate."""
        rate = snapshot.read_rate + snapshot.write_rate
        if rate <= 0:
            return 0.0
        hourly = n_nodes * self.advisor.prices.instance_hour
        return hourly / (rate * 3.6)  # $/h over kops/h

    # -- the control loop ----------------------------------------------------------

    def _tick(self) -> None:
        if self._stopped:
            return
        cfg = self.config
        cluster = self.cluster
        st = cluster.store
        now = st.sim.now
        self.ticks += 1
        util = self.observed_utilization()
        self._last_tick_t = now
        queue = self.mean_queue_depth()
        snapshot = self.monitor.snapshot(now)
        n = cluster.n_members

        in_cooldown = (now - self._last_change_t) < cfg.cooldown
        migrating = cluster.rebalancer.active
        if migrating or in_cooldown:
            # One capacity change at a time; breaches during a move do not
            # accumulate toward the next one.
            self._streak_out = 0
            self._streak_in = 0
        elif (util > cfg.scale_out_util or queue > cfg.queue_depth_high) and (
            n < cfg.max_nodes
        ):
            self._streak_out += 1
            self._streak_in = 0
            if self._streak_out >= cfg.consecutive:
                self._scale_out(now, n, util, queue, snapshot)
        elif util < cfg.scale_in_util and n > self.min_nodes:
            self._streak_in += 1
            self._streak_out = 0
            if self._streak_in >= cfg.consecutive:
                self._try_scale_in(now, n, util, snapshot)
        else:
            self._streak_out = 0
            self._streak_in = 0
        st.sim.schedule(cfg.interval, self._tick)

    def _scale_out(self, now, n, util, queue, snapshot) -> None:
        cluster = self.cluster
        # Fill the emptiest datacenter (lowest index on ties): keeps the
        # per-DC balance the placement strategies assume.
        dcs = range(len(cluster.store.topology.datacenters))
        dc = min(dcs, key=lambda d: (len(cluster.members_in_dc(d)), d))
        node_id = cluster.bootstrap_node(dc, reason="autoscale")
        self._record(
            now,
            "scale-out",
            node_id,
            util=util,
            queue=queue,
            cost_per_kop_before=self.cost_per_kop(n, snapshot),
            cost_per_kop_after=self.cost_per_kop(n + 1, snapshot),
        )

    def _try_scale_in(self, now, n, util, snapshot) -> None:
        cfg = self.config
        cluster = self.cluster
        candidate = cluster.decommission_candidate()
        if candidate is None:
            self._streak_in = 0
            return
        env = self._envelope(snapshot)
        rf = cluster.store.strategy.rf_total
        projected = self.advisor.stage_utilization(
            env, n - 1, rf, read_level=quorum(rf)
        )
        if projected > cfg.scale_out_util * cfg.headroom:
            # The smaller cluster would run too hot: stay put.
            self._streak_in = 0
            return
        cluster.decommission_node(candidate, reason="autoscale")
        self._record(
            now,
            "scale-in",
            candidate,
            util=util,
            projected_util=projected,
            cost_per_kop_before=self.cost_per_kop(n, snapshot),
            cost_per_kop_after=self.cost_per_kop(n - 1, snapshot),
        )

    def _record(self, now, action, node_id, **extra) -> None:
        self._last_change_t = now
        self._streak_out = 0
        self._streak_in = 0
        decision = {
            "t": float(now),
            "action": action,
            "node": int(node_id),
            **{k: float(v) for k, v in extra.items()},
        }
        self.decisions.append(decision)

    def summary(self) -> Dict[str, Any]:
        """Decision log + tick count for run reports (JSON-safe)."""
        return {
            "ticks": int(self.ticks),
            "decisions": [
                {k: d[k] for k in sorted(d)} for d in self.decisions
            ],
        }
