"""The streaming rebalancer: crash-safe data migration over the network.

When a membership change moves token ranges, the keys inside them must
reach their new owners. The rebalancer does this *online*: foreground
traffic continues while a background pump streams each moved key from a
live old owner to every incoming owner over the simulated network (real
bytes, real latency, real interference with foreground traffic).

Correctness rests on the pending-ranges rule the store enforces while a
key's migration is in flight (:meth:`repro.cluster.store.ReplicatedStore.replica_sets`):

- **reads** consult the *old* owners -- the nodes guaranteed to hold the
  data -- so the move itself can never produce a stale read;
- **writes** are forwarded to old *and* incoming owners, and live incoming
  owners must acknowledge before the client ack fires (the raised
  effective write level of a bootstrap), so at every ack the data is on
  both sides of the hand-off;
- a key is handed off only when, at apply time, its incoming owner holds a
  version at least as new as every old owner's -- otherwise it is simply
  streamed again.

Crash safety falls out of the retry structure: a crash of the source or the
target mid-stream drops the transfer (down nodes drop work), the key stays
pending, and the pump re-streams it after ``attempt_timeout``. There is no
migration state to recover -- the pending table *is* the WAL, and
re-streaming is idempotent (last-write-wins reconciliation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import ConfigError
from repro.cluster.store import MembershipChange, ReplicatedStore
from repro.cluster.versions import Version

__all__ = ["RebalanceConfig", "StreamingRebalancer"]


@dataclass(frozen=True)
class RebalanceConfig:
    """Streaming tunables.

    Attributes
    ----------
    pump_interval:
        Seconds between streaming passes while migrations are active.
    attempt_timeout:
        Re-stream a (key, target) if its transfer has not applied within
        this window (covers crashes of either endpoint mid-stream).
    batch_size:
        Maximum transfers started per pump pass -- bounds the migration's
        instantaneous network/CPU footprint so foreground traffic keeps
        flowing (Cassandra's stream throughput cap, in spirit).
    """

    pump_interval: float = 0.02
    attempt_timeout: float = 0.25
    batch_size: int = 64

    def __post_init__(self) -> None:
        if self.pump_interval <= 0 or self.attempt_timeout <= 0:
            raise ConfigError("pump_interval and attempt_timeout must be positive")
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")


class _KeyMigration:
    """Streaming state of one moved key."""

    __slots__ = ("key", "old", "targets_left", "attempts")

    def __init__(self, key: str, old: Tuple[int, ...], targets: Set[int]):
        self.key = key
        self.old = old
        self.targets_left = targets
        #: target -> simulated time of the last stream attempt.
        self.attempts: Dict[int, float] = {}


class StreamingRebalancer:
    """Owns the pending-ranges table and the background streaming pump."""

    def __init__(
        self, store: ReplicatedStore, config: Optional[RebalanceConfig] = None
    ):
        self.store = store
        self.config = config or RebalanceConfig()
        store.rebalancer = self
        self._pending: Dict[str, _KeyMigration] = {}
        self._pump_scheduled = False
        #: decommissioned nodes awaiting retirement (done when fully drained).
        self._retiring: List[int] = []

        # counters (consumed by run reports and the cluster monitor)
        self.migrations_started = 0
        self.migrations_completed = 0
        self.ranges_moved = 0
        self.keys_streamed = 0
        self.bytes_streamed = 0
        self.restreams = 0

    # -- store-facing interface ----------------------------------------------------

    def pending_old_replicas(self, key: str) -> Optional[Tuple[int, ...]]:
        """Old owners of ``key`` if its migration is pending, else ``None``."""
        m = self._pending.get(key)
        return m.old if m is not None else None

    @property
    def active(self) -> bool:
        """Whether any migration is still streaming."""
        return bool(self._pending) or bool(self._retiring)

    def pending_keys(self) -> int:
        """Number of keys still awaiting hand-off."""
        return len(self._pending)

    def progress_signature(self) -> Tuple[int, int, int, int]:
        """Counters that advance whenever streaming makes any progress.

        Read by the rebalance-stall oracle: an active migration whose
        signature does not change for a budget of simulated seconds is a
        stall (nothing streamed, nothing retried, nothing settled).
        """
        return (
            self.keys_streamed,
            self.bytes_streamed,
            self.restreams,
            self.migrations_completed,
        )

    def begin(self, change: MembershipChange) -> None:
        """Accept one membership change's ownership diff and start streaming."""
        st = self.store
        self.migrations_started += 1
        self.ranges_moved += len(change.moved_ranges)
        for key in sorted(change.pending):
            old, new = change.pending[key]
            existing = self._pending.get(key)
            if existing is not None:
                # A second membership change landed before this key's first
                # hand-off finished. The original old set remains the only
                # set guaranteed to hold the data, so it stays
                # authoritative; only the targets are recomputed.
                targets = {n for n in new if n not in existing.old}
                if not targets:
                    del self._pending[key]
                    st.invalidate_placement(key)
                    continue
                existing.targets_left = targets
                existing.attempts = {}
            else:
                targets = {n for n in new if n not in old}
                if not targets:
                    continue
                self._pending[key] = _KeyMigration(key, tuple(old), targets)
        if change.leaving is not None:
            self._retiring.append(change.leaving)
        st._notify_elastic(
            {
                "kind": "migration-start",
                "t": st.sim.now,
                "ranges": len(change.moved_ranges),
                "keys": len(change.pending),
                "joining": change.joining,
                "leaving": change.leaving,
            }
        )
        if not self._pending:
            self._settle()
            return
        self._schedule_pump(0.0)

    # -- the pump ------------------------------------------------------------------

    def _schedule_pump(self, delay: float) -> None:
        if self._pump_scheduled:
            return
        self._pump_scheduled = True
        self.store.sim.schedule(delay, self._pump)

    def _pump(self) -> None:
        self._pump_scheduled = False
        if not self._pending:
            self._settle()
            return
        st = self.store
        now = st.sim.now
        started = 0
        for key in sorted(self._pending):
            if started >= self.config.batch_size:
                break
            m = self._pending[key]
            version, source = self._best_source(m)
            if version is None:
                if source is None and not st.write_in_flight(key):
                    # No old owner holds the key, none are down, and no
                    # write is racing toward them: nothing to move.
                    self._finish_key(m)
                # Else a down old owner (or an in-flight write) may still
                # produce the data: leave pending and retry.
                continue
            for target in sorted(m.targets_left):
                last = m.attempts.get(target)
                if last is not None and now - last < self.config.attempt_timeout:
                    continue
                if last is not None:
                    self.restreams += 1
                m.attempts[target] = now
                nbytes = st.sizes.request_overhead + version.size
                self.bytes_streamed += nbytes
                st.network.send(
                    source,
                    target,
                    nbytes,
                    st.nodes[target].handle_write,
                    key,
                    version,
                    self._stream_applied,
                )
                started += 1
        if self._pending:
            self._schedule_pump(self.config.pump_interval)
        else:
            self._settle()

    def _best_source(self, m: _KeyMigration):
        """Newest version among *live* old owners, and a node that holds it.

        Returns ``(None, None)`` when no live old owner holds the key and
        none are down (nothing to move), and ``(None, node_id)`` when a down
        old owner might still hold the only copy (retry later).
        """
        st = self.store
        best: Optional[Version] = None
        holder: Optional[int] = None
        down: Optional[int] = None
        for r in m.old:
            node = st.nodes[r]
            if not node.up:
                down = r
                continue
            v = node.data.get(m.key)
            if v is not None and (best is None or v.newer_than(best)):
                best, holder = v, r
        if best is None:
            return None, down
        return best, holder

    def _stream_applied(self, node_id: int, key: str, version: Version) -> None:
        """A streamed version landed on an incoming owner."""
        m = self._pending.get(key)
        if m is None or node_id not in m.targets_left:
            return
        st = self.store
        # Hand off only if the target is caught up with every old owner at
        # this instant -- a foreground write may have raced the stream.
        have = st.nodes[node_id].data.get(key)
        best, _ = self._best_source(m)
        if best is not None and (have is None or best.newer_than(have)):
            self.restreams += 1
            m.attempts.pop(node_id, None)  # re-stream the newer version
            self._schedule_pump(0.0)
            return
        if st.write_in_flight(key):
            # A dispatched write has not settled: it may still be in the
            # old owners' queues. Handing ownership off now could strand an
            # about-to-be-acked write behind the switch -- wait it out.
            m.attempts.pop(node_id, None)
            self._schedule_pump(self.config.pump_interval)
            return
        m.targets_left.discard(node_id)
        m.attempts.pop(node_id, None)
        if not m.targets_left:
            self._finish_key(m)
            if not self._pending:
                self._settle()

    def _finish_key(self, m: _KeyMigration) -> None:
        self.keys_streamed += 1
        del self._pending[m.key]
        # The hand-off switches the key's authoritative set from the old
        # owners to the strategy placement: drop the memoized resolve.
        self.store.invalidate_placement(m.key)

    def _settle(self) -> None:
        """All migrations drained: retire leavers, announce completion."""
        if self._pending:
            return
        st = self.store
        retired = self._retiring
        if retired:
            self._retiring = []
            for node_id in retired:
                st.retire_node(node_id)
        if self.migrations_completed < self.migrations_started:
            self.migrations_completed = self.migrations_started
            st._notify_elastic(
                {
                    "kind": "migration-complete",
                    "t": st.sim.now,
                    "keys_streamed": self.keys_streamed,
                    "bytes_streamed": self.bytes_streamed,
                    "retired": list(retired),
                }
            )

    def summary(self) -> Dict[str, int]:
        """Counter snapshot for run reports (JSON-safe)."""
        return {
            "migrations_started": self.migrations_started,
            "migrations_completed": self.migrations_completed,
            "ranges_moved": self.ranges_moved,
            "keys_streamed": self.keys_streamed,
            "bytes_streamed": self.bytes_streamed,
            "restreams": self.restreams,
            "pending_final": len(self._pending),
        }
