"""The elastic-cluster facade: live membership with streaming hand-off.

:class:`ElasticCluster` binds a :class:`~repro.cluster.store.ReplicatedStore`
to a :class:`~repro.elastic.rebalance.StreamingRebalancer` and exposes the
two capacity operations (scale out, scale in) plus the event log and the
summary block run reports carry. It is the surface both the scripted
scenarios (membership events on the simulation clock) and the autoscaler
drive.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.errors import ConfigError
from repro.cluster.store import ReplicatedStore
from repro.elastic.rebalance import RebalanceConfig, StreamingRebalancer

__all__ = ["ElasticCluster"]


class ElasticCluster:
    """Live-membership controller over a running store."""

    def __init__(
        self,
        store: ReplicatedStore,
        rebalance: Optional[RebalanceConfig] = None,
    ):
        if store.rebalancer is not None:
            raise ConfigError("store already has a rebalancer attached")
        self.store = store
        self.rebalancer = StreamingRebalancer(store, rebalance)
        self.nodes_initial = store.ring.n_nodes
        self.scale_outs = 0
        self.scale_ins = 0
        #: chronological membership event log (JSON-safe dicts).
        self.events: List[Dict[str, Any]] = []

    # -- capacity operations -------------------------------------------------------

    def bootstrap_node(self, dc_index: int, reason: str = "scripted") -> int:
        """Scale out: add one node to ``dc_index`` and stream its ranges in."""
        st = self.store
        node_id = st.bootstrap_node(dc_index)
        self.scale_outs += 1
        event = {
            "kind": "scale-out",
            "t": st.sim.now,
            "node": node_id,
            "dc": dc_index,
            "reason": reason,
        }
        self.events.append(event)
        st._notify_elastic(event)
        return node_id

    def decommission_node(self, node_id: int, reason: str = "scripted") -> None:
        """Scale in: drain ``node_id``'s ranges out, then retire it."""
        st = self.store
        st.decommission_node(node_id)
        self.scale_ins += 1
        event = {
            "kind": "scale-in",
            "t": st.sim.now,
            "node": int(node_id),
            "dc": st.topology.dc_of(node_id),
            "reason": reason,
        }
        self.events.append(event)
        st._notify_elastic(event)

    # -- queries -------------------------------------------------------------------

    @property
    def n_members(self) -> int:
        """Current ring member count (bootstrapped - decommissioned)."""
        return self.store.ring.n_nodes

    def members_in_dc(self, dc_index: int) -> List[int]:
        """Ring members placed in ``dc_index`` (excludes decommissioned)."""
        members = set(self.store.ring.members)
        return [
            n for n in self.store.topology.nodes_in_dc(dc_index) if n in members
        ]

    def decommission_candidate(self) -> Optional[int]:
        """Highest-id node whose removal keeps the placement satisfiable.

        Prefers the most recently added node (scale-in undoes scale-out) and
        skips nodes whose departure would break per-DC replica quotas.
        """
        st = self.store
        for node_id in sorted(st.ring.members, reverse=True):
            survivors = [m for m in st.ring.members if m != node_id]
            try:
                st.strategy.validate_membership(survivors, st.topology)
            except Exception:
                continue
            return node_id
        return None

    def summary(self) -> Dict[str, Any]:
        """The ``elastic`` block of a run report (JSON-safe, deterministic)."""
        out: Dict[str, Any] = {
            "nodes_initial": int(self.nodes_initial),
            "nodes_final": int(self.n_members),
            "scale_outs": int(self.scale_outs),
            "scale_ins": int(self.scale_ins),
            "events": [
                {k: ev[k] for k in sorted(ev)} for ev in self.events
            ],
        }
        out.update(self.rebalancer.summary())
        return out
