"""The elastic deploy-run-bill harness.

:func:`deploy_and_run_elastic` mirrors
:func:`repro.experiments.runner.deploy_and_run` with one extra axis:
*capacity over time*. An :class:`ElasticSpec` describes what changes during
the run -- scripted membership events, an autoscaler, a time-varying
offered-load schedule -- and the resulting
:class:`~repro.workload.client.RunReport` carries an ``elastic`` block
(scale events, ranges moved, bytes streamed, autoscaler decisions) next to
the usual throughput/latency/staleness metrics.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.cluster.failures import FailureInjector
from repro.cluster.store import ReplicatedStore
from repro.cost.billing import Bill, Biller
from repro.elastic.autoscale import AutoscalerConfig, CostAwareAutoscaler
from repro.elastic.cluster import ElasticCluster
from repro.elastic.rebalance import RebalanceConfig
from repro.monitor.collector import ClusterMonitor
from repro.obs.recorder import ObsConfig, RunObserver
from repro.workload.client import RunReport, WorkloadRunner
from repro.workload.workloads import WorkloadSpec, heavy_read_update

__all__ = ["ElasticSpec", "ElasticRunOutcome", "deploy_and_run_elastic"]

#: A membership script receives the cluster and schedules bootstrap /
#: decommission calls on the simulation clock (times relative to run start).
ElasticScript = Callable[[ElasticCluster], None]


@dataclass(frozen=True)
class ElasticSpec:
    """What changes about capacity and load during an elastic run.

    Attributes
    ----------
    script:
        Schedules scripted membership events (``None`` = none).
    autoscaler:
        Enables the cost-aware autoscaler with these tunables
        (``None`` = no autoscaler).
    rebalance:
        Streaming tunables for the migrations.
    pacing_schedule:
        ``(t, total_ops_per_sec)`` points: at time ``t`` the offered load is
        re-paced to that rate (the diurnal shape). Applies on top of the
        run's initial ``target_throughput``.
    """

    script: Optional[ElasticScript] = None
    autoscaler: Optional[AutoscalerConfig] = None
    rebalance: RebalanceConfig = field(default_factory=RebalanceConfig)
    pacing_schedule: Tuple[Tuple[float, float], ...] = ()


@dataclass
class ElasticRunOutcome:
    """Everything one elastic deployment run produced."""

    report: RunReport
    bill: Bill
    policy: Any
    store: ReplicatedStore
    cluster: ElasticCluster
    autoscaler: Optional[CostAwareAutoscaler]
    obs: Optional[RunObserver] = None


def deploy_and_run_elastic(*args: Any, **kwargs: Any) -> ElasticRunOutcome:
    """Deprecated spelling of the elastic path of :func:`repro.run`.

    Same signature and behaviour as before; new code should build a
    :class:`repro.RunSpec` with ``elastic=`` and call :func:`repro.run`.
    """
    warnings.warn(
        "deploy_and_run_elastic() is deprecated; build a repro.RunSpec with "
        "elastic= and call repro.run()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _deploy_and_run_elastic(*args, **kwargs)


def _deploy_and_run_elastic(
    platform,
    policy_factory,
    elastic: ElasticSpec,
    spec: Optional[WorkloadSpec] = None,
    ops: Optional[int] = None,
    clients: Optional[int] = None,
    seed: int = 11,
    warmup_fraction: float = 0.2,
    target_throughput: Optional[float] = None,
    failure_script: Optional[Callable[[FailureInjector], Any]] = None,
    client_mode: str = "per_client",
    obs: Optional[ObsConfig] = None,
) -> ElasticRunOutcome:
    """One full experiment run on a deployment whose capacity changes.

    Build the platform, attach the policy, wrap the store in an
    :class:`ElasticCluster`, arm the autoscaler / membership script /
    pacing schedule, run the workload with warmup, and bill the
    measurement phase.
    """
    sim, store = platform.build(seed=seed)
    policy = policy_factory(store)
    cluster = ElasticCluster(store, rebalance=elastic.rebalance)

    autoscaler: Optional[CostAwareAutoscaler] = None
    if elastic.autoscaler is not None:
        monitor = ClusterMonitor(window=2.0)
        store.add_listener(monitor)
        autoscaler = CostAwareAutoscaler(
            cluster, monitor, platform.prices, elastic.autoscaler
        )
        autoscaler.start()
    if elastic.script is not None:
        elastic.script(cluster)

    workload = spec or heavy_read_update(record_count=platform.default_record_count)
    biller = Biller(store, platform.prices, workload.data_size_bytes())
    if failure_script is not None:
        failure_script(FailureInjector(store))
    observer = (
        RunObserver(store, obs, policy=policy, run_meta={"seed": seed})
        if obs is not None
        else None
    )
    runner = WorkloadRunner(
        store,
        workload,
        policy=policy,
        n_clients=clients if clients is not None else platform.default_clients,
        ops_total=ops if ops is not None else platform.default_ops,
        seed=seed,
        warmup_fraction=warmup_fraction,
        target_throughput=target_throughput,
        biller=biller,
        client_mode=client_mode,
    )
    for t, rate in elastic.pacing_schedule:
        sim.schedule_at(t, _repace, runner, float(rate))
    report = runner.run()
    # The bill covers the measurement window, not the post-run drain.
    bill = biller.bill()
    if autoscaler is not None:
        autoscaler.stop()
    # Let in-flight migrations finish (bounded): the workload window just
    # ended first; the hand-off's in-flight-write gate in particular needs
    # one more pump tick after the last write settles.
    deadline = sim.now + 5.0
    while cluster.rebalancer.active and sim.now < deadline:
        sim.run(until=min(sim.now + 0.05, deadline))
    report.elastic = _elastic_block(cluster, autoscaler)
    if observer is not None:
        observer.finish()
    return ElasticRunOutcome(
        report=report,
        bill=bill,
        policy=policy,
        store=store,
        cluster=cluster,
        autoscaler=autoscaler,
        obs=observer,
    )


def _repace(runner: WorkloadRunner, total_rate: float) -> None:
    """Apply one pacing-schedule point: split the total rate over clients.

    The split is weighted by each unit's ``weight`` (1 for a closed-loop
    client, the member count for a cohort), so per-client and cohort runs
    see the same aggregate offered load at every schedule point.
    """
    live = [c for c in runner.clients if c.remaining > 0]
    if not live:
        return
    total_weight = sum(c.weight for c in live)
    for client in live:
        share = (
            total_rate * client.weight / total_weight if total_rate > 0 else None
        )
        client.set_rate(share)


def _elastic_block(
    cluster: ElasticCluster, autoscaler: Optional[CostAwareAutoscaler]
) -> Dict[str, Any]:
    """The report's ``elastic`` dict (JSON-safe, deterministic ordering)."""
    block = cluster.summary()
    if autoscaler is not None:
        block["autoscaler"] = autoscaler.summary()
    return block
