"""Cluster elasticity: live membership, streaming rebalance, autoscaling.

The capacity-over-time axis of the simulated store:

- :class:`~repro.elastic.cluster.ElasticCluster` -- bootstrap/decommission
  with an event log, over the store's live-membership API;
- :class:`~repro.elastic.rebalance.StreamingRebalancer` -- crash-safe
  online migration of moved token ranges (pending-ranges reads, forwarded
  writes, re-stream on failure);
- :class:`~repro.elastic.autoscale.CostAwareAutoscaler` -- a hysteretic
  control loop trading observed load pressure against the projected bill;
- :func:`~repro.elastic.runner.deploy_and_run_elastic` -- the experiment
  harness the ``elastic-*`` scenarios run through.
"""

from repro.elastic.autoscale import AutoscalerConfig, CostAwareAutoscaler
from repro.elastic.cluster import ElasticCluster
from repro.elastic.rebalance import RebalanceConfig, StreamingRebalancer
from repro.elastic.runner import (
    ElasticRunOutcome,
    ElasticSpec,
    deploy_and_run_elastic,
)

__all__ = [
    "AutoscalerConfig",
    "CostAwareAutoscaler",
    "ElasticCluster",
    "RebalanceConfig",
    "StreamingRebalancer",
    "ElasticRunOutcome",
    "ElasticSpec",
    "deploy_and_run_elastic",
]
