"""Harmony's monitoring module.

§III-A: *"The monitoring module collects relevant metrics about data access
in the storage system: read rates and write rates, as well as network
latencies. These data are further fed to the adaptive consistency module."*

- :class:`~repro.monitor.collector.ClusterMonitor` is that module: a store
  listener estimating read/write arrival rates, the per-rank replica
  acknowledgement profile (the observable propagation-time structure), and
  the key-access frequency profile;
- :class:`~repro.monitor.keyfreq.KeyFrequencyTracker` supplies the skew
  correction: staleness depends on the *per-key* write rate, so the
  aggregate write rate must be distributed over the keys the way the
  workload actually spreads it.
"""

from repro.monitor.keyfreq import KeyFrequencyTracker
from repro.monitor.collector import ClusterMonitor, MonitorSnapshot

__all__ = ["KeyFrequencyTracker", "ClusterMonitor", "MonitorSnapshot"]
