"""Sliding key-access frequency tracking (rotating-bucket counters).

The stale-read probability of the *system* is the read-share-weighted
average over keys of the per-key staleness, and per-key staleness depends on
the per-key write rate. This tracker estimates the two ingredients --
per-key read shares and write rates -- over a sliding window with O(live
keys) memory, using the classic two-bucket rotation (no per-event deque).

It also exposes the *effective key count* ``K_eff = 1 / sum(share_i^2)``
(inverse Simpson index): under a uniform workload ``K_eff == K``; under
zipfian skew it is much smaller, which is exactly why skewed workloads read
more stale data at the same aggregate write rate.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.errors import ConfigError

__all__ = ["KeyFrequencyTracker"]


class KeyFrequencyTracker:
    """Per-key read/write counters over a rotating two-bucket window.

    Counts land in the *current* bucket; every ``window`` seconds the
    buckets rotate. Queries merge both buckets, so estimates cover between
    one and two windows of history -- the standard accuracy/memory trade-off.
    """

    def __init__(self, window: float = 10.0):
        if window <= 0:
            raise ConfigError(f"window must be positive, got {window}")
        self.window = float(window)
        self._cur_reads: Dict[str, int] = {}
        self._cur_writes: Dict[str, int] = {}
        self._prev_reads: Dict[str, int] = {}
        self._prev_writes: Dict[str, int] = {}
        self._rotated_at = 0.0

    def _maybe_rotate(self, now: float) -> None:
        if now - self._rotated_at >= self.window:
            self._prev_reads = self._cur_reads
            self._prev_writes = self._cur_writes
            self._cur_reads = {}
            self._cur_writes = {}
            self._rotated_at = now
            # If more than two windows elapsed silently, the previous bucket
            # is stale too.
            if now - self._rotated_at >= self.window:  # pragma: no cover
                self._prev_reads = {}
                self._prev_writes = {}

    def record_read(self, key: str, now: float) -> None:
        """Count one read of ``key`` at simulated time ``now``."""
        self._maybe_rotate(now)
        self._cur_reads[key] = self._cur_reads.get(key, 0) + 1

    def record_write(self, key: str, now: float) -> None:
        """Count one write of ``key`` at simulated time ``now``."""
        self._maybe_rotate(now)
        self._cur_writes[key] = self._cur_writes.get(key, 0) + 1

    # -- queries ---------------------------------------------------------------

    def _merged(self, cur: Dict[str, int], prev: Dict[str, int]) -> Dict[str, int]:
        merged = dict(prev)
        for k, v in cur.items():
            merged[k] = merged.get(k, 0) + v
        return merged

    def read_shares(self) -> Dict[str, float]:
        """Fraction of reads per key over the merged window."""
        merged = self._merged(self._cur_reads, self._prev_reads)
        total = sum(merged.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in merged.items()}

    def write_shares(self) -> Dict[str, float]:
        """Fraction of writes per key over the merged window."""
        merged = self._merged(self._cur_writes, self._prev_writes)
        total = sum(merged.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in merged.items()}

    def effective_key_count(self) -> float:
        """Inverse Simpson index of the write shares (K under uniformity).

        Returns ``inf`` when no writes were observed (nothing can be stale).
        """
        shares = self.write_shares()
        s2 = sum(v * v for v in shares.values())
        return 1.0 / s2 if s2 > 0 else float("inf")

    def collision_profile(self, max_keys: int = 512) -> List[Tuple[float, float, int]]:
        """Joint access profile ``[(read_share, write_share, multiplicity)]``.

        Sorted by read share; the head (up to ``max_keys`` keys, which
        dominates staleness under skew) is exact with multiplicity 1, and
        the tail is folded into a single *average* pseudo-key with
        multiplicity = tail size. Estimators evaluate the per-key staleness
        function once per entry and weight by ``read_share * multiplicity``,
        bounding cost on huge keyspaces.
        """
        r = self.read_shares()
        w = self.write_shares()
        keys = set(r) | set(w)
        # Sort on the full (read, write) pair: ordering only by read share
        # leaves ties in set-iteration order, which depends on the string
        # hash seed and perturbs the estimator's summation order across
        # interpreter invocations.
        rows = sorted(
            ((r.get(k, 0.0), w.get(k, 0.0)) for k in keys),
            key=lambda rw: (-rw[0], -rw[1]),
        )
        if len(rows) <= max_keys:
            return [(rs, ws, 1) for rs, ws in rows]
        head = [(rs, ws, 1) for rs, ws in rows[:max_keys]]
        tail = rows[max_keys:]
        n = len(tail)
        tr = sum(x for x, _ in tail) / n
        tw = sum(y for _, y in tail) / n
        head.append((tr, tw, n))
        return head

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KeyFrequencyTracker(window={self.window}, "
            f"live_keys={len(self._cur_reads) + len(self._cur_writes)})"
        )
